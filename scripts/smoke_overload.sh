#!/usr/bin/env bash
# Overload / latency-SLO smoke for the observability + admission stack:
# boots carserved with tight admission limits, metrics and a JSON access
# log, drives it past capacity with `carbench -exp overload`, and asserts
# the load-shedding contract end to end:
#
#   - the overload phase sheds a nonzero share of requests with 429, every
#     429 carries Retry-After, and zero requests fail outright;
#   - admitted requests stay inside the latency SLO (client-observed p99)
#     even while the daemon is saturated;
#   - the recovery phase (paced load below the limits) sheds nothing;
#   - /metrics serves Prometheus text exposition with the per-shard rank
#     histograms, shed counters and journal group-commit series;
#   - request IDs are honored/echoed and error bodies are JSON carrying
#     request_id; the access log is parseable JSON lines including the 429s.
#
# CI runs it; it also works locally:
#
#   go build -o /tmp/carserved ./cmd/carserved
#   go build -o /tmp/carbench ./cmd/carbench
#   scripts/smoke_overload.sh /tmp/carserved /tmp/carbench
#
# Requires: curl, jq, awk.
set -euo pipefail

SERVED=${1:?usage: smoke_overload.sh <carserved-binary> <carbench-binary> [port]}
BENCH=${2:?usage: smoke_overload.sh <carserved-binary> <carbench-binary> [port]}
PORT=${3:-18373}
BASE="http://127.0.0.1:${PORT}"
SNAP=$(mktemp -d)
LOG=$(mktemp)
ACCESSLOG=$(mktemp)
BENCHOUT=$(mktemp)
PID=
P99_SLO_MS=250

cleanup() {
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  echo "--- daemon log ---"
  cat "$LOG"
  rm -rf "$SNAP" "$LOG" "$ACCESSLOG" "$BENCHOUT"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon did not become healthy on $BASE"
}

# field "<machine line>" <key> — pull key=value out of an OVERLOAD line.
field() { echo "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"; }

echo "=== boot with tight admission limits + metrics + access log ==="
"$SERVED" -addr "127.0.0.1:${PORT}" -shards 2 -preload small -rules 4 -snapdir "$SNAP" \
  -metrics -ratelimit 30 -burst 10 -maxinflight 16 -maxqueue 32 \
  -accesslog "$ACCESSLOG" >>"$LOG" 2>&1 &
PID=$!
wait_healthy

echo "=== request-ID + JSON-error contract ==="
HDR=$(curl -fsS -D - -o /dev/null -H 'X-Request-ID: smoke-trace-1' "$BASE/healthz")
echo "$HDR" | grep -qi '^X-Request-ID: smoke-trace-1' || fail "inbound X-Request-ID not echoed"
# An error response is the canonical envelope: JSON with the request id
# and a machine-readable code.
ERR=$(curl -sS -X POST -H 'X-Request-ID: smoke-trace-2' "$BASE/v1/rank" -d '{"user":"","target":""}')
echo "$ERR" | jq -e '.request_id == "smoke-trace-2" and (.error | length > 0) and .code == "bad_request"' >/dev/null \
  || fail "error body not the canonical envelope: $ERR"
CT=$(curl -sS -o /dev/null -w '%{content_type}' -X POST "$BASE/v1/rank" -d '{"user":"","target":""}')
[ "$CT" = "application/json" ] || fail "error Content-Type = $CT, want application/json"
MINTED=$(curl -fsS -D - -o /dev/null "$BASE/healthz" | sed -n 's/^[Xx]-[Rr]equest-[Ii][Dd]: *//p' | tr -d '\r')
[ -n "$MINTED" ] || fail "no X-Request-ID minted when none supplied"

echo "=== drive past capacity: carbench -exp overload ==="
"$BENCH" -exp overload -small -target "$BASE" -clients 32 -users 6 -lowclients 2 \
  -benchdur 3s | tee "$BENCHOUT"

OVER=$(grep '^OVERLOAD phase=overload ' "$BENCHOUT") || fail "no overload machine line"
REC=$(grep '^OVERLOAD phase=recovery ' "$BENCHOUT") || fail "no recovery machine line"

SHED=$(field "$OVER" shed); OK=$(field "$OVER" ok)
ERRS=$(field "$OVER" errors); RETRY=$(field "$OVER" retry_after)
P99=$(field "$OVER" p99_ms)
[ "$SHED" -gt 0 ] || fail "overload phase shed nothing (shed=$SHED) — admission control inert"
[ "$OK" -gt 0 ] || fail "overload phase admitted nothing (ok=$OK)"
[ "$ERRS" -eq 0 ] || fail "overload phase had $ERRS hard errors (shedding must be clean 429s)"
[ "$RETRY" -eq "$SHED" ] || fail "only $RETRY of $SHED 429s carried Retry-After"
awk -v p99="$P99" -v slo="$P99_SLO_MS" 'BEGIN { exit !(p99 > 0 && p99 <= slo) }' \
  || fail "admitted p99 ${P99}ms breaches the ${P99_SLO_MS}ms SLO under overload"
echo "overload: shed=$SHED ok=$OK p99=${P99}ms (SLO ${P99_SLO_MS}ms)"

RSHED=$(field "$REC" shed); RERRS=$(field "$REC" errors); ROK=$(field "$REC" ok)
[ "$RSHED" -eq 0 ] || fail "recovery phase still shedding ($RSHED) after load dropped"
[ "$RERRS" -eq 0 ] || fail "recovery phase had $RERRS errors"
[ "$ROK" -gt 0 ] || fail "recovery phase served nothing"
echo "recovery: shed=0 ok=$ROK — service recovered"

echo "=== /metrics scrape: exposition format + required series ==="
SCRAPE=$(mktemp)
curl -fsS -D "$SCRAPE.hdr" "$BASE/metrics" >"$SCRAPE"
grep -qi '^Content-Type: text/plain; version=0.0.4' "$SCRAPE.hdr" \
  || fail "wrong /metrics content type: $(grep -i content-type "$SCRAPE.hdr")"
for series in \
  'carserve_rank_requests_total{shard="0"}' \
  'carserve_rank_requests_total{shard="1"}' \
  'carserve_rank_latency_seconds_bucket{shard="0",le="+Inf"}' \
  'carserve_rank_latency_seconds_sum' \
  'carserve_rank_cache_hits_total' \
  'carserve_plan_cache_hit_ratio' \
  'carserve_journal_appends_total' \
  'carserve_journal_batch_records_bucket' \
  'carserve_http_requests_total{route="POST /v1/rank",code="200"}' \
  'carserve_http_requests_total{route="POST /v1/rank",code="429"}' \
  'carserve_admitted_total' \
  'carserve_inflight_requests' \
  'carserve_sessions' \
  ; do
  grep -qF "$series" "$SCRAPE" || fail "/metrics missing series $series"
done
# The shed counter must show the overload the bench just applied.
SHED_METRIC=$(awk '/^carserve_shed_total/ { s += $2 } END { printf "%d", s }' "$SCRAPE")
[ "$SHED_METRIC" -gt 0 ] || fail "carserve_shed_total is zero after an overload run"
# Every non-comment line is "name{labels} value" — no malformed samples.
# (Label values may themselves contain braces, e.g. route="...{user}...",
# so the label part is matched greedily to the last closing brace.)
BAD=$(grep -cvE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9.eE+Inf-]+$)' "$SCRAPE" || true)
[ "$BAD" -eq 0 ] || fail "$BAD malformed exposition lines in /metrics"
rm -f "$SCRAPE" "$SCRAPE.hdr"
echo "scrape OK: shed_total=$SHED_METRIC"

echo "=== access log: JSON lines, request ids, 429s logged ==="
[ -s "$ACCESSLOG" ] || fail "access log is empty"
jq -es 'length > 0' <"$ACCESSLOG" >/dev/null || fail "access log is not parseable JSON lines"
jq -es 'all(.id != null and .id != "" and .route != null and .status != null)' <"$ACCESSLOG" >/dev/null \
  || fail "access log lines missing id/route/status fields"
grep -q '"id":"smoke-trace-2"' "$ACCESSLOG" || fail "inbound request id absent from access log"
N429=$(jq -es 'map(select(.status == 429)) | length' <"$ACCESSLOG")
[ "$N429" -gt 0 ] || fail "no 429 lines in the access log after an overload run"
echo "access log OK: $(wc -l <"$ACCESSLOG") lines, $N429 shed lines"

echo "=== clean shutdown ==="
kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero on SIGTERM"
PID=

echo "SMOKE PASS"
