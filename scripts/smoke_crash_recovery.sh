#!/usr/bin/env bash
# Crash-recovery smoke test for cmd/carserved: the CI proof that the
# full-state write-ahead journal makes the daemon crash-safe. It boots 4
# shards with -snapdir, applies per-user session contexts over HTTP AND
# mutates the vocabulary mid-traffic (declare, assert, rule add, SQL
# exec), records every user's context fingerprint, full rank scores, the
# rule set and SQL row contents, then kill -9s the daemon mid-traffic (a
# rank loop is running; no SIGTERM, no snapshot-on-shutdown) and reboots.
# Recovery must be bit-identical across every dimension. The whole check
# then repeats across a second kill -9 with a *different* -shards count,
# proving journal replay reroutes sessions and deduplicates broadcast
# records on reshard. A final leg runs the background checkpointer at a
# 1s interval, proves the WAL's vocabulary backlog is truncated to zero,
# crashes once more, and shows snapshot + WAL-suffix recovery lands on
# the same consistent point.
#
#   go build -o /tmp/carserved ./cmd/carserved
#   scripts/smoke_crash_recovery.sh /tmp/carserved
#
# Requires: curl, jq.
set -euo pipefail

BIN=${1:?usage: smoke_crash_recovery.sh <carserved-binary> [port]}
PORT=${2:-18373}
BASE="http://127.0.0.1:${PORT}"
SNAP=$(mktemp -d)
LOG=$(mktemp)
STATE=$(mktemp -d)
NUSERS=10
PID=
TRAFFIC_PID=

cleanup() {
  stop_traffic
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  echo "--- daemon log ---"
  cat "$LOG"
  rm -rf "$SNAP" "$LOG" "$STATE"
}
trap cleanup EXIT

fail() { echo "CRASH-RECOVERY FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon did not become healthy on $BASE"
}

jget() { curl -fsS "$1" | jq -er "$2"; }
jsend() { curl -fsS -X "$1" "$2" -d "$3" | jq -er "$4"; }

boot() { # boot SHARDS [extra carserved flags...]
  local shards=$1
  shift
  "$BIN" -addr "127.0.0.1:${PORT}" -shards "$shards" -preload small -rules 4 -snapdir "$SNAP" "$@" >>"$LOG" 2>&1 &
  PID=$!
  wait_healthy
}

crash() { # kill -9, no clean shutdown
  kill -9 "$PID"
  wait "$PID" 2>/dev/null || true
  PID=
}

start_traffic() {
  # Background rank traffic so kills and mutations land mid-flight, as in
  # production — ranks are read-only, so they cannot change what
  # recovery must reproduce.
  (
    i=0
    while :; do
      u=$(printf 'user%03d' $((i % NUSERS)))
      curl -fsS -X POST "$BASE/v1/rank" -d "{\"user\":\"$u\",\"target\":\"TvProgram\",\"limit\":5}" >/dev/null 2>&1 || true
      i=$((i + 1))
    done
  ) &
  TRAFFIC_PID=$!
}

stop_traffic() {
  if [ -n "$TRAFFIC_PID" ] && kill -0 "$TRAFFIC_PID" 2>/dev/null; then
    kill "$TRAFFIC_PID" 2>/dev/null || true
    wait "$TRAFFIC_PID" 2>/dev/null || true
  fi
  TRAFFIC_PID=
}

# snapshot_state FILE-PREFIX — record sessions, per-user fingerprints,
# full rank score arrays, the rule set and the smoke table's rows for
# later bit-identity comparison.
snapshot_state() {
  jget "$BASE/v1/stats" '.sessions' >"$STATE/$1.sessions"
  jget "$BASE/v1/rules" '.rules | sort_by(.name)' >"$STATE/$1.rules"
  curl -fsS -X POST "$BASE/v1/query" -d '{"sql":"SELECT n FROM smoke_t"}' \
    | jq -er '.rows | sort' >"$STATE/$1.rows"
  for i in $(seq 0 $((NUSERS - 1))); do
    u=$(printf 'user%03d' "$i")
    jget "$BASE/v1/sessions/$u" '.fingerprint' >"$STATE/$1.fp.$u"
    jsend POST "$BASE/v1/rank" "{\"user\":\"$u\",\"target\":\"TvProgram\",\"limit\":0}" '.results' >"$STATE/$1.scores.$u"
  done
}

# assert_state PRE POST — every recorded value must be bit-identical.
assert_state() {
  cmp -s "$STATE/$1.sessions" "$STATE/$2.sessions" \
    || fail "session count changed: $(cat "$STATE/$1.sessions") -> $(cat "$STATE/$2.sessions")"
  cmp -s "$STATE/$1.rules" "$STATE/$2.rules" \
    || fail "rule set changed across crash recovery ($1 vs $2)"
  cmp -s "$STATE/$1.rows" "$STATE/$2.rows" \
    || fail "SQL rows changed across crash recovery: $(cat "$STATE/$1.rows") -> $(cat "$STATE/$2.rows")"
  for i in $(seq 0 $((NUSERS - 1))); do
    u=$(printf 'user%03d' "$i")
    cmp -s "$STATE/$1.fp.$u" "$STATE/$2.fp.$u" \
      || fail "fingerprint for $u changed: $(cat "$STATE/$1.fp.$u") -> $(cat "$STATE/$2.fp.$u")"
    cmp -s "$STATE/$1.scores.$u" "$STATE/$2.scores.$u" \
      || fail "rank scores for $u changed across crash recovery"
  done
}

echo "=== boot with -shards 4 -snapdir (saves a boot snapshot, arms the journal) ==="
boot 4
grep -q "journal armed" "$LOG" || fail "no journal boot log line"
[ -f "$SNAP/manifest.json" ] || fail "no boot snapshot written"
[ -f "$SNAP/journal.manifest.json" ] || fail "no journal manifest written"

echo "=== establish journaled sessions (plus one churned + dropped user) ==="
for i in $(seq 0 $((NUSERS - 1))); do
  u=$(printf 'user%03d' "$i")
  p=$(awk -v i="$i" 'BEGIN{printf "%.2f", 0.5 + (i % 5) / 10.0}')
  jsend PUT "$BASE/v1/sessions/$u/context" \
    "{\"measurements\":[{\"concept\":\"BenchCtx0\",\"prob\":$p},{\"concept\":\"BenchCtx1\",\"prob\":0.7}]}" \
    '.fingerprint' >/dev/null || fail "session set for $u"
done
# ghost leaves before the crash; replay must not resurrect it.
jsend PUT "$BASE/v1/sessions/ghost/context" \
  '{"measurements":[{"concept":"BenchCtx0","prob":0.9}]}' '.fingerprint' >/dev/null || fail "ghost set"
curl -fsS -X DELETE "$BASE/v1/sessions/ghost" >/dev/null || fail "ghost drop"

echo "=== mutate vocabulary mid-traffic: declare, assert, rule, SQL exec ==="
start_traffic
jsend POST "$BASE/v1/declare" '{"concepts":["SmokeCtx"]}' '.epoch' >/dev/null || fail "declare"
jsend POST "$BASE/v1/assert" \
  '{"concepts":[{"concept":"TvProgram","id":"smoketv","prob":1}],"roles":[{"role":"hasGenre","src":"smoketv","dst":"genre00","prob":0.9}]}' \
  '.epoch' >/dev/null || fail "assert"
jsend POST "$BASE/v1/rules" \
  '{"rules":["RULE smoke WHEN SmokeCtx PREFER TvProgram AND EXISTS hasGenre.{genre00} WITH 0.9"]}' \
  '.epoch' >/dev/null || fail "rule add"
jsend POST "$BASE/v1/exec" '{"sql":"CREATE TABLE smoke_t (n INT)"}' '.epoch' >/dev/null || fail "create table"
jsend POST "$BASE/v1/exec" '{"sql":"INSERT INTO smoke_t (n) VALUES (1)"}' '.epoch' >/dev/null || fail "insert 1"
jsend POST "$BASE/v1/exec" '{"sql":"INSERT INTO smoke_t (n) VALUES (2)"}' '.epoch' >/dev/null || fail "insert 2"
# user000 picks up the new context concept so the smoke rule shapes its
# ranking — recovered scores then prove the whole vocabulary survived.
jsend PUT "$BASE/v1/sessions/user000/context" \
  '{"measurements":[{"concept":"SmokeCtx","prob":1},{"concept":"BenchCtx0","prob":0.6}]}' \
  '.fingerprint' >/dev/null || fail "smoke-rule session"
snapshot_state pre

echo "=== kill -9 mid-traffic (no snapshot, no clean shutdown) ==="
sleep 0.5
crash
stop_traffic

echo "=== reboot at the same shard count: recovery must be bit-identical ==="
boot 4
grep -Eq "journal: replayed [0-9]+ records" "$LOG" || fail "no replay log line after crash"
grep -Eq "vocabulary/DML replay: [1-9][0-9]* applied" "$LOG" || fail "no vocabulary replay log line"
snapshot_state post4
assert_state pre post4
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sessions/ghost")
[ "$CODE" = "404" ] || fail "dropped session resurrected by replay (status $CODE)"
JLIVE=$(jget "$BASE/v1/stats" '.journal.live_records')
[ "$JLIVE" -eq "$NUSERS" ] || fail "journal live records = $JLIVE, want $NUSERS"

echo "=== kill -9 again, reboot at -shards 2: replay reroutes sessions ==="
start_traffic
sleep 0.3
crash
stop_traffic
boot 2
GOT_SHARDS=$(jget "$BASE/v1/stats" '.shards | length')
[ "$GOT_SHARDS" -eq 2 ] || fail "resharded daemon reports $GOT_SHARDS shards, want 2"
snapshot_state post2
assert_state pre post2

echo "=== background checkpointer: WAL vocabulary backlog must truncate to zero ==="
crash
boot 2 -checkpoint-interval 1s -checkpoint-bytes 2048
for n in 101 102 103 104 105; do
  jsend POST "$BASE/v1/exec" "{\"sql\":\"INSERT INTO smoke_t (n) VALUES ($n)\"}" '.epoch' >/dev/null || fail "insert $n"
done
CKPTS=0
for _ in $(seq 1 100); do
  CKPTS=$(jget "$BASE/v1/stats" '.checkpoints.count // 0')
  VBYTES=$(jget "$BASE/v1/stats" '.journal.vocab_bytes')
  if [ "$CKPTS" -ge 1 ] && [ "$VBYTES" -eq 0 ]; then break; fi
  sleep 0.1
done
[ "$CKPTS" -ge 1 ] || fail "background checkpointer never fired"
[ "$VBYTES" -eq 0 ] || fail "WAL retains $VBYTES vocabulary bytes after checkpoint"

echo "=== kill -9 after the checkpoint: snapshot + WAL suffix recover one point ==="
crash
boot 2
ROWS=$(curl -fsS -X POST "$BASE/v1/query" -d '{"sql":"SELECT n FROM smoke_t"}' | jq -er '.rows | length')
[ "$ROWS" -eq 7 ] || fail "smoke_t holds $ROWS rows after checkpointed recovery, want 7"
snapshot_state postckpt
for i in $(seq 0 $((NUSERS - 1))); do
  u=$(printf 'user%03d' "$i")
  cmp -s "$STATE/pre.fp.$u" "$STATE/postckpt.fp.$u" || fail "fingerprint for $u changed after checkpointed recovery"
  cmp -s "$STATE/pre.scores.$u" "$STATE/postckpt.scores.$u" || fail "rank scores for $u changed after checkpointed recovery"
done
cmp -s "$STATE/pre.rules" "$STATE/postckpt.rules" || fail "rule set changed after checkpointed recovery"

echo "=== clean shutdown still works after all that ==="
kill -TERM "$PID"
wait "$PID" || fail "final shutdown not clean"
PID=

echo "CRASH-RECOVERY PASS"
