#!/usr/bin/env bash
# Crash-recovery smoke test for cmd/carserved: the CI proof that the
# session journal makes the daemon crash-safe. It boots 4 shards with
# -snapdir, applies per-user session contexts over HTTP, records every
# user's context fingerprint and full rank scores, then kill -9s the
# daemon mid-traffic (a rank loop is running; no SIGTERM, no snapshot-on-
# shutdown) and reboots. Recovery must be bit-identical: same session
# count, same per-user fingerprints, same rank scores. The whole check
# then repeats across a second kill -9 with a *different* -shards count,
# proving journal replay reroutes sessions on reshard.
#
#   go build -o /tmp/carserved ./cmd/carserved
#   scripts/smoke_crash_recovery.sh /tmp/carserved
#
# Requires: curl, jq.
set -euo pipefail

BIN=${1:?usage: smoke_crash_recovery.sh <carserved-binary> [port]}
PORT=${2:-18373}
BASE="http://127.0.0.1:${PORT}"
SNAP=$(mktemp -d)
LOG=$(mktemp)
STATE=$(mktemp -d)
NUSERS=10
PID=
TRAFFIC_PID=

cleanup() {
  stop_traffic
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  echo "--- daemon log ---"
  cat "$LOG"
  rm -rf "$SNAP" "$LOG" "$STATE"
}
trap cleanup EXIT

fail() { echo "CRASH-RECOVERY FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon did not become healthy on $BASE"
}

jget() { curl -fsS "$1" | jq -er "$2"; }
jsend() { curl -fsS -X "$1" "$2" -d "$3" | jq -er "$4"; }

boot() { # boot SHARDS
  "$BIN" -addr "127.0.0.1:${PORT}" -shards "$1" -preload small -rules 4 -snapdir "$SNAP" >>"$LOG" 2>&1 &
  PID=$!
  wait_healthy
}

start_traffic() {
  # Background rank traffic so the kill lands mid-flight, as in
  # production — ranks are read-only, so they cannot change what
  # recovery must reproduce.
  (
    i=0
    while :; do
      u=$(printf 'user%03d' $((i % NUSERS)))
      curl -fsS "$BASE/v1/rank?user=$u&target=TvProgram&limit=5" >/dev/null 2>&1 || true
      i=$((i + 1))
    done
  ) &
  TRAFFIC_PID=$!
}

stop_traffic() {
  if [ -n "$TRAFFIC_PID" ] && kill -0 "$TRAFFIC_PID" 2>/dev/null; then
    kill "$TRAFFIC_PID" 2>/dev/null || true
    wait "$TRAFFIC_PID" 2>/dev/null || true
  fi
  TRAFFIC_PID=
}

# snapshot_state FILE-PREFIX — record sessions + per-user fingerprints and
# full rank score arrays for later bit-identity comparison.
snapshot_state() {
  jget "$BASE/v1/stats" '.sessions' >"$STATE/$1.sessions"
  for i in $(seq 0 $((NUSERS - 1))); do
    u=$(printf 'user%03d' "$i")
    jget "$BASE/v1/sessions/$u" '.fingerprint' >"$STATE/$1.fp.$u"
    jget "$BASE/v1/rank?user=$u&target=TvProgram&limit=0" '.results' >"$STATE/$1.scores.$u"
  done
}

# assert_state PRE POST — every recorded value must be bit-identical.
assert_state() {
  cmp -s "$STATE/$1.sessions" "$STATE/$2.sessions" \
    || fail "session count changed: $(cat "$STATE/$1.sessions") -> $(cat "$STATE/$2.sessions")"
  for i in $(seq 0 $((NUSERS - 1))); do
    u=$(printf 'user%03d' "$i")
    cmp -s "$STATE/$1.fp.$u" "$STATE/$2.fp.$u" \
      || fail "fingerprint for $u changed: $(cat "$STATE/$1.fp.$u") -> $(cat "$STATE/$2.fp.$u")"
    cmp -s "$STATE/$1.scores.$u" "$STATE/$2.scores.$u" \
      || fail "rank scores for $u changed across crash recovery"
  done
}

echo "=== boot with -shards 4 -snapdir (saves a boot snapshot, arms the journal) ==="
boot 4
grep -q "session journal" "$LOG" || fail "no session-journal boot log line"
[ -f "$SNAP/manifest.json" ] || fail "no boot snapshot written"
[ -f "$SNAP/journal.manifest.json" ] || fail "no journal manifest written"

echo "=== establish journaled sessions (plus one churned + dropped user) ==="
for i in $(seq 0 $((NUSERS - 1))); do
  u=$(printf 'user%03d' "$i")
  p=$(awk -v i="$i" 'BEGIN{printf "%.2f", 0.5 + (i % 5) / 10.0}')
  jsend PUT "$BASE/v1/sessions/$u/context" \
    "{\"measurements\":[{\"concept\":\"BenchCtx0\",\"prob\":$p},{\"concept\":\"BenchCtx1\",\"prob\":0.7}]}" \
    '.fingerprint' >/dev/null || fail "session set for $u"
done
# ghost leaves before the crash; replay must not resurrect it.
jsend PUT "$BASE/v1/sessions/ghost/context" \
  '{"measurements":[{"concept":"BenchCtx0","prob":0.9}]}' '.fingerprint' >/dev/null || fail "ghost set"
curl -fsS -X DELETE "$BASE/v1/sessions/ghost" >/dev/null || fail "ghost drop"
snapshot_state pre

echo "=== kill -9 mid-traffic (no snapshot, no clean shutdown) ==="
start_traffic
sleep 0.5
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=
stop_traffic

echo "=== reboot at the same shard count: recovery must be bit-identical ==="
boot 4
grep -Eq "session journal: replayed [0-9]+ records" "$LOG" || fail "no replay log line after crash"
snapshot_state post4
assert_state pre post4
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sessions/ghost")
[ "$CODE" = "404" ] || fail "dropped session resurrected by replay (status $CODE)"
JLIVE=$(jget "$BASE/v1/stats" '.journal.live_records')
[ "$JLIVE" -eq "$NUSERS" ] || fail "journal live records = $JLIVE, want $NUSERS"

echo "=== kill -9 again, reboot at -shards 2: replay reroutes sessions ==="
start_traffic
sleep 0.3
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=
stop_traffic
boot 2
GOT_SHARDS=$(jget "$BASE/v1/stats" '.shards | length')
[ "$GOT_SHARDS" -eq 2 ] || fail "resharded daemon reports $GOT_SHARDS shards, want 2"
snapshot_state post2
assert_state pre post2

echo "=== clean shutdown still works after all that ==="
kill -TERM "$PID"
wait "$PID" || fail "final shutdown not clean"
PID=

echo "CRASH-RECOVERY PASS"
