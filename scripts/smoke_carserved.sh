#!/usr/bin/env bash
# End-to-end smoke test for cmd/carserved: boots the daemon with 4 shards,
# exercises declare/assert/rules/sessions/rank/query/stats over HTTP,
# SIGTERMs it, asserts a clean snapshot-on-shutdown, reboots from the
# snapshot directory and checks the durable state — including journaled
# sessions — survived. (Crash recovery via kill -9 has its own script,
# smoke_crash_recovery.sh.) CI runs it; it also works locally:
#
#   go build -o /tmp/carserved ./cmd/carserved
#   scripts/smoke_carserved.sh /tmp/carserved
#
# Requires: curl, jq.
set -euo pipefail

BIN=${1:?usage: smoke_carserved.sh <carserved-binary> [port]}
PORT=${2:-18372}
BASE="http://127.0.0.1:${PORT}"
SNAP=$(mktemp -d)
LOG=$(mktemp)
SHARDS=4
PID=

cleanup() {
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  echo "--- daemon log ---"
  cat "$LOG"
  rm -rf "$SNAP" "$LOG"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon did not become healthy on $BASE"
}

# jget URL JQ_EXPR — GET and extract; jpost METHOD URL BODY JQ_EXPR.
jget() { curl -fsS "$1" | jq -er "$2"; }
jsend() { curl -fsS -X "$1" "$2" -d "$3" | jq -er "$4"; }

echo "=== boot with -shards $SHARDS -preload small ==="
"$BIN" -addr "127.0.0.1:${PORT}" -shards "$SHARDS" -preload small -rules 4 -snapdir "$SNAP" >>"$LOG" 2>&1 &
PID=$!
wait_healthy

echo "=== declare + assert new vocabulary (broadcast write) ==="
jsend POST "$BASE/v1/declare" '{"concepts":["SmokeCtx"],"roles":["smokeRel"]}' '.epoch' >/dev/null \
  || fail "declare"
jsend POST "$BASE/v1/assert" '{"roles":[{"role":"smokeRel","src":"tv000","dst":"smoke","prob":0.9}]}' '.epoch' >/dev/null \
  || fail "assert"

echo "=== register a rule on top of the preloaded set ==="
ADDED=$(jsend POST "$BASE/v1/rules" '{"rules":["RULE SMOKE WHEN SmokeCtx PREFER TvProgram AND EXISTS smokeRel.{smoke} WITH 0.7"]}' '.added[0]')
[ "$ADDED" = "SMOKE" ] || fail "rule add returned $ADDED"
RULES=$(jget "$BASE/v1/rules" '.rules | length')
[ "$RULES" -eq 5 ] || fail "expected 5 rules (4 preloaded + SMOKE), got $RULES"

echo "=== sessions + ranks across several users (all shards exercised) ==="
for i in 0 1 2 3 4 5 6 7; do
  USER=$(printf 'person%04d' "$i")
  jsend PUT "$BASE/v1/sessions/$USER/context" \
    '{"measurements":[{"concept":"BenchCtx0","prob":1},{"concept":"SmokeCtx","prob":0.8}]}' \
    '.fingerprint' >/dev/null || fail "session set for $USER"
  N=$(jsend POST "$BASE/v1/rank" "{\"user\":\"$USER\",\"target\":\"TvProgram\",\"limit\":3}" '.results | length')
  [ "$N" -ge 1 ] || fail "rank for $USER returned $N results"
done
# A repeated identical rank must be served from the shard's cache.
CACHED=$(jsend POST "$BASE/v1/rank" '{"user":"person0000","target":"TvProgram","limit":3}' '.cached')
CACHED=$(jsend POST "$BASE/v1/rank" '{"user":"person0000","target":"TvProgram","limit":3}' '.cached')
[ "$CACHED" = "true" ] || fail "repeated rank not cached"
# The deprecated GET surface still answers, and says so: Deprecation +
# Sunset headers steer clients to POST /v1/rank.
DEPHDR=$(curl -fsS -D - -o /dev/null "$BASE/v1/rank?user=person0000&target=TvProgram&limit=3")
echo "$DEPHDR" | grep -qi '^Deprecation: true' || fail "GET /v1/rank missing Deprecation header"
echo "$DEPHDR" | grep -qi '^Sunset: ' || fail "GET /v1/rank missing Sunset header"
# Batched rank: one request, several targets/candidate lists, per-item results.
NBATCH=$(jsend POST "$BASE/v1/rank/batch" \
  '{"user":"person0000","items":[{"target":"TvProgram","limit":3},{"candidates":["tv000","tv001"]}]}' \
  '.items | length')
[ "$NBATCH" -eq 2 ] || fail "batch rank returned $NBATCH items, want 2"
NCAND=$(jsend POST "$BASE/v1/rank/batch" \
  '{"user":"person0000","items":[{"target":"TvProgram","limit":3},{"candidates":["tv000","tv001"]}]}' \
  '.items[1].results | length')
[ "$NCAND" -eq 2 ] || fail "batch candidate item returned $NCAND results, want 2"
# Session round-trips through its shard.
jget "$BASE/v1/sessions/person0003" '.measurements | length' >/dev/null || fail "session get"

echo "=== read-only query + stats show $SHARDS shards ==="
ROWS=$(jsend POST "$BASE/v1/query" '{"sql":"SELECT id FROM c_TvProgram"}' '.rows | length')
[ "$ROWS" -ge 1 ] || fail "query returned $ROWS rows"
GOT_SHARDS=$(jget "$BASE/v1/stats" '.shards | length')
[ "$GOT_SHARDS" -eq "$SHARDS" ] || fail "stats report $GOT_SHARDS shards, want $SHARDS"
SESSIONS=$(jget "$BASE/v1/stats" '.sessions')
[ "$SESSIONS" -eq 8 ] || fail "stats report $SESSIONS sessions, want 8"
BWRITES=$(jget "$BASE/v1/stats" '.broadcast.writes')
[ "$BWRITES" -ge 3 ] || fail "broadcast writes = $BWRITES, want >= 3"

echo "=== clean snapshot on SIGTERM ==="
kill -TERM "$PID"
if ! wait "$PID"; then fail "daemon exited non-zero on SIGTERM"; fi
PID=
[ -f "$SNAP/manifest.json" ] || fail "no snapshot manifest after shutdown"
NSNAP=$(ls "$SNAP"/shard-*.snapshot.json | wc -l)
[ "$NSNAP" -eq "$SHARDS" ] || fail "found $NSNAP shard snapshots, want $SHARDS"

echo "=== reboot restores durable state from the snapshot dir ==="
"$BIN" -addr "127.0.0.1:${PORT}" -shards "$SHARDS" -preload none -snapdir "$SNAP" >>"$LOG" 2>&1 &
PID=$!
wait_healthy
RULES=$(jget "$BASE/v1/rules" '.rules | length')
[ "$RULES" -eq 5 ] || fail "restored daemon has $RULES rules, want 5"
ROWS=$(jsend POST "$BASE/v1/query" '{"sql":"SELECT id FROM c_TvProgram"}' '.rows | length')
[ "$ROWS" -ge 1 ] || fail "restored query returned $ROWS rows"
# Sessions are journaled (session WAL beside the snapshots), so they
# survive the restart with their fingerprints intact.
SESSIONS=$(jget "$BASE/v1/stats" '.sessions')
[ "$SESSIONS" -eq 8 ] || fail "restored daemon has $SESSIONS sessions, want 8"
FP=$(jget "$BASE/v1/sessions/person0000" '.fingerprint')
[ -n "$FP" ] || fail "session for person0000 lost its fingerprint across restart"
# The restored stack keeps serving session updates and ranks immediately.
jsend PUT "$BASE/v1/sessions/person0000/context" \
  '{"measurements":[{"concept":"BenchCtx0","prob":1}]}' '.fingerprint' >/dev/null \
  || fail "session set after restore"
N=$(jsend POST "$BASE/v1/rank" '{"user":"person0000","target":"TvProgram","limit":3}' '.results | length')
[ "$N" -ge 1 ] || fail "rank after restore returned $N results"
JAPPENDS=$(jget "$BASE/v1/stats" '.journal.appends')
[ "$JAPPENDS" -ge 1 ] || fail "journal stats missing after restore (appends=$JAPPENDS)"

echo "=== reboot at a different shard count (online reshard) ==="
kill -TERM "$PID"; wait "$PID" || fail "second shutdown not clean"
PID=
"$BIN" -addr "127.0.0.1:${PORT}" -shards 2 -preload none -snapdir "$SNAP" >>"$LOG" 2>&1 &
PID=$!
wait_healthy
GOT_SHARDS=$(jget "$BASE/v1/stats" '.shards | length')
[ "$GOT_SHARDS" -eq 2 ] || fail "resharded daemon reports $GOT_SHARDS shards, want 2"
RULES=$(jget "$BASE/v1/rules" '.rules | length')
[ "$RULES" -eq 5 ] || fail "resharded daemon has $RULES rules, want 5"
# Journal replay routes sessions to their new owning shards on reshard.
SESSIONS=$(jget "$BASE/v1/stats" '.sessions')
[ "$SESSIONS" -eq 8 ] || fail "resharded daemon has $SESSIONS sessions, want 8"
kill -TERM "$PID"; wait "$PID" || fail "final shutdown not clean"
PID=

echo "SMOKE PASS"
