#!/usr/bin/env bash
# Standing-subscription smoke test for cmd/carserved: boots the daemon,
# registers a rank subscription over POST /v1/subscriptions, attaches the
# SSE event stream, and asserts the push contract end to end —
#
#   1. the stream opens with a full snapshot equal to a fresh POST
#      /v1/rank for the same user;
#   2. a context apply (PUT /v1/sessions/{user}/context) pushes a delta
#      whose patch (snapshot + changes - removed) reproduces the fresh
#      post-change ranking bit for bit;
#   3. the subscription is journaled: a kill -9 and reboot over the same
#      durability directory restores it, and the re-attached stream
#      serves the same ranking;
#   4. DELETE /v1/subscriptions/{id} ends the stream with a terminal
#      "unsubscribed" event and empties the registry.
#
# CI runs it; it also works locally:
#
#   go build -o /tmp/carserved ./cmd/carserved
#   scripts/smoke_subscribe.sh /tmp/carserved
#
# Requires: curl, jq.
set -euo pipefail

BIN=${1:?usage: smoke_subscribe.sh <carserved-binary> [port]}
PORT=${2:-18375}
BASE="http://127.0.0.1:${PORT}"
SNAP=$(mktemp -d)
LOG=$(mktemp)
SSEOUT=$(mktemp)
PID=
SSEPID=

cleanup() {
  if [ -n "$SSEPID" ] && kill -0 "$SSEPID" 2>/dev/null; then
    kill "$SSEPID" 2>/dev/null || true
  fi
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  echo "--- daemon log ---"
  cat "$LOG"
  echo "--- SSE stream ---"
  cat "$SSEOUT"
  rm -rf "$SNAP" "$LOG" "$SSEOUT"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon did not become healthy on $BASE"
}

jget() { curl -fsS "$1" | jq -er "$2"; }
jsend() { curl -fsS -X "$1" "$2" -d "$3" | jq -er "$4"; }

# wait_event TYPE — poll the SSE capture until an event of TYPE arrives,
# then print its data JSON (first occurrence).
wait_event() {
  for _ in $(seq 1 100); do
    if grep -q "^event: $1\$" "$SSEOUT"; then
      awk -v want="$1" '/^event: /{t=substr($0,8)} /^data: /{if (t==want){print substr($0,7); exit}}' "$SSEOUT"
      return 0
    fi
    sleep 0.1
  done
  fail "no $1 event arrived on the stream"
}

# scoremap JSON — flatten a rank/snapshot result array to {id: score}.
scoremap() { jq -er '[ .results[] | {(.id): .score} ] | add // {}' <<<"$1"; }

# fresh_scores USER — the fresh full ranking as {id: score}.
fresh_scores() {
  scoremap "$(curl -fsS -X POST "$BASE/v1/rank" -d "{\"user\":\"$1\",\"target\":\"TvProgram\",\"limit\":0}")"
}

echo "=== boot: 2 shards, journal, preload small ==="
"$BIN" -addr "127.0.0.1:${PORT}" -shards 2 -preload small -rules 4 -snapdir "$SNAP" >>"$LOG" 2>&1 &
PID=$!
wait_healthy

USER=person0000
jsend PUT "$BASE/v1/sessions/$USER/context" \
  '{"measurements":[{"concept":"BenchCtx0","prob":1}]}' '.fingerprint' >/dev/null \
  || fail "session set"

echo "=== subscribe + attach the event stream ==="
SID=$(jsend POST "$BASE/v1/subscriptions" "{\"user\":\"$USER\",\"target\":\"TvProgram\"}" '.id')
[ -n "$SID" ] || fail "subscription create returned no id"
NSUBS=$(jget "$BASE/v1/subscriptions" '.subscriptions | length')
[ "$NSUBS" -eq 1 ] || fail "registry lists $NSUBS subscriptions, want 1"
GOTUSER=$(jget "$BASE/v1/subscriptions/$SID" '.user')
[ "$GOTUSER" = "$USER" ] || fail "subscription owner $GOTUSER, want $USER"

curl -sN "$BASE/v1/subscriptions/$SID/events" >"$SSEOUT" &
SSEPID=$!

SNAPDATA=$(wait_event snapshot)
SNAPSCORES=$(scoremap "$SNAPDATA")
WANT=$(fresh_scores "$USER")
jq -en --argjson a "$SNAPSCORES" --argjson b "$WANT" '$a == $b' >/dev/null \
  || fail "opening snapshot diverges from a fresh rank"
N=$(jq -er 'length' <<<"$SNAPSCORES")
[ "$N" -ge 1 ] || fail "snapshot is empty"
echo "snapshot: $N scores, matches fresh rank"

echo "=== context apply pushes a delta that patches to the fresh ranking ==="
jsend PUT "$BASE/v1/sessions/$USER/context" \
  '{"measurements":[{"concept":"BenchCtx1","prob":1}]}' '.fingerprint' >/dev/null \
  || fail "context change"
DELTA=$(wait_event delta)
NCH=$(jq -er '.changes | length' <<<"$DELTA")
[ "$NCH" -ge 1 ] || fail "delta carries no changes after a context flip"
PATCHED=$(jq -en --argjson s "$SNAPSCORES" --argjson d "$DELTA" '
  ($s + ([ $d.changes[]? | {(.id): .score} ] | add // {}))
  | with_entries(select(.key as $k | (($d.removed // []) | index($k)) | not))')
WANT=$(fresh_scores "$USER")
jq -en --argjson a "$PATCHED" --argjson b "$WANT" '$a == $b' >/dev/null \
  || fail "snapshot + delta does not reproduce the fresh post-change ranking"
echo "delta: $NCH changes, patch matches fresh rank"

ACTIVE=$(jget "$BASE/v1/stats" '.subscriptions.active')
[ "$ACTIVE" -eq 1 ] || fail "stats report $ACTIVE active subscriptions, want 1"
curl -fsS "$BASE/metrics" | grep -q '^carserve_subscriptions_active 1' \
  || fail "/metrics missing carserve_subscriptions_active 1"

echo "=== kill -9: the journaled subscription survives the crash ==="
kill "$SSEPID" 2>/dev/null || true; wait "$SSEPID" 2>/dev/null || true; SSEPID=
kill -9 "$PID"; wait "$PID" 2>/dev/null || true; PID=
"$BIN" -addr "127.0.0.1:${PORT}" -shards 2 -preload none -snapdir "$SNAP" >>"$LOG" 2>&1 &
PID=$!
wait_healthy
RECSUBS=$(jget "$BASE/v1/stats" '.recovery.subscribes')
[ "$RECSUBS" -ge 1 ] || fail "recovery replayed $RECSUBS subscribe records, want >= 1"
NSUBS=$(jget "$BASE/v1/subscriptions" '.subscriptions | length')
[ "$NSUBS" -eq 1 ] || fail "restored daemon lists $NSUBS subscriptions, want 1"
GOTID=$(jget "$BASE/v1/subscriptions" '.subscriptions[0].id')
[ "$GOTID" = "$SID" ] || fail "restored subscription id $GOTID, want $SID"

: >"$SSEOUT"
curl -sN "$BASE/v1/subscriptions/$SID/events" >"$SSEOUT" &
SSEPID=$!
SNAPDATA=$(wait_event snapshot)
SNAPSCORES=$(scoremap "$SNAPDATA")
WANT=$(fresh_scores "$USER")
jq -en --argjson a "$SNAPSCORES" --argjson b "$WANT" '$a == $b' >/dev/null \
  || fail "post-recovery snapshot diverges from a fresh rank"
echo "recovered stream snapshot matches fresh rank"

echo "=== unsubscribe ends the stream ==="
STATUS=$(jsend DELETE "$BASE/v1/subscriptions/$SID" '' '.status')
[ "$STATUS" = "unsubscribed" ] || fail "delete returned $STATUS"
wait_event unsubscribed >/dev/null
NSUBS=$(jget "$BASE/v1/subscriptions" '.subscriptions | length')
[ "$NSUBS" -eq 0 ] || fail "registry still lists $NSUBS subscriptions after delete"
CODE=$(curl -sS -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v1/subscriptions/$SID")
[ "$CODE" = "404" ] || fail "second delete returned $CODE, want 404"

kill -TERM "$PID"; wait "$PID" || fail "shutdown not clean"
PID=
echo "SMOKE PASS"
