#!/usr/bin/env bash
# Chaos smoke test for cmd/carserved: the CI proof that the failure
# domains of DESIGN.md §3.9 hold on a live daemon. One 3-shard daemon is
# booted with the fault-injection surface armed (-chaos) and driven
# through three failure stories without ever being restarted:
#
#   1. Dead disk (carbench -exp chaos): journal writes and fsyncs fail,
#      one rank request panics. Reads must keep serving from memory,
#      writes must shed 503 + Retry-After (never a silent ack), and when
#      the faults clear the background probe re-arms the WAL.
#   2. Wedged shard: broadcast applies on shard 1 panic until the
#      quarantine threshold fences it off. Reads and writes keep
#      working on the healthy replicas; clearing the fault lets the
#      background repair replay the missed WAL range — including the
#      failure that happened *before* the threshold crossed — and
#      readmit the shard.
#   3. Bit-identity: after all of the above, every user's fingerprint
#      and full rank-score array must equal a fault-free daemon that
#      applied the same writes — the faults may cost availability,
#      never consistency.
#
# The daemon must be alive after every phase and still drain cleanly on
# SIGTERM at the end.
#
#   go build -o /tmp/carserved ./cmd/carserved
#   go build -o /tmp/carbench ./cmd/carbench
#   scripts/smoke_chaos.sh /tmp/carserved /tmp/carbench
#
# Requires: curl, jq.
set -euo pipefail

BIN=${1:?usage: smoke_chaos.sh <carserved-binary> <carbench-binary> [port]}
BENCH=${2:?usage: smoke_chaos.sh <carserved-binary> <carbench-binary> [port]}
PORT=${3:-18374}
REFPORT=$((PORT + 1))
BASE="http://127.0.0.1:${PORT}"
REFBASE="http://127.0.0.1:${REFPORT}"
SNAP=$(mktemp -d)
REFSNAP=$(mktemp -d)
LOG=$(mktemp)
STATE=$(mktemp -d)
NUSERS=8
PID=
REFPID=

cleanup() {
  for p in "$PID" "$REFPID"; do
    if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
      kill -9 "$p" 2>/dev/null || true
    fi
  done
  echo "--- daemon log ---"
  cat "$LOG"
  rm -rf "$SNAP" "$REFSNAP" "$LOG" "$STATE"
}
trap cleanup EXIT

fail() { echo "CHAOS FAIL: $*" >&2; exit 1; }

alive() { kill -0 "$PID" 2>/dev/null || fail "daemon died: $1"; }

wait_up() { # wait_up BASEURL
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon did not come up on $1"
}

jget() { curl -fsS "$1" | jq -er "$2"; }
jsend() { curl -fsS -X "$1" "$2" -d "$3" | jq -er "$4"; }

# set_sessions BASEURL — identical per-user contexts on any daemon, so
# score arrays are comparable bit-for-bit.
set_sessions() {
  for i in $(seq 0 $((NUSERS - 1))); do
    u=$(printf 'user%03d' "$i")
    p=$(awk -v i="$i" 'BEGIN{printf "%.2f", 0.5 + (i % 5) / 10.0}')
    jsend PUT "$1/v1/sessions/$u/context" \
      "{\"measurements\":[{\"concept\":\"BenchCtx0\",\"prob\":$p},{\"concept\":\"BenchCtx1\",\"prob\":0.7}]}" \
      '.fingerprint' >/dev/null || fail "session set for $u on $1"
  done
}

# mutate BASEURL EXPECT_FIRST — the write sequence both daemons must end
# up with. The first assert is the one that fails below the quarantine
# threshold on the chaos daemon (EXPECT_FIRST=fail): the client sees an
# error but the healthy shards hold it durably, so repair must replay it.
mutate() {
  local url=$1 expect_first=$2 code
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$url/v1/assert" \
    -d '{"concepts":[{"concept":"TvProgram","id":"chaostv1","prob":1}],"roles":[{"role":"hasGenre","src":"chaostv1","dst":"genre00","prob":0.9}]}')
  if [ "$expect_first" = fail ]; then
    [ "$code" != 200 ] || fail "below-threshold broadcast failure did not surface"
  else
    [ "$code" = 200 ] || fail "reference assert chaostv1 failed ($code)"
  fi
  jsend POST "$url/v1/assert" \
    '{"concepts":[{"concept":"TvProgram","id":"chaostv2","prob":1}],"roles":[{"role":"hasGenre","src":"chaostv2","dst":"genre00","prob":0.8}]}' \
    '.epoch' >/dev/null || fail "assert chaostv2 on $url"
  jsend POST "$url/v1/rules" \
    '{"rules":["RULE chaosrule WHEN BenchCtx1 PREFER TvProgram AND EXISTS hasGenre.{genre00} WITH 0.9"]}' \
    '.epoch' >/dev/null || fail "rule add on $url"
}

# snapshot_state BASEURL PREFIX — fingerprints + full score arrays.
snapshot_state() {
  for i in $(seq 0 $((NUSERS - 1))); do
    u=$(printf 'user%03d' "$i")
    jget "$1/v1/sessions/$u" '.fingerprint' >"$STATE/$2.fp.$u"
    jsend POST "$1/v1/rank" "{\"user\":\"$u\",\"target\":\"TvProgram\",\"limit\":0}" '.results' >"$STATE/$2.scores.$u"
  done
  jget "$1/v1/rules" '.rules | sort_by(.name)' >"$STATE/$2.rules"
}

echo "=== boot: 3 shards, journal, chaos surface, quarantine threshold 2 ==="
"$BIN" -addr "127.0.0.1:${PORT}" -shards 3 -preload small -rules 4 -snapdir "$SNAP" \
  -chaos -quarantine-after 2 -probe-interval 200ms -drain-timeout 5s >>"$LOG" 2>&1 &
PID=$!
wait_up "$BASE"
grep -q "chaos surface armed" "$LOG" || fail "no chaos boot log line"
set_sessions "$BASE"

echo "=== phase 1: dead disk + rank panic (carbench -exp chaos) ==="
BENCHOUT=$(mktemp)
"$BENCH" -exp chaos -target "$BASE" -clients 4 -users 4 -benchdur 2s | tee "$BENCHOUT" \
  || { rm -f "$BENCHOUT"; fail "carbench -exp chaos failed"; }
grep -q 'CHAOS phase=fault' "$BENCHOUT" || { rm -f "$BENCHOUT"; fail "no fault-phase summary line"; }
grep 'CHAOS phase=fault' "$BENCHOUT" | grep -q 'shed_no_retry_after=0' \
  || { rm -f "$BENCHOUT"; fail "shed writes missing Retry-After"; }
rm -f "$BENCHOUT"
alive "after disk-fault phase"
PANICS=$(jget "$BASE/v1/stats" '.health.panics // 0')
[ "$PANICS" -ge 1 ] || fail "injected rank panic not counted (panics=$PANICS)"

echo "=== phase 2: wedge shard 1 (broadcast panics) until quarantined ==="
curl -fsS -X POST "$BASE/v1/chaos" \
  -d '{"faults":[{"point":"broadcast.apply","shard":1,"panic":"chaos-shard-wedge"}]}' >/dev/null \
  || fail "arming broadcast panic"
mutate "$BASE" fail
STATUS=$(jget "$BASE/healthz" '.status')
[ "$STATUS" = "quarantined" ] || fail "healthz status=$STATUS, want quarantined"
jget "$BASE/healthz" '.shards[1].state' | grep -q quarantined || fail "shard 1 not quarantined in /healthz"
QUARS=$(jget "$BASE/v1/stats" '.health.quarantines')
[ "$QUARS" -ge 1 ] || fail "quarantines=$QUARS, want >=1"
# Reads for every user — including those homed on shard 1 — keep working.
for i in $(seq 0 $((NUSERS - 1))); do
  u=$(printf 'user%03d' "$i")
  curl -fsS -X POST "$BASE/v1/rank" -d "{\"user\":\"$u\",\"target\":\"TvProgram\",\"limit\":3}" >/dev/null \
    || fail "rank for $u failed while shard 1 quarantined"
done
# Writes keep landing on the healthy replicas (absorbed, not errored).
jsend POST "$BASE/v1/exec" '{"sql":"CREATE TABLE chaos_t (n INT)"}' '.epoch' >/dev/null \
  || fail "exec while quarantined"
alive "while shard 1 quarantined"

echo "=== phase 2b: clear fault; repair replays the WAL and readmits ==="
curl -fsS -X DELETE "$BASE/v1/chaos" >/dev/null || fail "clearing faults"
for _ in $(seq 1 100); do
  STATUS=$(jget "$BASE/healthz" '.status')
  [ "$STATUS" = "ok" ] && break
  sleep 0.1
done
[ "$STATUS" = "ok" ] || fail "daemon still $STATUS after clearing faults (repair never ran)"
REPAIRS=$(jget "$BASE/v1/stats" '.health.repairs')
[ "$REPAIRS" -ge 1 ] || fail "repairs=$REPAIRS, want >=1"
grep -q "repaired" "$LOG" || true # informational; /v1/stats is the contract
snapshot_state "$BASE" post
alive "after repair"

echo "=== phase 3: bit-identity against a fault-free daemon ==="
"$BIN" -addr "127.0.0.1:${REFPORT}" -shards 3 -preload small -rules 4 -snapdir "$REFSNAP" >>"$LOG" 2>&1 &
REFPID=$!
wait_up "$REFBASE"
set_sessions "$REFBASE"
mutate "$REFBASE" ok
jsend POST "$REFBASE/v1/exec" '{"sql":"CREATE TABLE chaos_t (n INT)"}' '.epoch' >/dev/null \
  || fail "reference exec"
snapshot_state "$REFBASE" ref
for i in $(seq 0 $((NUSERS - 1))); do
  u=$(printf 'user%03d' "$i")
  cmp -s "$STATE/post.fp.$u" "$STATE/ref.fp.$u" \
    || fail "fingerprint for $u diverged from the fault-free run"
  cmp -s "$STATE/post.scores.$u" "$STATE/ref.scores.$u" \
    || fail "rank scores for $u diverged from the fault-free run (repair incomplete?)"
done
cmp -s "$STATE/post.rules" "$STATE/ref.rules" || fail "rule set diverged from the fault-free run"
kill -TERM "$REFPID" && wait "$REFPID" 2>/dev/null || true
REFPID=

echo "=== drain: SIGTERM must still shut down cleanly after all faults ==="
kill -TERM "$PID"
wait "$PID" || fail "shutdown not clean"
PID=
grep -q "draining" "$LOG" || fail "no drain log line on SIGTERM"

echo "CHAOS PASS"
