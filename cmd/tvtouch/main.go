// Command tvtouch is an interactive demo of the paper's motivating
// application (§1): a context-aware media player that suggests programs
// based on the user's current situation. Flags set the simulated clock,
// room and activity; the tool prints the ranked suggestion list with the
// per-rule explanation trace.
//
// Usage:
//
//	tvtouch [-when "2026-06-15T07:30"] [-room kitchen|living|office]
//	        [-activity cooking|relaxing|working] [-accuracy 0.8] [-top 5] [-explain]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	contextrank "repro"
	"repro/internal/situation"
)

var roomConcept = map[string]string{
	"kitchen": "InKitchen",
	"living":  "InLivingRoom",
	"office":  "InOffice",
}

var activityConcept = map[string]string{
	"cooking":  "Cooking",
	"relaxing": "Relaxing",
	"working":  "Working",
}

func main() {
	var (
		when     = flag.String("when", "2026-06-15T07:30", "simulated local time, format 2006-01-02T15:04")
		room     = flag.String("room", "kitchen", "true room: kitchen, living, office")
		activity = flag.String("activity", "cooking", "true activity: cooking, relaxing, working")
		accuracy = flag.Float64("accuracy", 0.8, "location/activity sensor accuracy in (0,1]")
		top      = flag.Int("top", 5, "number of suggestions")
		explain  = flag.Bool("explain", true, "print per-rule explanations for the top pick")
	)
	flag.Parse()

	now, err := time.ParseInLocation("2006-01-02T15:04", *when, time.Local)
	if err != nil {
		log.Fatalf("tvtouch: bad -when: %v", err)
	}
	trueRoom, ok := roomConcept[*room]
	if !ok {
		log.Fatalf("tvtouch: unknown room %q", *room)
	}
	trueActivity, ok := activityConcept[*activity]
	if !ok {
		log.Fatalf("tvtouch: unknown activity %q", *activity)
	}

	sys := buildGuide()

	ctx, err := contextrank.SenseContext("peter",
		situation.ClockSensor{Now: now},
		situation.LocationSensor{
			Rooms:    []string{"InKitchen", "InLivingRoom", "InOffice"},
			TrueRoom: trueRoom, Accuracy: *accuracy,
		},
		situation.ActivitySensor{
			Activities:   []string{"Cooking", "Relaxing", "Working"},
			TrueActivity: trueActivity, Confidence: *accuracy,
		},
	)
	check(err)
	check(sys.SetContext(ctx))

	results, err := sys.RankWith("peter", "TvProgram",
		contextrank.RankOptions{Limit: *top, Explain: *explain})
	check(err)

	fmt.Printf("TVTouch — %s, %s, %s (sensor accuracy %.0f%%)\n",
		now.Format("Mon 15:04"), *room, *activity, *accuracy*100)
	fmt.Println("suggested programs:")
	for i, r := range results {
		fmt.Printf("%2d. %-16s %.4f\n", i+1, r.ID, r.Score)
	}
	if *explain && len(results) > 0 {
		fmt.Println("\ntop pick explained:")
		for _, c := range results[0].Explanation.Rules {
			fmt.Println("  - " + c.String())
		}
	}
}

func buildGuide() *contextrank.System {
	sys := contextrank.NewSystem()
	check(sys.DeclareConcept("TvProgram"))
	check(sys.DeclareRole("hasGenre", "hasSubject"))
	programs := []struct {
		id      string
		genre   string
		gProb   float64
		subject string
		sProb   float64
	}{
		{"traffic_7am", "", 0, "Traffic", 1.0},
		{"weather_7am", "", 0, "Weather", 1.0},
		{"morning_news", "", 0, "News", 0.95},
		{"evening_news", "", 0, "News", 0.95},
		{"oprah_rerun", "HUMAN-INTEREST", 0.85, "", 0},
		{"cooking_show", "LIFESTYLE", 0.9, "", 0},
		{"nature_doc", "DOCUMENTARY", 1.0, "", 0},
		{"late_movie", "THRILLER", 1.0, "", 0},
	}
	for _, p := range programs {
		check(sys.AssertConcept("TvProgram", p.id, 1))
		if p.genre != "" {
			check(sys.AssertRole("hasGenre", p.id, p.genre, p.gProb))
		}
		if p.subject != "" {
			check(sys.AssertRole("hasSubject", p.id, p.subject, p.sProb))
		}
	}
	for _, rule := range []string{
		"RULE traffic WHEN Workday AND Morning PREFER TvProgram AND EXISTS hasSubject.{Traffic} WITH 0.8",
		"RULE weather WHEN Workday AND Morning PREFER TvProgram AND EXISTS hasSubject.{Weather} WITH 0.6",
		"RULE news WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9",
		"RULE weekend WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8",
		"RULE kitchen WHEN InKitchen PREFER TvProgram AND EXISTS hasGenre.{LIFESTYLE} WITH 0.7",
		"RULE evening WHEN Evening AND Relaxing PREFER TvProgram AND EXISTS hasGenre.{THRILLER} WITH 0.75",
	} {
		if _, err := sys.AddRule(rule); err != nil {
			log.Fatal(err)
		}
	}
	return sys
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvtouch:", err)
		os.Exit(1)
	}
}
