// Command carserved is the context-aware ranking daemon: it wraps a
// contextrank.System in the internal/serve layer (locking facade, per-user
// sessions, epoch-invalidated rank cache) and exposes the HTTP/JSON API
// documented on serve.Handler.
//
// Usage:
//
//	carserved [-addr :8372] [-cache 1024] [-preload none|small|paper] [-rules 4]
//
// With -preload the daemon starts already loaded with the paper's §5
// TV-watcher database (small = scaled-down test sizes, paper = ~11k
// tuples) and the scalability rule series, so a load generator — e.g.
// `carbench -exp serve` — can rank immediately:
//
//	carserved -preload small -rules 4 &
//	curl -X PUT localhost:8372/v1/sessions/person0000/context \
//	     -d '{"measurements":[{"concept":"BenchCtx0","prob":1}]}'
//	curl 'localhost:8372/v1/rank?user=person0000&target=TvProgram&limit=3'
//
// Session updates whose measurements carry uncertainty (prob < 1, or
// exclusive groups) declare fresh basic events on every apply; each apply
// also retires the previous snapshot's events (event.Space.Retire), so the
// event space — observable as "events" on /v1/stats — stays bounded by the
// live session vocabulary under arbitrary churn.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8372", "listen address")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "rank cache capacity in entries (-1 disables caching)")
		preload = flag.String("preload", "none", "preload dataset: none, small or paper")
		rules   = flag.Int("rules", 4, "preference rules to register with -preload")
	)
	flag.Parse()

	sys := contextrank.NewSystem()
	if err := preloadDataset(sys, *preload, *rules); err != nil {
		log.Fatalf("carserved: %v", err)
	}

	srv := serve.NewServer(sys, serve.Options{CacheSize: *cache})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(srv),
		ReadHeaderTimeout: 5 * time.Second,
	}

	go func() {
		log.Printf("carserved: listening on %s (preload=%s cache=%d)", *addr, *preload, *cache)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("carserved: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("carserved: shutdown: %v", err)
	}
	st := srv.Stats()
	log.Printf("carserved: served %d rank requests, cache %s, epoch %d",
		st.Requests, st.Cache, st.Epoch)
}

// preloadDataset fills the system with the §5 TV-watcher database and the
// scalability rule series. The BenchCtx concepts the rules reference are
// declared up front so rankings work before any session asserts them.
func preloadDataset(sys *contextrank.System, preload string, k int) error {
	var spec workload.Spec
	switch preload {
	case "none":
		return nil
	case "small":
		spec = workload.SmallSpec()
	case "paper":
		spec = workload.DefaultSpec()
	default:
		return fmt.Errorf("unknown -preload %q (want none, small or paper)", preload)
	}
	d, err := workload.LoadBench(sys.Loader(), sys.Rules(), spec, k)
	if err != nil {
		return err
	}
	log.Printf("carserved: preloaded %d tuples (%d persons, %d programs), %d rules",
		d.TupleCount, spec.Persons, spec.Programs, k)
	return nil
}
