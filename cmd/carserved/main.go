// Command carserved is the context-aware ranking daemon: it wraps N shard
// replicas of a contextrank.System in the internal/serve + serve/shard
// layers (per-shard locking facade, per-user sessions, epoch-invalidated
// rank caches, consistent-hash routing) and exposes the HTTP/JSON API
// documented on serve.Handler.
//
// Usage:
//
//	carserved [-addr :8372] [-shards 4] [-cache 1024] [-snapdir dir]
//	          [-checkpoint-interval 5m] [-checkpoint-bytes 67108864]
//	          [-preload none|small|paper] [-rules 4]
//	          [-metrics] [-ratelimit R] [-burst B]
//	          [-maxinflight N] [-maxqueue Q] [-accesslog path|-]
//	          [-degraded-on-disk-error] [-quarantine-after N]
//	          [-probe-interval 1s] [-drain-timeout 10s]
//	          [-request-timeout 30s] [-chaos] [-chaos-seed S]
//
// Observability and admission control (serve.NewHandlerWith): -metrics
// serves Prometheus text exposition at GET /metrics (per-shard QPS, rank
// latency histograms, cache hit rates, journal group-commit sizes, shed
// counts); -accesslog emits one JSON line per request with a request ID
// (X-Request-ID honored and echoed); -ratelimit/-burst bound each user's
// request rate and -maxinflight/-maxqueue bound global concurrency —
// excess load is shed with 429 + Retry-After instead of queueing without
// bound.
//
// With -shards N every per-user operation (session applies, ranks) is
// served by the user's shard alone — one user's context apply never
// blocks another user's rank on a different shard — while vocabulary
// writes (declare/assert/rules/exec) are broadcast to all shards.
//
// With -snapdir the daemon is crash-safe, not merely restartable:
//
//   - Every acknowledged mutation — session update/drop, declare, assert,
//     rule add/remove, SQL exec — rides a per-shard full-state
//     write-ahead journal (internal/serve/journal): the record is fsynced
//     (group commit) before the HTTP response, in apply order.
//   - A background checkpointer (-checkpoint-interval /
//     -checkpoint-bytes) periodically snapshots every shard and truncates
//     the WALs down to live sessions, so the journal stays bounded and
//     recovery stays fast. SIGTERM/SIGINT takes a final checkpoint; when
//     the directory holds no snapshot yet, one is also taken at boot
//     right after preloading.
//   - Boot restores the latest snapshot and replays the WAL suffix on
//     top, re-applying each record through the ordinary serving path so
//     context fingerprints, ctx_* events and rank scores come back
//     bit-identical. The boot log reports how many session and
//     vocabulary/DML records were recovered.
//
// On kill -9, OOM or node loss the next boot therefore recovers to the
// exact acknowledged state: snapshot + WAL suffix covers sessions and
// durable data alike, to a single consistent point. (Earlier versions
// journaled only sessions; durable writes between snapshots were lost on
// crash.)
// The shard count may change between runs: broadcast replication makes
// any shard's snapshot a full copy of the durable state, so a reboot with
// a different -shards value is an online reshard — journal replay routes
// every session to its new owning shard.
//
// With -preload the daemon starts already loaded with the paper's §5
// TV-watcher database (small = scaled-down test sizes, paper = ~11k
// tuples) and the scalability rule series, so a load generator — e.g.
// `carbench -exp serve` — can rank immediately:
//
//	carserved -preload small -rules 4 -shards 4 &
//	curl -X PUT localhost:8372/v1/sessions/person0000/context \
//	     -d '{"measurements":[{"concept":"BenchCtx0","prob":1}]}'
//	curl 'localhost:8372/v1/rank?user=person0000&target=TvProgram&limit=3'
//
// Session updates whose measurements carry uncertainty (prob < 1, or
// exclusive groups) declare fresh basic events on every apply; each apply
// also retires the previous snapshot's events (event.Space.Retire), so the
// event space — observable as "events" on /v1/stats, summed across shards
// — stays bounded by the live session vocabulary under arbitrary churn.
//
// The daemon degrades instead of dying (DESIGN.md §3.9). On a persistent
// journal disk error it enters read-only degraded mode
// (-degraded-on-disk-error, default on): mutations shed 503 + Retry-After
// while ranks keep serving from memory, and a background probe
// (-probe-interval) re-arms the WAL when the disk recovers. With
// -quarantine-after N, a shard whose broadcast applies fail or panic N
// times consecutively is fenced off, its users rerouted to healthy
// replicas, and background repair replays the missed writes from a
// healthy replica's WAL before readmission. Panics in requests or shard
// applies are recovered and counted (carserve_panics_total). SIGTERM
// drains new traffic for up to -drain-timeout before the shutdown
// checkpoint; -request-timeout bounds every request end-to-end. /healthz
// reports the aggregate and per-shard failure-domain state (always HTTP
// 200 — a degraded daemon is alive, and restarting it would destroy the
// in-memory state repair needs). -chaos arms the /v1/chaos
// fault-injection surface (testing only; see carbench -exp chaos and
// scripts/smoke_chaos.sh).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	contextrank "repro"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/serve/journal"
	"repro/internal/serve/metrics"
	"repro/internal/serve/shard"
	"repro/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8372", "listen address")
		shards  = flag.Int("shards", 1, "shard replicas; per-user traffic is routed by consistent hash of the user ID")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "per-shard rank cache capacity in entries (-1 disables caching)")
		snapdir = flag.String("snapdir", "", "durability directory: per-shard snapshots (restored on boot, saved at first boot, by the background checkpointer and on shutdown) plus the full-state write-ahead journal (replayed on boot) — makes the daemon crash-safe")

		ckptInterval = flag.Duration("checkpoint-interval", 5*time.Minute, "background checkpoint period with -snapdir: snapshot all shards and truncate the WALs (0 disables the time trigger)")
		ckptBytes    = flag.Int64("checkpoint-bytes", 64<<20, "background checkpoint size trigger with -snapdir: checkpoint once the WALs hold this many bytes of vocabulary records, summed across shards (0 disables the size trigger)")
		preload      = flag.String("preload", "none", "preload dataset: none, small or paper (ignored when restoring from -snapdir)")
		rules        = flag.Int("rules", 4, "preference rules to register with -preload")

		metricsOn   = flag.Bool("metrics", true, "serve Prometheus text exposition at GET /metrics")
		ratelimit   = flag.Float64("ratelimit", 0, "per-user sustained request budget in req/s on rank and session endpoints (0 disables)")
		burst       = flag.Float64("burst", 0, "per-user token-bucket depth (0 means max(1, -ratelimit))")
		maxinflight = flag.Int("maxinflight", 0, "concurrently executing requests before new ones queue (0 disables the gate)")
		maxqueue    = flag.Int("maxqueue", 0, "requests allowed to wait for an in-flight slot; beyond it requests are shed with 429 + Retry-After")
		accesslog   = flag.String("accesslog", "", "JSON-lines request log destination: a file path, or '-' for stderr (empty disables)")

		degradeOnErr  = flag.Bool("degraded-on-disk-error", true, "on a persistent journal write/fsync error, enter read-only degraded mode (mutations 503 + Retry-After, ranks keep serving) instead of failing every mutation until restart; a background probe re-arms the WAL when the disk recovers")
		quarAfter     = flag.Int("quarantine-after", 0, "quarantine a shard after this many consecutive broadcast apply failures (or panics): its users are rerouted to healthy replicas and background repair replays the missed writes from the WAL before readmission (0 disables)")
		probeInterval = flag.Duration("probe-interval", time.Second, "how often the background health probe retries degraded disks and quarantined-shard repair")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM, how long to wait for in-flight requests to finish (new requests get 503 + Connection: close immediately) before the shutdown checkpoint")
		reqTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-request deadline, admission queueing included; propagated via the request context and connection deadlines (0 disables)")
		chaosOn       = flag.Bool("chaos", false, "arm the fault-injection surface: POST/GET/DELETE /v1/chaos manage runtime faults in the journal filesystem, broadcast and rank paths (testing only — armed faults are real outages)")
		chaosSeed     = flag.Int64("chaos-seed", 1, "PRNG seed for rate-triggered chaos faults (with -chaos)")
	)
	flag.Parse()

	build, source, restored, err := buildFunc(*snapdir, *preload, *rules)
	if err != nil {
		log.Fatalf("carserved: %v", err)
	}
	coord, err := shard.New(*shards, build, serve.Options{CacheSize: *cache, DegradeOnDiskError: *degradeOnErr})
	if err != nil {
		log.Fatalf("carserved: %v", err)
	}
	coord.SetQuarantineAfter(*quarAfter)

	var chaos *faultinject.Injector
	jopts := journal.Options{}
	if *chaosOn {
		chaos = faultinject.New(*chaosSeed)
		coord.SetFaultInjector(chaos)
		jopts.FS = faultinject.FS(chaos, nil)
		log.Printf("carserved: chaos surface armed at /v1/chaos (seed=%d)", *chaosSeed)
	}

	if *snapdir != "" {
		// Full-state durability: journal from here on, replaying whatever
		// a previous incarnation journaled (session records are routed, so
		// a changed -shards value reassigns users correctly; vocabulary
		// records are re-broadcast and deduplicated by broadcast id).
		rs, err := coord.Recover(*snapdir, jopts)
		if err != nil {
			log.Fatalf("carserved: recovering journal: %v", err)
		}
		if rs.Records > 0 || rs.TornFiles > 0 || rs.BadFiles > 0 {
			log.Printf("carserved: journal: replayed %d records from %d file(s) -> %d live users (%d drops, %d failed-and-preserved, %d torn tails, %d unreadable files)",
				rs.Records, rs.Files, rs.Users, rs.Drops, rs.Failed, rs.TornFiles, rs.BadFiles)
			log.Printf("carserved: journal: vocabulary/DML replay: %d applied (%d declares, %d asserts, %d rule adds, %d rule removes, %d execs), %d covered by checkpoint, %d duplicate broadcasts",
				rs.VocabApplied(), rs.Declares, rs.Asserts, rs.RuleAdds, rs.RuleRemoves, rs.Execs, rs.SkippedCheckpoint, rs.SkippedDuplicate)
			if rs.FingerprintMismatches > 0 {
				log.Printf("carserved: journal: %d fingerprint mismatches (fingerprint function changed between versions?)", rs.FingerprintMismatches)
			}
		} else {
			log.Printf("carserved: journal armed in %s (nothing to replay)", *snapdir)
		}
		if !restored {
			// No snapshot existed, so the durable base so far lives only
			// in memory (preload). Persist it now: a crash at any later
			// instant then recovers to this base plus the journaled
			// sessions, instead of losing everything because no SIGTERM
			// ever ran.
			if err := coord.SaveSnapshots(*snapdir); err != nil {
				log.Fatalf("carserved: saving boot snapshot: %v", err)
			}
			log.Printf("carserved: saved boot snapshot (%d shard(s)) to %s", coord.N(), *snapdir)
		}
	}

	var stopCkpt func()
	if *snapdir != "" && (*ckptInterval > 0 || *ckptBytes > 0) {
		stopCkpt = coord.StartCheckpointer(*snapdir, shard.CheckpointerOptions{
			Interval: *ckptInterval,
			Bytes:    *ckptBytes,
			OnError:  func(err error) { log.Printf("carserved: background checkpoint: %v", err) },
		})
		log.Printf("carserved: background checkpointer armed (interval=%s bytes=%d)", *ckptInterval, *ckptBytes)
	}

	var stopProbe func()
	if *degradeOnErr || *quarAfter > 0 {
		stopProbe = coord.StartHealthProbe(*probeInterval, func(line string) {
			log.Printf("carserved: %s", line)
		})
	}

	drain := &serve.DrainGate{}
	hopts := serve.HandlerOptions{
		Admission: serve.NewAdmission(serve.AdmissionOptions{
			MaxInFlight:  *maxinflight,
			MaxQueue:     *maxqueue,
			PerUserRate:  *ratelimit,
			PerUserBurst: *burst,
		}),
		Drain:          drain,
		RequestTimeout: *reqTimeout,
		Chaos:          chaos,
	}
	if *metricsOn {
		hopts.Metrics = metrics.NewRegistry()
	}
	var logFile *os.File
	switch *accesslog {
	case "":
	case "-":
		hopts.AccessLog = os.Stderr
	default:
		logFile, err = os.OpenFile(*accesslog, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("carserved: opening access log: %v", err)
		}
		defer logFile.Close()
		hopts.AccessLog = logFile
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandlerWith(coord, hopts),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	go func() {
		log.Printf("carserved: listening on %s (shards=%d %s cache=%d metrics=%v ratelimit=%g maxinflight=%d maxqueue=%d)",
			*addr, *shards, source, *cache, *metricsOn, *ratelimit, *maxinflight, *maxqueue)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("carserved: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Drain first: new API requests get 503 + Connection: close the
	// instant the signal lands, then Shutdown waits (bounded) for
	// in-flight ones — so the shutdown checkpoint below runs with no
	// request mid-apply.
	drain.Start()
	log.Printf("carserved: draining (timeout %s)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("carserved: shutdown: %v", err)
	}
	if stopProbe != nil {
		stopProbe()
	}
	if stopCkpt != nil {
		// Stopped before the final save so the shutdown checkpoint cannot
		// race a background one.
		stopCkpt()
	}
	if *snapdir != "" {
		if err := coord.SaveSnapshots(*snapdir); err != nil {
			// Not fatal: a quarantined shard refuses the checkpoint, and
			// the journal already holds everything — the next boot replays
			// it on top of the previous snapshot.
			log.Printf("carserved: saving snapshots: %v (journal retains full state)", err)
		} else {
			log.Printf("carserved: saved %d shard snapshot(s) to %s", coord.N(), *snapdir)
		}
		// Closed after the snapshot: the journal outlives the dump, so a
		// crash during SaveSnapshots still recovers sessions on reboot.
		if err := coord.CloseJournals(); err != nil {
			log.Printf("carserved: closing session journals: %v", err)
		}
	}
	st := coord.Stats()
	log.Printf("carserved: served %d rank requests across %d shards, cache %s, epoch %d",
		st.Requests, coord.N(), st.Cache, st.Epoch)
	for i, sh := range st.Shards {
		log.Printf("carserved: shard %d: %d requests, %d sessions, %d events, epoch %d",
			i, sh.Requests, sh.Sessions, sh.Events, sh.Epoch)
	}
}

// buildFunc picks the per-shard System source: a snapshot restore when
// snapdir holds one, the preloaded dataset otherwise. source describes the
// choice for the startup log line; restored reports whether a snapshot
// was found (when false and snapdir is set, main persists a boot
// snapshot so crashes do not depend on a clean shutdown ever happening).
func buildFunc(snapdir, preload string, rules int) (build func(int) (*contextrank.System, error), source string, restored bool, err error) {
	if snapdir != "" && shard.HasSnapshots(snapdir) {
		build, saved, err := shard.RestoreBuilder(snapdir)
		if err != nil {
			return nil, "", false, err
		}
		return build, fmt.Sprintf("restore=%s(saved-shards=%d)", snapdir, saved), true, nil
	}
	var spec workload.Spec
	switch preload {
	case "none":
		return func(int) (*contextrank.System, error) { return contextrank.NewSystem(), nil }, "preload=none", false, nil
	case "small":
		spec = workload.SmallSpec()
	case "paper":
		spec = workload.DefaultSpec()
	default:
		return nil, "", false, fmt.Errorf("unknown -preload %q (want none, small or paper)", preload)
	}
	build = func(i int) (*contextrank.System, error) {
		sys := contextrank.NewSystem()
		d, err := workload.LoadBench(sys.Loader(), sys.Rules(), spec, rules)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			log.Printf("carserved: preloading %d tuples (%d persons, %d programs), %d rules per shard",
				d.TupleCount, spec.Persons, spec.Programs, rules)
		}
		return sys, nil
	}
	return build, "preload=" + preload, false, nil
}
