// Command carserved is the context-aware ranking daemon: it wraps N shard
// replicas of a contextrank.System in the internal/serve + serve/shard
// layers (per-shard locking facade, per-user sessions, epoch-invalidated
// rank caches, consistent-hash routing) and exposes the HTTP/JSON API
// documented on serve.Handler.
//
// Usage:
//
//	carserved [-addr :8372] [-shards 4] [-cache 1024] [-snapdir dir]
//	          [-preload none|small|paper] [-rules 4]
//
// With -shards N every per-user operation (session applies, ranks) is
// served by the user's shard alone — one user's context apply never
// blocks another user's rank on a different shard — while vocabulary
// writes (declare/assert/rules/exec) are broadcast to all shards.
//
// With -snapdir the daemon saves one snapshot per shard (engine.Dump via
// the serve layer, session context excluded) on SIGTERM/SIGINT, and
// restores from that directory on the next boot instead of preloading.
// The shard count may change between runs: broadcast replication makes
// any shard's snapshot a full copy of the durable state, so a reboot with
// a different -shards value is an online reshard.
//
// With -preload the daemon starts already loaded with the paper's §5
// TV-watcher database (small = scaled-down test sizes, paper = ~11k
// tuples) and the scalability rule series, so a load generator — e.g.
// `carbench -exp serve` — can rank immediately:
//
//	carserved -preload small -rules 4 -shards 4 &
//	curl -X PUT localhost:8372/v1/sessions/person0000/context \
//	     -d '{"measurements":[{"concept":"BenchCtx0","prob":1}]}'
//	curl 'localhost:8372/v1/rank?user=person0000&target=TvProgram&limit=3'
//
// Session updates whose measurements carry uncertainty (prob < 1, or
// exclusive groups) declare fresh basic events on every apply; each apply
// also retires the previous snapshot's events (event.Space.Retire), so the
// event space — observable as "events" on /v1/stats, summed across shards
// — stays bounded by the live session vocabulary under arbitrary churn.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/serve/shard"
	"repro/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8372", "listen address")
		shards  = flag.Int("shards", 1, "shard replicas; per-user traffic is routed by consistent hash of the user ID")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "per-shard rank cache capacity in entries (-1 disables caching)")
		snapdir = flag.String("snapdir", "", "snapshot directory: restore from it on boot (if present), save per-shard snapshots into it on shutdown")
		preload = flag.String("preload", "none", "preload dataset: none, small or paper (ignored when restoring from -snapdir)")
		rules   = flag.Int("rules", 4, "preference rules to register with -preload")
	)
	flag.Parse()

	build, source, err := buildFunc(*snapdir, *preload, *rules)
	if err != nil {
		log.Fatalf("carserved: %v", err)
	}
	coord, err := shard.New(*shards, build, serve.Options{CacheSize: *cache})
	if err != nil {
		log.Fatalf("carserved: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandlerFor(coord),
		ReadHeaderTimeout: 5 * time.Second,
	}

	go func() {
		log.Printf("carserved: listening on %s (shards=%d %s cache=%d)", *addr, *shards, source, *cache)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("carserved: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("carserved: shutdown: %v", err)
	}
	if *snapdir != "" {
		if err := coord.SaveSnapshots(*snapdir); err != nil {
			log.Fatalf("carserved: saving snapshots: %v", err)
		}
		log.Printf("carserved: saved %d shard snapshot(s) to %s", coord.N(), *snapdir)
	}
	st := coord.Stats()
	log.Printf("carserved: served %d rank requests across %d shards, cache %s, epoch %d",
		st.Requests, coord.N(), st.Cache, st.Epoch)
	for i, sh := range st.Shards {
		log.Printf("carserved: shard %d: %d requests, %d sessions, %d events, epoch %d",
			i, sh.Requests, sh.Sessions, sh.Events, sh.Epoch)
	}
}

// buildFunc picks the per-shard System source: a snapshot restore when
// snapdir holds one, the preloaded dataset otherwise. source describes the
// choice for the startup log line.
func buildFunc(snapdir, preload string, rules int) (build func(int) (*contextrank.System, error), source string, err error) {
	if snapdir != "" && shard.HasSnapshots(snapdir) {
		build, saved, err := shard.RestoreBuilder(snapdir)
		if err != nil {
			return nil, "", err
		}
		return build, fmt.Sprintf("restore=%s(saved-shards=%d)", snapdir, saved), nil
	}
	var spec workload.Spec
	switch preload {
	case "none":
		return func(int) (*contextrank.System, error) { return contextrank.NewSystem(), nil }, "preload=none", nil
	case "small":
		spec = workload.SmallSpec()
	case "paper":
		spec = workload.DefaultSpec()
	default:
		return nil, "", fmt.Errorf("unknown -preload %q (want none, small or paper)", preload)
	}
	build = func(i int) (*contextrank.System, error) {
		sys := contextrank.NewSystem()
		d, err := workload.LoadBench(sys.Loader(), sys.Rules(), spec, rules)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			log.Printf("carserved: preloading %d tuples (%d persons, %d programs), %d rules per shard",
				d.TupleCount, spec.Persons, spec.Programs, rules)
		}
		return sys, nil
	}
	return build, "preload=" + preload, nil
}
