package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/serve/metrics"
	"repro/internal/workload"
)

// overloadConfig parametrizes the overload/recovery experiment.
type overloadConfig struct {
	// Target is an already-running daemon's base URL (e.g. the CI smoke
	// boots carserved and points carbench at it). Empty boots an
	// in-process stack with the admission limits below.
	Target     string
	Spec       workload.Spec
	Rules      int
	Clients    int           // overload-phase concurrent clients
	LowClients int           // recovery-phase clients
	Duration   time.Duration // per phase
	Users      int           // distinct user IDs the clients share
	CacheSize  int

	// In-process admission limits (ignored with Target).
	RateLimit   float64
	MaxInFlight int
	MaxQueue    int
}

// phaseResult is one phase's client-side accounting.
type phaseResult struct {
	Total, OK, Shed, Errors int64
	RetryAfter              int64 // 429s that carried a Retry-After header
	Latencies               []time.Duration
	FirstErr                error
}

func (p *phaseResult) percentile(q float64) time.Duration {
	if len(p.Latencies) == 0 {
		return 0
	}
	sort.Slice(p.Latencies, func(i, j int) bool { return p.Latencies[i] < p.Latencies[j] })
	return p.Latencies[int(q*float64(len(p.Latencies)-1))]
}

// runOverloadLoadgen drives offered load past the admission limits and
// reports goodput, shed rate and admitted-request latency — then drops
// the load and shows the service recovering to 0% shed. The point being
// demonstrated: under 2–10x overload the daemon keeps serving admitted
// requests at in-SLO latency and answers the rest with 429 + Retry-After
// instead of queueing until collapse.
func runOverloadLoadgen(cfg overloadConfig) error {
	base := cfg.Target
	if base == "" {
		sys := contextrank.NewSystem()
		if _, err := workload.LoadBench(sys.Loader(), sys.Rules(), cfg.Spec, cfg.Rules); err != nil {
			return err
		}
		backend := serve.NewServer(sys, serve.Options{CacheSize: cfg.CacheSize})
		handler := serve.NewHandlerWith(backend, serve.HandlerOptions{
			Admission: serve.NewAdmission(serve.AdmissionOptions{
				MaxInFlight: cfg.MaxInFlight,
				MaxQueue:    cfg.MaxQueue,
				PerUserRate: cfg.RateLimit,
			}),
			Metrics: metrics.NewRegistry(),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: handler}
		go httpSrv.Serve(ln) //nolint:errcheck // closed via ln.Close at the end
		defer ln.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process daemon at %s (ratelimit=%g/s/user maxinflight=%d maxqueue=%d)\n",
			base, cfg.RateLimit, cfg.MaxInFlight, cfg.MaxQueue)
	} else {
		fmt.Printf("driving external daemon at %s\n", base)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}

	users := make([]string, cfg.Users)
	for i := range users {
		users[i] = fmt.Sprintf("person%04d", i%cfg.Spec.Persons)
	}
	if err := ensureSessions(client, base, users); err != nil {
		return err
	}

	fmt.Printf("phase 1: OVERLOAD — %d clients hammering %d users' rank endpoint for %s\n",
		cfg.Clients, len(users), cfg.Duration)
	over := drivePhase(client, base, users, cfg.Clients, cfg.Duration, 0)

	// Let per-user buckets refill so recovery measures steady-state
	// behavior, not the tail of the overload burst.
	time.Sleep(1200 * time.Millisecond)

	// Recovery offered load: a few clients paced well below any sane
	// admission limit.
	pace := 100 * time.Millisecond
	fmt.Printf("phase 2: RECOVERY — %d clients paced at 1 req/%s for %s\n",
		cfg.LowClients, pace, cfg.Duration)
	rec := drivePhase(client, base, users, cfg.LowClients, cfg.Duration, pace)

	fmt.Printf("%-10s %10s %10s %10s %8s %12s %10s %10s\n",
		"phase", "total", "admitted", "shed", "errors", "goodput/s", "p50(ms)", "p99(ms)")
	for _, row := range []struct {
		name string
		res  *phaseResult
	}{{"overload", &over}, {"recovery", &rec}} {
		fmt.Printf("%-10s %10d %10d %10d %8d %12.0f %10.2f %10.2f\n",
			row.name, row.res.Total, row.res.OK, row.res.Shed, row.res.Errors,
			float64(row.res.OK)/cfg.Duration.Seconds(),
			float64(row.res.percentile(0.50))/1e6, float64(row.res.percentile(0.99))/1e6)
	}
	shedPct := 0.0
	if over.Total > 0 {
		shedPct = float64(over.Shed) / float64(over.Total) * 100
	}
	fmt.Printf("overload shed rate: %.1f%% (%d/%d 429s carried Retry-After); recovery shed rate: %.2f%%\n",
		shedPct, over.RetryAfter, over.Shed, float64(rec.Shed)/float64(max(rec.Total, 1))*100)

	// Machine-readable lines for the CI smoke (scripts/smoke_overload.sh).
	for _, row := range []struct {
		name    string
		clients int
		res     *phaseResult
	}{{"overload", cfg.Clients, &over}, {"recovery", cfg.LowClients, &rec}} {
		fmt.Printf("OVERLOAD phase=%s clients=%d total=%d ok=%d shed=%d retry_after=%d errors=%d goodput_rps=%.0f p50_ms=%.3f p99_ms=%.3f\n",
			row.name, row.clients, row.res.Total, row.res.OK, row.res.Shed, row.res.RetryAfter,
			row.res.Errors, float64(row.res.OK)/cfg.Duration.Seconds(),
			float64(row.res.percentile(0.50))/1e6, float64(row.res.percentile(0.99))/1e6)
	}

	if over.Errors > 0 || rec.Errors > 0 {
		return fmt.Errorf("%d overload / %d recovery non-shed errors, first: %v",
			over.Errors, rec.Errors, firstNonNil(over.FirstErr, rec.FirstErr))
	}
	if over.OK == 0 {
		return fmt.Errorf("overload phase admitted nothing — limits shed 100%% of load")
	}
	return nil
}

// ensureSessions sets a context for every user, retrying through the
// rate limiter (session PUTs are admission-controlled too).
func ensureSessions(client *http.Client, base string, users []string) error {
	body := `{"measurements":[{"concept":"BenchCtx0","prob":1}]}`
	for _, user := range users {
		var lastStatus string
		for attempt := 0; attempt < 20; attempt++ {
			req, err := http.NewRequest(http.MethodPut, base+"/v1/sessions/"+user+"/context", bytes.NewBufferString(body))
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return fmt.Errorf("session for %s: %w", user, err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				lastStatus = ""
				break
			}
			lastStatus = resp.Status
			if resp.StatusCode != http.StatusTooManyRequests {
				return fmt.Errorf("session for %s: %s", user, resp.Status)
			}
			time.Sleep(retryAfterDelay(resp, 500*time.Millisecond))
		}
		if lastStatus != "" {
			return fmt.Errorf("session for %s still rate-limited after retries: %s", user, lastStatus)
		}
	}
	return nil
}

// drivePhase runs clients goroutines against /v1/rank for dur, pacing
// each request by pace (0 = as fast as possible), and aggregates the
// client-side accounting: 200s are goodput with their latency recorded,
// 429s are shed (Retry-After honored, capped so the generator keeps
// offering load), anything else is an error.
func drivePhase(client *http.Client, base string, users []string, clients int, dur time.Duration, pace time.Duration) phaseResult {
	var (
		mu  sync.Mutex
		agg phaseResult
		wg  sync.WaitGroup
	)
	deadline := time.Now().Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local phaseResult
			for i := 0; time.Now().Before(deadline); i++ {
				user := users[(c+i)%len(users)]
				started := time.Now()
				resp, err := client.Post(base+"/v1/rank", "application/json",
					bytes.NewReader([]byte(`{"user":"`+user+`","target":"TvProgram","limit":3}`)))
				if err != nil {
					local.Errors++
					if local.FirstErr == nil {
						local.FirstErr = err
					}
					break
				}
				elapsed := time.Since(started)
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
				resp.Body.Close()
				local.Total++
				switch resp.StatusCode {
				case http.StatusOK:
					local.OK++
					local.Latencies = append(local.Latencies, elapsed)
				case http.StatusTooManyRequests:
					local.Shed++
					if resp.Header.Get("Retry-After") != "" {
						local.RetryAfter++
					}
					time.Sleep(retryAfterDelay(resp, 25*time.Millisecond))
				default:
					local.Errors++
					if local.FirstErr == nil {
						local.FirstErr = fmt.Errorf("rank for %s: %s", user, resp.Status)
					}
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
			mu.Lock()
			agg.Total += local.Total
			agg.OK += local.OK
			agg.Shed += local.Shed
			agg.RetryAfter += local.RetryAfter
			agg.Errors += local.Errors
			agg.Latencies = append(agg.Latencies, local.Latencies...)
			if agg.FirstErr == nil {
				agg.FirstErr = local.FirstErr
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return agg
}

// retryAfterDelay reads a 429's Retry-After (whole seconds per the
// header spec), capped so a load generator honoring it keeps offering
// load instead of sleeping out the measurement window.
func retryAfterDelay(resp *http.Response, maxDelay time.Duration) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return maxDelay
	}
	d := time.Duration(secs) * time.Second
	if d > maxDelay {
		return maxDelay
	}
	if d <= 0 {
		d = maxDelay
	}
	return d
}

func firstNonNil(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
