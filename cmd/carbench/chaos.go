package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// chaosConfig parametrizes the fault-injection experiment. It always
// drives an external daemon: the faults are armed over /v1/chaos, so the
// target must run with -chaos.
type chaosConfig struct {
	Target   string
	Clients  int
	Users    int
	Duration time.Duration // per phase
}

// chaosPhase is one phase's client-side accounting: reads and writes are
// tracked separately because the fault phase expects them to diverge —
// reads keep serving from memory while writes shed 503 + Retry-After.
type chaosPhase struct {
	ReadsOK, ReadsFailed     int64
	WritesOK, WritesShed     int64
	WritesShedNoRetry        int64 // 503s missing the Retry-After header
	WritesFailed             int64
	Latencies                []time.Duration
	FirstReadErr, FirstWrErr error
}

// runChaosLoadgen is the client side of the failure-domain story
// (DESIGN.md §3.9): arm disk faults and a panic on a live daemon over
// /v1/chaos and verify, from outside, that the blast radius stays
// contained. Three phases:
//
//	baseline — no faults; reads and writes both succeed.
//	fault    — journal writes and fsyncs fail (dead disk) and one rank
//	           request panics: reads must keep serving from memory (the
//	           panic costs exactly one 500), writes must shed with
//	           503 + Retry-After, and the daemon must stay up.
//	recover  — faults cleared; the disk probe re-arms the WAL and
//	           writes succeed again.
func runChaosLoadgen(cfg chaosConfig) error {
	base := cfg.Target
	if base == "" {
		return fmt.Errorf("chaos: -target is required (a carserved started with -chaos)")
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}

	users := make([]string, cfg.Users)
	for i := range users {
		users[i] = fmt.Sprintf("chaos%04d", i)
	}
	if err := ensureSessions(client, base, users); err != nil {
		return err
	}

	fmt.Printf("phase 1: BASELINE — %d clients, reads+writes for %s\n", cfg.Clients, cfg.Duration)
	baseline := driveChaosPhase(client, base, users, cfg.Clients, cfg.Duration)

	// Dead disk: every WAL write and fsync fails until cleared. One rank
	// request also panics, proving per-request recovery.
	faults := `{"faults":[
		{"point":"fs.write","err":"ENOSPC","match":".wal"},
		{"point":"fs.sync","err":"EIO","match":".wal"},
		{"point":"rank.serve","panic":"chaos-injected","count":1}
	]}`
	if err := chaosPost(client, base+"/v1/chaos", faults); err != nil {
		return fmt.Errorf("arming faults: %w", err)
	}
	fmt.Printf("phase 2: FAULT — journal ENOSPC+EIO armed, one rank panic\n")
	fault := driveChaosPhase(client, base, users, cfg.Clients, cfg.Duration)

	if err := chaosDelete(client, base+"/v1/chaos"); err != nil {
		return fmt.Errorf("clearing faults: %w", err)
	}
	// The background disk probe re-arms the journal on its own clock;
	// wait for /healthz to report healthy before measuring recovery.
	state, err := waitHealthy(client, base, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("phase 3: RECOVER — faults cleared, daemon %s\n", state)
	recov := driveChaosPhase(client, base, users, cfg.Clients, cfg.Duration)

	fmt.Printf("%-10s %10s %10s %10s %10s %10s %10s\n",
		"phase", "reads_ok", "reads_err", "writes_ok", "shed", "wr_err", "p99(ms)")
	rows := []struct {
		name string
		res  *chaosPhase
	}{{"baseline", &baseline}, {"fault", &fault}, {"recover", &recov}}
	for _, row := range rows {
		fmt.Printf("%-10s %10d %10d %10d %10d %10d %10.2f\n",
			row.name, row.res.ReadsOK, row.res.ReadsFailed, row.res.WritesOK,
			row.res.WritesShed, row.res.WritesFailed, float64(readP99(row.res))/1e6)
	}

	// Machine-readable lines for the CI smoke (scripts/smoke_chaos.sh).
	for _, row := range rows {
		fmt.Printf("CHAOS phase=%s reads_ok=%d reads_err=%d writes_ok=%d writes_shed=%d shed_no_retry_after=%d writes_err=%d p99_ms=%.3f\n",
			row.name, row.res.ReadsOK, row.res.ReadsFailed, row.res.WritesOK,
			row.res.WritesShed, row.res.WritesShedNoRetry, row.res.WritesFailed,
			float64(readP99(row.res))/1e6)
	}

	// The contract, asserted client-side so the smoke script only has to
	// check the exit code and the summary lines.
	if baseline.ReadsFailed > 0 || baseline.WritesFailed > 0 || baseline.WritesShed > 0 {
		return fmt.Errorf("baseline not clean: %v %v", baseline.FirstReadErr, baseline.FirstWrErr)
	}
	if fault.ReadsFailed > 1 { // exactly one injected panic is allowed
		return fmt.Errorf("reads failed under a disk-only fault (%d, first: %v)",
			fault.ReadsFailed, fault.FirstReadErr)
	}
	if fault.WritesOK > 0 {
		return fmt.Errorf("%d writes acked while the journal could not persist them", fault.WritesOK)
	}
	if fault.WritesShed == 0 {
		return fmt.Errorf("no writes shed during the fault phase — faults did not engage")
	}
	if fault.WritesShedNoRetry > 0 {
		return fmt.Errorf("%d shed writes missing Retry-After", fault.WritesShedNoRetry)
	}
	if recov.ReadsFailed > 0 || recov.WritesFailed > 0 || recov.WritesShed > 0 {
		return fmt.Errorf("recovery not clean: %v %v", recov.FirstReadErr, recov.FirstWrErr)
	}
	if recov.WritesOK == 0 {
		return fmt.Errorf("no write succeeded after recovery")
	}
	return nil
}

func readP99(p *chaosPhase) time.Duration {
	pr := phaseResult{Latencies: p.Latencies}
	return pr.percentile(0.99)
}

// driveChaosPhase runs clients goroutines for dur; every 5th request is
// a session write, the rest are ranks.
func driveChaosPhase(client *http.Client, base string, users []string, clients int, dur time.Duration) chaosPhase {
	results := make([]chaosPhase, clients)
	done := make(chan int, clients)
	deadline := time.Now().Add(dur)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer func() { done <- c }()
			local := &results[c]
			for i := 0; time.Now().Before(deadline); i++ {
				user := users[(c+i)%len(users)]
				if i%5 == 4 {
					chaosWrite(client, base, user, local)
					continue
				}
				started := time.Now()
				resp, err := client.Post(base+"/v1/rank", "application/json",
					bytes.NewReader([]byte(`{"user":"`+user+`","target":"TvProgram","limit":3}`)))
				if err != nil {
					local.ReadsFailed++
					if local.FirstReadErr == nil {
						local.FirstReadErr = err
					}
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					local.ReadsOK++
					local.Latencies = append(local.Latencies, time.Since(started))
				} else {
					local.ReadsFailed++
					if local.FirstReadErr == nil {
						local.FirstReadErr = fmt.Errorf("rank for %s: %s", user, resp.Status)
					}
				}
			}
		}(c)
	}
	var agg chaosPhase
	for range results {
		c := <-done
		local := &results[c]
		agg.ReadsOK += local.ReadsOK
		agg.ReadsFailed += local.ReadsFailed
		agg.WritesOK += local.WritesOK
		agg.WritesShed += local.WritesShed
		agg.WritesShedNoRetry += local.WritesShedNoRetry
		agg.WritesFailed += local.WritesFailed
		agg.Latencies = append(agg.Latencies, local.Latencies...)
		if agg.FirstReadErr == nil {
			agg.FirstReadErr = local.FirstReadErr
		}
		if agg.FirstWrErr == nil {
			agg.FirstWrErr = local.FirstWrErr
		}
	}
	return agg
}

func chaosWrite(client *http.Client, base, user string, local *chaosPhase) {
	body := `{"measurements":[{"concept":"BenchCtx0","prob":1}]}`
	req, err := http.NewRequest(http.MethodPut,
		base+"/v1/sessions/"+user+"/context", bytes.NewBufferString(body))
	if err != nil {
		local.WritesFailed++
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		local.WritesFailed++
		if local.FirstWrErr == nil {
			local.FirstWrErr = err
		}
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		local.WritesOK++
	case http.StatusServiceUnavailable:
		local.WritesShed++
		if resp.Header.Get("Retry-After") == "" {
			local.WritesShedNoRetry++
		}
		time.Sleep(25 * time.Millisecond)
	case http.StatusTooManyRequests:
		// Admission shed, not a journal fault; pace and move on.
		time.Sleep(retryAfterDelay(resp, 25*time.Millisecond))
	default:
		local.WritesFailed++
		if local.FirstWrErr == nil {
			local.FirstWrErr = fmt.Errorf("write for %s: %s", user, resp.Status)
		}
	}
}

func chaosPost(client *http.Client, url, body string) error {
	resp, err := client.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	return nil
}

func chaosDelete(client *http.Client, url string) error {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	return nil
}

// waitHealthy polls /healthz until the aggregate state is "ok" (the
// probe loop runs on -probe-interval, so recovery is not instant).
func waitHealthy(client *http.Client, base string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	state := "unknown"
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var body struct {
				Status string `json:"status"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil {
				state = body.Status
				if state == "ok" {
					return state, nil
				}
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	return state, fmt.Errorf("daemon still %q after %s", state, timeout)
}
