// Command carbench regenerates every table and figure of the paper's
// evaluation, printing paper-reported values next to measured ones (the
// per-experiment index lives in DESIGN.md §4; the results are recorded in
// EXPERIMENTS.md).
//
// Usage:
//
//	carbench [-exp all|e1|e2|e3|a1|a2|a3|a4|serve] [-timeout 30s] [-maxrules 8] [-small]
//
// e1: Table 1 worked example          e2: Figure 1 history abstraction
// e3: §5 scalability (view ranker)    a1: ranker ablation sweep
// a2: §6 λ-weighting sweep            a3: σ-miner convergence
// a4: Monte Carlo accuracy vs budget
//
// serve: load-generate the internal/serve layer over HTTP — N goroutine
// clients with per-user session contexts ranking the TV-watcher dataset
// against cmd/carserved's stack in-process (-clients, -benchdur, -churn,
// -assertevery, -cachesize, -ctxprob, -shards). Reports a memory column
// (heap and event-space size before/after) — with -churn and -ctxprob < 1
// it shows event retirement holding the space bounded. With a
// comma-separated -shards list (e.g. -shards 1,2,4,8) it runs the sharded
// coordinator at each count under a mixed apply+rank workload and prints
// the req/s scaling curve with a cross-shard-broadcast latency column.
// Not part of -exp all: it is a throughput demonstration, not a paper
// reproduction.
//
// rankbatch: drive POST /v1/rank/batch under per-request session churn and
// print the batch-size-vs-throughput curve (-batchsizes 1,2,4,8,16): every
// request invalidates the client's compiled rank plan, so a batch of B
// items amortizes one plan compile where B single ranks would pay B.
//
// overload: the admission-control demonstration — drive offered rank load
// far past the configured limits (-ratelimit/-maxinflight/-maxqueue for an
// in-process daemon, or -target for a running carserved) and print goodput,
// shed rate and admitted-request p50/p99 for an overload phase followed by
// a paced recovery phase, plus machine-readable OVERLOAD lines consumed by
// scripts/smoke_overload.sh. Excess load must come back as fast 429s with
// Retry-After while admitted requests stay at in-SLO latency.
//
// journal: the session-durability overhead experiment — the same mixed
// apply+rank HTTP load twice, without and with the per-shard session WAL
// (internal/serve/journal, fsync per group commit), printing the req/s
// delta and the journal's group-commit/compaction counters. Durable
// sessions should cost a few percent at most: the rank path never touches
// the journal, and concurrent session applies share one fsync.
//
// chaos: the failure-domain demonstration — point the client at a running
// carserved started with -chaos (-target), arm disk faults (journal writes
// and fsyncs fail) plus one rank-path panic over /v1/chaos, and verify the
// blast radius from outside: reads keep serving from memory, writes shed
// 503 + Retry-After, the daemon never dies, and after clearing the faults
// the disk probe re-arms the WAL and writes succeed again. Prints
// machine-readable CHAOS lines consumed by scripts/smoke_chaos.sh.
//
// topk: the bounded-heap selection microbenchmark — one compiled plan
// ranking a 10k-program catalog at each -topk value (0 = full ranking),
// printing the ns/rank curve and the speedup over the full sort, plus the
// hot-path scratch-pool and document-distribution-cache counters. CI's
// bench-rank-regression job runs it under -cpuprofile/-memprofile to
// archive rank-path profiles per commit.
//
// -cpuprofile/-memprofile write pprof profiles for any run, e.g.
// `carbench -exp rankbatch -cpuprofile cpu.out` then `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, e1, e2, e3, a1, a2, a3, a4, serve, rankbatch, journal, overload, topk, chaos (load generators/microbenchmarks; not in 'all')")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-point budget for sweeps (the paper aborted at 30min)")
		maxRules = flag.Int("maxrules", 8, "largest rule count in the scalability sweeps")
		small    = flag.Bool("small", false, "use the scaled-down dataset instead of the paper's ~11k tuples")
		seed     = flag.Int64("seed", 42, "random seed for synthetic histories")

		clients     = flag.Int("clients", 16, "serve: concurrent goroutine clients")
		shardList   = flag.String("shards", "1", "serve: shard count, or comma-separated counts (1,2,4,8) for the scaling curve")
		benchdur    = flag.Duration("benchdur", 5*time.Second, "serve: load-generation duration")
		churn       = flag.Int("churn", 0, "serve: session context update every N ranks per client (0 = never)")
		assertevery = flag.Duration("assertevery", 0, "serve: background fact-assertion interval bumping the epoch (0 = off)")
		cachesize   = flag.Int("cachesize", 0, "serve: rank cache capacity (0 = default, -1 = disabled)")
		ctxprob     = flag.Float64("ctxprob", 1, "serve: session measurement probability; < 1 churns basic events through the space on every context update")
		batchSizes  = flag.String("batchsizes", "1,2,4,8,16", "rankbatch: comma-separated /v1/rank/batch item counts for the amortization curve")
		topkList    = flag.String("topk", "0,10,100,1000", "topk: comma-separated top-k values for the selection curve (0 = full ranking baseline)")

		target      = flag.String("target", "", "overload/chaos: base URL of a running carserved (overload boots an in-process daemon when empty; chaos requires a target started with -chaos)")
		users       = flag.Int("users", 8, "overload/chaos: distinct user IDs the clients share (fewer users = harder per-user rate pressure)")
		lowclients  = flag.Int("lowclients", 2, "overload: paced clients in the recovery phase")
		ratelimit   = flag.Float64("ratelimit", 50, "overload: per-user req/s budget for the in-process daemon")
		maxinflight = flag.Int("maxinflight", 32, "overload: in-flight request cap for the in-process daemon")
		maxqueue    = flag.Int("maxqueue", 64, "overload: waiting-request cap for the in-process daemon")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
	)
	flag.Parse()

	var stops []func()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memprofile != "" {
		stops = append(stops, func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "carbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "carbench: memprofile:", err)
			}
		})
	}
	if len(stops) > 0 {
		// Flushed on the normal return path *and* by exitOn before
		// os.Exit, which would otherwise skip the defers and leave a
		// truncated CPU profile / no heap profile on a failed run.
		var once sync.Once
		flushProfiles = func() {
			once.Do(func() {
				for _, stop := range stops {
					stop()
				}
			})
		}
		defer flushProfiles()
	}

	spec := workload.DefaultSpec()
	if *small {
		spec = workload.SmallSpec()
	}

	run := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if run("e1") {
		ran = true
		section("E1 — Table 1 / §4.2 worked example (weekend breakfast)")
		res, err := experiments.RunE1()
		exitOn(err)
		res.Table().Write(os.Stdout)
		fmt.Printf("max |paper − measured| = %.2e\n", res.MaxError())
	}

	if run("e2") {
		ran = true
		section("E2 — Figure 1: workday-morning history abstraction")
		res, err := experiments.RunE2(5000, *seed)
		exitOn(err)
		res.Table().Write(os.Stdout)
		fmt.Printf("(mined from %d synthetic episodes)\n", res.Episodes)
	}

	if run("e3") {
		ran = true
		section("E3 — §5 scalability: query time vs number of rules (big preference view)")
		cfg := experiments.E3Config{Spec: spec, MaxRules: *maxRules, Timeout: *timeout, Ranker: "view"}
		fmt.Printf("dataset: %d persons, %d programs (~paper's 11k tuples: %v); timeout %s/point\n",
			spec.Persons, spec.Programs, !*small, *timeout)
		res, err := experiments.RunE3(cfg)
		exitOn(err)
		res.Table().Write(os.Stdout)
		if len(res.Growth) > 0 {
			fmt.Print("growth factor per added rule:")
			for _, g := range res.Growth {
				fmt.Printf(" ×%.1f", g)
			}
			fmt.Println()
		}
		fmt.Println(experiments.PaperE3)
	}

	if run("a1") {
		ran = true
		section("A1 — ablation: view vs naive vs factorized ranker")
		res, err := experiments.RunA1(spec, *maxRules, *timeout)
		exitOn(err)
		res.Table().Write(os.Stdout)
		fmt.Println("expected shape: view/naive blow up exponentially; factorized stays flat (§6 pruning + factorization)")
	}

	if run("a2") {
		ran = true
		section("A2 — ablation: λ-weighting of query-dependent vs context score (§6)")
		res, err := experiments.RunA2(*seed)
		exitOn(err)
		res.Table().Write(os.Stdout)
		fmt.Printf("best λ in sweep: %.2f (truth blends both signals; extremes lose)\n", res.BestAt)
	}

	if run("a3") {
		ran = true
		section("A3 — ablation: σ-miner convergence (§6 mining/learning preferences)")
		res, err := experiments.RunA3([]int{10, 100, 1000, 10000}, *seed)
		exitOn(err)
		res.Table().Write(os.Stdout)
	}

	if run("a4") {
		ran = true
		section("A4 — ablation: Monte Carlo ranking accuracy vs sample budget")
		res, err := experiments.RunA4(workload.SmallSpec(), 6, []int{100, 1000, 10000, 100000}, *seed)
		exitOn(err)
		fmt.Printf("rules: %d; baseline: exact factorized scores\n", res.Rules)
		res.Table().Write(os.Stdout)
	}

	if strings.EqualFold(*exp, "serve") {
		ran = true
		counts, err := parseShardList(*shardList)
		exitOn(err)
		cfg := loadgenConfig{
			Spec:        spec,
			Rules:       *maxRules,
			Clients:     *clients,
			Duration:    *benchdur,
			Churn:       *churn,
			AssertEvery: *assertevery,
			CacheSize:   *cachesize,
			CtxProb:     *ctxprob,
		}
		if len(counts) > 1 {
			// The curve needs enough concurrent sessions to expose apply
			// contention; raise the client default unless set explicitly.
			explicit := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
			if !explicit["clients"] {
				cfg.Clients = 128
			}
			section("SERVE — shard scaling curve under mixed apply+rank HTTP load")
			exitOn(runServeShardCurve(cfg, counts))
		} else {
			section("SERVE — internal/serve concurrent ranking service under HTTP load")
			cfg.Shards = counts[0]
			_, err := runServeLoadgen(cfg)
			exitOn(err)
		}
	}

	if strings.EqualFold(*exp, "journal") {
		ran = true
		counts, err := parseShardList(*shardList)
		exitOn(err)
		section("JOURNAL — session WAL overhead: durable vs in-memory sessions under mixed apply+rank load")
		exitOn(runJournalLoadgen(loadgenConfig{
			Spec:      spec,
			Rules:     *maxRules,
			Shards:    counts[0],
			Clients:   *clients,
			Duration:  *benchdur,
			Churn:     *churn,
			CacheSize: *cachesize,
			CtxProb:   *ctxprob,
		}))
	}

	if strings.EqualFold(*exp, "overload") {
		ran = true
		section("OVERLOAD — admission control: goodput, shed rate and latency under excess offered load")
		exitOn(runOverloadLoadgen(overloadConfig{
			Target:      *target,
			Spec:        spec,
			Rules:       *maxRules,
			Clients:     *clients,
			LowClients:  *lowclients,
			Duration:    *benchdur,
			Users:       *users,
			CacheSize:   *cachesize,
			RateLimit:   *ratelimit,
			MaxInFlight: *maxinflight,
			MaxQueue:    *maxqueue,
		}))
	}

	if strings.EqualFold(*exp, "chaos") {
		ran = true
		section("CHAOS — fault injection: reads in-SLO and writes shed 503 under disk faults, then full recovery")
		exitOn(runChaosLoadgen(chaosConfig{
			Target:   *target,
			Clients:  *clients,
			Users:    *users,
			Duration: *benchdur,
		}))
	}

	if strings.EqualFold(*exp, "topk") {
		ran = true
		ks, err := parseTopKList(*topkList)
		exitOn(err)
		// The selection curve needs a catalog big enough that sorting it
		// dominates scoring at small k; the default spec's 300 programs
		// would hide the effect.
		programs := 10000
		if *small {
			programs = 2000
		}
		section("TOPK — bounded-heap top-k selection vs full-sort ranking over one compiled plan")
		exitOn(runTopKCurve(topkConfig{
			Spec: workload.Spec{
				Seed:                 *seed,
				Persons:              50,
				Programs:             programs,
				Genres:               12,
				Subjects:             6,
				Activities:           4,
				Rooms:                5,
				WatchEvents:          programs,
				UncertainFeatureProb: 0.5,
			},
			Rules:    *maxRules,
			TopKs:    ks,
			Duration: *benchdur,
		}))
	}

	if strings.EqualFold(*exp, "rankbatch") {
		ran = true
		sizes, err := parseShardList(*batchSizes)
		exitOn(err)
		section("RANKBATCH — /v1/rank/batch amortization: batch size vs items/s under session churn")
		exitOn(runRankBatchLoadgen(loadgenConfig{
			Spec:      spec,
			Rules:     *maxRules,
			Clients:   *clients,
			Duration:  *benchdur,
			CacheSize: *cachesize,
			CtxProb:   *ctxprob,
		}, sizes))
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "carbench: unknown experiment %q\n", *exp)
		flag.Usage()
		flushProfiles()
		os.Exit(2)
	}
}

// flushProfiles stops and writes any -cpuprofile/-memprofile output; a
// no-op until main arms it. Exit paths must call it because os.Exit skips
// deferred functions.
var flushProfiles = func() {}

// parseShardList parses the -shards value: one count, or a comma list for
// the scaling curve.
func parseShardList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards value %q (want a positive count or a comma list like 1,2,4,8)", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbench:", err)
		flushProfiles()
		os.Exit(1)
	}
}
