package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/workload"
)

// parseTopKList parses the -topk value: comma-separated non-negative
// top-k values, where 0 is the full-ranking baseline row.
func parseTopKList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -topk value %q (want a comma list of non-negative counts like 0,10,100)", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// topkConfig drives the top-k selection curve: one compiled plan ranking
// a large catalog repeatedly at each requested k.
type topkConfig struct {
	Spec     workload.Spec
	Rules    int
	TopKs    []int // 0 means full ranking (the baseline row)
	Duration time.Duration
}

// runTopKCurve measures Plan.Rank at each top-k over one compiled plan and
// a fixed catalog — the serving layer's steady state, where the plan cache
// hands every rank the same plan and the document-distribution cache is
// warm. The expected shape: ns/rank drops as k shrinks because the
// bounded heap replaces the full sort and the result copy, while the
// per-candidate scoring cost (shared by every k) stays constant.
func runTopKCurve(cfg topkConfig) error {
	spec := cfg.Spec
	d, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	if err := d.ApplyBenchContext(cfg.Rules, false); err != nil {
		return err
	}
	rules, err := d.Rules(cfg.Rules)
	if err != nil {
		return err
	}
	plan, err := core.CompilePlan(d.Loader, d.User, rules)
	if err != nil {
		return err
	}
	fmt.Printf("catalog: %d programs, %d rules, %s/point; one plan, warm doc-distribution cache\n",
		spec.Programs, cfg.Rules, cfg.Duration)

	target := dl.Atom("TvProgram")
	sc := core.NewPlanScratch()
	var baseNs float64

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "top_k\tresults\tns/rank\tranks/s\tspeedup")
	for _, k := range cfg.TopKs {
		req := core.PlanRequest{Target: target, TopK: k}
		// One warm-up rank fills the doc-distribution cache (and pays any
		// first-use allocation) outside the measured window.
		res, err := plan.RankInto(sc, req)
		if err != nil {
			return err
		}
		got := len(res)
		var ranks int
		started := time.Now()
		for time.Since(started) < cfg.Duration {
			if _, err := plan.RankInto(sc, req); err != nil {
				return err
			}
			ranks++
		}
		elapsed := time.Since(started)
		nsPer := float64(elapsed.Nanoseconds()) / float64(ranks)
		if k == 0 {
			baseNs = nsPer
		}
		speedup := "—"
		if k != 0 && baseNs > 0 {
			speedup = fmt.Sprintf("×%.2f", baseNs/nsPer)
		}
		label := "full"
		if k > 0 {
			label = fmt.Sprintf("%d", k)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%s\n",
			label, got, nsPer, float64(ranks)/elapsed.Seconds(), speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	hp := core.ReadHotPathStats()
	fmt.Printf("hot path: scratch gets=%d (fresh %d), doc-dist cache hits=%d misses=%d\n",
		hp.ScratchGets, hp.ScratchNews, hp.DocCacheHits, hp.DocCacheMisses)
	return nil
}
