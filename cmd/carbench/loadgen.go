package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// loadgenConfig parametrizes the serve-layer load generator.
type loadgenConfig struct {
	Spec        workload.Spec
	Rules       int           // preference rules registered up front
	Clients     int           // concurrent goroutine clients
	Duration    time.Duration // wall-clock run length
	Churn       int           // every Churn ranks a client rotates its session context (0 = never)
	AssertEvery time.Duration // background fact-assertion interval, bumps the epoch (0 = off)
	CacheSize   int
	CtxProb     float64 // membership probability of session measurements; < 1 declares (and retires) basic events per apply
}

// runServeLoadgen stands up the full serving stack — System + facade +
// sessions + cache + HTTP — on a loopback listener and drives it with N
// goroutine clients ranking the TV-watcher dataset over real HTTP. It
// reports sustained throughput, cache effectiveness and tail latency: the
// evidence that the serve layer turns the single-user reproduction into a
// concurrent service.
func runServeLoadgen(cfg loadgenConfig) error {
	sys := contextrank.NewSystem()
	d, err := workload.LoadBench(sys.Loader(), sys.Rules(), cfg.Spec, cfg.Rules)
	if err != nil {
		return err
	}

	srv := serve.NewServer(sys, serve.Options{CacheSize: cfg.CacheSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: serve.NewHandler(srv)}
	go httpSrv.Serve(ln) //nolint:errcheck // closed via ln.Close at the end
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}

	fmt.Printf("dataset: %d tuples, %d rules; %d clients for %s at %s\n",
		d.TupleCount, cfg.Rules, cfg.Clients, cfg.Duration, base)

	// Memory column: heap and event-space size before vs. after the run.
	// With -churn and -ctxprob < 1 every session update declares fresh
	// basic events, so a flat events count here is the observable proof
	// that retirement keeps the space bounded under churn.
	runtime.GC()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	eventsBefore := sys.DB().Space().Len()

	var (
		totalRanks atomic.Int64
		errCount   atomic.Int64
		firstErr   atomic.Value
	)
	started := time.Now()
	deadline := started.Add(cfg.Duration)

	// Optional background mutator: asserts fresh watched-tuples through the
	// write path so the run exercises epoch invalidation under load.
	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	if cfg.AssertEvery > 0 {
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			tick := time.NewTicker(cfg.AssertEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stopMut:
					return
				case <-tick.C:
					body := fmt.Sprintf(
						`{"roles":[{"role":"watched","src":"person%04d","dst":"tv%03d","prob":0.9}]}`,
						i%cfg.Spec.Persons, i%cfg.Spec.Programs)
					resp, err := client.Post(base+"/v1/assert", "application/json", bytes.NewBufferString(body))
					if err != nil {
						record(&errCount, &firstErr, fmt.Errorf("assert: %w", err))
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						record(&errCount, &firstErr, fmt.Errorf("assert: %s", resp.Status))
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			user := fmt.Sprintf("person%04d", c%cfg.Spec.Persons)
			phase := 0
			setCtx := func() bool {
				// Each client holds a membership (certain by default,
				// uncertain with -ctxprob < 1) in a rotating subset of the
				// bench context concepts.
				var ms []string
				for i := 0; i < cfg.Rules; i++ {
					if (i+phase)%2 == 0 {
						ms = append(ms, fmt.Sprintf(`{"concept":%q,"prob":%g}`, workload.BenchContextConcept(i), cfg.CtxProb))
					}
				}
				body := fmt.Sprintf(`{"measurements":[%s]}`, strings.Join(ms, ","))
				req, _ := http.NewRequest(http.MethodPut, base+"/v1/sessions/"+user+"/context", bytes.NewBufferString(body))
				resp, err := client.Do(req)
				if err != nil {
					record(&errCount, &firstErr, err)
					return false
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					record(&errCount, &firstErr, fmt.Errorf("session update: %s", resp.Status))
					return false
				}
				return true
			}
			if !setCtx() {
				return
			}
			rankBody := []byte(fmt.Sprintf(`{"user":%q,"target":"TvProgram","limit":10}`, user))
			n := 0
			for time.Now().Before(deadline) {
				resp, err := client.Post(base+"/v1/rank", "application/json", bytes.NewBuffer(rankBody))
				if err != nil {
					record(&errCount, &firstErr, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					record(&errCount, &firstErr, fmt.Errorf("rank: %s", resp.Status))
					return
				}
				// Drain so the connection is reused.
				var rr struct {
					Results []struct {
						ID string `json:"id"`
					} `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					record(&errCount, &firstErr, err)
					return
				}
				totalRanks.Add(1)
				n++
				if cfg.Churn > 0 && n%cfg.Churn == 0 {
					phase++
					if !setCtx() {
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(started)
	close(stopMut)
	mutWG.Wait()

	st := srv.Stats()
	ranks := totalRanks.Load()
	fmt.Printf("ranks: %d in %.2fs → %.0f req/s across %d clients\n",
		ranks, elapsed.Seconds(), float64(ranks)/elapsed.Seconds(), cfg.Clients)
	fmt.Printf("cache: %s\n", st.Cache)
	fmt.Printf("latency: mean %.0fµs p50 %.0fµs p95 %.0fµs p99 %.0fµs (server-side; %d observations, percentiles over last %d)\n",
		st.Latency.MeanMicros, st.Latency.P50Micros, st.Latency.P95Micros, st.Latency.P99Micros,
		st.Latency.Count, st.Latency.Window)
	fmt.Printf("epoch: %d, sessions: %d\n", st.Epoch, st.Sessions)
	runtime.GC()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	fmt.Printf("memory: heap %.1f → %.1f MB; event space %d → %d basics (ctxprob %g; bounded = retirement works)\n",
		float64(memBefore.HeapAlloc)/(1<<20), float64(memAfter.HeapAlloc)/(1<<20),
		eventsBefore, st.Events, cfg.CtxProb)
	if n := errCount.Load(); n > 0 {
		return fmt.Errorf("%d client errors, first: %v", n, firstErr.Load())
	}
	return nil
}

func record(count *atomic.Int64, first *atomic.Value, err error) {
	if count.Add(1) == 1 {
		first.Store(err)
	}
}
