package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/serve/journal"
	"repro/internal/serve/shard"
	"repro/internal/workload"
)

// loadgenConfig parametrizes the serve-layer load generator.
type loadgenConfig struct {
	Spec        workload.Spec
	Rules       int           // preference rules registered up front
	Shards      int           // shard replicas (<=1 runs the unsharded Server)
	Clients     int           // concurrent goroutine clients
	Duration    time.Duration // wall-clock run length
	Churn       int           // every Churn ranks a client rotates its session context (0 = never)
	AssertEvery time.Duration // background fact-assertion interval, a broadcast write under sharding (0 = off)
	CacheSize   int
	CtxProb     float64 // membership probability of session measurements; < 1 declares (and retires) basic events per apply
	JournalDir  string  // when set, session updates ride the write-ahead journal in this directory (fsync per group commit)
	// ForceCoordinator routes even a 1-shard run through shard.Coordinator.
	// The journal A/B comparison sets it on BOTH arms so the measured
	// delta is the WAL alone, not coordinator indirection.
	ForceCoordinator bool
	Quiet            bool // suppress the per-run detail lines (the shard curve prints its own table)
}

// loadgenResult is one load-generation run's outcome, consumed by the
// shard scaling curve.
type loadgenResult struct {
	Shards    int
	Ranks     int64
	Shed      int64 // 429s — reported separately, never folded into errors
	Elapsed   time.Duration
	ReqPerSec float64
	Stats     serve.Stats
}

// runServeLoadgen stands up the full serving stack — N sharded Systems +
// facades + sessions + caches + HTTP — on a loopback listener and drives
// it with concurrent goroutine clients ranking the TV-watcher dataset
// over real HTTP, with per-client session churn supplying the "apply"
// half of the mixed apply+rank workload. It reports sustained throughput,
// cache effectiveness and tail latency: the evidence that the serve layer
// turns the single-user reproduction into a concurrent service, and (via
// -shards) that sharding turns one write-serialized System into N
// independent ones.
func runServeLoadgen(cfg loadgenConfig) (loadgenResult, error) {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	build := func(int) (*contextrank.System, error) {
		sys := contextrank.NewSystem()
		if _, err := workload.LoadBench(sys.Loader(), sys.Rules(), cfg.Spec, cfg.Rules); err != nil {
			return nil, err
		}
		return sys, nil
	}
	var backend serve.Backend
	if shards > 1 || cfg.JournalDir != "" || cfg.ForceCoordinator {
		// Journaled runs go through the coordinator even at one shard:
		// Recover owns the journal generation lifecycle.
		coord, err := shard.New(shards, build, serve.Options{CacheSize: cfg.CacheSize})
		if err != nil {
			return loadgenResult{}, err
		}
		if cfg.JournalDir != "" {
			if _, err := coord.Recover(cfg.JournalDir, journal.Options{}); err != nil {
				return loadgenResult{}, err
			}
			defer coord.CloseJournals() //nolint:errcheck // best-effort teardown after the measurement window
		}
		backend = coord
	} else {
		sys, err := build(0)
		if err != nil {
			return loadgenResult{}, err
		}
		backend = serve.NewServer(sys, serve.Options{CacheSize: cfg.CacheSize})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgenResult{}, err
	}
	httpSrv := &http.Server{Handler: serve.NewHandlerFor(backend)}
	go httpSrv.Serve(ln) //nolint:errcheck // closed via ln.Close at the end
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}

	if !cfg.Quiet {
		fmt.Printf("dataset: %d rules ×%d shard(s); %d clients for %s at %s\n",
			cfg.Rules, shards, cfg.Clients, cfg.Duration, base)
	}

	// Memory column: heap and event-space size before vs. after the run.
	// With -churn and -ctxprob < 1 every session update declares fresh
	// basic events, so a flat events count here is the observable proof
	// that retirement keeps the space bounded under churn.
	runtime.GC()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	eventsBefore := backend.Stats().Events

	var (
		totalRanks atomic.Int64
		shedCount  atomic.Int64
		errCount   atomic.Int64
		firstErr   atomic.Value
	)
	started := time.Now()
	deadline := started.Add(cfg.Duration)

	// Optional background mutator: asserts fresh watched-tuples through the
	// write path so the run exercises epoch invalidation under load — and,
	// under sharding, the cross-shard broadcast path.
	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	if cfg.AssertEvery > 0 {
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			tick := time.NewTicker(cfg.AssertEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stopMut:
					return
				case <-tick.C:
					body := fmt.Sprintf(
						`{"roles":[{"role":"watched","src":"person%04d","dst":"tv%03d","prob":0.9}]}`,
						i%cfg.Spec.Persons, i%cfg.Spec.Programs)
					resp, err := client.Post(base+"/v1/assert", "application/json", bytes.NewBufferString(body))
					if err != nil {
						record(&errCount, &firstErr, fmt.Errorf("assert: %w", err))
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						record(&errCount, &firstErr, fmt.Errorf("assert: %s", resp.Status))
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			user := fmt.Sprintf("person%04d", c%cfg.Spec.Persons)
			phase := 0
			setCtx := func() bool {
				// Each client holds a membership (certain by default,
				// uncertain with -ctxprob < 1) in a rotating subset of the
				// bench context concepts.
				var ms []string
				for i := 0; i < cfg.Rules; i++ {
					if (i+phase)%2 == 0 {
						ms = append(ms, fmt.Sprintf(`{"concept":%q,"prob":%g}`, workload.BenchContextConcept(i), cfg.CtxProb))
					}
				}
				body := fmt.Sprintf(`{"measurements":[%s]}`, strings.Join(ms, ","))
				req, _ := http.NewRequest(http.MethodPut, base+"/v1/sessions/"+user+"/context", bytes.NewBufferString(body))
				resp, err := client.Do(req)
				if err != nil {
					record(&errCount, &firstErr, err)
					return false
				}
				retryAfter := retryAfterDelay(resp, 50*time.Millisecond)
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					// Shed, not broken: count it separately, honor the
					// retry hint, and let the next churn point try again.
					shedCount.Add(1)
					time.Sleep(retryAfter)
					return true
				}
				if resp.StatusCode != http.StatusOK {
					record(&errCount, &firstErr, fmt.Errorf("session update: %s", resp.Status))
					return false
				}
				return true
			}
			if !setCtx() {
				return
			}
			rankBody := []byte(fmt.Sprintf(`{"user":%q,"target":"TvProgram","limit":10}`, user))
			n := 0
			for time.Now().Before(deadline) {
				resp, err := client.Post(base+"/v1/rank", "application/json", bytes.NewBuffer(rankBody))
				if err != nil {
					record(&errCount, &firstErr, err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					retryAfter := retryAfterDelay(resp, 50*time.Millisecond)
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
					resp.Body.Close()
					shedCount.Add(1)
					time.Sleep(retryAfter)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					record(&errCount, &firstErr, fmt.Errorf("rank: %s", resp.Status))
					return
				}
				// Drain so the connection is reused.
				var rr struct {
					Results []struct {
						ID string `json:"id"`
					} `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					record(&errCount, &firstErr, err)
					return
				}
				totalRanks.Add(1)
				n++
				if cfg.Churn > 0 && n%cfg.Churn == 0 {
					phase++
					if !setCtx() {
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(started)
	close(stopMut)
	mutWG.Wait()

	st := backend.Stats()
	ranks := totalRanks.Load()
	out := loadgenResult{
		Shards:    shards,
		Ranks:     ranks,
		Shed:      shedCount.Load(),
		Elapsed:   elapsed,
		ReqPerSec: float64(ranks) / elapsed.Seconds(),
		Stats:     st,
	}
	if !cfg.Quiet {
		fmt.Printf("ranks: %d in %.2fs → %.0f req/s across %d clients\n",
			ranks, elapsed.Seconds(), out.ReqPerSec, cfg.Clients)
		if out.Shed > 0 {
			fmt.Printf("shed: %d requests answered 429 (admission control; not counted as errors)\n", out.Shed)
		}
		fmt.Printf("cache: %s\n", st.Cache)
		fmt.Printf("latency: mean %.0fµs p50 %.0fµs p95 %.0fµs p99 %.0fµs (server-side; %d observations, percentiles over last %d)\n",
			st.Latency.MeanMicros, st.Latency.P50Micros, st.Latency.P95Micros, st.Latency.P99Micros,
			st.Latency.Count, st.Latency.Window)
		fmt.Printf("epoch: %d, sessions: %d\n", st.Epoch, st.Sessions)
		if st.Broadcast != nil && st.Broadcast.Writes > 0 {
			fmt.Printf("broadcast: %d cross-shard writes, mean %.0fµs, max %.0fµs (slowest shard per write)\n",
				st.Broadcast.Writes, st.Broadcast.MeanMicros, st.Broadcast.MaxMicros)
		}
		if j := st.Journal; j != nil && j.Appends > 0 {
			fmt.Printf("journal: %d appends in %d group commits (%.1f records/fsync), %d compactions, %d live / %d total records, %.1f KB\n",
				j.Appends, j.Batches, float64(j.Appends)/float64(j.Batches),
				j.Compactions, j.LiveRecords, j.TotalRecords, float64(j.Bytes)/1024)
		}
		runtime.GC()
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		fmt.Printf("memory: heap %.1f → %.1f MB; event space %d → %d basics (ctxprob %g; bounded = retirement works)\n",
			float64(memBefore.HeapAlloc)/(1<<20), float64(memAfter.HeapAlloc)/(1<<20),
			eventsBefore, st.Events, cfg.CtxProb)
	}
	if n := errCount.Load(); n > 0 {
		return out, fmt.Errorf("%d client errors, first: %v", n, firstErr.Load())
	}
	return out, nil
}

// runServeShardCurve runs the load generator once per shard count and
// prints the scaling curve: aggregate rank throughput, speedup over one
// shard, worst-shard p95 and the cross-shard-broadcast latency column.
// The workload is mixed apply+rank — every client rotates its session
// context every cfg.Churn ranks (defaulted below), and the background
// mutator broadcasts an assertion every cfg.AssertEvery (defaulted below)
// — because a pure cached-rank workload would hide exactly the lock
// contention sharding removes.
func runServeShardCurve(cfg loadgenConfig, counts []int) error {
	// The curve always runs on the serving-contention dataset: many
	// persons (sessions — the work sharding shrinks), small catalog
	// (cheap individual ranks). See workload.ServeSpec.
	cfg.Spec = workload.ServeSpec()
	if cfg.Churn <= 0 {
		cfg.Churn = 2
	}
	if cfg.AssertEvery <= 0 {
		// Broadcast writes bump every shard's epoch, and the recompute
		// storm after a bump is per-rank work sharding cannot shrink: a
		// too-frequent mutator measures the ranker, not the serving
		// layer. A couple of writes per run keeps the broadcast-latency
		// column populated without drowning the apply signal.
		cfg.AssertEvery = 2 * time.Second
	}
	cfg.Quiet = true
	fmt.Printf("mixed workload: %d clients over %d persons, session churn every %d ranks, broadcast assert every %s, %s per point\n",
		cfg.Clients, cfg.Spec.Persons, cfg.Churn, cfg.AssertEvery, cfg.Duration)
	fmt.Printf("%-7s %10s %12s %9s %12s %12s %14s\n",
		"shards", "ranks", "req/s", "speedup", "p95(µs)", "epoch", "broadcast(µs)")
	var base float64
	results := make([]loadgenResult, 0, len(counts))
	for _, n := range counts {
		c := cfg
		c.Shards = n
		res, err := runServeLoadgen(c)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
		results = append(results, res)
		if base == 0 {
			base = res.ReqPerSec
		}
		bcast := "-"
		if b := res.Stats.Broadcast; b != nil && b.Writes > 0 {
			bcast = fmt.Sprintf("%.0f", b.MeanMicros)
		}
		fmt.Printf("%-7d %10d %12.0f %8.2fx %12.0f %12d %14s\n",
			n, res.Ranks, res.ReqPerSec, res.ReqPerSec/base,
			res.Stats.Latency.P95Micros, res.Stats.Epoch, bcast)
	}
	if len(results) > 1 {
		last := results[len(results)-1]
		fmt.Printf("scaling: %d shards serve %.2fx the aggregate rank throughput of 1 shard\n",
			last.Shards, last.ReqPerSec/base)
	}
	return nil
}

// runJournalLoadgen measures what session durability costs under the
// mixed apply+rank HTTP workload: the same load generation twice — once
// without a journal, once with the WAL fsyncing every session
// acknowledgement — and prints the throughput delta plus the journal's
// group-commit and compaction counters. Because the rank path never
// touches the journal, the overhead should track the session-apply
// fraction of the workload (cfg.Churn), not the rank volume.
func runJournalLoadgen(cfg loadgenConfig) error {
	if cfg.Churn <= 0 {
		// Journaling costs nothing without session applies; default to a
		// write-heavy mix so the fsync path is actually on the clock.
		cfg.Churn = 4
	}
	cfg.Quiet = true
	fmt.Printf("mixed workload: %d clients, session churn every %d ranks, %d shard(s), %s per run\n",
		cfg.Clients, cfg.Churn, max(cfg.Shards, 1), cfg.Duration)

	// Both arms run the identical stack — coordinator included — so the
	// delta isolates the WAL.
	cfg.ForceCoordinator = true
	off := cfg
	off.JournalDir = ""
	baseRes, err := runServeLoadgen(off)
	if err != nil {
		return fmt.Errorf("journal off: %w", err)
	}

	on := cfg
	dir, err := os.MkdirTemp("", "carbench-journal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	on.JournalDir = dir
	jRes, err := runServeLoadgen(on)
	if err != nil {
		return fmt.Errorf("journal on: %w", err)
	}

	fmt.Printf("%-12s %10s %12s %12s %12s\n", "journal", "ranks", "req/s", "p95(µs)", "sessions")
	for _, row := range []struct {
		name string
		res  loadgenResult
	}{{"off", baseRes}, {"on (fsync)", jRes}} {
		fmt.Printf("%-12s %10d %12.0f %12.0f %12d\n", row.name, row.res.Ranks, row.res.ReqPerSec,
			row.res.Stats.Latency.P95Micros, row.res.Stats.Sessions)
	}
	overhead := (baseRes.ReqPerSec - jRes.ReqPerSec) / baseRes.ReqPerSec * 100
	fmt.Printf("mixed-workload throughput delta with durable sessions: %.1f%%\n", overhead)
	fmt.Printf("(the delta is the session-apply fraction paying fsync — 1 in %d requests here; the rank\n", cfg.Churn+1)
	fmt.Printf(" path never touches the journal, which CI proves separately: BenchmarkServeRankWithJournal\n")
	fmt.Printf(" must stay within 5%% of BenchmarkServeRankCached)\n")
	if j := jRes.Stats.Journal; j != nil && j.Batches > 0 {
		fmt.Printf("journal: %d appends in %d group commits (%.1f records/fsync), %d compactions, %d live / %d total records\n",
			j.Appends, j.Batches, float64(j.Appends)/float64(j.Batches),
			j.Compactions, j.LiveRecords, j.TotalRecords)
	}
	return nil
}

// runRankBatchLoadgen measures the /v1/rank/batch amortization curve: for
// each batch size B, concurrent clients alternate a session-context update
// (which bumps the context epoch and invalidates every compiled rank plan)
// with one batch of B candidate-list items. The per-request plan compile is
// the fixed cost batching spreads: items/s should grow with B until
// per-item scoring dominates. Candidate-list items bypass the rank-result
// cache, so the curve measures the ranking path, not cache hits.
func runRankBatchLoadgen(cfg loadgenConfig, sizes []int) error {
	sys := contextrank.NewSystem()
	if _, err := workload.LoadBench(sys.Loader(), sys.Rules(), cfg.Spec, cfg.Rules); err != nil {
		return err
	}
	backend := serve.NewServer(sys, serve.Options{CacheSize: cfg.CacheSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: serve.NewHandlerFor(backend)}
	go httpSrv.Serve(ln) //nolint:errcheck // closed via ln.Close at the end
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}

	// Fixed-size candidate chunks over the catalog; successive items rotate
	// through them so batch items differ.
	const chunk = 10
	var chunks []string
	for start := 0; start+chunk <= cfg.Spec.Programs || start == 0; start += chunk {
		ids := make([]string, 0, chunk)
		for i := 0; i < chunk && start+i < cfg.Spec.Programs; i++ {
			ids = append(ids, fmt.Sprintf(`"tv%03d"`, start+i))
		}
		chunks = append(chunks, "["+strings.Join(ids, ",")+"]")
	}

	fmt.Printf("dataset: %d rules, %d programs; %d clients for %s per point, session churn before every batch (ctxprob %g)\n",
		cfg.Rules, cfg.Spec.Programs, cfg.Clients, cfg.Duration, cfg.CtxProb)
	fmt.Printf("%-7s %10s %10s %12s %14s %9s\n", "batch", "batches", "items", "items/s", "µs/item", "speedup")
	var base1 float64
	for _, bsz := range sizes {
		var (
			batches  atomic.Int64
			sheds    atomic.Int64
			errCount atomic.Int64
			firstErr atomic.Value
		)
		started := time.Now()
		deadline := started.Add(cfg.Duration)
		var wg sync.WaitGroup
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				user := fmt.Sprintf("person%04d", c%cfg.Spec.Persons)
				for n := 0; time.Now().Before(deadline); n++ {
					ctxBody := fmt.Sprintf(`{"measurements":[{"concept":%q,"prob":%g}]}`,
						workload.BenchContextConcept(n%cfg.Rules), cfg.CtxProb)
					req, _ := http.NewRequest(http.MethodPut, base+"/v1/sessions/"+user+"/context", bytes.NewBufferString(ctxBody))
					resp, err := client.Do(req)
					if err != nil {
						record(&errCount, &firstErr, err)
						return
					}
					retryAfter := retryAfterDelay(resp, 50*time.Millisecond)
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						sheds.Add(1)
						time.Sleep(retryAfter)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						record(&errCount, &firstErr, fmt.Errorf("session update: %s", resp.Status))
						return
					}
					items := make([]string, bsz)
					for i := range items {
						items[i] = fmt.Sprintf(`{"candidates":%s,"limit":5}`, chunks[(n+i)%len(chunks)])
					}
					body := fmt.Sprintf(`{"user":%q,"items":[%s]}`, user, strings.Join(items, ","))
					resp, err = client.Post(base+"/v1/rank/batch", "application/json", bytes.NewBufferString(body))
					if err != nil {
						record(&errCount, &firstErr, err)
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						retryAfter := retryAfterDelay(resp, 50*time.Millisecond)
						io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
						resp.Body.Close()
						sheds.Add(1)
						time.Sleep(retryAfter)
						continue
					}
					var br struct {
						Items []struct {
							Error string `json:"error"`
						} `json:"items"`
					}
					err = json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					if err != nil {
						record(&errCount, &firstErr, err)
						return
					}
					if resp.StatusCode != http.StatusOK || len(br.Items) != bsz {
						record(&errCount, &firstErr, fmt.Errorf("batch: %s (%d items)", resp.Status, len(br.Items)))
						return
					}
					for _, it := range br.Items {
						if it.Error != "" {
							record(&errCount, &firstErr, fmt.Errorf("batch item: %s", it.Error))
							return
						}
					}
					batches.Add(1)
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(started)
		if n := errCount.Load(); n > 0 {
			return fmt.Errorf("batch=%d: %d client errors, first: %v", bsz, n, firstErr.Load())
		}
		nb := batches.Load()
		items := nb * int64(bsz)
		itemsPerSec := float64(items) / elapsed.Seconds()
		usPerItem := 0.0
		if items > 0 {
			usPerItem = elapsed.Seconds() / float64(items) * 1e6 * float64(cfg.Clients)
		}
		if base1 == 0 {
			base1 = itemsPerSec
		}
		fmt.Printf("%-7d %10d %10d %12.0f %14.1f %8.2fx\n",
			bsz, nb, items, itemsPerSec, usPerItem, itemsPerSec/base1)
		if n := sheds.Load(); n > 0 {
			fmt.Printf("        (%d requests shed with 429 by admission control; not errors)\n", n)
		}
	}
	fmt.Printf("speedup = ranked items/s relative to batch=%d (each batch pays one session apply + one plan compile)\n", sizes[0])
	return nil
}

func record(count *atomic.Int64, first *atomic.Value, err error) {
	if count.Add(1) == 1 {
		first.Store(err)
	}
}
