// Command carsql is a small SQL shell over the embedded probabilistic
// relational engine — useful for inspecting the concept/role tables and the
// compiled preference views (§5's "uniform tabular view towards both static
// and dynamic contexts").
//
// With -demo it preloads the paper's Table 1 example so concept tables
// (c_TvProgram, r_hasGenre, …) and the EVENT builtins (PROB, EV_AND, …) can
// be explored immediately:
//
//	$ carsql -demo
//	sql> SELECT id, PROB(ev) FROM c_TvProgram ORDER BY id;
//
// Meta commands: \t lists tables, \v lists views, \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	demo := flag.Bool("demo", false, "preload the paper's Table 1 example data")
	flag.Parse()

	var db *engine.DB
	if *demo {
		loader, _, err := experiments.SetupTable1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "carsql:", err)
			os.Exit(1)
		}
		db = loader.DB()
		fmt.Println("loaded Table 1 demo: tables c_TvProgram, r_hasGenre, r_hasSubject, c_Weekend, c_Breakfast, dl_domain")
	} else {
		db = engine.New()
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("sql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q` || line == "quit" || line == "exit":
			return
		case line == `\t`:
			for _, t := range db.TableNames() {
				fmt.Println(t)
			}
		case line == `\v`:
			for _, v := range db.ViewNames() {
				fmt.Println(v)
			}
		default:
			res, err := db.Exec(strings.TrimSuffix(line, ";"))
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case res == nil:
				fmt.Println("ok")
			default:
				fmt.Println(strings.Join(res.Cols, " | "))
				for _, row := range res.Rows {
					cells := make([]string, len(row))
					for i, v := range row {
						cells[i] = v.String()
					}
					fmt.Println(strings.Join(cells, " | "))
				}
				fmt.Printf("(%d rows)\n", len(res.Rows))
			}
		}
		fmt.Print("sql> ")
	}
}
