package contextrank

import (
	"math"
	"strconv"
	"testing"
)

func TestRankQueryIntegratesUserQuery(t *testing.T) {
	sys := buildTVTouch(t)
	// The user's query restricts candidates to 2007-ish programs via SQL:
	// here, everything except MPFS (simulated by an explicit filter on the
	// concept table joined with a scratch attribute table).
	if _, err := sys.Exec("CREATE TABLE meta (id TEXT, year INT)"); err != nil {
		t.Fatal(err)
	}
	for id, year := range map[string]int{
		"Oprah": 2006, "BBCNews": 2007, "Channel5News": 2007, "MPFS": 1970,
	} {
		if _, err := sys.Exec(
			"INSERT INTO meta VALUES ('" + id + "', " + strconv.Itoa(year) + ")"); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sys.RankQuery("peter",
		"SELECT id FROM meta WHERE year >= 2006", RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	// MPFS was filtered by the query (query-dependent part 0); the rest
	// carry their Table 1 scores.
	want := map[string]float64{"Channel5News": 0.6006, "BBCNews": 0.18, "Oprah": 0.071}
	for _, r := range results {
		if math.Abs(r.Score-want[r.ID]) > 1e-9 {
			t.Fatalf("score(%s) = %g", r.ID, r.Score)
		}
	}
	if results[0].ID != "Channel5News" {
		t.Fatalf("order = %v", results)
	}
}

func TestRankQueryPaperIntroShape(t *testing.T) {
	// The paper's introductory query: preferencescore > 0.5, descending.
	sys := buildTVTouch(t)
	results, err := sys.RankQuery("peter",
		"SELECT id FROM c_TvProgram", RankOptions{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "Channel5News" {
		t.Fatalf("results = %v", results)
	}
}

func TestRankQueryAlgorithmsAndErrors(t *testing.T) {
	sys := buildTVTouch(t)
	if _, err := sys.RankQuery("peter", "SELECT id FROM c_TvProgram",
		RankOptions{Algorithm: AlgorithmNaive}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RankQuery("peter", "SELECT id FROM c_TvProgram",
		RankOptions{Algorithm: AlgorithmSampled}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RankQuery("peter", "SELECT id FROM c_TvProgram",
		RankOptions{Algorithm: AlgorithmView}); err == nil {
		t.Fatal("view algorithm accepted for RankQuery")
	}
	if _, err := sys.RankQuery("peter", "SELECT id FROM c_TvProgram",
		RankOptions{Algorithm: "bogus"}); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if _, err := sys.RankQuery("peter", "SELECT nope FROM c_TvProgram", RankOptions{}); err == nil {
		t.Fatal("bad SQL accepted")
	}
	// First column must be a TEXT id.
	if _, err := sys.Exec("CREATE TABLE nums (n INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec("INSERT INTO nums VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RankQuery("peter", "SELECT n FROM nums", RankOptions{}); err == nil {
		t.Fatal("non-text id column accepted")
	}
}

func TestRankQueryDeduplicatesCandidates(t *testing.T) {
	sys := buildTVTouch(t)
	results, err := sys.RankQuery("peter",
		"SELECT id FROM c_TvProgram UNION ALL SELECT id FROM c_TvProgram", RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("duplicates not removed: %v", results)
	}
}
