// Serving-layer benchmarks: cache hit-rate and concurrent throughput of
// internal/serve over the §5 TV-watcher dataset. They live in the external
// test package because internal/serve imports this package.
//
// The headline number is BenchmarkServeRankCached: a cache hit must be at
// least ~5× cheaper than an uncached factorized Rank (in practice it is
// orders of magnitude cheaper — a map lookup versus view compilation and
// event-probability evaluation).
package contextrank_test

import (
	"fmt"
	"path/filepath"
	"testing"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/serve/journal"
	"repro/internal/workload"
)

// benchServer builds the full serving stack over the scaled-down
// TV-watcher dataset with k preference rules and per-user sessions.
func benchServer(b *testing.B, k, sessions int) (*serve.Server, []string) {
	b.Helper()
	sys := contextrank.NewSystem()
	if _, err := workload.LoadBench(sys.Loader(), sys.Rules(), workload.SmallSpec(), k); err != nil {
		b.Fatal(err)
	}
	srv := serve.NewServer(sys, serve.Options{})
	users := make([]string, sessions)
	for u := 0; u < sessions; u++ {
		users[u] = fmt.Sprintf("person%04d", u)
		var ms []serve.Measurement
		for i := 0; i < k; i++ {
			if (i+u)%2 == 0 {
				ms = append(ms, serve.Measurement{Concept: workload.BenchContextConcept(i), Prob: 1})
			}
		}
		if _, err := srv.Sessions().Set(users[u], ms); err != nil {
			b.Fatal(err)
		}
	}
	return srv, users
}

// BenchmarkServeRankCached contrasts the uncached facade read path with a
// cache hit for the same request — the speedup the session/cache layer
// buys for repeated queries under an unchanged context and epoch.
func BenchmarkServeRankCached(b *testing.B) {
	const k = 4
	opts := contextrank.RankOptions{Limit: 10}

	b.Run("uncached", func(b *testing.B) {
		srv, users := benchServer(b, k, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Facade().RankWith(users[0], "TvProgram", opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		srv, users := benchServer(b, k, 1)
		// Prime the single entry, then measure pure hits.
		if _, _, err := srv.Rank(users[0], "TvProgram", opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, meta, err := srv.Rank(users[0], "TvProgram", opts)
			if err != nil {
				b.Fatal(err)
			}
			if !meta.Cached || len(res) == 0 {
				b.Fatalf("iteration %d missed the cache (cached=%v, %d results)", i, meta.Cached, len(res))
			}
		}
	})
}

// BenchmarkServeRankWithJournal is BenchmarkServeRankCached with the
// session write-ahead log attached (real fsync on every session apply):
// the rank path never touches the journal, so sub-benchmark for
// sub-benchmark the numbers must track BenchmarkServeRankCached within
// noise. CI's bench-journal job enforces exactly that (<5% delta) by
// renaming this benchmark's output and diffing it against
// BenchmarkServeRankCached with benchcheck — the proof that session
// durability is free on the serving hot path.
func BenchmarkServeRankWithJournal(b *testing.B) {
	const k = 4
	opts := contextrank.RankOptions{Limit: 10}
	journaled := func(b *testing.B) (*serve.Server, []string) {
		srv, users := benchServer(b, k, 0)
		j, _, err := journal.Open(filepath.Join(b.TempDir(), "sessions.wal"), journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { j.Close() })
		srv.AttachJournal(j)
		// The session lands after the attach so it takes the journaled
		// path, mirroring benchServer's session setup.
		user := "person0000"
		if _, err := srv.Sessions().Set(user, []serve.Measurement{
			{Concept: workload.BenchContextConcept(0), Prob: 1},
			{Concept: workload.BenchContextConcept(2), Prob: 1},
		}); err != nil {
			b.Fatal(err)
		}
		return srv, append(users, user)
	}

	b.Run("uncached", func(b *testing.B) {
		srv, users := journaled(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Facade().RankWith(users[0], "TvProgram", opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		srv, users := journaled(b)
		if _, _, err := srv.Rank(users[0], "TvProgram", opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, meta, err := srv.Rank(users[0], "TvProgram", opts)
			if err != nil {
				b.Fatal(err)
			}
			if !meta.Cached || len(res) == 0 {
				b.Fatalf("iteration %d missed the cache (cached=%v, %d results)", i, meta.Cached, len(res))
			}
		}
	})
}

// BenchmarkServeRankConcurrent measures aggregate throughput with many
// goroutines ranking as different sessioned users through the cache — the
// serving layer's steady state.
func BenchmarkServeRankConcurrent(b *testing.B) {
	const k = 4
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			srv, users := benchServer(b, k, sessions)
			opts := contextrank.RankOptions{Limit: 10}
			// Warm one entry per user so the measurement is the serving
			// steady state, not first-touch compilation.
			for _, u := range users {
				if _, _, err := srv.Rank(u, "TvProgram", opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					u := users[i%len(users)]
					i++
					if _, _, err := srv.Rank(u, "TvProgram", opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkServeRankBatch measures the batched rank endpoint under
// per-iteration session churn — the workload batching exists for: every
// iteration invalidates the user's compiled plan (context epoch bump), so
// a batch of B candidate-list items pays one plan compile where B single
// ranks would pay B. ns/op is one churn + one batch; compare batch=1
// against batch=8 divided by item count for the per-item amortization.
func BenchmarkServeRankBatch(b *testing.B) {
	const k = 8
	candidates := [][]string{
		{"tv000", "tv001", "tv002", "tv003", "tv004"},
		{"tv005", "tv006", "tv007", "tv008", "tv009"},
		{"tv010", "tv011", "tv012", "tv013", "tv014"},
		{"tv001", "tv003", "tv005", "tv007", "tv009"},
		{"tv000", "tv002", "tv004", "tv006", "tv008"},
		{"tv002", "tv005", "tv008", "tv011", "tv014"},
		{"tv000", "tv004", "tv008", "tv012", "tv001"},
		{"tv003", "tv006", "tv009", "tv012", "tv000"},
	}
	for _, batch := range []int{1, 8} {
		b.Run(fmt.Sprintf("churn/batch=%d", batch), func(b *testing.B) {
			srv, users := benchServer(b, k, 1)
			user := users[0]
			items := make([]serve.RankItem, batch)
			for i := range items {
				items[i] = serve.RankItem{Candidates: candidates[i%len(candidates)]}
			}
			ms := []serve.Measurement{{Concept: workload.BenchContextConcept(0), Prob: 0.9}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms[0].Prob = 0.5 + float64(i%50)/100
				if _, err := srv.Sessions().Set(user, ms); err != nil {
					b.Fatal(err)
				}
				res, _, err := srv.RankBatch(user, "", items)
				if err != nil {
					b.Fatal(err)
				}
				for _, item := range res {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				}
			}
		})
	}
}

// BenchmarkServeMutationInvalidation measures the worst case for the
// cache: every rank preceded by an epoch-bumping mutation, so nothing is
// ever served from cache and each request pays recompute + invalidation.
func BenchmarkServeMutationInvalidation(b *testing.B) {
	const k = 4
	srv, users := benchServer(b, k, 1)
	opts := contextrank.RankOptions{Limit: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Facade().AssertRole("watched", users[0], fmt.Sprintf("tv%03d", i%15), 0.9); err != nil {
			b.Fatal(err)
		}
		if _, meta, err := srv.Rank(users[0], "TvProgram", opts); err != nil {
			b.Fatal(err)
		} else if meta.Cached {
			b.Fatal("mutation failed to invalidate")
		}
	}
}
