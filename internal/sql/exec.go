package sql

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/event"
	"repro/internal/storage"
)

// Result is a materialized query result.
type Result struct {
	Cols []string
	Rows []storage.Row
}

// Executor runs parsed statements against a catalog, a view registry and a
// runtime. All methods are safe for concurrent use; DDL takes the write
// lock.
type Executor struct {
	catalog *storage.Catalog
	rt      *Runtime

	mu    sync.RWMutex
	views map[string]*SelectStmt
}

// NewExecutor builds an executor over the given catalog and runtime.
func NewExecutor(catalog *storage.Catalog, rt *Runtime) *Executor {
	return &Executor{catalog: catalog, rt: rt, views: make(map[string]*SelectStmt)}
}

// ViewNames returns the sorted registered view names.
func (ex *Executor) ViewNames() []string {
	ex.mu.RLock()
	defer ex.mu.RUnlock()
	out := make([]string, 0, len(ex.views))
	for n := range ex.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasView reports whether a view with the given name is registered.
func (ex *Executor) HasView(name string) bool {
	ex.mu.RLock()
	defer ex.mu.RUnlock()
	_, ok := ex.views[strings.ToLower(name)]
	return ok
}

// ViewDefinition returns the parsed defining query of a registered view.
// The returned statement must not be modified.
func (ex *Executor) ViewDefinition(name string) (*SelectStmt, bool) {
	ex.mu.RLock()
	defer ex.mu.RUnlock()
	sel, ok := ex.views[strings.ToLower(name)]
	return sel, ok
}

// maxViewDepth bounds view expansion to catch accidental cycles.
const maxViewDepth = 64

// Exec parses and runs one SQL statement. SELECT returns a Result; other
// statements return nil or a small informational result.
func (ex *Executor) Exec(src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ex.ExecStmt(stmt)
}

// ExecStmt runs one parsed statement.
func (ex *Executor) ExecStmt(stmt Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return nil, ex.createTable(s)
	case *DropTableStmt:
		if !ex.catalog.Exists(s.Name) && s.IfExists {
			return nil, nil
		}
		return nil, ex.catalog.Drop(s.Name)
	case *CreateViewStmt:
		return nil, ex.createView(s)
	case *DropViewStmt:
		return nil, ex.dropView(s)
	case *CreateIndexStmt:
		tab, err := ex.catalog.Get(s.Table)
		if err != nil {
			return nil, err
		}
		return nil, tab.CreateIndex(s.Column)
	case *InsertStmt:
		return nil, ex.insert(s)
	case *DeleteStmt:
		return ex.delete(s)
	case *UpdateStmt:
		return ex.update(s)
	case *SelectStmt:
		return ex.execSelect(s, 0)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

func (ex *Executor) createTable(s *CreateTableStmt) error {
	if ex.catalog.Exists(s.Name) {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("sql: table %q already exists", s.Name)
	}
	if ex.HasView(s.Name) {
		return fmt.Errorf("sql: a view named %q already exists", s.Name)
	}
	cols := make([]storage.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = storage.Column{Name: c.Name, Type: c.Type}
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		return err
	}
	_, err = ex.catalog.Create(s.Name, schema)
	return err
}

func (ex *Executor) createView(s *CreateViewStmt) error {
	key := strings.ToLower(s.Name)
	if ex.catalog.Exists(s.Name) {
		return fmt.Errorf("sql: a table named %q already exists", s.Name)
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if _, ok := ex.views[key]; ok && !s.OrReplace {
		return fmt.Errorf("sql: view %q already exists", s.Name)
	}
	ex.views[key] = s.Query
	return nil
}

func (ex *Executor) dropView(s *DropViewStmt) error {
	key := strings.ToLower(s.Name)
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if _, ok := ex.views[key]; !ok {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("sql: no view %q", s.Name)
	}
	delete(ex.views, key)
	return nil
}

func (ex *Executor) insert(s *InsertStmt) error {
	tab, err := ex.catalog.Get(s.Table)
	if err != nil {
		return err
	}
	schema := tab.Schema()
	// Map statement columns to schema positions.
	positions := make([]int, 0, schema.Arity())
	if len(s.Columns) == 0 {
		for i := range schema.Columns {
			positions = append(positions, i)
		}
	} else {
		for _, c := range s.Columns {
			idx := schema.ColumnIndex(c)
			if idx < 0 {
				return fmt.Errorf("sql: table %s has no column %q", s.Table, c)
			}
			positions = append(positions, idx)
		}
	}
	empty := &env{rt: ex.rt}
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			return fmt.Errorf("sql: INSERT expects %d values, got %d", len(positions), len(exprRow))
		}
		row := make(storage.Row, schema.Arity())
		for i, x := range exprRow {
			v, err := empty.eval(x)
			if err != nil {
				return err
			}
			row[positions[i]] = v
		}
		if err := tab.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

func (ex *Executor) delete(s *DeleteStmt) (*Result, error) {
	tab, err := ex.catalog.Get(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Schema()
	cols := make([]binding, schema.Arity())
	lname := strings.ToLower(s.Table)
	for i, c := range schema.Columns {
		cols[i] = binding{table: lname, column: strings.ToLower(c.Name)}
	}
	var evalErr error
	n := tab.Delete(func(r storage.Row) bool {
		if s.Where == nil {
			return true
		}
		e := &env{cols: cols, row: r, rt: ex.rt}
		v, err := e.eval(s.Where)
		if err != nil {
			evalErr = err
			return false
		}
		truth, _ := v.Truth()
		return truth
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return &Result{Cols: []string{"deleted"}, Rows: []storage.Row{{storage.Int(int64(n))}}}, nil
}

func (ex *Executor) update(s *UpdateStmt) (*Result, error) {
	tab, err := ex.catalog.Get(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Schema()
	cols := make([]binding, schema.Arity())
	lname := strings.ToLower(s.Table)
	for i, c := range schema.Columns {
		cols[i] = binding{table: lname, column: strings.ToLower(c.Name)}
	}
	positions := make([]int, len(s.Set))
	for i, a := range s.Set {
		idx := schema.ColumnIndex(a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %q", s.Table, a.Column)
		}
		positions[i] = idx
	}
	var evalErr error
	match := func(r storage.Row) bool {
		if s.Where == nil {
			return true
		}
		e := &env{cols: cols, row: r, rt: ex.rt}
		v, err := e.eval(s.Where)
		if err != nil {
			evalErr = err
			return false
		}
		truth, _ := v.Truth()
		return truth
	}
	apply := func(r storage.Row) (storage.Row, error) {
		e := &env{cols: cols, row: r, rt: ex.rt}
		// Evaluate all right-hand sides against the pre-update row first,
		// so "SET a = b, b = a" swaps.
		vals := make([]storage.Value, len(s.Set))
		for i, a := range s.Set {
			v, err := e.eval(a.Value)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		for i, pos := range positions {
			r[pos] = vals[i]
		}
		return r, nil
	}
	n, err := tab.Update(match, apply)
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return &Result{Cols: []string{"updated"}, Rows: []storage.Row{{storage.Int(int64(n))}}}, nil
}

// relation is an intermediate result during FROM processing.
type relation struct {
	cols []binding
	rows []storage.Row
}

func (ex *Executor) execSelect(sel *SelectStmt, depth int) (*Result, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("sql: view nesting exceeds %d (cycle?)", maxViewDepth)
	}
	rel, err := ex.buildFrom(sel.From, depth)
	if err != nil {
		return nil, err
	}
	// WHERE.
	if sel.Where != nil {
		filtered := rel.rows[:0:0]
		for _, r := range rel.rows {
			e := &env{cols: rel.cols, row: r, rt: ex.rt}
			v, err := e.eval(sel.Where)
			if err != nil {
				return nil, err
			}
			if truth, _ := v.Truth(); truth {
				filtered = append(filtered, r)
			}
		}
		rel.rows = filtered
	}

	aggregated := len(sel.GroupBy) > 0 || sel.Having != nil || itemsHaveAggregate(sel.Items)
	var res *Result
	if aggregated {
		res, err = ex.execAggregate(sel, rel)
	} else {
		res, err = ex.execProject(sel, rel)
	}
	if err != nil {
		return nil, err
	}
	if sel.Distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	if len(sel.OrderBy) > 0 {
		if err := ex.orderRows(sel, rel, res, aggregated); err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 && len(res.Rows) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	if sel.Union != nil {
		rest, err := ex.execSelect(sel.Union, depth)
		if err != nil {
			return nil, err
		}
		if len(rest.Cols) != len(res.Cols) {
			return nil, fmt.Errorf("sql: UNION ALL branches have %d and %d columns", len(res.Cols), len(rest.Cols))
		}
		res.Rows = append(res.Rows, rest.Rows...)
	}
	return res, nil
}

func itemsHaveAggregate(items []SelectItem) bool {
	for _, it := range items {
		if !it.Star && hasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// buildFrom assembles the working relation for a FROM clause; a missing FROM
// yields a single empty row.
func (ex *Executor) buildFrom(refs []TableRef, depth int) (*relation, error) {
	if len(refs) == 0 {
		return &relation{rows: []storage.Row{{}}}, nil
	}
	acc, err := ex.resolveRef(refs[0], depth)
	if err != nil {
		return nil, err
	}
	if refs[0].Join != JoinCross || refs[0].On != nil {
		return nil, fmt.Errorf("sql: first FROM item cannot have a join condition")
	}
	for _, ref := range refs[1:] {
		right, err := ex.resolveRef(ref, depth)
		if err != nil {
			return nil, err
		}
		acc, err = ex.join(acc, right, ref.Join, ref.On)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// resolveRef materializes one FROM item: base table, view, or subquery.
func (ex *Executor) resolveRef(ref TableRef, depth int) (*relation, error) {
	name := strings.ToLower(ref.Name())
	if ref.Subquery != nil {
		sub, err := ex.execSelect(ref.Subquery, depth+1)
		if err != nil {
			return nil, err
		}
		return resultToRelation(sub, name), nil
	}
	// View?
	ex.mu.RLock()
	viewSel, isView := ex.views[strings.ToLower(ref.Table)]
	ex.mu.RUnlock()
	if isView {
		sub, err := ex.execSelect(viewSel, depth+1)
		if err != nil {
			return nil, fmt.Errorf("sql: view %s: %w", ref.Table, err)
		}
		return resultToRelation(sub, name), nil
	}
	tab, err := ex.catalog.Get(ref.Table)
	if err != nil {
		return nil, err
	}
	schema := tab.Schema()
	cols := make([]binding, schema.Arity())
	for i, c := range schema.Columns {
		cols[i] = binding{table: name, column: strings.ToLower(c.Name)}
	}
	var rows []storage.Row
	tab.Scan(func(r storage.Row) error {
		rows = append(rows, r)
		return nil
	})
	return &relation{cols: cols, rows: rows}, nil
}

func resultToRelation(res *Result, bindName string) *relation {
	cols := make([]binding, len(res.Cols))
	for i, c := range res.Cols {
		cols[i] = binding{table: bindName, column: strings.ToLower(c)}
	}
	return &relation{cols: cols, rows: res.Rows}
}

// join combines two relations. Equality joins between one column of each
// side use a hash join; everything else is a (filtered) nested loop.
func (ex *Executor) join(left, right *relation, kind JoinKind, on Expr) (*relation, error) {
	outCols := make([]binding, 0, len(left.cols)+len(right.cols))
	outCols = append(outCols, left.cols...)
	outCols = append(outCols, right.cols...)
	out := &relation{cols: outCols}

	if kind == JoinCross {
		for _, lr := range left.rows {
			for _, rr := range right.rows {
				out.rows = append(out.rows, concatRows(lr, rr))
			}
		}
		return out, nil
	}

	// Try to extract an equi-join pair for hashing.
	if lIdx, rIdx, rest, ok := equiJoinColumns(on, left.cols, right.cols); ok {
		ht := make(map[string][]storage.Row, len(right.rows))
		for _, rr := range right.rows {
			v := rr[rIdx]
			if v.IsNull() {
				continue
			}
			ht[v.Key()] = append(ht[v.Key()], rr)
		}
		for _, lr := range left.rows {
			matched := false
			v := lr[lIdx]
			if !v.IsNull() {
				for _, rr := range ht[v.Key()] {
					joined := concatRows(lr, rr)
					okRest, err := ex.passes(rest, out.cols, joined)
					if err != nil {
						return nil, err
					}
					if okRest {
						out.rows = append(out.rows, joined)
						matched = true
					}
				}
			}
			if kind == JoinLeft && !matched {
				out.rows = append(out.rows, padRight(lr, len(right.cols)))
			}
		}
		return out, nil
	}

	// Nested loop.
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			joined := concatRows(lr, rr)
			ok, err := ex.passes(on, out.cols, joined)
			if err != nil {
				return nil, err
			}
			if ok {
				out.rows = append(out.rows, joined)
				matched = true
			}
		}
		if kind == JoinLeft && !matched {
			out.rows = append(out.rows, padRight(lr, len(right.cols)))
		}
	}
	return out, nil
}

func (ex *Executor) passes(cond Expr, cols []binding, row storage.Row) (bool, error) {
	if cond == nil {
		return true, nil
	}
	e := &env{cols: cols, row: row, rt: ex.rt}
	v, err := e.eval(cond)
	if err != nil {
		return false, err
	}
	truth, _ := v.Truth()
	return truth, nil
}

func concatRows(a, b storage.Row) storage.Row {
	out := make(storage.Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func padRight(a storage.Row, n int) storage.Row {
	out := make(storage.Row, 0, len(a)+n)
	out = append(out, a...)
	for i := 0; i < n; i++ {
		out = append(out, storage.Null())
	}
	return out
}

// equiJoinColumns recognizes ON conditions of the form l.c = r.c [AND rest],
// returning the column indexes on each side and the residual condition.
func equiJoinColumns(on Expr, left, right []binding) (lIdx, rIdx int, rest Expr, ok bool) {
	conjuncts := splitAnd(on)
	for i, c := range conjuncts {
		b, isBin := c.(*Binary)
		if !isBin || b.Op != "=" {
			continue
		}
		lc, lok := b.L.(*ColumnRef)
		rc, rok := b.R.(*ColumnRef)
		if !lok || !rok {
			continue
		}
		li, ri := findBinding(left, lc), findBinding(right, rc)
		if li >= 0 && ri >= 0 {
			return li, ri, joinAnd(append(conjuncts[:i:i], conjuncts[i+1:]...)), true
		}
		// Reversed orientation: r.c = l.c.
		li, ri = findBinding(left, rc), findBinding(right, lc)
		if li >= 0 && ri >= 0 {
			return li, ri, joinAnd(append(conjuncts[:i:i], conjuncts[i+1:]...)), true
		}
	}
	return 0, 0, nil, false
}

func splitAnd(x Expr) []Expr {
	if b, ok := x.(*Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	if x == nil {
		return nil
	}
	return []Expr{x}
}

func joinAnd(xs []Expr) Expr {
	var out Expr
	for _, x := range xs {
		if out == nil {
			out = x
		} else {
			out = &Binary{Op: "AND", L: out, R: x}
		}
	}
	return out
}

// findBinding resolves a column reference against one side's bindings,
// requiring uniqueness.
func findBinding(cols []binding, ref *ColumnRef) int {
	lt, lc := strings.ToLower(ref.Table), strings.ToLower(ref.Column)
	found := -1
	for i, b := range cols {
		if b.column != lc {
			continue
		}
		if lt != "" && b.table != lt {
			continue
		}
		if found >= 0 {
			return -1 // ambiguous
		}
		found = i
	}
	return found
}

// execProject evaluates the projection for a non-aggregate SELECT. The
// returned result rows correspond 1:1 to rel.rows (before DISTINCT/ORDER),
// which orderRows exploits.
func (ex *Executor) execProject(sel *SelectStmt, rel *relation) (*Result, error) {
	outCols, exprs, err := expandItems(sel.Items, rel.cols)
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: outCols}
	for _, r := range rel.rows {
		e := &env{cols: rel.cols, row: r, rt: ex.rt}
		out := make(storage.Row, len(exprs))
		for i, x := range exprs {
			v, err := e.eval(x)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// expandItems resolves stars and names output columns.
func expandItems(items []SelectItem, cols []binding) ([]string, []Expr, error) {
	var outCols []string
	var exprs []Expr
	for _, it := range items {
		if it.Star {
			qual := strings.ToLower(it.Table)
			matched := false
			for _, b := range cols {
				if qual != "" && b.table != qual {
					continue
				}
				matched = true
				outCols = append(outCols, b.column)
				exprs = append(exprs, &ColumnRef{Table: b.table, Column: b.column})
			}
			if !matched {
				return nil, nil, fmt.Errorf("sql: %s.* matches no columns", it.Table)
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ColumnRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("col%d", len(outCols)+1)
			}
		}
		outCols = append(outCols, name)
		exprs = append(exprs, it.Expr)
	}
	return outCols, exprs, nil
}

func dedupeRows(rows []storage.Row) []storage.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('\x01')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// orderRows sorts res.Rows by the ORDER BY items. Order keys are resolved
// against the output columns first and fall back to the input relation for
// non-aggregate queries.
func (ex *Executor) orderRows(sel *SelectStmt, rel *relation, res *Result, aggregated bool) error {
	outBind := make([]binding, len(res.Cols))
	for i, c := range res.Cols {
		outBind[i] = binding{column: strings.ToLower(c)}
	}
	type keyed struct {
		row  storage.Row
		keys []storage.Value
	}
	canFallback := !aggregated && !sel.Distinct && len(rel.rows) == len(res.Rows)
	keyedRows := make([]keyed, len(res.Rows))
	for i, r := range res.Rows {
		keys := make([]storage.Value, len(sel.OrderBy))
		for j, ob := range sel.OrderBy {
			outEnv := &env{cols: outBind, row: r, rt: ex.rt}
			v, err := outEnv.eval(ob.Expr)
			if err != nil && canFallback {
				inEnv := &env{cols: rel.cols, row: rel.rows[i], rt: ex.rt}
				v, err = inEnv.eval(ob.Expr)
			}
			if err != nil {
				return err
			}
			keys[j] = v
		}
		keyedRows[i] = keyed{row: r, keys: keys}
	}
	var sortErr error
	sort.SliceStable(keyedRows, func(a, b int) bool {
		for j, ob := range sel.OrderBy {
			c, err := storage.Compare(keyedRows[a].keys[j], keyedRows[b].keys[j])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for i := range keyedRows {
		res.Rows[i] = keyedRows[i].row
	}
	return nil
}

// execAggregate runs GROUP BY / aggregate queries.
func (ex *Executor) execAggregate(sel *SelectStmt, rel *relation) (*Result, error) {
	type group struct {
		keyRow storage.Row // representative input row
		rows   []storage.Row
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range rel.rows {
		e := &env{cols: rel.cols, row: r, rt: ex.rt}
		var kb strings.Builder
		for _, g := range sel.GroupBy {
			v, err := e.eval(g)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.Key())
			kb.WriteByte('\x01')
		}
		k := kb.String()
		grp, ok := groups[k]
		if !ok {
			grp = &group{keyRow: r}
			groups[k] = grp
			order = append(order, k)
		}
		grp.rows = append(grp.rows, r)
	}
	// A global aggregate over zero rows still yields one group.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	outCols, exprs, err := expandItems(sel.Items, rel.cols)
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: outCols}
	for _, k := range order {
		grp := groups[k]
		if sel.Having != nil {
			hv, err := ex.evalWithAggregates(sel.Having, rel.cols, grp.keyRow, grp.rows)
			if err != nil {
				return nil, err
			}
			if truth, _ := hv.Truth(); !truth {
				continue
			}
		}
		out := make(storage.Row, len(exprs))
		for i, x := range exprs {
			v, err := ex.evalWithAggregates(x, rel.cols, grp.keyRow, grp.rows)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// evalWithAggregates evaluates an expression in which aggregate calls are
// computed over the group's rows and everything else over the group's
// representative row.
func (ex *Executor) evalWithAggregates(x Expr, cols []binding, keyRow storage.Row, rows []storage.Row) (storage.Value, error) {
	rewritten, err := ex.rewriteAggregates(x, cols, rows)
	if err != nil {
		return storage.Value{}, err
	}
	e := &env{cols: cols, row: keyRow, rt: ex.rt}
	return e.eval(rewritten)
}

// rewriteAggregates replaces aggregate calls with literals of their computed
// values.
func (ex *Executor) rewriteAggregates(x Expr, cols []binding, rows []storage.Row) (Expr, error) {
	switch x := x.(type) {
	case nil, *Literal, *ColumnRef:
		return x, nil
	case *Unary:
		inner, err := ex.rewriteAggregates(x.X, cols, rows)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: inner}, nil
	case *Binary:
		l, err := ex.rewriteAggregates(x.L, cols, rows)
		if err != nil {
			return nil, err
		}
		r, err := ex.rewriteAggregates(x.R, cols, rows)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r}, nil
	case *IsNull:
		inner, err := ex.rewriteAggregates(x.X, cols, rows)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: inner, Not: x.Not}, nil
	case *Like:
		inner, err := ex.rewriteAggregates(x.X, cols, rows)
		if err != nil {
			return nil, err
		}
		pat, err := ex.rewriteAggregates(x.Pattern, cols, rows)
		if err != nil {
			return nil, err
		}
		return &Like{X: inner, Not: x.Not, Pattern: pat}, nil
	case *InList:
		inner, err := ex.rewriteAggregates(x.X, cols, rows)
		if err != nil {
			return nil, err
		}
		set := make([]Expr, len(x.Set))
		for i, s := range x.Set {
			set[i], err = ex.rewriteAggregates(s, cols, rows)
			if err != nil {
				return nil, err
			}
		}
		return &InList{X: inner, Not: x.Not, Set: set}, nil
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range x.Whens {
			c, err := ex.rewriteAggregates(w.Cond, cols, rows)
			if err != nil {
				return nil, err
			}
			t, err := ex.rewriteAggregates(w.Then, cols, rows)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, CaseWhen{Cond: c, Then: t})
		}
		if x.Else != nil {
			e, err := ex.rewriteAggregates(x.Else, cols, rows)
			if err != nil {
				return nil, err
			}
			out.Else = e
		}
		return out, nil
	case *FuncCall:
		if !aggregateNames[x.Name] {
			args := make([]Expr, len(x.Args))
			var err error
			for i, a := range x.Args {
				args[i], err = ex.rewriteAggregates(a, cols, rows)
				if err != nil {
					return nil, err
				}
			}
			return &FuncCall{Name: x.Name, Args: args, Star: x.Star}, nil
		}
		v, err := ex.computeAggregate(x, cols, rows)
		if err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	}
	return nil, fmt.Errorf("sql: cannot rewrite %T", x)
}

func (ex *Executor) computeAggregate(x *FuncCall, cols []binding, rows []storage.Row) (storage.Value, error) {
	if x.Name == "COUNT" && x.Star {
		return storage.Int(int64(len(rows))), nil
	}
	if len(x.Args) != 1 {
		return storage.Value{}, fmt.Errorf("sql: %s expects exactly one argument", x.Name)
	}
	var vals []storage.Value
	for _, r := range rows {
		e := &env{cols: cols, row: r, rt: ex.rt}
		v, err := e.eval(x.Args[0])
		if err != nil {
			return storage.Value{}, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch x.Name {
	case "COUNT":
		return storage.Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return storage.Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, err := v.AsFloat()
			if err != nil {
				return storage.Value{}, fmt.Errorf("sql: %s: %w", x.Name, err)
			}
			if v.T != storage.TypeInt {
				allInt = false
			}
			sum += f
		}
		if x.Name == "AVG" {
			return storage.Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return storage.Int(int64(sum)), nil
		}
		return storage.Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return storage.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := storage.Compare(v, best)
			if err != nil {
				return storage.Value{}, err
			}
			if (x.Name == "MIN" && c < 0) || (x.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "EV_OR_AGG", "EV_AND_AGG":
		exprs := make([]*event.Expr, 0, len(vals))
		for _, v := range vals {
			ev, err := asEvent(v, x.Name)
			if err != nil {
				return storage.Value{}, err
			}
			exprs = append(exprs, ev)
		}
		if len(exprs) == 0 {
			// No contributing tuples: the disjunction is impossible, the
			// conjunction vacuous.
			if x.Name == "EV_OR_AGG" {
				return storage.Event(event.False()), nil
			}
			return storage.Event(event.True()), nil
		}
		if x.Name == "EV_OR_AGG" {
			return storage.Event(event.Or(exprs...)), nil
		}
		return storage.Event(event.And(exprs...)), nil
	}
	return storage.Value{}, fmt.Errorf("sql: unknown aggregate %s", x.Name)
}
