package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Format renders a parsed statement back to SQL text such that
// Parse(Format(stmt)) is structurally equivalent to stmt. It is used to
// persist views in database snapshots and for lineage display.
func Format(stmt Statement) string {
	var b strings.Builder
	formatStmt(&b, stmt)
	return b.String()
}

func formatStmt(b *strings.Builder, stmt Statement) {
	switch s := stmt.(type) {
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		if s.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(s.Name)
		b.WriteString(" (")
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name + " " + c.Type.String())
		}
		b.WriteString(")")
	case *DropTableStmt:
		b.WriteString("DROP TABLE ")
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(s.Name)
	case *CreateViewStmt:
		b.WriteString("CREATE ")
		if s.OrReplace {
			b.WriteString("OR REPLACE ")
		}
		b.WriteString("VIEW " + s.Name + " AS ")
		formatSelect(b, s.Query)
	case *DropViewStmt:
		b.WriteString("DROP VIEW ")
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(s.Name)
	case *CreateIndexStmt:
		fmt.Fprintf(b, "CREATE INDEX ON %s (%s)", s.Table, s.Column)
	case *InsertStmt:
		b.WriteString("INSERT INTO " + s.Table)
		if len(s.Columns) > 0 {
			b.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
		}
		b.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				formatExpr(b, e)
			}
			b.WriteString(")")
		}
	case *DeleteStmt:
		b.WriteString("DELETE FROM " + s.Table)
		if s.Where != nil {
			b.WriteString(" WHERE ")
			formatExpr(b, s.Where)
		}
	case *UpdateStmt:
		b.WriteString("UPDATE " + s.Table + " SET ")
		for i, a := range s.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Column + " = ")
			formatExpr(b, a.Value)
		}
		if s.Where != nil {
			b.WriteString(" WHERE ")
			formatExpr(b, s.Where)
		}
	case *SelectStmt:
		formatSelect(b, s)
	default:
		fmt.Fprintf(b, "/* unprintable %T */", stmt)
	}
}

func formatSelect(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Table != "":
			b.WriteString(it.Table + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			formatExpr(b, it.Expr)
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				switch ref.Join {
				case JoinCross:
					b.WriteString(", ")
				case JoinInner:
					b.WriteString(" JOIN ")
				case JoinLeft:
					b.WriteString(" LEFT JOIN ")
				}
			}
			if ref.Subquery != nil {
				b.WriteString("(")
				formatSelect(b, ref.Subquery)
				b.WriteString(")")
			} else {
				b.WriteString(ref.Table)
			}
			if ref.Alias != "" {
				b.WriteString(" AS " + ref.Alias)
			}
			if i > 0 && ref.On != nil {
				b.WriteString(" ON ")
				formatExpr(b, ref.On)
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		formatExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, e)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		formatExpr(b, s.Having)
	}
	if s.Union != nil {
		b.WriteString(" UNION ALL ")
		formatSelect(b, s.Union)
		return // ORDER BY/LIMIT belong to the last branch in this subset
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(b, " LIMIT %d", s.Limit)
	}
}

func formatExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *Literal:
		formatValue(b, e.Val)
	case *ColumnRef:
		if e.Table != "" {
			b.WriteString(e.Table + ".")
		}
		b.WriteString(e.Column)
	case *Unary:
		if e.Op == "NOT" {
			b.WriteString("NOT ")
		} else {
			b.WriteString(e.Op)
		}
		b.WriteString("(")
		formatExpr(b, e.X)
		b.WriteString(")")
	case *Binary:
		b.WriteString("(")
		formatExpr(b, e.L)
		b.WriteString(" " + e.Op + " ")
		formatExpr(b, e.R)
		b.WriteString(")")
	case *FuncCall:
		b.WriteString(e.Name + "(")
		if e.Star {
			b.WriteString("*")
		}
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, a)
		}
		b.WriteString(")")
	case *InList:
		b.WriteString("(")
		formatExpr(b, e.X)
		if e.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, v := range e.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, v)
		}
		b.WriteString("))")
	case *IsNull:
		b.WriteString("(")
		formatExpr(b, e.X)
		b.WriteString(" IS ")
		if e.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL)")
	case *Like:
		b.WriteString("(")
		formatExpr(b, e.X)
		if e.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		formatExpr(b, e.Pattern)
		b.WriteString(")")
	case *CaseExpr:
		b.WriteString("CASE")
		for _, w := range e.Whens {
			b.WriteString(" WHEN ")
			formatExpr(b, w.Cond)
			b.WriteString(" THEN ")
			formatExpr(b, w.Then)
		}
		if e.Else != nil {
			b.WriteString(" ELSE ")
			formatExpr(b, e.Else)
		}
		b.WriteString(" END")
	default:
		fmt.Fprintf(b, "/* unprintable %T */", e)
	}
}

func formatValue(b *strings.Builder, v storage.Value) {
	switch v.T {
	case storage.TypeNull:
		b.WriteString("NULL")
	case storage.TypeInt:
		b.WriteString(strconv.FormatInt(v.I, 10))
	case storage.TypeFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep the literal a FLOAT on reparse
		}
		b.WriteString(s)
	case storage.TypeText:
		b.WriteString("'" + strings.ReplaceAll(v.S, "'", "''") + "'")
	case storage.TypeBool:
		if v.B {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case storage.TypeEvent:
		// Event literals have no SQL literal syntax; lineage-only.
		fmt.Fprintf(b, "/* EVENT %s */ NULL", v.Ev)
	}
}
