package sql

import (
	"math"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/storage"
)

// newTestExec builds an executor with a fresh catalog and event space.
func newTestExec(t *testing.T) (*Executor, *event.Space) {
	t.Helper()
	space := event.NewSpace()
	return NewExecutor(storage.NewCatalog(), &Runtime{Space: space}), space
}

func mustExec(t *testing.T, ex *Executor, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := ex.Exec(s); err != nil {
			t.Fatalf("exec %q: %v", s, err)
		}
	}
}

func query(t *testing.T, ex *Executor, q string) *Result {
	t.Helper()
	res, err := ex.Exec(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if res == nil {
		t.Fatalf("query %q returned no result", q)
	}
	return res
}

func seedPrograms(t *testing.T, ex *Executor) {
	t.Helper()
	mustExec(t, ex,
		"CREATE TABLE programs (id TEXT, name TEXT, year INT, rating FLOAT)",
		"INSERT INTO programs VALUES ('p1', 'Oprah', 2006, 6.5), ('p2', 'BBC news', 2007, 8.0), ('p3', 'Channel 5 news', 2007, 7.0), ('p4', 'MPFS', 1970, 9.5)",
		"CREATE TABLE genres (pid TEXT, genre TEXT)",
		"INSERT INTO genres VALUES ('p1', 'human-interest'), ('p3', 'human-interest'), ('p4', 'comedy')",
	)
}

func TestCreateInsertSelect(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT name FROM programs WHERE year = 2007 ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "BBC news" || res.Rows[1][0].S != "Channel 5 news" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "name" {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestSelectStar(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT * FROM programs")
	if len(res.Cols) != 4 || len(res.Rows) != 4 {
		t.Fatalf("cols=%v rows=%d", res.Cols, len(res.Rows))
	}
	res = query(t, ex, "SELECT p.* FROM programs p WHERE p.id = 'p1'")
	if len(res.Rows) != 1 || res.Rows[0][1].S != "Oprah" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT name, rating * 10 AS pct, year - 2000 delta FROM programs WHERE id = 'p2'")
	if res.Cols[1] != "pct" || res.Cols[2] != "delta" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if res.Rows[0][1].F != 80 || res.Rows[0][2].I != 7 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT name FROM programs ORDER BY rating DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "MPFS" || res.Rows[1][0].S != "BBC news" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByOutputAlias(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT name, rating * 2 AS s FROM programs ORDER BY s DESC LIMIT 1")
	if res.Rows[0][0].S != "MPFS" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInnerJoin(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, `SELECT p.name, g.genre FROM programs p JOIN genres g ON p.id = g.pid ORDER BY p.name`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "Channel 5 news" || res.Rows[0][1].S != "human-interest" {
		t.Fatalf("first row = %v", res.Rows[0])
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, `SELECT p.name, g.genre FROM programs p LEFT JOIN genres g ON p.id = g.pid ORDER BY p.name`)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// BBC news has no genre: NULL.
	if res.Rows[0][0].S != "BBC news" || !res.Rows[0][1].IsNull() {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestJoinReversedOrientationAndResidual(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	// ON g.pid = p.id (reversed) plus residual condition.
	res := query(t, ex, `SELECT p.name FROM programs p JOIN genres g ON g.pid = p.id AND g.genre = 'comedy'`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "MPFS" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCrossJoinComma(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE a (x INT)", "INSERT INTO a VALUES (1), (2)",
		"CREATE TABLE b (y INT)", "INSERT INTO b VALUES (10), (20), (30)",
	)
	res := query(t, ex, "SELECT x, y FROM a, b")
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	res = query(t, ex, "SELECT x, y FROM a, b WHERE x = 1 AND y > 10 ORDER BY y")
	if len(res.Rows) != 2 || res.Rows[0][1].I != 20 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNestedLoopJoinNonEqui(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE a (x INT)", "INSERT INTO a VALUES (1), (2), (3)",
		"CREATE TABLE b (y INT)", "INSERT INTO b VALUES (2), (3)",
	)
	res := query(t, ex, "SELECT x, y FROM a JOIN b ON x < y ORDER BY x, y")
	if len(res.Rows) != 3 { // (1,2) (1,3) (2,3)
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, `SELECT year, COUNT(*) AS n, AVG(rating) AS avg FROM programs GROUP BY year ORDER BY year`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// year 2007: two programs, avg 7.5.
	last := res.Rows[2]
	if last[0].I != 2007 || last[1].I != 2 || math.Abs(last[2].F-7.5) > 1e-9 {
		t.Fatalf("2007 row = %v", last)
	}
}

func TestGlobalAggregateOnEmptyTable(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE empty (x INT)")
	res := query(t, ex, "SELECT COUNT(*) AS n, SUM(x) AS s FROM empty")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestHaving(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, `SELECT year FROM programs GROUP BY year HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2007 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMinMaxSum(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT MIN(year), MAX(year), SUM(year) FROM programs")
	r := res.Rows[0]
	if r[0].I != 1970 || r[1].I != 2007 || r[2].I != 1970+2006+2007+2007 {
		t.Fatalf("row = %v", r)
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (x INT)",
		"INSERT INTO t VALUES (1), (NULL), (3)",
	)
	res := query(t, ex, "SELECT COUNT(x), COUNT(*) FROM t")
	if res.Rows[0][0].I != 2 || res.Rows[0][1].I != 3 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT DISTINCT genre FROM genres ORDER BY genre")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "comedy" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionAll(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT id FROM programs WHERE year = 1970 UNION ALL SELECT pid FROM genres WHERE genre = 'comedy'")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "p4" || res.Rows[1][0].S != "p4" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := ex.Exec("SELECT id, name FROM programs UNION ALL SELECT id FROM programs"); err == nil {
		t.Fatal("mismatched UNION arity accepted")
	}
}

func TestViews(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	mustExec(t, ex, "CREATE VIEW recent AS SELECT id, name FROM programs WHERE year >= 2006")
	res := query(t, ex, "SELECT name FROM recent ORDER BY name")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Views compose: a view over a view, joined to a table.
	mustExec(t, ex, "CREATE VIEW recent_hi AS SELECT r.id FROM recent r JOIN genres g ON r.id = g.pid WHERE g.genre = 'human-interest'")
	res = query(t, ex, "SELECT id FROM recent_hi ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "p1" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// OR REPLACE.
	mustExec(t, ex, "CREATE OR REPLACE VIEW recent AS SELECT id, name FROM programs WHERE year >= 2007")
	res = query(t, ex, "SELECT name FROM recent")
	if len(res.Rows) != 2 {
		t.Fatalf("rows after replace = %v", res.Rows)
	}
	if _, err := ex.Exec("CREATE VIEW recent AS SELECT id FROM programs"); err == nil {
		t.Fatal("duplicate view accepted without OR REPLACE")
	}
	mustExec(t, ex, "DROP VIEW recent_hi")
	if _, err := ex.Exec("SELECT * FROM recent_hi"); err == nil {
		t.Fatal("dropped view still queryable")
	}
	mustExec(t, ex, "DROP VIEW IF EXISTS recent_hi")
}

func TestSubqueryInFrom(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, `SELECT s.name FROM (SELECT name, rating FROM programs WHERE rating > 6.5) AS s ORDER BY s.rating DESC LIMIT 1`)
	if res.Rows[0][0].S != "MPFS" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := ex.Exec("SELECT * FROM (SELECT 1)"); err == nil {
		t.Fatal("derived table without alias accepted")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (x INT)",
		"INSERT INTO t VALUES (1), (NULL)",
	)
	// NULL comparisons never match.
	res := query(t, ex, "SELECT COUNT(*) FROM t WHERE x = 1 OR x <> 1")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("3VL filter kept %v rows", res.Rows[0][0])
	}
	res = query(t, ex, "SELECT COUNT(*) FROM t WHERE x IS NULL")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("IS NULL count = %v", res.Rows[0][0])
	}
	res = query(t, ex, "SELECT COUNT(*) FROM t WHERE x IS NOT NULL")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("IS NOT NULL count = %v", res.Rows[0][0])
	}
}

func TestInListSemantics(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1), (2), (NULL)")
	res := query(t, ex, "SELECT COUNT(*) FROM t WHERE x IN (1, 3)")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("IN count = %v", res.Rows[0][0])
	}
	res = query(t, ex, "SELECT COUNT(*) FROM t WHERE x NOT IN (1, 3)")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("NOT IN count = %v", res.Rows[0][0])
	}
	// NULL in the list makes a non-matching IN unknown.
	res = query(t, ex, "SELECT COUNT(*) FROM t WHERE x IN (3, NULL)")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("IN with NULL count = %v", res.Rows[0][0])
	}
}

func TestCaseExpr(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, `SELECT name, CASE WHEN rating >= 9 THEN 'great' WHEN rating >= 7 THEN 'good' ELSE 'ok' END AS verdict FROM programs ORDER BY name`)
	got := map[string]string{}
	for _, r := range res.Rows {
		got[r[0].S] = r[1].S
	}
	want := map[string]string{"Oprah": "ok", "BBC news": "good", "Channel 5 news": "good", "MPFS": "great"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("verdict[%s] = %q, want %q", k, got[k], v)
		}
	}
}

func TestScalarFunctions(t *testing.T) {
	ex, _ := newTestExec(t)
	res := query(t, ex, "SELECT ABS(-3), LOWER('AbC'), UPPER('x'), LENGTH('abcd'), COALESCE(NULL, NULL, 7), ROUND(3.14159, 2)")
	r := res.Rows[0]
	if r[0].I != 3 || r[1].S != "abc" || r[2].S != "X" || r[3].I != 4 || r[4].I != 7 || math.Abs(r[5].F-3.14) > 1e-9 {
		t.Fatalf("row = %v", r)
	}
}

func TestArithmetic(t *testing.T) {
	ex, _ := newTestExec(t)
	res := query(t, ex, "SELECT 7 / 2, 7.0 / 2, 7 % 3, -(3 + 4) * 2")
	r := res.Rows[0]
	if r[0].I != 3 || r[1].F != 3.5 || r[2].I != 1 || r[3].I != -14 {
		t.Fatalf("row = %v", r)
	}
	if _, err := ex.Exec("SELECT 1 / 0"); err == nil {
		t.Fatal("division by zero accepted")
	}
}

func TestDelete(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "DELETE FROM programs WHERE year < 2000")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("deleted %v", res.Rows[0][0])
	}
	res = query(t, ex, "SELECT COUNT(*) FROM programs")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("remaining = %v", res.Rows[0][0])
	}
}

func TestInsertWithColumnList(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (a INT, b TEXT, c FLOAT)",
		"INSERT INTO t (b, a) VALUES ('x', 1)",
	)
	res := query(t, ex, "SELECT a, b, c FROM t")
	r := res.Rows[0]
	if r[0].I != 1 || r[1].S != "x" || !r[2].IsNull() {
		t.Fatalf("row = %v", r)
	}
	if _, err := ex.Exec("INSERT INTO t (a) VALUES (1, 2)"); err == nil {
		t.Fatal("value count mismatch accepted")
	}
	if _, err := ex.Exec("INSERT INTO t (nope) VALUES (1)"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestEventBuiltinsEndToEnd(t *testing.T) {
	ex, space := newTestExec(t)
	space.Declare("e1", 0.8)
	space.Declare("e2", 0.5)
	mustExec(t, ex,
		"CREATE TABLE c (id TEXT, ev EVENT)",
		"INSERT INTO c VALUES ('x', EV_BASIC('e1')), ('y', EV_BASIC('e2')), ('z', EV_AND(EV_BASIC('e1'), EV_BASIC('e2')))",
	)
	res := query(t, ex, "SELECT id, PROB(ev) AS p FROM c ORDER BY id")
	if math.Abs(res.Rows[0][1].F-0.8) > 1e-9 || math.Abs(res.Rows[2][1].F-0.4) > 1e-9 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Shared lineage handled exactly: e1 ∧ ¬e1 = 0.
	res = query(t, ex, "SELECT PROB(EV_AND(EV_BASIC('e1'), EV_NOT(EV_BASIC('e1'))))")
	if res.Rows[0][0].F != 0 {
		t.Fatalf("P(e1∧¬e1) = %v", res.Rows[0][0])
	}
	// NULL events behave as the impossible event.
	res = query(t, ex, "SELECT PROB(EV_OR(NULL, EV_BASIC('e1')))")
	if math.Abs(res.Rows[0][0].F-0.8) > 1e-9 {
		t.Fatalf("P(⊥∨e1) = %v", res.Rows[0][0])
	}
}

func TestEventAggregates(t *testing.T) {
	ex, space := newTestExec(t)
	space.Declare("e1", 0.5)
	space.Declare("e2", 0.5)
	mustExec(t, ex,
		"CREATE TABLE r (src TEXT, ev EVENT)",
		"INSERT INTO r VALUES ('a', EV_BASIC('e1')), ('a', EV_BASIC('e2')), ('b', EV_BASIC('e1'))",
	)
	res := query(t, ex, "SELECT src, PROB(EV_OR_AGG(ev)) AS p FROM r GROUP BY src ORDER BY src")
	if math.Abs(res.Rows[0][1].F-0.75) > 1e-9 { // P(e1∨e2) = 0.75
		t.Fatalf("rows = %v", res.Rows)
	}
	if math.Abs(res.Rows[1][1].F-0.5) > 1e-9 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Empty aggregation input.
	res = query(t, ex, "SELECT PROB(EV_OR_AGG(ev)), PROB(EV_AND_AGG(ev)) FROM r WHERE src = 'zzz'")
	if res.Rows[0][0].F != 0 || res.Rows[0][1].F != 1 {
		t.Fatalf("empty agg = %v", res.Rows[0])
	}
}

func TestIndexStatement(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	mustExec(t, ex, "CREATE INDEX ON programs (id)")
	res := query(t, ex, "SELECT name FROM programs WHERE id = 'p2'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "BBC news" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE a (id INT)", "INSERT INTO a VALUES (1)",
		"CREATE TABLE b (id INT)", "INSERT INTO b VALUES (1)",
	)
	if _, err := ex.Exec("SELECT id FROM a, b"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous column not rejected: %v", err)
	}
	res := query(t, ex, "SELECT a.id FROM a, b")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestErrorCases(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	bad := []string{
		"SELECT nope FROM programs",
		"SELECT * FROM nope",
		"SELECT name FROM programs WHERE name + 1 = 2", // type error
		"FROBNICATE",
		"SELECT FROM programs",
		"INSERT INTO nope VALUES (1)",
		"CREATE TABLE programs (x INT)", // duplicate
		"SELECT name FROM programs ORDER BY nope",
		"SELECT UNKNOWN_FUNC(1)",
		"SELECT name FROM programs LIMIT x",
	}
	for _, q := range bad {
		if _, err := ex.Exec(q); err == nil {
			t.Errorf("query %q succeeded, want error", q)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (s TEXT)", "INSERT INTO t VALUES ('it''s')")
	res := query(t, ex, "SELECT s FROM t")
	if res.Rows[0][0].S != "it's" {
		t.Fatalf("got %q", res.Rows[0][0].S)
	}
}

func TestComments(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT) -- trailing comment")
	res := query(t, ex, "SELECT COUNT(*) -- mid comment\nFROM t")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestBoolLiterals(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (b BOOL)", "INSERT INTO t VALUES (TRUE), (FALSE)")
	res := query(t, ex, "SELECT COUNT(*) FROM t WHERE b")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	res = query(t, ex, "SELECT COUNT(*) FROM t WHERE NOT b")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestDropTable(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "DROP TABLE t", "DROP TABLE IF EXISTS t", "CREATE TABLE t (y TEXT)")
	if _, err := ex.Exec("DROP TABLE missing"); err == nil {
		t.Fatal("drop of missing table accepted")
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (x INT)",
		"CREATE TABLE IF NOT EXISTS t (x INT)",
	)
}

func TestViewAndTableNameCollision(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)")
	if _, err := ex.Exec("CREATE VIEW t AS SELECT 1"); err == nil {
		t.Fatal("view shadowing table accepted")
	}
	mustExec(t, ex, "CREATE VIEW v AS SELECT x FROM t")
	if _, err := ex.Exec("CREATE TABLE v (x INT)"); err == nil {
		t.Fatal("table shadowing view accepted")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	ex, _ := newTestExec(t)
	res := query(t, ex, "SELECT 1 + 1 AS two, 'x'")
	if res.Rows[0][0].I != 2 || res.Rows[0][1].S != "x" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestAggregateInsideExpression(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT MAX(rating) - MIN(rating) AS spread FROM programs")
	if math.Abs(res.Rows[0][0].F-3.0) > 1e-9 {
		t.Fatalf("spread = %v", res.Rows[0][0])
	}
}
