// Package sql implements the SQL subset of the embedded relational engine:
// lexer, parser, expression evaluator with three-valued logic, and a
// planner/executor with nested-loop and hash joins, grouping, ordering,
// views, and the EVENT-expression builtins the paper added to PostgreSQL
// (§5): EV_AND, EV_OR, EV_NOT, EV_OR_AGG, EV_AND_AGG and PROB.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // operators and punctuation
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL statement.
type lexer struct {
	src  []rune
	pos  int
	toks []token
}

var symbols = []string{
	"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", "+", "-", "/", "%", ";",
}

func lexSQL(src string) ([]token, error) {
	l := &lexer{src: []rune(src)}
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		switch {
		case unicode.IsSpace(r):
			l.pos++
		case r == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case r == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(r), r == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]):
			l.lexNumber()
		case unicode.IsLetter(r) || r == '_':
			l.lexIdent()
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", r, l.pos)
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if r == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
				b.WriteRune('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteRune(r)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string starting at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if unicode.IsDigit(r) {
			l.pos++
			continue
		}
		if r == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (r == 'e' || r == 'E') && l.pos+1 < len(l.src) &&
			(unicode.IsDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
			l.pos += 2
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: string(l.src[start:l.pos]), pos: start})
}

func (l *lexer) lexSymbol() bool {
	for _, s := range symbols {
		if l.hasPrefix(s) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += len(s)
			return true
		}
	}
	return false
}

// hasPrefix reports whether the (ASCII) symbol s starts at the cursor,
// without allocating.
func (l *lexer) hasPrefix(s string) bool {
	if l.pos+len(s) > len(l.src) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if l.src[l.pos+i] != rune(s[i]) {
			return false
		}
	}
	return true
}
