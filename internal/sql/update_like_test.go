package sql

import (
	"testing"
	"testing/quick"
)

func TestUpdateBasic(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "UPDATE programs SET rating = rating + 1 WHERE year = 2007")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("updated = %v", res.Rows[0][0])
	}
	v := query(t, ex, "SELECT rating FROM programs WHERE id = 'p2'")
	if v.Rows[0][0].F != 9.0 {
		t.Fatalf("rating = %v", v.Rows[0][0])
	}
	// Untouched rows keep their values.
	v = query(t, ex, "SELECT rating FROM programs WHERE id = 'p4'")
	if v.Rows[0][0].F != 9.5 {
		t.Fatalf("rating = %v", v.Rows[0][0])
	}
}

func TestUpdateAllRowsAndMultipleColumns(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (a INT, b INT)", "INSERT INTO t VALUES (1, 10), (2, 20)")
	query(t, ex, "UPDATE t SET a = b, b = a") // swap: RHS uses pre-update row
	res := query(t, ex, "SELECT a, b FROM t ORDER BY a")
	if res.Rows[0][0].I != 10 || res.Rows[0][1].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[1][0].I != 20 || res.Rows[1][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUpdateMaintainsIndex(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (k TEXT, v INT)",
		"CREATE INDEX ON t (k)",
		"INSERT INTO t VALUES ('a', 1), ('b', 2)",
	)
	query(t, ex, "UPDATE t SET k = 'c' WHERE k = 'a'")
	res := query(t, ex, "SELECT v FROM t WHERE k = 'c'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, ex, "SELECT v FROM t WHERE k = 'a'")
	if len(res.Rows) != 0 {
		t.Fatalf("stale index: %v", res.Rows)
	}
}

func TestUpdateErrors(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	if _, err := ex.Exec("UPDATE nope SET a = 1"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := ex.Exec("UPDATE programs SET nope = 1"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := ex.Exec("UPDATE programs SET name = 5"); err == nil {
		t.Fatal("type-mismatched update accepted")
	}
	if _, err := ex.Exec("UPDATE programs SET year = year WHERE name + 1 = 2"); err == nil {
		t.Fatal("bad WHERE accepted")
	}
}

func TestLikeOperator(t *testing.T) {
	ex, _ := newTestExec(t)
	seedPrograms(t, ex)
	res := query(t, ex, "SELECT name FROM programs WHERE name LIKE '%news%' ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, ex, "SELECT name FROM programs WHERE name LIKE '_prah'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Oprah" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, ex, "SELECT COUNT(*) FROM programs WHERE name NOT LIKE '%news%'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// NULL propagates.
	mustExec(t, ex, "CREATE TABLE n (s TEXT)", "INSERT INTO n VALUES (NULL)")
	res = query(t, ex, "SELECT COUNT(*) FROM n WHERE s LIKE '%'")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if _, err := ex.Exec("SELECT 1 LIKE 'x'"); err == nil {
		t.Fatal("non-text LIKE accepted")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "____", false},
		{"abc", "___", true},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "m%iss%pi", true},
		{"mississippi", "m%issx%pi", false},
		{"日本語", "日_語", true},
		{"abc", "ABC", false}, // case-sensitive
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestQuickLikeUniversalPatterns(t *testing.T) {
	f := func(s string) bool {
		return likeMatch(s, "%") && likeMatch(s, s) && likeMatch(s, "%"+s) && likeMatch(s, s+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAndLikeFormatRoundTrip(t *testing.T) {
	for _, src := range []string{
		"UPDATE t SET a = (a + 1), b = 'x' WHERE (a LIKE '%y%')",
		"SELECT (name NOT LIKE 'x_%') FROM t",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		text := Format(stmt)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		if Format(back) != text {
			t.Fatalf("not a fixed point: %q vs %q", Format(back), text)
		}
	}
}
