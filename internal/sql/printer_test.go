package sql

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

// roundTripStatements parse, format, reparse and compare formatted forms —
// a fixed point check that covers the printer against the parser.
var roundTripStatements = []string{
	"SELECT 1",
	"SELECT DISTINCT a, b AS bee FROM t WHERE (a > 1) ORDER BY b DESC LIMIT 3",
	"SELECT * FROM t",
	"SELECT t.* FROM t AS x",
	"SELECT a FROM t, u",
	"SELECT a FROM t AS x JOIN u AS y ON (x.id = y.id) LEFT JOIN v AS z ON (y.id = z.id)",
	"SELECT a FROM (SELECT b FROM u) AS s",
	"SELECT COUNT(*) FROM t GROUP BY a HAVING (COUNT(*) > 2)",
	"SELECT a FROM t UNION ALL SELECT b FROM u",
	"SELECT CASE WHEN (a = 1) THEN 'one' ELSE 'many' END FROM t",
	"SELECT (a IN (1, 2, 3)), (b NOT IN ('x')), (c IS NULL), (d IS NOT NULL) FROM t",
	"SELECT PROB(EV_AND(ev, EV_NOT(ev2))) FROM t",
	"SELECT -(a), NOT (b), ((a + 1) * 2) FROM t",
	"SELECT 'it''s', 1.5, TRUE, FALSE, NULL",
	"CREATE TABLE t (a INT, b TEXT, c EVENT)",
	"CREATE TABLE IF NOT EXISTS t (a INT)",
	"DROP TABLE IF EXISTS t",
	"DROP VIEW v",
	"CREATE INDEX ON t (a)",
	"CREATE OR REPLACE VIEW v AS SELECT a FROM t WHERE (a > 0)",
	"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
	"DELETE FROM t WHERE (a = 1)",
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range roundTripStatements {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text := Format(stmt)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q (formatted %q): %v", src, text, err)
		}
		if again := Format(back); again != text {
			t.Fatalf("not a fixed point:\n first %q\nsecond %q", text, again)
		}
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	// Execute the original and the formatted text; results must agree.
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (a INT, b TEXT)",
		"INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')",
	)
	queries := []string{
		"SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING COUNT(*) > 1 ORDER BY n DESC",
		"SELECT a FROM t WHERE b = 'x' OR a > 2 ORDER BY a",
		"SELECT CASE WHEN a % 2 = 0 THEN 'even' ELSE 'odd' END AS par FROM t ORDER BY a",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := ex.ExecStmt(stmt)
		if err != nil {
			t.Fatal(err)
		}
		re, err := ex.Exec(Format(stmt))
		if err != nil {
			t.Fatalf("formatted %q: %v", Format(stmt), err)
		}
		if len(orig.Rows) != len(re.Rows) {
			t.Fatalf("row count differs for %q", q)
		}
		for i := range orig.Rows {
			for j := range orig.Rows[i] {
				if !storage.Equal(orig.Rows[i][j], re.Rows[i][j]) {
					t.Fatalf("value differs for %q at %d,%d", q, i, j)
				}
			}
		}
	}
}

func TestViewDefinition(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (a INT)",
		"CREATE VIEW v AS SELECT a FROM t WHERE a > 0",
	)
	sel, ok := ex.ViewDefinition("V")
	if !ok || sel == nil {
		t.Fatal("view definition missing")
	}
	if !strings.Contains(Format(sel), "WHERE") {
		t.Fatalf("formatted view = %q", Format(sel))
	}
	if _, ok := ex.ViewDefinition("nope"); ok {
		t.Fatal("missing view reported")
	}
}
