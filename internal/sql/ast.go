package sql

import "repro/internal/storage"

// Statement is any parsed SQL statement.
type Statement interface{ isStatement() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type storage.Type
}

// CreateTableStmt is CREATE TABLE name (col type, …).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// CreateViewStmt is CREATE [OR REPLACE] VIEW name AS select.
type CreateViewStmt struct {
	Name      string
	OrReplace bool
	Query     *SelectStmt
}

// DropViewStmt is DROP VIEW [IF EXISTS] name.
type DropViewStmt struct {
	Name     string
	IfExists bool
}

// CreateIndexStmt is CREATE INDEX ON table (column).
type CreateIndexStmt struct {
	Table  string
	Column string
}

// InsertStmt is INSERT INTO table [(cols…)] VALUES (…), (…).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// Assignment is one SET column = expr pair of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE table SET col = expr, … [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// SelectItem is one projection item; Star means "*" or "alias.*".
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // qualifier for "table.*"; empty for bare "*"
}

// JoinKind distinguishes FROM-clause join operators.
type JoinKind uint8

// Join kinds.
const (
	JoinCross JoinKind = iota // comma or first table
	JoinInner
	JoinLeft
)

// TableRef is one FROM-clause source: a base table, a view, or a derived
// subquery, with an optional alias and the join operator connecting it to
// the sources before it.
type TableRef struct {
	Table    string
	Subquery *SelectStmt
	Alias    string
	Join     JoinKind
	On       Expr // nil for cross joins
}

// Name returns the binding name of the reference (alias, else table name).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query, optionally chained with UNION ALL.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Union    *SelectStmt
}

func (*CreateTableStmt) isStatement() {}
func (*DropTableStmt) isStatement()   {}
func (*CreateViewStmt) isStatement()  {}
func (*DropViewStmt) isStatement()    {}
func (*CreateIndexStmt) isStatement() {}
func (*InsertStmt) isStatement()      {}
func (*DeleteStmt) isStatement()      {}
func (*UpdateStmt) isStatement()      {}
func (*SelectStmt) isStatement()      {}

// Expr is a SQL scalar expression.
type Expr interface{ isExpr() }

// Literal is a constant value.
type Literal struct{ Val storage.Value }

// ColumnRef is [table.]column.
type ColumnRef struct {
	Table  string
	Column string
}

// Unary is -x or NOT x.
type Unary struct {
	Op string // "-", "NOT"
	X  Expr
}

// Binary is a binary operation; Op one of + - * / % = <> < <= > >= AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

// FuncCall is name(args…); Star marks COUNT(*).
type FuncCall struct {
	Name string // canonical upper case
	Args []Expr
	Star bool
}

// InList is x IN (e1, …) or x NOT IN (…).
type InList struct {
	X   Expr
	Not bool
	Set []Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Like is x [NOT] LIKE 'pattern' with % (any run) and _ (any one char).
type Like struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// CaseExpr is CASE WHEN c THEN v … [ELSE e] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// ReferencedBasicEvents collects the basic-event names a SELECT references
// through EV_BASIC('name') literals, across the whole statement including
// UNION branches. complete is false when some EV_BASIC argument is not a
// text literal (the referenced name is only known at evaluation time), in
// which case callers must assume the statement may reference any event.
// Snapshot dumps use this to keep declarations alive that appear only in
// view definitions, never in stored rows.
func ReferencedBasicEvents(sel *SelectStmt) (names []string, complete bool) {
	complete = true
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case nil:
		case *Literal, *ColumnRef:
		case *Unary:
			walkExpr(e.X)
		case *Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *FuncCall:
			if e.Name == "EV_BASIC" {
				if len(e.Args) == 1 {
					if lit, ok := e.Args[0].(*Literal); ok && lit.Val.T == storage.TypeText {
						names = append(names, lit.Val.S)
						return
					}
				}
				complete = false
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *InList:
			walkExpr(e.X)
			for _, s := range e.Set {
				walkExpr(s)
			}
		case *IsNull:
			walkExpr(e.X)
		case *Like:
			walkExpr(e.X)
			walkExpr(e.Pattern)
		case *CaseExpr:
			for _, w := range e.Whens {
				walkExpr(w.Cond)
				walkExpr(w.Then)
			}
			walkExpr(e.Else)
		default:
			// Unknown node kinds may hide EV_BASIC calls.
			complete = false
		}
	}
	var walkSelect func(s *SelectStmt)
	walkSelect = func(s *SelectStmt) {
		for ; s != nil; s = s.Union {
			for _, it := range s.Items {
				walkExpr(it.Expr)
			}
			for _, f := range s.From {
				if f.Subquery != nil {
					walkSelect(f.Subquery)
				}
				walkExpr(f.On)
			}
			walkExpr(s.Where)
			for _, g := range s.GroupBy {
				walkExpr(g)
			}
			walkExpr(s.Having)
			for _, o := range s.OrderBy {
				walkExpr(o.Expr)
			}
		}
	}
	walkSelect(sel)
	return names, complete
}

func (*Literal) isExpr()   {}
func (*ColumnRef) isExpr() {}
func (*Unary) isExpr()     {}
func (*Binary) isExpr()    {}
func (*FuncCall) isExpr()  {}
func (*InList) isExpr()    {}
func (*IsNull) isExpr()    {}
func (*Like) isExpr()      {}
func (*CaseExpr) isExpr()  {}
