package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

// MustParseSelect parses a SELECT statement, panicking on failure or on any
// other statement kind; for statically known query strings.
func MustParseSelect(src string) *SelectStmt {
	stmt, err := Parse(src)
	if err != nil {
		panic(err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		panic(fmt.Sprintf("sql: %q is not a SELECT", src))
	}
	return sel
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: "+format+" (at offset %d in %q)", append(args, p.cur().pos, p.src)...)
}

// keyword consumes an identifier token equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

// peekKeyword reports whether the current token is the given keyword.
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

// accept consumes a symbol token.
func (p *parser) accept(sym string) bool {
	t := p.cur()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.accept(sym) {
		return p.errf("expected %q, found %q", sym, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

var reservedWords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "UNION": true, "JOIN": true, "LEFT": true,
	"ON": true, "AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"IS": true, "NULL": true, "BY": true, "ASC": true, "DESC": true,
	"DISTINCT": true, "ALL": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "INNER": true, "OUTER": true, "LIKE": true,
	"SET": true, "UPDATE": true,
}

// bareIdent parses an identifier that is not a reserved word (for aliases).
func (p *parser) bareIdent() (string, bool) {
	t := p.cur()
	if t.kind == tokIdent && !reservedWords[strings.ToUpper(t.text)] {
		p.pos++
		return t.text, true
	}
	return "", false
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKeyword("CREATE"):
		return p.parseCreate()
	case p.peekKeyword("DROP"):
		return p.parseDrop()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("DELETE"):
		return p.parseDelete()
	case p.peekKeyword("UPDATE"):
		return p.parseUpdate()
	case p.peekKeyword("SELECT"):
		return p.parseSelect()
	}
	return nil, p.errf("expected statement, found %q", p.cur().text)
}

func (p *parser) parseCreate() (Statement, error) {
	p.keyword("CREATE")
	orReplace := false
	if p.keyword("OR") {
		if err := p.expectKeyword("REPLACE"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	switch {
	case p.keyword("TABLE"):
		ifNot := false
		if p.keyword("IF") {
			if err := p.expectKeyword("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			ifNot = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			cname, err := p.ident()
			if err != nil {
				return nil, err
			}
			tname, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := storage.TypeFromName(strings.ToUpper(tname))
			if err != nil {
				return nil, p.errf("%v", err)
			}
			cols = append(cols, ColumnDef{Name: cname, Type: typ})
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, IfNotExists: ifNot, Columns: cols}, nil
	case p.keyword("VIEW"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, OrReplace: orReplace, Query: sel}, nil
	case p.keyword("INDEX"):
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Table: table, Column: col}, nil
	}
	return nil, p.errf("expected TABLE, VIEW or INDEX after CREATE")
}

func (p *parser) parseDrop() (Statement, error) {
	p.keyword("DROP")
	isView := false
	switch {
	case p.keyword("TABLE"):
	case p.keyword("VIEW"):
		isView = true
	default:
		return nil, p.errf("expected TABLE or VIEW after DROP")
	}
	ifExists := false
	if p.keyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if isView {
		return &DropViewStmt{Name: name, IfExists: ifExists}, nil
	}
	return &DropTableStmt{Name: name, IfExists: ifExists}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.keyword("INSERT")
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: table, Columns: cols, Rows: rows}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.keyword("DELETE")
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.keyword("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &DeleteStmt{Table: table, Where: where}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.keyword("UPDATE")
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: val})
		if p.accept(",") {
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	if p.keyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.keyword("ALL")
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(",") {
			continue
		}
		break
	}
	// FROM.
	if p.keyword("FROM") {
		refs, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		sel.From = refs
	}
	if p.keyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.keyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.keyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, p.errf("only UNION ALL is supported")
		}
		rest, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Union = rest
		return sel, nil // ORDER BY/LIMIT belong to the last branch in this subset
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.keyword("DESC") {
				item.Desc = true
			} else {
				p.keyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.keyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		p.pos++
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*"
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	// "alias.*"
	if t := p.cur(); t.kind == tokIdent && !reservedWords[strings.ToUpper(t.text)] {
		if p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
			p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
			p.pos += 3
			return SelectItem{Star: true, Table: t.text}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.keyword("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if a, ok := p.bareIdent(); ok {
		item.Alias = a
	}
	return item, nil
}

func (p *parser) parseFrom() ([]TableRef, error) {
	first, err := p.parseTableRef(JoinCross)
	if err != nil {
		return nil, err
	}
	refs := []TableRef{first}
	for {
		switch {
		case p.accept(","):
			r, err := p.parseTableRef(JoinCross)
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.peekKeyword("JOIN"), p.peekKeyword("INNER"), p.peekKeyword("LEFT"):
			kind := JoinInner
			if p.keyword("LEFT") {
				p.keyword("OUTER")
				kind = JoinLeft
			} else {
				p.keyword("INNER")
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef(kind)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.On = on
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) parseTableRef(kind JoinKind) (TableRef, error) {
	ref := TableRef{Join: kind}
	if p.accept("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return ref, err
		}
		ref.Subquery = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return ref, err
		}
		ref.Table = name
	}
	if p.keyword("AS") {
		a, err := p.ident()
		if err != nil {
			return ref, err
		}
		ref.Alias = a
	} else if a, ok := p.bareIdent(); ok {
		ref.Alias = a
	}
	if ref.Subquery != nil && ref.Alias == "" {
		return ref, p.errf("derived table requires an alias")
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := orExpr
//	orExpr  := andExpr { OR andExpr }
//	andExpr := notExpr { AND notExpr }
//	notExpr := NOT notExpr | predicate
//	predicate := additive [ cmpOp additive | IS [NOT] NULL | [NOT] IN (list) ]
//	additive := multiplicative { (+|-) multiplicative }
//	multiplicative := unary { (*|/|%) unary }
//	unary   := - unary | primary
//	primary := literal | funcCall | columnRef | ( expr ) | CASE …
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: left, R: right}, nil
		}
	}
	if p.keyword("IS") {
		not := p.keyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: left, Not: not}, nil
	}
	// Lookahead for NOT IN / NOT LIKE without consuming a logical NOT.
	if p.peekKeyword("NOT") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokIdent {
		switch strings.ToUpper(p.toks[p.pos+1].text) {
		case "IN":
			p.pos += 2
			return p.finishInList(left, true)
		case "LIKE":
			p.pos += 2
			return p.finishLike(left, true)
		}
	}
	if p.keyword("IN") {
		return p.finishInList(left, false)
	}
	if p.keyword("LIKE") {
		return p.finishLike(left, false)
	}
	return left, nil
}

func (p *parser) finishLike(left Expr, not bool) (Expr, error) {
	pat, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Like{X: left, Not: not, Pattern: pat}, nil
}

func (p *parser) finishInList(left Expr, not bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var set []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		set = append(set, e)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &InList{X: left, Not: not, Set: set}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "+", L: left, R: r}
		case p.accept("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "-", L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "*", L: left, R: r}
		case p.accept("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "/", L: left, R: r}
		case p.accept("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "%", L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: storage.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Val: storage.Int(i)}, nil
	case tokString:
		p.pos++
		return &Literal{Val: storage.Text(t.text)}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "NULL":
			p.pos++
			return &Literal{Val: storage.Null()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: storage.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: storage.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		}
		// Function call?
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			fc := &FuncCall{Name: upper}
			if p.accept("*") {
				fc.Star = true
			} else if !p.accept(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if p.accept(",") {
						continue
					}
					break
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if fc.Star {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Column reference, possibly qualified.
		if reservedWords[upper] {
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
		p.pos++
		if p.accept(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	p.keyword("CASE")
	ce := &CaseExpr{}
	for p.keyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.keyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
