package sql

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/event"
	"repro/internal/storage"
)

// Runtime supplies engine-level services to the evaluator; currently the
// event space backing the EVENT builtins.
type Runtime struct {
	Space *event.Space
}

// binding names one column of the working row during execution.
type binding struct {
	table  string // binding name (alias or table name); lower case
	column string // lower case
}

// env is the evaluation environment: the working row plus its bindings.
type env struct {
	cols []binding
	row  storage.Row
	rt   *Runtime
}

// lookup resolves a column reference against the bindings. Unqualified names
// must be unambiguous.
func (e *env) lookup(table, column string) (storage.Value, error) {
	lt, lc := strings.ToLower(table), strings.ToLower(column)
	found := -1
	for i, b := range e.cols {
		if b.column != lc {
			continue
		}
		if lt != "" && b.table != lt {
			continue
		}
		if found >= 0 {
			return storage.Value{}, fmt.Errorf("sql: ambiguous column %q", column)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return storage.Value{}, fmt.Errorf("sql: unknown column %s.%s", table, column)
		}
		return storage.Value{}, fmt.Errorf("sql: unknown column %q", column)
	}
	return e.row[found], nil
}

// eval evaluates a scalar expression under SQL three-valued logic: NULL
// propagates through arithmetic and comparisons; AND/OR use Kleene logic.
func (e *env) eval(x Expr) (storage.Value, error) {
	switch x := x.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		return e.lookup(x.Table, x.Column)
	case *Unary:
		return e.evalUnary(x)
	case *Binary:
		return e.evalBinary(x)
	case *FuncCall:
		return e.evalFunc(x)
	case *InList:
		return e.evalIn(x)
	case *IsNull:
		v, err := e.eval(x.X)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.Bool(v.IsNull() != x.Not), nil
	case *Like:
		v, err := e.eval(x.X)
		if err != nil {
			return storage.Value{}, err
		}
		pat, err := e.eval(x.Pattern)
		if err != nil {
			return storage.Value{}, err
		}
		if v.IsNull() || pat.IsNull() {
			return storage.Null(), nil
		}
		if v.T != storage.TypeText || pat.T != storage.TypeText {
			return storage.Value{}, fmt.Errorf("sql: LIKE requires TEXT operands")
		}
		return storage.Bool(likeMatch(v.S, pat.S) != x.Not), nil
	case *CaseExpr:
		for _, w := range x.Whens {
			c, err := e.eval(w.Cond)
			if err != nil {
				return storage.Value{}, err
			}
			if truth, _ := c.Truth(); truth {
				return e.eval(w.Then)
			}
		}
		if x.Else != nil {
			return e.eval(x.Else)
		}
		return storage.Null(), nil
	}
	return storage.Value{}, fmt.Errorf("sql: cannot evaluate %T", x)
}

func (e *env) evalUnary(x *Unary) (storage.Value, error) {
	v, err := e.eval(x.X)
	if err != nil {
		return storage.Value{}, err
	}
	if v.IsNull() {
		return storage.Null(), nil
	}
	switch x.Op {
	case "-":
		switch v.T {
		case storage.TypeInt:
			return storage.Int(-v.I), nil
		case storage.TypeFloat:
			return storage.Float(-v.F), nil
		}
		return storage.Value{}, fmt.Errorf("sql: cannot negate %s", v.T)
	case "NOT":
		if v.T != storage.TypeBool {
			return storage.Value{}, fmt.Errorf("sql: NOT requires BOOL, got %s", v.T)
		}
		return storage.Bool(!v.B), nil
	}
	return storage.Value{}, fmt.Errorf("sql: unknown unary op %q", x.Op)
}

func (e *env) evalBinary(x *Binary) (storage.Value, error) {
	if x.Op == "AND" || x.Op == "OR" {
		return e.evalLogical(x)
	}
	l, err := e.eval(x.L)
	if err != nil {
		return storage.Value{}, err
	}
	r, err := e.eval(x.R)
	if err != nil {
		return storage.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return storage.Null(), nil
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := storage.Compare(l, r)
		if err != nil {
			return storage.Value{}, err
		}
		switch x.Op {
		case "=":
			return storage.Bool(c == 0), nil
		case "<>":
			return storage.Bool(c != 0), nil
		case "<":
			return storage.Bool(c < 0), nil
		case "<=":
			return storage.Bool(c <= 0), nil
		case ">":
			return storage.Bool(c > 0), nil
		case ">=":
			return storage.Bool(c >= 0), nil
		}
	}
	return storage.Value{}, fmt.Errorf("sql: unknown operator %q", x.Op)
}

// evalLogical applies Kleene three-valued AND/OR.
func (e *env) evalLogical(x *Binary) (storage.Value, error) {
	l, err := e.eval(x.L)
	if err != nil {
		return storage.Value{}, err
	}
	lVal, lKnown := l.Truth()
	if l.T != storage.TypeNull && l.T != storage.TypeBool {
		return storage.Value{}, fmt.Errorf("sql: %s requires BOOL operands, got %s", x.Op, l.T)
	}
	// Short circuit where the result is determined.
	if x.Op == "AND" && lKnown && !lVal {
		return storage.Bool(false), nil
	}
	if x.Op == "OR" && lKnown && lVal {
		return storage.Bool(true), nil
	}
	r, err := e.eval(x.R)
	if err != nil {
		return storage.Value{}, err
	}
	if r.T != storage.TypeNull && r.T != storage.TypeBool {
		return storage.Value{}, fmt.Errorf("sql: %s requires BOOL operands, got %s", x.Op, r.T)
	}
	rVal, rKnown := r.Truth()
	switch x.Op {
	case "AND":
		switch {
		case rKnown && !rVal:
			return storage.Bool(false), nil
		case lKnown && rKnown:
			return storage.Bool(lVal && rVal), nil
		default:
			return storage.Null(), nil
		}
	case "OR":
		switch {
		case rKnown && rVal:
			return storage.Bool(true), nil
		case lKnown && rKnown:
			return storage.Bool(lVal || rVal), nil
		default:
			return storage.Null(), nil
		}
	}
	return storage.Value{}, fmt.Errorf("sql: unknown logical op %q", x.Op)
}

func arith(op string, l, r storage.Value) (storage.Value, error) {
	if l.T == storage.TypeInt && r.T == storage.TypeInt {
		switch op {
		case "+":
			return storage.Int(l.I + r.I), nil
		case "-":
			return storage.Int(l.I - r.I), nil
		case "*":
			return storage.Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return storage.Value{}, fmt.Errorf("sql: division by zero")
			}
			return storage.Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return storage.Value{}, fmt.Errorf("sql: division by zero")
			}
			return storage.Int(l.I % r.I), nil
		}
	}
	lf, err := l.AsFloat()
	if err != nil {
		return storage.Value{}, fmt.Errorf("sql: %q: %w", op, err)
	}
	rf, err := r.AsFloat()
	if err != nil {
		return storage.Value{}, fmt.Errorf("sql: %q: %w", op, err)
	}
	switch op {
	case "+":
		return storage.Float(lf + rf), nil
	case "-":
		return storage.Float(lf - rf), nil
	case "*":
		return storage.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return storage.Value{}, fmt.Errorf("sql: division by zero")
		}
		return storage.Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return storage.Value{}, fmt.Errorf("sql: division by zero")
		}
		return storage.Float(math.Mod(lf, rf)), nil
	}
	return storage.Value{}, fmt.Errorf("sql: unknown arithmetic op %q", op)
}

func (e *env) evalIn(x *InList) (storage.Value, error) {
	v, err := e.eval(x.X)
	if err != nil {
		return storage.Value{}, err
	}
	if v.IsNull() {
		return storage.Null(), nil
	}
	sawNull := false
	for _, se := range x.Set {
		sv, err := e.eval(se)
		if err != nil {
			return storage.Value{}, err
		}
		if sv.IsNull() {
			sawNull = true
			continue
		}
		c, err := storage.Compare(v, sv)
		if err != nil {
			return storage.Value{}, err
		}
		if c == 0 {
			return storage.Bool(!x.Not), nil
		}
	}
	if sawNull {
		return storage.Null(), nil
	}
	return storage.Bool(x.Not), nil
}

// evalFunc dispatches scalar builtins. Aggregates never reach here; the
// executor rewrites them before projection.
func (e *env) evalFunc(x *FuncCall) (storage.Value, error) {
	args := make([]storage.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := e.eval(a)
		if err != nil {
			return storage.Value{}, err
		}
		args[i] = v
	}
	return callScalar(e.rt, x.Name, args)
}

func callScalar(rt *Runtime, name string, args []storage.Value) (storage.Value, error) {
	argn := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "ABS":
		if err := argn(1); err != nil {
			return storage.Value{}, err
		}
		v := args[0]
		switch v.T {
		case storage.TypeNull:
			return storage.Null(), nil
		case storage.TypeInt:
			if v.I < 0 {
				return storage.Int(-v.I), nil
			}
			return v, nil
		case storage.TypeFloat:
			return storage.Float(math.Abs(v.F)), nil
		}
		return storage.Value{}, fmt.Errorf("sql: ABS requires a number")
	case "LOWER", "UPPER":
		if err := argn(1); err != nil {
			return storage.Value{}, err
		}
		v := args[0]
		if v.IsNull() {
			return storage.Null(), nil
		}
		if v.T != storage.TypeText {
			return storage.Value{}, fmt.Errorf("sql: %s requires TEXT", name)
		}
		if name == "LOWER" {
			return storage.Text(strings.ToLower(v.S)), nil
		}
		return storage.Text(strings.ToUpper(v.S)), nil
	case "LENGTH":
		if err := argn(1); err != nil {
			return storage.Value{}, err
		}
		if args[0].IsNull() {
			return storage.Null(), nil
		}
		if args[0].T != storage.TypeText {
			return storage.Value{}, fmt.Errorf("sql: LENGTH requires TEXT")
		}
		return storage.Int(int64(len(args[0].S))), nil
	case "COALESCE":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return storage.Null(), nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return storage.Value{}, fmt.Errorf("sql: ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return storage.Null(), nil
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return storage.Value{}, err
		}
		digits := 0
		if len(args) == 2 {
			if args[1].T != storage.TypeInt {
				return storage.Value{}, fmt.Errorf("sql: ROUND digits must be INT")
			}
			digits = int(args[1].I)
		}
		scale := math.Pow(10, float64(digits))
		return storage.Float(math.Round(f*scale) / scale), nil

	// EVENT builtins — the paper's datatype extension (§5).
	case "EV_TRUE":
		if err := argn(0); err != nil {
			return storage.Value{}, err
		}
		return storage.Event(event.True()), nil
	case "EV_FALSE":
		if err := argn(0); err != nil {
			return storage.Value{}, err
		}
		return storage.Event(event.False()), nil
	case "EV_BASIC":
		if err := argn(1); err != nil {
			return storage.Value{}, err
		}
		if args[0].T != storage.TypeText {
			return storage.Value{}, fmt.Errorf("sql: EV_BASIC requires TEXT")
		}
		return storage.Event(event.Basic(args[0].S)), nil
	case "EV_AND", "EV_OR":
		exprs := make([]*event.Expr, 0, len(args))
		for _, v := range args {
			ev, err := asEvent(v, name)
			if err != nil {
				return storage.Value{}, err
			}
			exprs = append(exprs, ev)
		}
		if name == "EV_AND" {
			return storage.Event(event.And(exprs...)), nil
		}
		return storage.Event(event.Or(exprs...)), nil
	case "EV_NOT":
		if err := argn(1); err != nil {
			return storage.Value{}, err
		}
		ev, err := asEvent(args[0], name)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.Event(event.Not(ev)), nil
	case "PROB":
		if err := argn(1); err != nil {
			return storage.Value{}, err
		}
		if rt == nil || rt.Space == nil {
			return storage.Value{}, fmt.Errorf("sql: PROB requires an event space")
		}
		ev, err := asEvent(args[0], name)
		if err != nil {
			return storage.Value{}, err
		}
		p, err := rt.Space.Prob(ev)
		if err != nil {
			return storage.Value{}, fmt.Errorf("sql: PROB: %w", err)
		}
		return storage.Float(p), nil
	}
	return storage.Value{}, fmt.Errorf("sql: unknown function %s", name)
}

// asEvent interprets a value as an event expression. NULL is interpreted as
// the impossible event, which is exactly the semantics the concept-view
// mapping needs for LEFT JOIN misses ("tuple not asserted into the concept").
func asEvent(v storage.Value, fn string) (*event.Expr, error) {
	switch v.T {
	case storage.TypeEvent:
		return v.Ev, nil
	case storage.TypeNull:
		return event.False(), nil
	case storage.TypeBool:
		if v.B {
			return event.True(), nil
		}
		return event.False(), nil
	}
	return nil, fmt.Errorf("sql: %s requires EVENT arguments, got %s", fn, v.T)
}

// likeMatch implements SQL LIKE: '%' matches any run (including empty),
// '_' matches exactly one character. Matching is over runes and
// case-sensitive, with an iterative two-pointer backtracking algorithm.
func likeMatch(s, pattern string) bool {
	str, pat := []rune(s), []rune(pattern)
	si, pi := 0, 0
	starSi, starPi := -1, -1
	for si < len(str) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == str[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			starPi = pi
			starSi = si
			pi++
		case starPi >= 0:
			starSi++
			si = starSi
			pi = starPi + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// aggregateNames lists functions the executor treats as aggregates.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"EV_OR_AGG": true, "EV_AND_AGG": true,
}

// hasAggregate reports whether x contains an aggregate call.
func hasAggregate(x Expr) bool {
	switch x := x.(type) {
	case nil, *Literal, *ColumnRef:
		return false
	case *Unary:
		return hasAggregate(x.X)
	case *Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *FuncCall:
		if aggregateNames[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	case *InList:
		if hasAggregate(x.X) {
			return true
		}
		for _, s := range x.Set {
			if hasAggregate(s) {
				return true
			}
		}
		return false
	case *IsNull:
		return hasAggregate(x.X)
	case *Like:
		return hasAggregate(x.X) || hasAggregate(x.Pattern)
	case *CaseExpr:
		for _, w := range x.Whens {
			if hasAggregate(w.Cond) || hasAggregate(w.Then) {
				return true
			}
		}
		return x.Else != nil && hasAggregate(x.Else)
	}
	return false
}
