package sql

import (
	"strings"
	"testing"
)

func TestViewCycleDetected(t *testing.T) {
	ex, _ := newTestExec(t)
	// Create v2 first referencing v1 (lazy resolution allows it), then v1
	// referencing v2 — querying either must fail with a depth error, not
	// hang.
	mustExec(t, ex,
		"CREATE TABLE seed (x INT)",
		"CREATE VIEW v1 AS SELECT x FROM v2",
		"CREATE VIEW v2 AS SELECT x FROM v1",
	)
	_, err := ex.Exec("SELECT * FROM v1")
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestDeepViewChain(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE base (x INT)", "INSERT INTO base VALUES (1), (2)")
	prev := "base"
	for i := 0; i < 20; i++ {
		name := "lvl" + string(rune('a'+i))
		mustExec(t, ex, "CREATE VIEW "+name+" AS SELECT x FROM "+prev)
		prev = name
	}
	res := query(t, ex, "SELECT COUNT(*) FROM "+prev)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "INSERT INTO t VALUES (2), (NULL), (1)")
	res := query(t, ex, "SELECT x FROM t ORDER BY x")
	if !res.Rows[0][0].IsNull() || res.Rows[1][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// DESC puts NULL last (reverse of the total order).
	res = query(t, ex, "SELECT x FROM t ORDER BY x DESC")
	if !res.Rows[2][0].IsNull() || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByMultipleKeysMixedDirections(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (a INT, b INT)",
		"INSERT INTO t VALUES (1, 1), (1, 2), (2, 1), (2, 2)",
	)
	res := query(t, ex, "SELECT a, b FROM t ORDER BY a ASC, b DESC")
	want := [][2]int64{{1, 2}, {1, 1}, {2, 2}, {2, 1}}
	for i, w := range want {
		if res.Rows[i][0].I != w[0] || res.Rows[i][1].I != w[1] {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestStableSortPreservesInsertionOnTies(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE t (k INT, tag TEXT)",
		"INSERT INTO t VALUES (1, 'first'), (1, 'second'), (1, 'third')",
	)
	res := query(t, ex, "SELECT tag FROM t ORDER BY k")
	if res.Rows[0][0].S != "first" || res.Rows[2][0].S != "third" {
		t.Fatalf("tie order not stable: %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1), (2), (3), (4)")
	res := query(t, ex, "SELECT x % 2 AS par, COUNT(*) AS n FROM t GROUP BY x % 2 ORDER BY par")
	if len(res.Rows) != 2 || res.Rows[0][1].I != 2 || res.Rows[1][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionAllChain(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1)")
	res := query(t, ex, "SELECT x FROM t UNION ALL SELECT x FROM t UNION ALL SELECT x FROM t")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE edge (src TEXT, dst TEXT)",
		"INSERT INTO edge VALUES ('a', 'b'), ('b', 'c'), ('c', 'd')",
	)
	// Two-hop paths via self join.
	res := query(t, ex, `SELECT e1.src, e2.dst FROM edge e1 JOIN edge e2 ON e1.dst = e2.src ORDER BY e1.src`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "a" || res.Rows[0][1].S != "c" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLimitZeroAndBeyondRowCount(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1), (2)")
	res := query(t, ex, "SELECT x FROM t LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, ex, "SELECT x FROM t LIMIT 100")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWhereOnJoinedViewWithEvents(t *testing.T) {
	ex, space := newTestExec(t)
	space.Declare("e", 0.4)
	mustExec(t, ex,
		"CREATE TABLE c (id TEXT, ev EVENT)",
		"INSERT INTO c VALUES ('x', EV_BASIC('e')), ('y', EV_TRUE())",
		"CREATE VIEW probs AS SELECT id, PROB(ev) AS p FROM c",
	)
	res := query(t, ex, "SELECT id FROM probs WHERE p > 0.5")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "y" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDistinctOnExpressions(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1), (2), (3), (4)")
	res := query(t, ex, "SELECT DISTINCT x % 2 FROM t")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	ex, _ := newTestExec(t)
	res := query(t, ex, "SELECT CASE WHEN FALSE THEN 1 END")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("value = %v", res.Rows[0][0])
	}
}

func TestCoalesceOverLeftJoin(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex,
		"CREATE TABLE a (id TEXT)", "INSERT INTO a VALUES ('x'), ('y')",
		"CREATE TABLE b (id TEXT, v INT)", "INSERT INTO b VALUES ('x', 7)",
	)
	res := query(t, ex, `SELECT a.id, COALESCE(b.v, 0) AS v FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id`)
	if res.Rows[0][1].I != 7 || res.Rows[1][1].I != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	ex, _ := newTestExec(t)
	mustExec(t, ex, "CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1), (2)")
	res := query(t, ex, "SELECT SUM(x) FROM t HAVING SUM(x) > 2")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, ex, "SELECT SUM(x) FROM t HAVING SUM(x) > 10")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
