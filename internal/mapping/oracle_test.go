package mapping

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
)

// oracleABox is an in-memory ABox mirror used as an independent semantics
// oracle: membership events are computed directly over Go maps, bypassing
// the SQL view compilation entirely. Agreement between the two paths
// cross-validates mapping + sql + storage + event at once.
type oracleABox struct {
	individuals []string
	concepts    map[string]map[string]*event.Expr            // concept -> id -> ev
	roles       map[string]map[string]map[string]*event.Expr // role -> src -> dst -> ev
}

func (o *oracleABox) membership(e *dl.Expr, id string) *event.Expr {
	switch e.Op() {
	case dl.OpTop:
		return event.True()
	case dl.OpBottom:
		return event.False()
	case dl.OpAtom:
		if ev, ok := o.concepts[e.Name()][id]; ok {
			return ev
		}
		return event.False()
	case dl.OpNominal:
		for _, ind := range e.Individuals() {
			if ind == id {
				return event.True()
			}
		}
		return event.False()
	case dl.OpAnd:
		evs := make([]*event.Expr, 0, len(e.Args()))
		for _, a := range e.Args() {
			evs = append(evs, o.membership(a, id))
		}
		return event.And(evs...)
	case dl.OpOr:
		evs := make([]*event.Expr, 0, len(e.Args()))
		for _, a := range e.Args() {
			evs = append(evs, o.membership(a, id))
		}
		return event.Or(evs...)
	case dl.OpNot:
		return event.Not(o.membership(e.Args()[0], id))
	case dl.OpExists:
		var alts []*event.Expr
		for dst, ev := range o.roles[e.Name()][id] {
			alts = append(alts, event.And(ev, o.membership(e.Filler(), dst)))
		}
		return event.Or(alts...)
	}
	return event.False()
}

// randOracleExpr builds a random concept expression over the vocabulary.
func randOracleExpr(r *rand.Rand, concepts, roles, inds []string, depth int) *dl.Expr {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return dl.Atom(concepts[r.Intn(len(concepts))])
		case 1:
			return dl.Nominal(inds[r.Intn(len(inds))])
		default:
			return dl.Top()
		}
	}
	switch r.Intn(6) {
	case 0:
		return dl.And(randOracleExpr(r, concepts, roles, inds, depth-1),
			randOracleExpr(r, concepts, roles, inds, depth-1))
	case 1:
		return dl.Or(randOracleExpr(r, concepts, roles, inds, depth-1),
			randOracleExpr(r, concepts, roles, inds, depth-1))
	case 2:
		return dl.Not(randOracleExpr(r, concepts, roles, inds, depth-1))
	case 3, 4:
		return dl.Exists(roles[r.Intn(len(roles))],
			randOracleExpr(r, concepts, roles, inds, depth-1))
	default:
		return dl.Atom(concepts[r.Intn(len(concepts))])
	}
}

// TestViewSemanticsMatchOracle generates random uncertain ABoxes and random
// concept expressions and checks per-individual membership probabilities
// computed through compiled SQL views against the in-memory oracle.
func TestViewSemanticsMatchOracle(t *testing.T) {
	conceptNames := []string{"A", "B", "C"}
	roleNames := []string{"r", "s"}
	for trial := 0; trial < 12; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 100))
		db := engine.New()
		l := NewLoader(db, nil)
		oracle := &oracleABox{
			concepts: make(map[string]map[string]*event.Expr),
			roles:    make(map[string]map[string]map[string]*event.Expr),
		}
		for _, c := range conceptNames {
			if err := l.DeclareConcept(c); err != nil {
				t.Fatal(err)
			}
			oracle.concepts[c] = make(map[string]*event.Expr)
		}
		for _, ro := range roleNames {
			if err := l.DeclareRole(ro); err != nil {
				t.Fatal(err)
			}
			oracle.roles[ro] = make(map[string]map[string]*event.Expr)
		}
		nInds := 5
		inds := make([]string, nInds)
		for i := range inds {
			inds[i] = fmt.Sprintf("x%d", i)
		}
		oracle.individuals = inds

		evSeq := 0
		newEv := func() *event.Expr {
			if r.Intn(2) == 0 {
				return event.True()
			}
			evSeq++
			name := fmt.Sprintf("t%d_e%d", trial, evSeq)
			if err := db.Space().Declare(name, 0.1+0.8*r.Float64()); err != nil {
				t.Fatal(err)
			}
			return event.Basic(name)
		}

		// Random concept assertions.
		for _, c := range conceptNames {
			for _, id := range inds {
				if r.Intn(2) == 0 {
					ev := newEv()
					if err := l.AssertConcept(c, id, ev); err != nil {
						t.Fatal(err)
					}
					oracle.concepts[c][id] = ev
				}
			}
		}
		// Random role assertions.
		for _, ro := range roleNames {
			for _, src := range inds {
				for _, dst := range inds {
					if r.Intn(4) == 0 {
						ev := newEv()
						if err := l.AssertRole(ro, src, dst, ev); err != nil {
							t.Fatal(err)
						}
						if oracle.roles[ro][src] == nil {
							oracle.roles[ro][src] = make(map[string]*event.Expr)
						}
						oracle.roles[ro][src][dst] = ev
					}
				}
			}
		}
		// Make sure every individual is in the domain even if unasserted.
		for _, id := range inds {
			if err := l.AssertConcept("A", id, event.False()); err != nil {
				t.Fatal(err)
			}
		}

		space := db.Space()
		for q := 0; q < 8; q++ {
			expr := randOracleExpr(r, conceptNames, roleNames, inds, 3)
			for _, id := range inds {
				got, err := l.MembershipEvent(expr, id)
				if err != nil {
					t.Fatalf("trial %d expr %s: %v", trial, expr, err)
				}
				gotP, err := space.Prob(got)
				if err != nil {
					t.Fatal(err)
				}
				wantP, err := space.Prob(oracle.membership(expr, id))
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(gotP-wantP) > 1e-9 {
					t.Fatalf("trial %d: P(%s ∈ %s) view=%g oracle=%g",
						trial, id, expr, gotP, wantP)
				}
			}
		}
	}
}
