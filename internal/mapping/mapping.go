// Package mapping loads a Description Logic ABox into the embedded
// relational engine and compiles concept expressions into SQL views with
// event-expression propagation — the paper's §5 architecture: "we view each
// concept as a table [with] an ID attribute and an event expression
// attribute … each role as a table [with] SOURCE, DESTINATION, and an event
// expression", following Borgida & Brachman's loading scheme, "with added
// support for the propagation of event expressions".
package mapping

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/storage"
)

// Loader owns the concept/role tables of one database and compiles concept
// expressions to views. Safe for concurrent reads; declarations and view
// compilation are serialized.
type Loader struct {
	db   *engine.DB
	tbox *dl.TBox

	mu       sync.Mutex
	concepts map[string]bool   // declared concept names (original case)
	roles    map[string]bool   // declared role names
	views    map[string]string // canonical expr -> view name
	viewSQL  map[string]string // view name -> defining SQL (traceability)
	seq      int

	// Applied-situation bookkeeping, owned by situation.Context.Apply: the
	// context concepts asserted and the basic events declared by the most
	// recent apply on this loader. The next apply retracts those assertions
	// and retires those events, which is what keeps the event space bounded
	// under context churn. Guarded by its own mutex (reads may come from
	// goroutines that never touch the vocabulary), though applies themselves
	// are mutators and must be externally serialized like all others.
	ctxMu       sync.Mutex
	ctxConcepts []string
	ctxEvents   []string
}

// NewLoader creates a loader over db with the given TBox (may be nil; a
// fresh one is created). If db already holds a DL vocabulary — e.g. it was
// restored from an engine snapshot — the declared concepts and roles are
// adopted from the dl_vocab table.
func NewLoader(db *engine.DB, tbox *dl.TBox) *Loader {
	if tbox == nil {
		tbox = dl.NewTBox()
	}
	l := &Loader{
		db:       db,
		tbox:     tbox,
		concepts: make(map[string]bool),
		roles:    make(map[string]bool),
		views:    make(map[string]string),
		viewSQL:  make(map[string]string),
	}
	// The domain table holds every known individual; it backs ⊤, nominals
	// and negation. dl_vocab records declarations so the vocabulary
	// survives snapshot round trips.
	db.MustExec("CREATE TABLE IF NOT EXISTS dl_domain (id TEXT, ev EVENT)")
	db.MustExec("CREATE INDEX ON dl_domain (id)")
	db.MustExec("CREATE TABLE IF NOT EXISTS dl_vocab (kind TEXT, name TEXT)")
	if res, err := db.Query("SELECT kind, name FROM dl_vocab"); err == nil {
		for _, row := range res.Rows {
			switch row[0].S {
			case "concept":
				l.concepts[row[1].S] = true
			case "role":
				l.roles[row[1].S] = true
			}
		}
	}
	// dl_ctx persists the applied-situation record (which concepts the last
	// context apply asserted, which basic events it declared), so a system
	// restored from a snapshot retracts and retires the snapshot's context
	// on its first apply — including concepts asserted with certain
	// measurements, which declare no events and could not be reconstructed
	// from event names alone.
	db.MustExec("CREATE TABLE IF NOT EXISTS dl_ctx (kind TEXT, name TEXT)")
	if res, err := db.Query("SELECT kind, name FROM dl_ctx"); err == nil {
		for _, row := range res.Rows {
			switch row[0].S {
			case "concept":
				l.ctxConcepts = append(l.ctxConcepts, row[1].S)
			case "event":
				l.ctxEvents = append(l.ctxEvents, row[1].S)
			}
		}
	}
	return l
}

// DB returns the underlying database handle.
func (l *Loader) DB() *engine.DB { return l.db }

// TBox returns the loader's terminology.
func (l *Loader) TBox() *dl.TBox { return l.tbox }

// sanitize turns a DL name into a SQL identifier fragment.
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ConceptTable returns the base-table name backing an atomic concept.
func ConceptTable(name string) string { return "c_" + sanitize(name) }

// RoleTable returns the base-table name backing a role.
func RoleTable(name string) string { return "r_" + sanitize(name) }

func sqlQuote(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

// DeclareConcept creates the backing table for an atomic concept;
// idempotent.
func (l *Loader) DeclareConcept(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.concepts[name] {
		return nil
	}
	tab := ConceptTable(name)
	if l.db.HasTable(tab) {
		return fmt.Errorf("mapping: concept table %q collides with an existing table (name clash after sanitizing %q?)", tab, name)
	}
	if _, err := l.db.Exec(fmt.Sprintf("CREATE TABLE %s (id TEXT, ev EVENT)", tab)); err != nil {
		return err
	}
	if _, err := l.db.Exec(fmt.Sprintf("CREATE INDEX ON %s (id)", tab)); err != nil {
		return err
	}
	if err := l.db.InsertRow("dl_vocab", "concept", name); err != nil {
		return err
	}
	l.concepts[name] = true
	return nil
}

// DeclareRole creates the backing table for a role; idempotent.
func (l *Loader) DeclareRole(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.roles[name] {
		return nil
	}
	tab := RoleTable(name)
	if l.db.HasTable(tab) {
		return fmt.Errorf("mapping: role table %q collides with an existing table (name clash after sanitizing %q?)", tab, name)
	}
	if _, err := l.db.Exec(fmt.Sprintf("CREATE TABLE %s (src TEXT, dst TEXT, ev EVENT)", tab)); err != nil {
		return err
	}
	if _, err := l.db.Exec(fmt.Sprintf("CREATE INDEX ON %s (src)", tab)); err != nil {
		return err
	}
	if _, err := l.db.Exec(fmt.Sprintf("CREATE INDEX ON %s (dst)", tab)); err != nil {
		return err
	}
	if err := l.db.InsertRow("dl_vocab", "role", name); err != nil {
		return err
	}
	l.roles[name] = true
	return nil
}

// HasConcept reports whether the named concept is declared.
func (l *Loader) HasConcept(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.concepts[name]
}

// HasRole returns whether the named role is declared.
func (l *Loader) HasRole(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.roles[name]
}

// vocabulary returns copies of the declared names for dl.Validate.
func (l *Loader) vocabulary() (concepts, roles map[string]bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	concepts = make(map[string]bool, len(l.concepts))
	for k := range l.concepts {
		concepts[k] = true
	}
	roles = make(map[string]bool, len(l.roles))
	for k := range l.roles {
		roles[k] = true
	}
	return concepts, roles
}

// DomainSize returns the number of registered individuals (dl_domain
// rows). The domain only grows, so an unchanged size proves that no
// individual was registered in between — which is what incremental plan
// maintenance checks before trusting cached memberships of views that read
// the closed domain (¬, ⊤, nominals).
func (l *Loader) DomainSize() int {
	tab, err := l.db.Catalog().Get("dl_domain")
	if err != nil {
		return 0
	}
	return tab.Len()
}

// registerIndividual ensures the individual is in the domain table.
func (l *Loader) registerIndividual(id string) error {
	tab, err := l.db.Catalog().Get("dl_domain")
	if err != nil {
		return err
	}
	rows, err := tab.Lookup("id", storage.Text(id))
	if err != nil {
		return err
	}
	if len(rows) > 0 {
		return nil
	}
	return l.db.InsertRow("dl_domain", id, event.True())
}

// AssertConcept asserts id ∈ concept with the given assertion event (nil
// means certain). Repeated assertions of the same membership are merged by
// disjunction of their events.
func (l *Loader) AssertConcept(concept, id string, ev *event.Expr) error {
	if !l.HasConcept(concept) {
		return fmt.Errorf("mapping: concept %q not declared", concept)
	}
	if ev == nil {
		ev = event.True()
	}
	if err := l.registerIndividual(id); err != nil {
		return err
	}
	tab, err := l.db.Catalog().Get(ConceptTable(concept))
	if err != nil {
		return err
	}
	key := storage.Text(id)
	existing, err := tab.Lookup("id", key)
	if err != nil {
		return err
	}
	if len(existing) > 0 {
		merged := ev
		for _, r := range existing {
			merged = event.Or(merged, r[1].Ev)
		}
		ev = merged
		tab.Delete(func(r storage.Row) bool { return storage.Equal(r[0], key) })
	}
	return l.db.InsertRow(ConceptTable(concept), id, ev)
}

// AssertRole asserts (src, dst) ∈ role with the given assertion event (nil
// means certain). Repeated assertions of the same pair are merged by
// disjunction.
func (l *Loader) AssertRole(role, src, dst string, ev *event.Expr) error {
	if !l.HasRole(role) {
		return fmt.Errorf("mapping: role %q not declared", role)
	}
	if ev == nil {
		ev = event.True()
	}
	if err := l.registerIndividual(src); err != nil {
		return err
	}
	if err := l.registerIndividual(dst); err != nil {
		return err
	}
	tab, err := l.db.Catalog().Get(RoleTable(role))
	if err != nil {
		return err
	}
	srcKey, dstKey := storage.Text(src), storage.Text(dst)
	rows, err := tab.Lookup("src", srcKey)
	if err != nil {
		return err
	}
	var dup []*event.Expr
	for _, r := range rows {
		if storage.Equal(r[1], dstKey) {
			dup = append(dup, r[2].Ev)
		}
	}
	if len(dup) > 0 {
		merged := ev
		for _, d := range dup {
			merged = event.Or(merged, d)
		}
		ev = merged
		tab.Delete(func(r storage.Row) bool {
			return storage.Equal(r[0], srcKey) && storage.Equal(r[1], dstKey)
		})
	}
	return l.db.InsertRow(RoleTable(role), src, dst, ev)
}

// ClearConcept removes all assertions of a concept — used to refresh
// dynamic context concepts between queries (§5: dynamic contexts "must be
// acquired real-time").
func (l *Loader) ClearConcept(concept string) error {
	if !l.HasConcept(concept) {
		return fmt.Errorf("mapping: concept %q not declared", concept)
	}
	tab, err := l.db.Catalog().Get(ConceptTable(concept))
	if err != nil {
		return err
	}
	tab.Delete(func(storage.Row) bool { return true })
	return nil
}

// AppliedContext returns copies of the context concepts asserted and the
// basic events declared by the most recent situation apply on this loader
// (both empty for a fresh loader; situation.AdoptApplied seeds them after
// a snapshot restore).
func (l *Loader) AppliedContext() (concepts, events []string) {
	l.ctxMu.Lock()
	defer l.ctxMu.Unlock()
	concepts = append([]string(nil), l.ctxConcepts...)
	events = append([]string(nil), l.ctxEvents...)
	return concepts, events
}

// SetAppliedContext replaces the applied-situation record. The situation
// layer calls it at the end of every apply — with the new context's
// vocabulary on success, or with the union of everything possibly still
// asserted or declared when an apply fails partway, so the next apply can
// finish the cleanup. The record is written through to the dl_ctx table so
// it survives snapshot round trips (best-effort: an unwritable table only
// degrades post-restore cleanup, never the live process).
func (l *Loader) SetAppliedContext(concepts, events []string) {
	l.ctxMu.Lock()
	defer l.ctxMu.Unlock()
	l.ctxConcepts = append([]string(nil), concepts...)
	l.ctxEvents = append([]string(nil), events...)
	tab, err := l.db.Catalog().Get("dl_ctx")
	if err != nil {
		return
	}
	tab.Delete(func(storage.Row) bool { return true })
	for _, c := range concepts {
		_ = l.db.InsertRow("dl_ctx", "concept", c)
	}
	for _, e := range events {
		_ = l.db.InsertRow("dl_ctx", "event", e)
	}
}

// ViewFor compiles a concept expression into a database view and returns
// the view's name. The view has columns (id TEXT, ev EVENT): the tuples
// possibly included in the expression together with their inclusion events.
// Compilation is cached per canonical expression.
func (l *Loader) ViewFor(expr *dl.Expr) (string, error) {
	concepts, roles := l.vocabulary()
	if err := dl.Validate(expr, concepts, roles); err != nil {
		return "", err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.viewForLocked(expr)
}

func (l *Loader) viewForLocked(expr *dl.Expr) (string, error) {
	// Atomic concepts are backed directly by their base tables.
	if expr.Op() == dl.OpAtom {
		return ConceptTable(expr.Name()), nil
	}
	if expr.Op() == dl.OpTop {
		return "dl_domain", nil
	}
	key := expr.String()
	if name, ok := l.views[key]; ok {
		return name, nil
	}
	l.seq++
	name := fmt.Sprintf("v_dl_%04d", l.seq)
	sqlText, err := l.viewSQLFor(expr)
	if err != nil {
		return "", err
	}
	ddl := fmt.Sprintf("CREATE OR REPLACE VIEW %s AS %s", name, sqlText)
	if _, err := l.db.Exec(ddl); err != nil {
		return "", fmt.Errorf("mapping: compiling %s: %w", expr, err)
	}
	l.views[key] = name
	l.viewSQL[name] = ddl
	return name, nil
}

// viewSQLFor emits the SELECT for one expression node, recursing through
// viewForLocked so shared subexpressions compile once.
func (l *Loader) viewSQLFor(expr *dl.Expr) (string, error) {
	switch expr.Op() {
	case dl.OpTop:
		return "SELECT id, ev FROM dl_domain", nil
	case dl.OpBottom:
		return "SELECT id, ev FROM dl_domain WHERE FALSE", nil
	case dl.OpAtom:
		return fmt.Sprintf("SELECT id, ev FROM %s", ConceptTable(expr.Name())), nil
	case dl.OpNominal:
		quoted := make([]string, len(expr.Individuals()))
		for i, ind := range expr.Individuals() {
			quoted[i] = sqlQuote(ind)
		}
		return fmt.Sprintf("SELECT id, ev FROM dl_domain WHERE id IN (%s)", strings.Join(quoted, ", ")), nil
	case dl.OpAnd:
		// t0 JOIN t1 ON t0.id = t1.id …, conjoining events.
		var from strings.Builder
		evArgs := make([]string, len(expr.Args()))
		for i, arg := range expr.Args() {
			child, err := l.viewForLocked(arg)
			if err != nil {
				return "", err
			}
			alias := fmt.Sprintf("t%d", i)
			if i == 0 {
				fmt.Fprintf(&from, "%s %s", child, alias)
			} else {
				fmt.Fprintf(&from, " JOIN %s %s ON t0.id = %s.id", child, alias, alias)
			}
			evArgs[i] = alias + ".ev"
		}
		return fmt.Sprintf("SELECT t0.id AS id, EV_AND(%s) AS ev FROM %s",
			strings.Join(evArgs, ", "), from.String()), nil
	case dl.OpOr:
		// Union the branches, then group per individual disjoining events.
		branches := make([]string, len(expr.Args()))
		for i, arg := range expr.Args() {
			child, err := l.viewForLocked(arg)
			if err != nil {
				return "", err
			}
			branches[i] = fmt.Sprintf("SELECT id, ev FROM %s", child)
		}
		return fmt.Sprintf("SELECT u.id AS id, EV_OR_AGG(u.ev) AS ev FROM (%s) u GROUP BY u.id",
			strings.Join(branches, " UNION ALL ")), nil
	case dl.OpExists:
		filler, err := l.viewForLocked(expr.Filler())
		if err != nil {
			return "", err
		}
		// ∃R.C: an individual x is included if some (x, y) ∈ R with y ∈ C;
		// the inclusion event is ∨_y (R(x,y) ∧ C(y)).
		return fmt.Sprintf(
			"SELECT r.src AS id, EV_OR_AGG(EV_AND(r.ev, c.ev)) AS ev FROM %s r JOIN %s c ON r.dst = c.id GROUP BY r.src",
			RoleTable(expr.Name()), filler), nil
	case dl.OpNot:
		inner, err := l.viewForLocked(expr.Args()[0])
		if err != nil {
			return "", err
		}
		// ¬C over the closed domain: every individual, with the complement
		// of its inclusion event (a LEFT JOIN miss is the impossible event,
		// so EV_NOT yields ⊤).
		return fmt.Sprintf(
			"SELECT d.id AS id, EV_AND(d.ev, EV_NOT(c.ev)) AS ev FROM dl_domain d LEFT JOIN %s c ON d.id = c.id",
			inner), nil
	}
	return "", fmt.Errorf("mapping: cannot compile %s", expr)
}

// ViewSQL returns the DDL that defined a compiled view (data lineage for
// traceability, §5) or "" if unknown.
func (l *Loader) ViewSQL(viewName string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.viewSQL[viewName]
}

// MembershipEvent returns the event under which individual id belongs to
// the concept expression — the impossible event if the individual does not
// appear in the compiled view.
func (l *Loader) MembershipEvent(expr *dl.Expr, id string) (*event.Expr, error) {
	view, err := l.ViewFor(expr)
	if err != nil {
		return nil, err
	}
	res, err := l.db.Query(fmt.Sprintf("SELECT ev FROM %s WHERE id = %s", view, sqlQuote(id)))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return event.False(), nil
	}
	evs := make([]*event.Expr, 0, len(res.Rows))
	for _, r := range res.Rows {
		ev, err := rowEvent(r[0])
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return event.Or(evs...), nil
}

// Members returns every individual possibly in the concept expression with
// its inclusion event.
func (l *Loader) Members(expr *dl.Expr) (map[string]*event.Expr, error) {
	view, err := l.ViewFor(expr)
	if err != nil {
		return nil, err
	}
	res, err := l.db.Query(fmt.Sprintf("SELECT id, ev FROM %s", view))
	if err != nil {
		return nil, err
	}
	out := make(map[string]*event.Expr, len(res.Rows))
	for _, r := range res.Rows {
		ev, err := rowEvent(r[1])
		if err != nil {
			return nil, err
		}
		if old, ok := out[r[0].S]; ok {
			ev = event.Or(old, ev)
		}
		out[r[0].S] = ev
	}
	return out, nil
}

func rowEvent(v storage.Value) (*event.Expr, error) {
	switch v.T {
	case storage.TypeEvent:
		return v.Ev, nil
	case storage.TypeNull:
		return event.False(), nil
	}
	return nil, fmt.Errorf("mapping: expected EVENT column, got %s", v.T)
}
