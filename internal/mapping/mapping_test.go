package mapping

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
)

// newTVLoader builds a loader with a small slice of the paper's TVTouch
// data: programs with genres and subjects, some memberships uncertain.
func newTVLoader(t *testing.T) *Loader {
	t.Helper()
	db := engine.New()
	l := NewLoader(db, nil)
	for _, c := range []string{"TvProgram", "Person", "Weekend", "Breakfast"} {
		if err := l.DeclareConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []string{"hasGenre", "hasSubject"} {
		if err := l.DeclareRole(r); err != nil {
			t.Fatal(err)
		}
	}
	space := db.Space()
	// Table 1 of the paper: feature probabilities.
	space.Declare("oprah_hi", 0.85)
	space.Declare("c5_hi", 0.95)
	space.Declare("c5_weather", 0.85)

	for _, p := range []string{"Oprah", "BBCNews", "Channel5News", "MPFS"} {
		if err := l.AssertConcept("TvProgram", p, nil); err != nil {
			t.Fatal(err)
		}
	}
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(l.AssertRole("hasGenre", "Oprah", "HUMAN-INTEREST", event.Basic("oprah_hi")))
	check(l.AssertRole("hasGenre", "Channel5News", "HUMAN-INTEREST", event.Basic("c5_hi")))
	check(l.AssertRole("hasSubject", "BBCNews", "News", nil))
	check(l.AssertRole("hasSubject", "Channel5News", "News", event.Basic("c5_weather")))
	return l
}

func probOf(t *testing.T, l *Loader, expr *dl.Expr, id string) float64 {
	t.Helper()
	ev, err := l.MembershipEvent(expr, id)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.DB().Space().Prob(ev)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAtomicConceptMembership(t *testing.T) {
	l := newTVLoader(t)
	if p := probOf(t, l, dl.Atom("TvProgram"), "Oprah"); p != 1 {
		t.Fatalf("P(Oprah ∈ TvProgram) = %g, want 1", p)
	}
	if p := probOf(t, l, dl.Atom("TvProgram"), "nobody"); p != 0 {
		t.Fatalf("P(nobody ∈ TvProgram) = %g, want 0", p)
	}
}

func TestExistsRestriction(t *testing.T) {
	l := newTVLoader(t)
	hi := dl.MustParse("EXISTS hasGenre.{HUMAN-INTEREST}")
	if p := probOf(t, l, hi, "Oprah"); math.Abs(p-0.85) > 1e-9 {
		t.Fatalf("P(Oprah ∈ ∃hasGenre.HI) = %g, want 0.85", p)
	}
	if p := probOf(t, l, hi, "BBCNews"); p != 0 {
		t.Fatalf("P(BBCNews ∈ ∃hasGenre.HI) = %g, want 0", p)
	}
}

func TestConjunction(t *testing.T) {
	l := newTVLoader(t)
	// The paper's R1 preference concept.
	pref := dl.MustParse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
	if p := probOf(t, l, pref, "Channel5News"); math.Abs(p-0.95) > 1e-9 {
		t.Fatalf("P = %g, want 0.95", p)
	}
	if p := probOf(t, l, pref, "MPFS"); p != 0 {
		t.Fatalf("P = %g, want 0", p)
	}
}

func TestDisjunction(t *testing.T) {
	l := newTVLoader(t)
	either := dl.MustParse("EXISTS hasGenre.{HUMAN-INTEREST} OR EXISTS hasSubject.{News}")
	// Channel5News: P(hi ∨ weather) with independent events 0.95, 0.85.
	want := 1 - (1-0.95)*(1-0.85)
	if p := probOf(t, l, either, "Channel5News"); math.Abs(p-want) > 1e-9 {
		t.Fatalf("P = %g, want %g", p, want)
	}
	if p := probOf(t, l, either, "BBCNews"); p != 1 {
		t.Fatalf("P = %g, want 1", p)
	}
}

func TestNegationOverDomain(t *testing.T) {
	l := newTVLoader(t)
	noHI := dl.MustParse("TvProgram AND NOT EXISTS hasGenre.{HUMAN-INTEREST}")
	if p := probOf(t, l, noHI, "BBCNews"); p != 1 {
		t.Fatalf("P(BBCNews ∈ ¬HI) = %g, want 1", p)
	}
	if p := probOf(t, l, noHI, "Oprah"); math.Abs(p-0.15) > 1e-9 {
		t.Fatalf("P(Oprah ∈ ¬HI) = %g, want 0.15", p)
	}
	// Individuals outside TvProgram are excluded by the conjunction.
	if p := probOf(t, l, noHI, "HUMAN-INTEREST"); p != 0 {
		t.Fatalf("P = %g, want 0", p)
	}
}

func TestNominalAndTopBottom(t *testing.T) {
	l := newTVLoader(t)
	if p := probOf(t, l, dl.Nominal("Oprah", "MPFS"), "Oprah"); p != 1 {
		t.Fatalf("nominal membership = %g", p)
	}
	if p := probOf(t, l, dl.Nominal("Oprah"), "MPFS"); p != 0 {
		t.Fatalf("nominal non-membership = %g", p)
	}
	if p := probOf(t, l, dl.Top(), "Oprah"); p != 1 {
		t.Fatalf("top = %g", p)
	}
	if p := probOf(t, l, dl.Bottom(), "Oprah"); p != 0 {
		t.Fatalf("bottom = %g", p)
	}
}

func TestMembers(t *testing.T) {
	l := newTVLoader(t)
	members, err := l.Members(dl.MustParse("EXISTS hasSubject.{News}"))
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
	if _, ok := members["BBCNews"]; !ok {
		t.Fatal("BBCNews missing")
	}
}

func TestRepeatedAssertionMergesByDisjunction(t *testing.T) {
	db := engine.New()
	l := NewLoader(db, nil)
	l.DeclareConcept("C")
	db.Space().Declare("a", 0.5)
	db.Space().Declare("b", 0.5)
	l.AssertConcept("C", "x", event.Basic("a"))
	l.AssertConcept("C", "x", event.Basic("b"))
	p := probOf(t, l, dl.Atom("C"), "x")
	if math.Abs(p-0.75) > 1e-9 {
		t.Fatalf("merged membership = %g, want 0.75", p)
	}
	// Role variant.
	l.DeclareRole("r")
	l.AssertRole("r", "x", "y", event.Basic("a"))
	l.AssertRole("r", "x", "y", event.Basic("b"))
	p = probOf(t, l, dl.Exists("r", dl.Nominal("y")), "x")
	if math.Abs(p-0.75) > 1e-9 {
		t.Fatalf("merged role membership = %g, want 0.75", p)
	}
}

func TestSharedLineageAcrossConceptAndRole(t *testing.T) {
	// A membership that depends on the same basic event twice must not
	// double-count: P(C ⊓ D) where both carry event e is P(e), not P(e)².
	db := engine.New()
	l := NewLoader(db, nil)
	l.DeclareConcept("C")
	l.DeclareConcept("D")
	db.Space().Declare("e", 0.5)
	l.AssertConcept("C", "x", event.Basic("e"))
	l.AssertConcept("D", "x", event.Basic("e"))
	p := probOf(t, l, dl.And(dl.Atom("C"), dl.Atom("D")), "x")
	if math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(C⊓D) = %g, want 0.5 (shared lineage)", p)
	}
	pn := probOf(t, l, dl.And(dl.Atom("C"), dl.Not(dl.Atom("D"))), "x")
	if pn != 0 {
		t.Fatalf("P(C⊓¬D) = %g, want 0", pn)
	}
}

func TestViewCachingAndLineage(t *testing.T) {
	l := newTVLoader(t)
	e := dl.MustParse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
	v1, err := l.ViewFor(e)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := l.ViewFor(dl.MustParse("EXISTS hasGenre.{HUMAN-INTEREST} AND TvProgram"))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("canonically equal expressions compiled twice: %s vs %s", v1, v2)
	}
	if sql := l.ViewSQL(v1); !strings.Contains(sql, "CREATE OR REPLACE VIEW") {
		t.Fatalf("lineage SQL missing: %q", sql)
	}
	// Atoms resolve to their base tables without a view.
	va, err := l.ViewFor(dl.Atom("TvProgram"))
	if err != nil {
		t.Fatal(err)
	}
	if va != ConceptTable("TvProgram") {
		t.Fatalf("atom view = %q", va)
	}
}

func TestUndeclaredVocabularyRejected(t *testing.T) {
	l := newTVLoader(t)
	if _, err := l.ViewFor(dl.Atom("Martian")); err == nil {
		t.Fatal("undeclared concept accepted")
	}
	if _, err := l.ViewFor(dl.Exists("owns", dl.Top())); err == nil {
		t.Fatal("undeclared role accepted")
	}
	if err := l.AssertConcept("Martian", "x", nil); err == nil {
		t.Fatal("assertion into undeclared concept accepted")
	}
	if err := l.AssertRole("owns", "x", "y", nil); err == nil {
		t.Fatal("assertion into undeclared role accepted")
	}
}

func TestClearConcept(t *testing.T) {
	l := newTVLoader(t)
	l.AssertConcept("Weekend", "now", nil)
	if p := probOf(t, l, dl.Atom("Weekend"), "now"); p != 1 {
		t.Fatalf("P = %g", p)
	}
	if err := l.ClearConcept("Weekend"); err != nil {
		t.Fatal(err)
	}
	if p := probOf(t, l, dl.Atom("Weekend"), "now"); p != 0 {
		t.Fatalf("P after clear = %g", p)
	}
}

func TestDeclareIdempotentAndCollisions(t *testing.T) {
	db := engine.New()
	l := NewLoader(db, nil)
	if err := l.DeclareConcept("A"); err != nil {
		t.Fatal(err)
	}
	if err := l.DeclareConcept("A"); err != nil {
		t.Fatalf("re-declare not idempotent: %v", err)
	}
	// "A-b" and "A_b" sanitize to the same table name: collision detected.
	if err := l.DeclareConcept("A-b"); err != nil {
		t.Fatal(err)
	}
	if err := l.DeclareConcept("A_b"); err == nil {
		t.Fatal("sanitization collision not detected")
	}
}

func TestExclusiveContextGroups(t *testing.T) {
	// "A person can only be at a single place at one moment" (§4.1): model
	// location memberships with an exclusive group and check negation math.
	db := engine.New()
	l := NewLoader(db, nil)
	l.DeclareConcept("InKitchen")
	l.DeclareConcept("InOffice")
	db.Space().DeclareExclusive([]string{"loc_k", "loc_o"}, []float64{0.6, 0.3})
	l.AssertConcept("InKitchen", "peter", event.Basic("loc_k"))
	l.AssertConcept("InOffice", "peter", event.Basic("loc_o"))
	both := dl.And(dl.Atom("InKitchen"), dl.Atom("InOffice"))
	if p := probOf(t, l, both, "peter"); p != 0 {
		t.Fatalf("P(both rooms) = %g, want 0", p)
	}
	either := dl.Or(dl.Atom("InKitchen"), dl.Atom("InOffice"))
	if p := probOf(t, l, either, "peter"); math.Abs(p-0.9) > 1e-9 {
		t.Fatalf("P(either room) = %g, want 0.9", p)
	}
}
