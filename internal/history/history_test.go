package history

import (
	"math"
	"math/rand"
	"testing"
)

func doc(id string, feats ...string) Doc {
	m := make(map[string]bool, len(feats))
	for _, f := range feats {
		m[f] = true
	}
	return Doc{ID: id, Features: m}
}

func TestAppendValidatesChosen(t *testing.T) {
	l := NewLog()
	err := l.Append(Episode{
		ContextFeatures: map[string]bool{"Morning": true},
		Available:       []Doc{doc("d1", "traffic")},
		Chosen:          map[string]bool{"d2": true},
	})
	if err == nil {
		t.Fatal("chosen-but-unavailable document accepted")
	}
	if l.Len() != 0 {
		t.Fatal("invalid episode appended")
	}
}

// fig1Log reproduces the Figure 1 abstraction: on workday mornings the user
// watched traffic bulletins in 80% of the episodes and weather bulletins in
// 60%.
func fig1Log(t *testing.T) *Log {
	t.Helper()
	l := NewLog()
	docs := []Doc{doc("t", "traffic"), doc("w", "weather"), doc("o", "other")}
	for i := 0; i < 100; i++ {
		ep := Episode{
			ContextFeatures: map[string]bool{"WorkdayMorning": true},
			Available:       docs,
			Chosen:          map[string]bool{},
		}
		if i < 80 {
			ep.Chosen["t"] = true
		}
		if i < 60 {
			ep.Chosen["w"] = true
		}
		if err := l.Append(ep); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestMineSigmaFigure1(t *testing.T) {
	l := fig1Log(t)
	est, ok := l.MineSigma("WorkdayMorning", "traffic")
	if !ok || math.Abs(est.Sigma-0.8) > 1e-9 || est.Support != 100 {
		t.Fatalf("traffic estimate = %+v, ok=%v", est, ok)
	}
	est, ok = l.MineSigma("WorkdayMorning", "weather")
	if !ok || math.Abs(est.Sigma-0.6) > 1e-9 {
		t.Fatalf("weather estimate = %+v", est)
	}
	// Features never chosen mine to σ = 0 with full support.
	est, ok = l.MineSigma("WorkdayMorning", "other")
	if !ok || est.Sigma != 0 {
		t.Fatalf("other estimate = %+v", est)
	}
}

func TestMineSigmaRequiresAvailability(t *testing.T) {
	l := NewLog()
	// Episode where no weather bulletin was available must not count.
	l.Append(Episode{
		ContextFeatures: map[string]bool{"Morning": true},
		Available:       []Doc{doc("t", "traffic")},
		Chosen:          map[string]bool{"t": true},
	})
	if _, ok := l.MineSigma("Morning", "weather"); ok {
		t.Fatal("estimate produced without availability support")
	}
	l.Append(Episode{
		ContextFeatures: map[string]bool{"Morning": true},
		Available:       []Doc{doc("t", "traffic"), doc("w", "weather")},
		Chosen:          map[string]bool{"w": true},
	})
	est, ok := l.MineSigma("Morning", "weather")
	if !ok || est.Sigma != 1 || est.Support != 1 {
		t.Fatalf("estimate = %+v", est)
	}
}

func TestMineSigmaUnknownContext(t *testing.T) {
	l := fig1Log(t)
	if _, ok := l.MineSigma("Evening", "traffic"); ok {
		t.Fatal("estimate for unseen context")
	}
}

func TestMineAllOrderingAndSupport(t *testing.T) {
	l := fig1Log(t)
	ests := l.MineAll(1)
	if len(ests) != 3 {
		t.Fatalf("got %d estimates: %v", len(ests), ests)
	}
	if ests[0].DocFeature != "traffic" || ests[1].DocFeature != "weather" {
		t.Fatalf("ordering wrong: %v", ests)
	}
	if got := l.MineAll(101); len(got) != 0 {
		t.Fatalf("min support not honored: %v", got)
	}
}

func TestGeneratorRecoversGroundTruth(t *testing.T) {
	truth := []GroundTruth{
		{Context: "WorkdayMorning", DocFeature: "traffic", Sigma: 0.8},
		{Context: "WorkdayMorning", DocFeature: "weather", Sigma: 0.6},
		{Context: "Weekend", DocFeature: "film", Sigma: 0.9},
	}
	gen := &Generator{
		Truth:    truth,
		Contexts: []string{"WorkdayMorning", "Weekend"},
		Docs: []Doc{
			doc("t1", "traffic"), doc("t2", "traffic"),
			doc("w1", "weather"),
			doc("f1", "film"), doc("f2", "film"),
			doc("o1", "other"),
		},
		Rng: rand.New(rand.NewSource(1)),
	}
	l := NewLog()
	if err := gen.Generate(l, 10000); err != nil {
		t.Fatal(err)
	}
	for _, tr := range truth {
		est, ok := l.MineSigma(tr.Context, tr.DocFeature)
		if !ok {
			t.Fatalf("no estimate for %v", tr)
		}
		if math.Abs(est.Sigma-tr.Sigma) > 0.03 {
			t.Fatalf("mined σ(%s,%s) = %g, truth %g", tr.Context, tr.DocFeature, est.Sigma, tr.Sigma)
		}
	}
	// Cross-context leakage: film preference must not appear on mornings.
	est, ok := l.MineSigma("WorkdayMorning", "film")
	if !ok || est.Sigma > 0.01 {
		t.Fatalf("leaked estimate %+v", est)
	}
}

func TestGeneratorValidation(t *testing.T) {
	l := NewLog()
	if err := (&Generator{}).Generate(l, 1); err == nil {
		t.Fatal("empty generator accepted")
	}
	g := &Generator{Contexts: []string{"c"}, Docs: []Doc{doc("d", "f")}}
	if err := g.Generate(l, 1); err == nil {
		t.Fatal("generator without Rng accepted")
	}
}

func TestEpisodesSnapshot(t *testing.T) {
	l := NewLog()
	l.Append(Episode{
		ContextFeatures: map[string]bool{"c": true},
		Available:       []Doc{doc("d", "f")},
		Chosen:          map[string]bool{"d": true},
	})
	snap := l.Episodes()
	l.Append(Episode{
		ContextFeatures: map[string]bool{"c": true},
		Available:       []Doc{doc("d", "f")},
		Chosen:          map[string]bool{},
	})
	if len(snap) != 1 || l.Len() != 2 {
		t.Fatalf("snapshot len %d, log len %d", len(snap), l.Len())
	}
}
