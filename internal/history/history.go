// Package history implements the paper's history relation H and the
// semantics of the score function σ (§3.2): "σ(g,f) is the probability that
// if we take a random context in history with feature g and the user was
// able to choose a document with feature f given the other features of the
// document, the user actually chose a document with feature f." It provides
// a choice log, a σ miner implementing exactly that conditional frequency,
// and a synthetic episode generator with known ground truth (§6
// "Mining/learning preferences").
package history

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Doc is one candidate document in an episode, described by its feature
// set, as in §3.1: "both documents and context can be described by
// features".
type Doc struct {
	ID       string
	Features map[string]bool
}

// HasFeature reports whether the document carries the feature.
func (d Doc) HasFeature(f string) bool { return d.Features[f] }

// Episode is one historical choice situation: a context (as a feature set),
// the documents that were available, and the ones the user chose. A single
// episode may contain several chosen documents — "one should take the whole
// workday morning as one context where the user chose two documents"
// (§3.2).
type Episode struct {
	ContextFeatures map[string]bool
	Available       []Doc
	Chosen          map[string]bool // doc IDs
}

// Log is an append-only history of episodes. Safe for concurrent use.
type Log struct {
	mu       sync.RWMutex
	episodes []Episode
}

// NewLog returns an empty history log.
func NewLog() *Log { return &Log{} }

// Append adds an episode after validating that chosen documents were
// available.
func (l *Log) Append(e Episode) error {
	avail := make(map[string]bool, len(e.Available))
	for _, d := range e.Available {
		avail[d.ID] = true
	}
	for id := range e.Chosen {
		if !avail[id] {
			return fmt.Errorf("history: chosen document %q was not available", id)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.episodes = append(l.episodes, e)
	return nil
}

// Len returns the number of episodes.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.episodes)
}

// Episodes returns a snapshot of the episodes.
func (l *Log) Episodes() []Episode {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Episode, len(l.episodes))
	copy(out, l.episodes)
	return out
}

// Estimate is one mined σ value with its support.
type Estimate struct {
	ContextFeature string
	DocFeature     string
	Sigma          float64
	Support        int // number of episodes the estimate is based on
}

// MineSigma estimates σ(g, f) from the log: among episodes whose context
// has feature g and in which at least one available document has feature f,
// the fraction in which the user chose a document with feature f.
// The boolean result reports whether any supporting episode exists.
func (l *Log) MineSigma(g, f string) (Estimate, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	support, chose := 0, 0
	for _, e := range l.episodes {
		if !e.ContextFeatures[g] {
			continue
		}
		available := false
		chosen := false
		for _, d := range e.Available {
			if !d.HasFeature(f) {
				continue
			}
			available = true
			if e.Chosen[d.ID] {
				chosen = true
			}
		}
		if !available {
			continue // the user was not able to choose an f-document
		}
		support++
		if chosen {
			chose++
		}
	}
	if support == 0 {
		return Estimate{ContextFeature: g, DocFeature: f}, false
	}
	return Estimate{
		ContextFeature: g,
		DocFeature:     f,
		Sigma:          float64(chose) / float64(support),
		Support:        support,
	}, true
}

// MineAll estimates σ for every (context feature, document feature) pair
// with at least minSupport supporting episodes, sorted by descending σ and
// then by names for determinism. This is the "preference mining" the paper
// leaves as future work (§6), using exactly the σ semantics of §3.2.
func (l *Log) MineAll(minSupport int) []Estimate {
	l.mu.RLock()
	ctxFeatures := make(map[string]bool)
	docFeatures := make(map[string]bool)
	for _, e := range l.episodes {
		for g := range e.ContextFeatures {
			ctxFeatures[g] = true
		}
		for _, d := range e.Available {
			for f := range d.Features {
				docFeatures[f] = true
			}
		}
	}
	l.mu.RUnlock()

	var out []Estimate
	for g := range ctxFeatures {
		for f := range docFeatures {
			est, ok := l.MineSigma(g, f)
			if ok && est.Support >= minSupport {
				out = append(out, est)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sigma != out[j].Sigma {
			return out[i].Sigma > out[j].Sigma
		}
		if out[i].ContextFeature != out[j].ContextFeature {
			return out[i].ContextFeature < out[j].ContextFeature
		}
		return out[i].DocFeature < out[j].DocFeature
	})
	return out
}

// GroundTruth is one true preference used by the generator: in contexts
// with feature Context, the user picks an available document with feature
// DocFeature with probability Sigma — the generative reading of a scored
// preference rule.
type GroundTruth struct {
	Context    string
	DocFeature string
	Sigma      float64
}

// Generator synthesizes episodes from ground-truth preferences.
type Generator struct {
	Truth    []GroundTruth
	Contexts []string // context features to cycle through; must cover Truth contexts
	Docs     []Doc    // the candidate pool available in every episode
	Rng      *rand.Rand
}

// Generate appends n episodes to the log. Each episode takes one context
// feature (cycling deterministically through Contexts) and, independently
// for each ground-truth rule active in that context, chooses a random
// available document carrying the rule's feature with probability Sigma —
// mirroring the paper's independence assumption for feature choices (§3.2).
func (g *Generator) Generate(log *Log, n int) error {
	if len(g.Contexts) == 0 || len(g.Docs) == 0 {
		return fmt.Errorf("history: generator needs contexts and docs")
	}
	if g.Rng == nil {
		return fmt.Errorf("history: generator needs a seeded Rng")
	}
	for i := 0; i < n; i++ {
		ctx := g.Contexts[i%len(g.Contexts)]
		ep := Episode{
			ContextFeatures: map[string]bool{ctx: true},
			Available:       g.Docs,
			Chosen:          make(map[string]bool),
		}
		for _, truth := range g.Truth {
			if truth.Context != ctx {
				continue
			}
			if g.Rng.Float64() >= truth.Sigma {
				continue
			}
			// Choose uniformly among available documents with the feature.
			var pool []string
			for _, d := range g.Docs {
				if d.HasFeature(truth.DocFeature) {
					pool = append(pool, d.ID)
				}
			}
			if len(pool) > 0 {
				ep.Chosen[pool[g.Rng.Intn(len(pool))]] = true
			}
		}
		if err := log.Append(ep); err != nil {
			return err
		}
	}
	return nil
}
