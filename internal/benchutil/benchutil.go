// Package benchutil provides the measurement harness used by cmd/carbench
// and the testing.B benches: wall-clock series with a per-point timeout
// (the paper aborted its 7-rule measurement after half an hour; we abort
// configurably and report "did not finish"), plus plain-text table
// rendering for EXPERIMENTS.md.
package benchutil

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Point is one measurement in a parameter sweep.
type Point struct {
	X        int           // the swept parameter (e.g. number of rules)
	Duration time.Duration // wall clock of the measured call
	TimedOut bool          // the call did not finish within the budget
	Err      error         // the call failed
	Extra    string        // free-form annotation (e.g. result count)
}

// Label renders the point's duration column.
func (p Point) Label() string {
	switch {
	case p.Err != nil:
		return "error: " + p.Err.Error()
	case p.TimedOut:
		return fmt.Sprintf("DNF (>%s)", p.Duration.Round(time.Millisecond))
	default:
		return p.Duration.Round(time.Microsecond).String()
	}
}

// RunSeries sweeps xs, calling fn for each value with a timeout budget.
// fn runs in a goroutine; on timeout the point is marked TimedOut and the
// sweep stops (larger x would only be slower), mirroring the paper's "did
// not finish within half an hour" cut-off. The abandoned goroutine is left
// to finish in the background, so fn must be side-effect-safe.
func RunSeries(xs []int, timeout time.Duration, fn func(x int) (string, error)) []Point {
	var out []Point
	for _, x := range xs {
		type outcome struct {
			extra string
			err   error
		}
		done := make(chan outcome, 1)
		start := time.Now()
		go func(x int) {
			extra, err := fn(x)
			done <- outcome{extra, err}
		}(x)
		select {
		case oc := <-done:
			out = append(out, Point{X: x, Duration: time.Since(start), Err: oc.err, Extra: oc.extra})
			if oc.err != nil {
				return out
			}
		case <-time.After(timeout):
			out = append(out, Point{X: x, Duration: timeout, TimedOut: true})
			return out
		}
	}
	return out
}

// Table renders rows of cells with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "| " + strings.Join(parts, " | ") + " |"
	}
	fmt.Fprintln(w, line(t.Header))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SeriesTable renders a sweep as a table with the given axis name.
func SeriesTable(axis string, points []Point) *Table {
	t := &Table{Header: []string{axis, "time", "note"}}
	for _, p := range points {
		t.Add(fmt.Sprintf("%d", p.X), p.Label(), p.Extra)
	}
	return t
}

// GrowthFactors annotates consecutive finished points with their runtime
// ratio — the "×2 per rule" shape check for the scalability experiment.
func GrowthFactors(points []Point) []float64 {
	var out []float64
	for i := 1; i < len(points); i++ {
		if points[i].TimedOut || points[i-1].TimedOut || points[i].Err != nil || points[i-1].Err != nil {
			break
		}
		prev := points[i-1].Duration.Seconds()
		if prev <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, points[i].Duration.Seconds()/prev)
	}
	return out
}
