package benchutil

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRunSeriesCompletes(t *testing.T) {
	pts := RunSeries([]int{1, 2, 3}, time.Second, func(x int) (string, error) {
		return fmt.Sprintf("x=%d", x), nil
	})
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	for i, p := range pts {
		if p.TimedOut || p.Err != nil || p.Extra != fmt.Sprintf("x=%d", i+1) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

func TestRunSeriesTimeoutStopsSweep(t *testing.T) {
	pts := RunSeries([]int{1, 2, 3}, 30*time.Millisecond, func(x int) (string, error) {
		if x >= 2 {
			time.Sleep(time.Second)
		}
		return "", nil
	})
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if !pts[1].TimedOut {
		t.Fatalf("second point = %+v", pts[1])
	}
	if !strings.Contains(pts[1].Label(), "DNF") {
		t.Fatalf("label = %q", pts[1].Label())
	}
}

func TestRunSeriesErrorStopsSweep(t *testing.T) {
	boom := errors.New("boom")
	pts := RunSeries([]int{1, 2, 3}, time.Second, func(x int) (string, error) {
		if x == 2 {
			return "", boom
		}
		return "", nil
	})
	if len(pts) != 2 || pts[1].Err == nil {
		t.Fatalf("points = %v", pts)
	}
	if !strings.Contains(pts[1].Label(), "boom") {
		t.Fatalf("label = %q", pts[1].Label())
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"rules", "time"}}
	tab.Add("1", "12ms")
	tab.Add("10", "1.5s")
	var b strings.Builder
	tab.Write(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("output = %q", out)
	}
	if !strings.HasPrefix(lines[0], "| rules | time") {
		t.Fatalf("header = %q", lines[0])
	}
	// Columns aligned: all lines same length.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned: %q vs %q", l, lines[0])
		}
	}
}

func TestSeriesTable(t *testing.T) {
	pts := []Point{
		{X: 1, Duration: time.Millisecond, Extra: "300 rows"},
		{X: 2, Duration: 2 * time.Millisecond},
	}
	tab := SeriesTable("rules", pts)
	if len(tab.Rows) != 2 || tab.Rows[0][2] != "300 rows" {
		t.Fatalf("table = %+v", tab)
	}
}

func TestGrowthFactors(t *testing.T) {
	pts := []Point{
		{X: 1, Duration: 10 * time.Millisecond},
		{X: 2, Duration: 20 * time.Millisecond},
		{X: 3, Duration: 80 * time.Millisecond},
		{X: 4, TimedOut: true, Duration: time.Second},
	}
	fs := GrowthFactors(pts)
	if len(fs) != 2 {
		t.Fatalf("factors = %v", fs)
	}
	if fs[0] < 1.9 || fs[0] > 2.1 || fs[1] < 3.9 || fs[1] > 4.1 {
		t.Fatalf("factors = %v", fs)
	}
}
