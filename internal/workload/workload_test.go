package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dl"
)

func TestDefaultSpecMatchesPaperSizes(t *testing.T) {
	s := DefaultSpec()
	if s.Persons != 1000 || s.Programs != 300 || s.Genres != 12 ||
		s.Subjects != 6 || s.Activities != 4 || s.Rooms != 5 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestGenerateSmall(t *testing.T) {
	d, err := Generate(SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if d.User != "person0000" {
		t.Fatalf("user = %s", d.User)
	}
	db := d.Loader.DB()
	count := func(q string) int64 {
		v, err := db.QueryScalar(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return v.I
	}
	if n := count("SELECT COUNT(*) FROM c_Person"); n != 20 {
		t.Fatalf("persons = %d", n)
	}
	if n := count("SELECT COUNT(*) FROM c_TvProgram"); n != 15 {
		t.Fatalf("programs = %d", n)
	}
	if n := count("SELECT COUNT(*) FROM r_watched"); n != 40 {
		t.Fatalf("watched = %d", n)
	}
	// Every program has at least one genre.
	if n := count("SELECT COUNT(*) FROM (SELECT DISTINCT src FROM r_hasGenre) s"); n != 15 {
		t.Fatalf("programs with genres = %d", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.TupleCount != b.TupleCount {
		t.Fatalf("tuple counts differ: %d vs %d", a.TupleCount, b.TupleCount)
	}
	qa, _ := a.Loader.DB().QueryScalar("SELECT COUNT(*) FROM r_hasGenre")
	qb, _ := b.Loader.DB().QueryScalar("SELECT COUNT(*) FROM r_hasGenre")
	if qa.I != qb.I {
		t.Fatalf("hasGenre counts differ: %d vs %d", qa.I, qb.I)
	}
}

func TestPaperScaleTupleCount(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size dataset generation in -short mode")
	}
	d, err := Generate(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	// "around 11000 tuples"
	if d.TupleCount < 10000 || d.TupleCount > 12500 {
		t.Fatalf("tuple count = %d, want ≈11000", d.TupleCount)
	}
}

func TestRulesAndBenchContext(t *testing.T) {
	d, err := Generate(SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	rules, err := d.Rules(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("rules = %v", rules)
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ApplyBenchContext(4, false); err != nil {
		t.Fatal(err)
	}
	// The context concepts must be live for the user with probability 0.9.
	ev, err := d.Loader.MembershipEvent(dl.Atom(BenchContextConcept(2)), d.User)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Loader.DB().Space().Prob(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.9) > 1e-9 {
		t.Fatalf("P(BenchCtx2) = %g", p)
	}
}

func TestEndToEndRankingOnGeneratedData(t *testing.T) {
	d, err := Generate(SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyBenchContext(3, false); err != nil {
		t.Fatal(err)
	}
	rules, _ := d.Rules(3)
	req := core.Request{User: d.User, Target: dl.Atom("TvProgram"), Rules: rules}
	naive := core.NewNaiveRanker(d.Loader)
	fact := core.NewFactorizedRanker(d.Loader)
	rn, err := naive.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fact.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(rn) != 15 || len(rf) != 15 {
		t.Fatalf("result sizes: %d, %d", len(rn), len(rf))
	}
	for i := range rn {
		if rn[i].ID != rf[i].ID || math.Abs(rn[i].Score-rf[i].Score) > 1e-9 {
			t.Fatalf("rankers disagree at %d: %v vs %v", i, rn[i], rf[i])
		}
	}
	// Scores are probabilities.
	for _, r := range rn {
		if r.Score < 0 || r.Score > 1 {
			t.Fatalf("score out of range: %v", r)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("zero spec accepted")
	}
	d, _ := Generate(SmallSpec())
	if _, err := d.Rules(-1); err == nil {
		t.Fatal("negative rule count accepted")
	}
}
