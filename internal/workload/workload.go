// Package workload generates the paper's §5 test database: "a test
// database of context and documents containing around 11000 tuples; around
// 1000 persons, 300 TV programs, 12 genres, 6 subjects, 4 activities, 5
// rooms and their relations", plus the series of preference rules used for
// the scalability measurement. Generation is fully deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dl"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mapping"
	"repro/internal/prefs"
	"repro/internal/situation"
)

// Spec parametrizes dataset generation. The zero value is not useful; start
// from DefaultSpec.
type Spec struct {
	Seed       int64
	Persons    int
	Programs   int
	Genres     int
	Subjects   int
	Activities int
	Rooms      int
	// WatchEvents is the number of person-watched-program role tuples,
	// the filler relation that brings the dataset to the paper's size.
	WatchEvents int
	// UncertainFeatureProb is the probability that a program-feature role
	// assertion is uncertain (tagged with a fresh basic event) rather than
	// certain — the paper's automatically-tagged features (§3.1).
	UncertainFeatureProb float64
}

// DefaultSpec reproduces the paper's test database sizes.
func DefaultSpec() Spec {
	return Spec{
		Seed:                 1,
		Persons:              1000,
		Programs:             300,
		Genres:               12,
		Subjects:             6,
		Activities:           4,
		Rooms:                5,
		WatchEvents:          6800,
		UncertainFeatureProb: 0.5,
	}
}

// ServeSpec is the serving-layer contention dataset: many persons (the
// axis session count — and therefore merged-apply cost — grows along) over
// a small program catalog (so an individual rank recompute stays cheap).
// The shard scaling curve uses it because sharding parallelizes and
// shrinks per-user context applies, not per-rank scoring work: a spec
// dominated by ranker cost (like DefaultSpec's 300 programs) would
// measure the ranker, not the serving layer.
func ServeSpec() Spec {
	return Spec{
		Seed:                 1,
		Persons:              512,
		Programs:             15,
		Genres:               5,
		Subjects:             3,
		Activities:           2,
		Rooms:                2,
		WatchEvents:          400,
		UncertainFeatureProb: 0.5,
	}
}

// SmallSpec is a scaled-down dataset for unit tests.
func SmallSpec() Spec {
	return Spec{
		Seed:                 1,
		Persons:              20,
		Programs:             15,
		Genres:               5,
		Subjects:             3,
		Activities:           2,
		Rooms:                2,
		WatchEvents:          40,
		UncertainFeatureProb: 0.5,
	}
}

// Dataset is a generated TVTouch database.
type Dataset struct {
	Spec       Spec
	Loader     *mapping.Loader
	TupleCount int // concept + role assertions, the paper's "tuples"
	User       string
	Genres     []string
	Subjects   []string
	Activities []string
	Rooms      []string
}

// Generate builds the dataset on a fresh database.
func Generate(spec Spec) (*Dataset, error) {
	return GenerateInto(mapping.NewLoader(engine.New(), nil), spec)
}

// GenerateInto builds the dataset through an existing loader — e.g. a
// contextrank.System's, so a full System (and the serving layer over it)
// can host the paper's TV-watcher database:
//
//	sys := contextrank.NewSystem()
//	d, err := workload.GenerateInto(sys.Loader(), workload.SmallSpec())
func GenerateInto(l *mapping.Loader, spec Spec) (*Dataset, error) {
	if spec.Persons <= 0 || spec.Programs <= 0 || spec.Genres <= 0 {
		return nil, fmt.Errorf("workload: spec must have positive persons, programs and genres")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	db := l.DB()
	d := &Dataset{Spec: spec, Loader: l}

	for _, c := range []string{"Person", "TvProgram", "Genre", "Subject", "Activity", "Room"} {
		if err := l.DeclareConcept(c); err != nil {
			return nil, err
		}
	}
	for _, r := range []string{"hasGenre", "hasSubject", "locatedIn", "performsActivity", "watched"} {
		if err := l.DeclareRole(r); err != nil {
			return nil, err
		}
	}

	assertC := func(concept, id string) error {
		d.TupleCount++
		return l.AssertConcept(concept, id, nil)
	}
	assertR := func(role, src, dst string, ev *event.Expr) error {
		d.TupleCount++
		return l.AssertRole(role, src, dst, ev)
	}

	// Vocabularies.
	for i := 0; i < spec.Genres; i++ {
		g := fmt.Sprintf("genre%02d", i)
		d.Genres = append(d.Genres, g)
		if err := assertC("Genre", g); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.Subjects; i++ {
		s := fmt.Sprintf("subject%d", i)
		d.Subjects = append(d.Subjects, s)
		if err := assertC("Subject", s); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.Activities; i++ {
		a := fmt.Sprintf("activity%d", i)
		d.Activities = append(d.Activities, a)
		if err := assertC("Activity", a); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.Rooms; i++ {
		r := fmt.Sprintf("room%d", i)
		d.Rooms = append(d.Rooms, r)
		if err := assertC("Room", r); err != nil {
			return nil, err
		}
	}

	// Persons with a static location and activity.
	space := db.Space()
	for i := 0; i < spec.Persons; i++ {
		p := fmt.Sprintf("person%04d", i)
		if err := assertC("Person", p); err != nil {
			return nil, err
		}
		if err := assertR("locatedIn", p, d.Rooms[rng.Intn(len(d.Rooms))], nil); err != nil {
			return nil, err
		}
		if err := assertR("performsActivity", p, d.Activities[rng.Intn(len(d.Activities))], nil); err != nil {
			return nil, err
		}
	}
	d.User = "person0000"

	// Programs with genres (1-3) and subjects (0-2); a controlled fraction
	// of the feature assertions is uncertain.
	evSeq := 0
	featureEvent := func(kind string) (*event.Expr, error) {
		if rng.Float64() >= spec.UncertainFeatureProb {
			return event.True(), nil
		}
		evSeq++
		name := fmt.Sprintf("feat_%s_%d", kind, evSeq)
		p := 0.7 + 0.25*rng.Float64()
		if err := space.Declare(name, p); err != nil {
			return nil, err
		}
		return event.Basic(name), nil
	}
	programs := make([]string, spec.Programs)
	for i := 0; i < spec.Programs; i++ {
		prog := fmt.Sprintf("tv%03d", i)
		programs[i] = prog
		if err := assertC("TvProgram", prog); err != nil {
			return nil, err
		}
		nGenres := 1 + rng.Intn(3)
		for _, gi := range rng.Perm(len(d.Genres))[:min(nGenres, len(d.Genres))] {
			ev, err := featureEvent("g")
			if err != nil {
				return nil, err
			}
			if err := assertR("hasGenre", prog, d.Genres[gi], ev); err != nil {
				return nil, err
			}
		}
		nSubjects := rng.Intn(3)
		for _, si := range rng.Perm(len(d.Subjects))[:min(nSubjects, len(d.Subjects))] {
			ev, err := featureEvent("s")
			if err != nil {
				return nil, err
			}
			if err := assertR("hasSubject", prog, d.Subjects[si], ev); err != nil {
				return nil, err
			}
		}
	}

	// Viewing history filler relation.
	seen := make(map[[2]int]bool, spec.WatchEvents)
	for len(seen) < spec.WatchEvents {
		pi, gi := rng.Intn(spec.Persons), rng.Intn(spec.Programs)
		key := [2]int{pi, gi}
		if seen[key] {
			continue
		}
		seen[key] = true
		person := fmt.Sprintf("person%04d", pi)
		if err := assertR("watched", person, programs[gi], nil); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// BenchContextConcept names the i-th synthetic context concept used by the
// scalability experiment.
func BenchContextConcept(i int) string { return fmt.Sprintf("BenchCtx%d", i) }

// LoadBench is the standard serving-bench setup: generate the dataset
// through the loader, declare the rules' context concepts up front (so
// ranking works before any context asserts them), and register the
// scalability rule series in the repository. Used by carserved's preload,
// carbench's load generator and the serve benchmarks.
func LoadBench(l *mapping.Loader, repo *prefs.Repository, spec Spec, rules int) (*Dataset, error) {
	d, err := GenerateInto(l, spec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rules; i++ {
		if err := l.DeclareConcept(BenchContextConcept(i)); err != nil {
			return nil, err
		}
	}
	rs, err := d.Rules(rules)
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		if err := repo.Add(r); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ApplyBenchContext asserts k synthetic context concepts for the dataset's
// user. With certain=false every concept holds with probability 0.9 via a
// fresh basic event, which is the worst case for the rankers (no pruning,
// no constant folding in the event expressions).
func (d *Dataset) ApplyBenchContext(k int, certain bool) error {
	ctx := situation.New(d.User)
	for i := 0; i < k; i++ {
		if certain {
			ctx.Certain(BenchContextConcept(i))
		} else {
			ctx.Add(BenchContextConcept(i), 0.9)
		}
	}
	return ctx.Apply(d.Loader)
}

// Rules builds the k scored preference rules of the scalability series:
// rule i prefers programs of genre i (mod |genres|) in context BenchCtx i.
// σ varies deterministically with i.
func (d *Dataset) Rules(k int) ([]prefs.Rule, error) {
	if k < 0 {
		return nil, fmt.Errorf("workload: negative rule count")
	}
	out := make([]prefs.Rule, 0, k)
	for i := 0; i < k; i++ {
		genre := d.Genres[i%len(d.Genres)]
		pref := dl.And(dl.Atom("TvProgram"), dl.Exists("hasGenre", dl.Nominal(genre)))
		out = append(out, prefs.Rule{
			Name:       fmt.Sprintf("bench-rule-%d", i),
			Context:    dl.Atom(BenchContextConcept(i)),
			Preference: pref,
			Sigma:      0.5 + 0.4*float64(i%5)/4,
		})
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
