package dl

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the textual concept-expression syntax used throughout this
// repository. The grammar (keywords are case-insensitive):
//
//	expr    := term { "OR" term }
//	term    := factor { "AND" factor }
//	factor  := "NOT" factor
//	         | "EXISTS" role "." factor
//	         | "(" expr ")"
//	         | "TOP" | "BOTTOM"
//	         | "{" ind { "," ind } "}"
//	         | concept-name
//
// Names may contain letters, digits, '_' and '-', so the paper's rule
// "TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}" parses as written.
func Parse(input string) (*Expr, error) {
	p := &parser{toks: lex(input), input: input}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("dl: unexpected %q after expression in %q", p.toks[p.pos].text, input)
	}
	return e, nil
}

// MustParse is Parse but panics on error; for statically known expressions.
func MustParse(input string) *Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokName tokKind = iota
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokDot
)

type token struct {
	kind tokKind
	text string
}

func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func lex(input string) []token {
	var toks []token
	rs := []rune(input)
	for i := 0; i < len(rs); {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case r == '{':
			toks = append(toks, token{tokLBrace, "{"})
			i++
		case r == '}':
			toks = append(toks, token{tokRBrace, "}"})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case r == '.':
			toks = append(toks, token{tokDot, "."})
			i++
		case isNameRune(r):
			j := i
			for j < len(rs) && isNameRune(rs[j]) {
				j++
			}
			toks = append(toks, token{tokName, string(rs[i:j])})
			i = j
		default:
			toks = append(toks, token{tokName, string(r)}) // surfaced as a parse error later
			i++
		}
	}
	return toks
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) keyword(kw string) bool {
	t, ok := p.peek()
	if ok && t.kind == tokName && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("dl: expected %s at end of %q", what, p.input)
	}
	if t.kind != k {
		return token{}, fmt.Errorf("dl: expected %s, found %q in %q", what, t.text, p.input)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseExpr() (*Expr, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	args := []*Expr{first}
	for p.keyword("OR") {
		next, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	return Or(args...), nil
}

func (p *parser) parseTerm() (*Expr, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	args := []*Expr{first}
	for p.keyword("AND") {
		next, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	return And(args...), nil
}

func (p *parser) parseFactor() (*Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("dl: unexpected end of expression in %q", p.input)
	}
	switch {
	case p.keyword("NOT"):
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	case p.keyword("EXISTS"):
		role, err := p.expect(tokName, "role name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
		filler, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Exists(role.text, filler), nil
	case p.keyword("TOP"):
		return Top(), nil
	case p.keyword("BOTTOM"):
		return Bottom(), nil
	case t.kind == tokLParen:
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokLBrace:
		p.pos++
		var inds []string
		for {
			ind, err := p.expect(tokName, "individual name")
			if err != nil {
				return nil, err
			}
			inds = append(inds, ind.text)
			nt, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("dl: unterminated nominal in %q", p.input)
			}
			if nt.kind == tokComma {
				p.pos++
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return nil, err
		}
		return Nominal(inds...), nil
	case t.kind == tokName:
		p.pos++
		return Atom(t.text), nil
	}
	return nil, fmt.Errorf("dl: unexpected token %q in %q", t.text, p.input)
}
