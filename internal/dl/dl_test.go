package dl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsFold(t *testing.T) {
	a, b := Atom("A"), Atom("B")
	cases := []struct{ got, want *Expr }{
		{And(), Top()},
		{Or(), Bottom()},
		{And(a, Top()), a},
		{And(a, Bottom()), Bottom()},
		{Or(a, Top()), Top()},
		{Or(a, Bottom()), a},
		{Not(Not(a)), a},
		{Not(Top()), Bottom()},
		{Not(Bottom()), Top()},
		{And(a, a), a},
		{And(a, And(b, a)), And(a, b)},
		{Exists("r", Bottom()), Bottom()},
		{Nominal(), Bottom()},
		{Nominal("x", "x"), Nominal("x")},
	}
	for i, c := range cases {
		if !Equal(c.got, c.want) {
			t.Errorf("case %d: got %s, want %s", i, c.got, c.want)
		}
	}
}

func TestAndIsOrderInsensitive(t *testing.T) {
	a, b, c := Atom("A"), Atom("B"), Atom("C")
	if !Equal(And(a, b, c), And(c, b, a)) {
		t.Fatalf("And not canonical: %s vs %s", And(a, b, c), And(c, b, a))
	}
	if !Equal(Or(a, b), Or(b, a)) {
		t.Fatalf("Or not canonical")
	}
}

func TestParsePaperRule(t *testing.T) {
	// The paper's R1 preference: TvProgram ⊓ ∃hasGenre.{HUMAN-INTEREST}.
	e, err := Parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
	if err != nil {
		t.Fatal(err)
	}
	want := And(Atom("TvProgram"), Exists("hasGenre", Nominal("HUMAN-INTEREST")))
	if !Equal(e, want) {
		t.Fatalf("parsed %s, want %s", e, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"TOP",
		"BOTTOM",
		"Weekend",
		"NOT Weekend",
		"A AND B AND C",
		"A OR (B AND C)",
		"EXISTS hasSubject.{News}",
		"EXISTS locatedIn.(Room AND EXISTS partOf.{Home})",
		"{alice, bob}",
		"NOT (A OR B)",
		"TvProgram AND NOT EXISTS hasGenre.{HORROR}",
	}
	for _, in := range inputs {
		e, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q stringified as %q): %v", in, e.String(), err)
		}
		if !Equal(e, back) {
			t.Fatalf("round trip of %q: %s != %s", in, e, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"A AND",
		"AND A",
		"(A",
		"{",
		"{a,",
		"{a",
		"EXISTS r",
		"EXISTS r A",
		"EXISTS .A",
		"A B",
		"A ??",
		"NOT",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	e, err := Parse("a and not b or exists r.top")
	if err != nil {
		t.Fatal(err)
	}
	want := Or(And(Atom("a"), Not(Atom("b"))), Exists("r", Top()))
	if !Equal(e, want) {
		t.Fatalf("got %s, want %s", e, want)
	}
}

func TestSignature(t *testing.T) {
	e := MustParse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} AND NOT EXISTS hasSubject.{News, Sports}")
	sig := e.Signature()
	if len(sig.Concepts) != 1 || sig.Concepts[0] != "TvProgram" {
		t.Fatalf("concepts = %v", sig.Concepts)
	}
	if strings.Join(sig.Roles, ",") != "hasGenre,hasSubject" {
		t.Fatalf("roles = %v", sig.Roles)
	}
	if strings.Join(sig.Individuals, ",") != "HUMAN-INTEREST,News,Sports" {
		t.Fatalf("individuals = %v", sig.Individuals)
	}
}

func TestNNF(t *testing.T) {
	e := MustParse("NOT (A AND (B OR EXISTS r.C))")
	got := e.NNF()
	want := Or(Not(Atom("A")), And(Not(Atom("B")), Not(Exists("r", Atom("C")))))
	if !Equal(got, want) {
		t.Fatalf("NNF = %s, want %s", got, want)
	}
}

func TestSubsumptionBasics(t *testing.T) {
	tb := NewTBox()
	tb.AddSub("TrafficBulletin", Atom("TvProgram"))
	tb.AddSub("TvProgram", Atom("Document"))
	a := Atom("TrafficBulletin")

	cases := []struct {
		sup, sub *Expr
		want     bool
	}{
		{Top(), a, true},
		{a, Bottom(), true},
		{a, a, true},
		{Atom("TvProgram"), a, true},
		{Atom("Document"), a, true}, // transitive told subsumption
		{a, Atom("TvProgram"), false},
		{Atom("TvProgram"), And(a, Atom("Recent")), true},
		{And(Atom("TvProgram"), Atom("Recent")), a, false},
		{And(Atom("Document"), Atom("TvProgram")), a, true},
		{Or(Atom("Movie"), Atom("TvProgram")), a, true},
		{Atom("Document"), Or(a, Atom("TvProgram")), true},
		{Exists("hasGenre", Top()), Exists("hasGenre", Nominal("NEWS")), true},
		{Exists("hasGenre", Nominal("NEWS", "SPORT")), Exists("hasGenre", Nominal("NEWS")), true},
		{Exists("hasGenre", Nominal("NEWS")), Exists("hasGenre", Nominal("NEWS", "SPORT")), false},
		{Exists("other", Top()), Exists("hasGenre", Top()), false},
		{Nominal("a", "b"), Nominal("a"), true},
		{Nominal("a"), Nominal("a", "b"), false},
	}
	for i, c := range cases {
		if got := tb.Subsumes(c.sup, c.sub); got != c.want {
			t.Errorf("case %d: Subsumes(%s, %s) = %v, want %v", i, c.sup, c.sub, got, c.want)
		}
	}
}

func TestDisjointness(t *testing.T) {
	tb := NewTBox()
	tb.AddDisjoint("TrafficBulletin", "WeatherBulletin", "Other")
	if !tb.Disjoint("TrafficBulletin", "WeatherBulletin") {
		t.Fatal("declared disjointness not reported")
	}
	if tb.Disjoint("TrafficBulletin", "TvProgram") {
		t.Fatal("undeclared disjointness reported")
	}
	g := tb.DisjointGroupOf("WeatherBulletin")
	if strings.Join(g, ",") != "Other,TrafficBulletin,WeatherBulletin" {
		t.Fatalf("group = %v", g)
	}
	if tb.DisjointGroupOf("TvProgram") != nil {
		t.Fatal("expected nil group for undeclared atom")
	}
}

func TestValidate(t *testing.T) {
	concepts := map[string]bool{"TvProgram": true}
	roles := map[string]bool{"hasGenre": true}
	ok := MustParse("TvProgram AND EXISTS hasGenre.{NEWS}")
	if err := Validate(ok, concepts, roles); err != nil {
		t.Fatal(err)
	}
	if err := Validate(MustParse("Movie"), concepts, roles); err == nil {
		t.Fatal("undeclared concept accepted")
	}
	if err := Validate(MustParse("EXISTS hasSubject.TOP"), concepts, roles); err == nil {
		t.Fatal("undeclared role accepted")
	}
}

func randDL(r *rand.Rand, depth int) *Expr {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return Top()
		case 1:
			return Atom([]string{"A", "B", "C"}[r.Intn(3)])
		case 2:
			return Nominal([]string{"x", "y", "z"}[r.Intn(3)])
		default:
			return Atom("D")
		}
	}
	switch r.Intn(5) {
	case 0:
		return Not(randDL(r, depth-1))
	case 1:
		return And(randDL(r, depth-1), randDL(r, depth-1))
	case 2:
		return Or(randDL(r, depth-1), randDL(r, depth-1))
	case 3:
		return Exists("r", randDL(r, depth-1))
	default:
		return randDL(r, depth-1)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randDL(r, 4)
		back, err := Parse(e.String())
		return err == nil && Equal(e, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNNFIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randDL(r, 4)
		n := e.NNF()
		return Equal(n, n.NNF())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsumptionReflexiveAndTopBottom(t *testing.T) {
	tb := NewTBox()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randDL(r, 3)
		return tb.Subsumes(e, e) && tb.Subsumes(Top(), e) && tb.Subsumes(e, Bottom())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
