package dl

import (
	"fmt"
	"sort"
	"sync"
)

// TBox is a terminology: concept-inclusion axioms plus disjointness
// declarations. Subsumption checking is structural over the ⊓/∃/nominal
// fragment with told-subsumer closure for atoms — sound but deliberately
// incomplete for arbitrary ⊔/¬ combinations, which is all the paper's
// preference rules need (their contexts and preferences are conjunctions of
// atoms and existential restrictions, §4.1).
type TBox struct {
	mu       sync.RWMutex
	supers   map[string][]*Expr  // atom -> told superconcept expressions
	disjoint map[string][]string // atom -> atoms declared disjoint with it
}

// NewTBox returns an empty terminology.
func NewTBox() *TBox {
	return &TBox{
		supers:   make(map[string][]*Expr),
		disjoint: make(map[string][]string),
	}
}

// AddSub records the axiom sub ⊑ super, e.g. AddSub("TrafficBulletin",
// Atom("TvProgram")). Only atomic left-hand sides participate in told
// subsumption.
func (t *TBox) AddSub(sub string, super *Expr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.supers[sub] = append(t.supers[sub], super)
}

// AddDisjoint declares the atomic concepts pairwise disjoint (e.g. the
// paper's "a program is either a traffic bulletin, or a weather bulletin, or
// something else", §3.2).
func (t *TBox) AddDisjoint(atoms ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, a := range atoms {
		for j, b := range atoms {
			if i != j {
				t.disjoint[a] = append(t.disjoint[a], b)
			}
		}
	}
}

// Disjoint reports whether atoms a and b were declared disjoint.
func (t *TBox) Disjoint(a, b string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, x := range t.disjoint[a] {
		if x == b {
			return true
		}
	}
	return false
}

// DisjointGroupOf returns the sorted set of atoms declared disjoint with a,
// including a itself, or nil if a has no disjointness declarations.
func (t *TBox) DisjointGroupOf(a string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	others := t.disjoint[a]
	if len(others) == 0 {
		return nil
	}
	set := map[string]bool{a: true}
	for _, o := range others {
		set[o] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Subsumes reports whether sup subsumes sub (every instance of sub is an
// instance of sup) under the structural rules described on TBox. The result
// "false" may mean "not derivable".
func (t *TBox) Subsumes(sup, sub *Expr) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.subsumes(sup, sub, 0)
}

const maxSubsumptionDepth = 64

func (t *TBox) subsumes(sup, sub *Expr, depth int) bool {
	if depth > maxSubsumptionDepth {
		return false
	}
	if sup.op == OpTop || sub.op == OpBottom || Equal(sup, sub) {
		return true
	}
	// sub = C1 ⊔ … ⊔ Cn: each disjunct must be subsumed.
	if sub.op == OpOr {
		for _, c := range sub.args {
			if !t.subsumes(sup, c, depth+1) {
				return false
			}
		}
		return true
	}
	// sup = D1 ⊓ … ⊓ Dn: each conjunct must subsume sub.
	if sup.op == OpAnd {
		for _, d := range sup.args {
			if !t.subsumes(d, sub, depth+1) {
				return false
			}
		}
		return true
	}
	// sup = D1 ⊔ … ⊔ Dn: some disjunct subsuming sub suffices (sound).
	if sup.op == OpOr {
		for _, d := range sup.args {
			if t.subsumes(d, sub, depth+1) {
				return true
			}
		}
		return false
	}
	// sub = C1 ⊓ … ⊓ Cn: some conjunct subsumed by sup suffices.
	if sub.op == OpAnd {
		for _, c := range sub.args {
			if t.subsumes(sup, c, depth+1) {
				return true
			}
		}
		return false
	}
	switch {
	case sub.op == OpAtom:
		// Told subsumers: A ⊑ super; does some told super reach sup?
		for _, s := range t.supers[sub.name] {
			if t.subsumes(sup, s, depth+1) {
				return true
			}
		}
		return false
	case sub.op == OpNominal && sup.op == OpNominal:
		return subset(sub.inds, sup.inds)
	case sub.op == OpExists && sup.op == OpExists:
		return sub.name == sup.name && t.subsumes(sup.args[0], sub.args[0], depth+1)
	}
	return false
}

func subset(small, big []string) bool {
	set := make(map[string]bool, len(big))
	for _, b := range big {
		set[b] = true
	}
	for _, s := range small {
		if !set[s] {
			return false
		}
	}
	return true
}

// Validate checks a concept expression against a vocabulary of declared
// concept and role names, returning an error naming the first undeclared
// symbol. Nominals are not checked (individuals are data, not terminology).
func Validate(e *Expr, concepts, roles map[string]bool) error {
	switch e.op {
	case OpAtom:
		if !concepts[e.name] {
			return fmt.Errorf("dl: undeclared concept %q", e.name)
		}
	case OpExists:
		if !roles[e.name] {
			return fmt.Errorf("dl: undeclared role %q", e.name)
		}
	}
	for _, a := range e.args {
		if err := Validate(a, concepts, roles); err != nil {
			return err
		}
	}
	return nil
}
