// Package dl implements the Description Logic substrate the paper models
// contexts and preferences with (van Bunningen et al., ICDE 2007, §4, after
// their DEXA'06 context model). It provides concept expressions over atomic
// concepts, roles and individuals — ⊤, ⊥, atomic concepts, conjunction,
// disjunction, negation, existential restriction ∃R.C and nominals {a,…} —
// together with a textual parser, normalization, a TBox with told-subsumer
// reasoning, and signature extraction.
package dl

import (
	"fmt"
	"sort"
	"strings"
)

// Op discriminates concept-expression node types.
type Op uint8

// Concept expression operators.
const (
	OpTop Op = iota
	OpBottom
	OpAtom
	OpAnd
	OpOr
	OpNot
	OpExists
	OpNominal
)

// Expr is an immutable Description Logic concept expression. Build values
// with the constructors; the zero value is not valid.
type Expr struct {
	op   Op
	name string   // OpAtom: concept name; OpExists: role name
	inds []string // OpNominal: individual names (sorted, deduped)
	args []*Expr  // OpAnd/OpOr (>=2), OpNot (1), OpExists (1: filler)
}

var (
	topExpr    = &Expr{op: OpTop}
	bottomExpr = &Expr{op: OpBottom}
)

// Top returns ⊤, the universal concept.
func Top() *Expr { return topExpr }

// Bottom returns ⊥, the empty concept.
func Bottom() *Expr { return bottomExpr }

// Atom returns the atomic concept with the given name.
func Atom(name string) *Expr { return &Expr{op: OpAtom, name: name} }

// Nominal returns the enumerated concept {inds…}. Duplicates are removed and
// the individuals are kept sorted; an empty nominal is ⊥.
func Nominal(inds ...string) *Expr {
	if len(inds) == 0 {
		return bottomExpr
	}
	set := make(map[string]bool, len(inds))
	for _, i := range inds {
		set[i] = true
	}
	out := make([]string, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Strings(out)
	return &Expr{op: OpNominal, inds: out}
}

// Exists returns the existential restriction ∃role.filler.
func Exists(role string, filler *Expr) *Expr {
	if filler.op == OpBottom {
		return bottomExpr
	}
	return &Expr{op: OpExists, name: role, args: []*Expr{filler}}
}

// HasValue returns ∃role.{ind}, the common "related to this individual"
// idiom used by the paper's preference rules.
func HasValue(role, ind string) *Expr { return Exists(role, Nominal(ind)) }

// Not returns ¬c with involution and constant folding.
func Not(c *Expr) *Expr {
	switch c.op {
	case OpTop:
		return bottomExpr
	case OpBottom:
		return topExpr
	case OpNot:
		return c.args[0]
	}
	return &Expr{op: OpNot, args: []*Expr{c}}
}

// And returns the conjunction c1 ⊓ c2 ⊓ …, flattened, deduplicated and
// constant-folded. And() is ⊤.
func And(cs ...*Expr) *Expr { return nary(OpAnd, cs) }

// Or returns the disjunction c1 ⊔ c2 ⊔ …, flattened, deduplicated and
// constant-folded. Or() is ⊥.
func Or(cs ...*Expr) *Expr { return nary(OpOr, cs) }

func nary(op Op, cs []*Expr) *Expr {
	identity, absorber := topExpr, bottomExpr
	if op == OpOr {
		identity, absorber = bottomExpr, topExpr
	}
	flat := make([]*Expr, 0, len(cs))
	seen := make(map[string]bool, len(cs))
	for _, c := range cs {
		if c == nil {
			continue
		}
		if c.op == absorber.op {
			return absorber
		}
		if c.op == identity.op {
			continue
		}
		parts := []*Expr{c}
		if c.op == op {
			parts = c.args
		}
		for _, p := range parts {
			key := p.String()
			if !seen[key] {
				seen[key] = true
				flat = append(flat, p)
			}
		}
	}
	switch len(flat) {
	case 0:
		return identity
	case 1:
		return flat[0]
	}
	// Canonical argument order makes structurally-equal expressions render
	// identically regardless of construction order.
	sort.Slice(flat, func(i, j int) bool { return flat[i].String() < flat[j].String() })
	return &Expr{op: op, args: flat}
}

// Op reports the root operator.
func (e *Expr) Op() Op { return e.op }

// Name returns the concept name (OpAtom) or role name (OpExists).
func (e *Expr) Name() string { return e.name }

// Individuals returns the individuals of a nominal (nil otherwise). The
// returned slice must not be modified.
func (e *Expr) Individuals() []string { return e.inds }

// Args returns the child expressions. The returned slice must not be
// modified.
func (e *Expr) Args() []*Expr { return e.args }

// Filler returns the filler concept of an existential restriction and nil
// for other operators.
func (e *Expr) Filler() *Expr {
	if e.op == OpExists {
		return e.args[0]
	}
	return nil
}

// String renders the expression in the parser's input syntax, so
// Parse(e.String()) reproduces e.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	switch e.op {
	case OpTop:
		b.WriteString("TOP")
	case OpBottom:
		b.WriteString("BOTTOM")
	case OpAtom:
		b.WriteString(e.name)
	case OpNominal:
		b.WriteByte('{')
		for i, ind := range e.inds {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ind)
		}
		b.WriteByte('}')
	case OpNot:
		b.WriteString("NOT ")
		e.args[0].formatChild(b)
	case OpExists:
		b.WriteString("EXISTS ")
		b.WriteString(e.name)
		b.WriteByte('.')
		e.args[0].formatChild(b)
	case OpAnd, OpOr:
		sep := " AND "
		if e.op == OpOr {
			sep = " OR "
		}
		for i, a := range e.args {
			if i > 0 {
				b.WriteString(sep)
			}
			a.formatChild(b)
		}
	default:
		fmt.Fprintf(b, "<invalid op %d>", e.op)
	}
}

func (e *Expr) formatChild(b *strings.Builder) {
	if e.op == OpAnd || e.op == OpOr {
		b.WriteByte('(')
		e.format(b)
		b.WriteByte(')')
		return
	}
	e.format(b)
}

// Equal reports structural equality.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.String() == b.String()
}

// Signature is the vocabulary used by a concept expression.
type Signature struct {
	Concepts    []string
	Roles       []string
	Individuals []string
}

// Signature extracts the sorted vocabulary of e.
func (e *Expr) Signature() Signature {
	cs, rs, is := map[string]bool{}, map[string]bool{}, map[string]bool{}
	e.collect(cs, rs, is)
	return Signature{Concepts: sortedKeys(cs), Roles: sortedKeys(rs), Individuals: sortedKeys(is)}
}

func (e *Expr) collect(cs, rs, is map[string]bool) {
	switch e.op {
	case OpAtom:
		cs[e.name] = true
	case OpExists:
		rs[e.name] = true
	case OpNominal:
		for _, i := range e.inds {
			is[i] = true
		}
	}
	for _, a := range e.args {
		a.collect(cs, rs, is)
	}
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NNF returns the negation normal form of e: negations pushed inward to
// atoms, nominals and existentials via De Morgan's laws.
func (e *Expr) NNF() *Expr {
	return nnf(e, false)
}

func nnf(e *Expr, neg bool) *Expr {
	switch e.op {
	case OpTop:
		if neg {
			return bottomExpr
		}
		return topExpr
	case OpBottom:
		if neg {
			return topExpr
		}
		return bottomExpr
	case OpAtom, OpNominal, OpExists:
		base := e
		if e.op == OpExists {
			base = Exists(e.name, nnf(e.args[0], false))
		}
		if neg {
			return &Expr{op: OpNot, args: []*Expr{base}}
		}
		return base
	case OpNot:
		return nnf(e.args[0], !neg)
	case OpAnd, OpOr:
		args := make([]*Expr, len(e.args))
		for i, a := range e.args {
			args[i] = nnf(a, neg)
		}
		op := e.op
		if neg {
			if op == OpAnd {
				op = OpOr
			} else {
				op = OpAnd
			}
		}
		return nary(op, args)
	}
	return e
}

// Conjuncts returns the top-level conjuncts of e (e itself when the root is
// not a conjunction).
func (e *Expr) Conjuncts() []*Expr {
	if e.op == OpAnd {
		return e.args
	}
	return []*Expr{e}
}
