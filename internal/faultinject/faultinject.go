// Package faultinject is the deterministic fault-injection layer behind
// the serving stack's failure-domain tests and the chaos smoke. Faults
// are armed at runtime (no build tags): an Injector holds a list of
// armed Faults, each naming an injection Point (a filesystem operation
// of the journal's FS seam, a shard broadcast apply, the rank path) and
// a trigger — every op, every nth op, after a warmup, a seeded random
// rate, a bounded fire count. A fired fault injects a delay, an error
// (ENOSPC/EIO/... mapped to real syscall errors so errors.Is works), a
// panic, or a torn short-write.
//
// Determinism: triggers are per-fault op counters plus one seeded PRNG,
// both advanced under the injector's mutex, so a single-threaded test
// replays identically for a given seed and arm order.
//
// Cost when disabled: every hook is Fire/FireFS on a possibly-nil
// injector, which is one nil check plus one atomic load (false unless
// at least one fault is armed). The hot rank path stays allocation-free.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Point names an injection site.
type Point string

const (
	// FSOpen / FSWrite / FSSync / FSRename / FSRemove are the journal
	// FS-seam operations (see FS in this package). Match selects files
	// by path substring.
	FSOpen   Point = "fs.open"
	FSWrite  Point = "fs.write"
	FSSync   Point = "fs.sync"
	FSRename Point = "fs.rename"
	FSRemove Point = "fs.remove"
	// BroadcastApply fires inside the per-shard broadcast fan-out
	// goroutine, before the shard applies the vocabulary write. Shard
	// selects the replica.
	BroadcastApply Point = "broadcast.apply"
	// RankServe fires at the top of the coordinator's rank path.
	RankServe Point = "rank.serve"
)

// Fault is one armed fault: where it fires (Point plus the Shard/Match
// selectors), when it fires (Nth/Rate/After/Count), and what it injects
// (Delay, then Panic or an error). With neither Err nor Panic set, a
// fault with a delay injects only the delay; otherwise it injects EIO.
type Fault struct {
	Point Point `json:"point"`
	// Err names the injected error: ENOSPC, EIO, EACCES, or free text.
	Err string `json:"err,omitempty"`
	// Panic makes the fired fault panic with this message instead of
	// returning an error.
	Panic string `json:"panic,omitempty"`
	// DelayMs sleeps before the (optional) error/panic.
	DelayMs int `json:"delay_ms,omitempty"`
	// Torn makes a fired fs.write fault write half the buffer before
	// failing — the torn-tail crash artifact.
	Torn bool `json:"torn,omitempty"`
	// Nth fires on every nth matching op after After (1 = every op).
	// When zero, Rate (if set) decides; otherwise every op fires.
	Nth int `json:"nth,omitempty"`
	// Rate is the per-op fire probability when Nth is zero.
	Rate float64 `json:"rate,omitempty"`
	// After skips the first After matching ops.
	After int `json:"after,omitempty"`
	// Count disarms the fault after this many fires (0 = unlimited).
	Count int `json:"count,omitempty"`
	// Shard restricts broadcast.apply / rank.serve faults to one shard.
	Shard *int `json:"shard,omitempty"`
	// Match restricts fs.* faults to paths containing this substring
	// (e.g. "-001.wal" for shard 1's journal, ".compact" for the
	// compaction temp file, "manifest" for manifest switches).
	Match string `json:"match,omitempty"`
}

// FaultStatus is a Fault plus its live trigger counters.
type FaultStatus struct {
	Fault
	Ops   int64 `json:"ops"`
	Fires int64 `json:"fires"`
}

type armed struct {
	f     Fault
	ops   int64
	fires int64
}

// Injector is a set of armed faults. The zero value and the nil pointer
// are valid, permanently-disabled injectors.
type Injector struct {
	enabled atomic.Bool // true while at least one fault is armed
	mu      sync.Mutex
	rng     *rand.Rand
	faults  []*armed
}

// New returns an Injector whose Rate triggers draw from a PRNG seeded
// with seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Arm adds a fault. Errors on an empty point or out-of-range trigger.
func (in *Injector) Arm(f Fault) error {
	if in == nil {
		return errors.New("faultinject: nil injector")
	}
	if f.Point == "" {
		return errors.New("faultinject: fault needs a point")
	}
	if f.Nth < 0 || f.After < 0 || f.Count < 0 || f.DelayMs < 0 {
		return fmt.Errorf("faultinject: negative trigger in %+v", f)
	}
	if f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("faultinject: rate %v out of [0,1]", f.Rate)
	}
	in.mu.Lock()
	in.faults = append(in.faults, &armed{f: f})
	if in.rng == nil {
		in.rng = rand.New(rand.NewSource(1))
	}
	in.mu.Unlock()
	in.enabled.Store(true)
	return nil
}

// Clear disarms everything.
func (in *Injector) Clear() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.faults = nil
	in.mu.Unlock()
	in.enabled.Store(false)
}

// Disarm removes every fault at point, returning how many were removed.
func (in *Injector) Disarm(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	kept := in.faults[:0]
	removed := 0
	for _, a := range in.faults {
		if a.f.Point == p {
			removed++
			continue
		}
		kept = append(kept, a)
	}
	in.faults = kept
	in.enabled.Store(len(kept) > 0)
	in.mu.Unlock()
	return removed
}

// Snapshot returns every armed fault with its counters.
func (in *Injector) Snapshot() []FaultStatus {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]FaultStatus, 0, len(in.faults))
	for _, a := range in.faults {
		out = append(out, FaultStatus{Fault: a.f, Ops: a.ops, Fires: a.fires})
	}
	return out
}

// Enabled reports lock-free whether any fault is armed.
func (in *Injector) Enabled() bool { return in != nil && in.enabled.Load() }

// Fire evaluates the faults at a shard-selected point (broadcast.apply,
// rank.serve). shard < 0 matches any selector. A fired panic fault
// panics; a fired error fault returns the mapped error; a delay-only
// fault sleeps and returns nil.
func (in *Injector) Fire(p Point, shard int) error {
	if in == nil || !in.enabled.Load() {
		return nil
	}
	_, err := in.eval(p, shard, "", 0)
	return err
}

// FireFS is Fire for path-selected filesystem points.
func (in *Injector) FireFS(p Point, path string) error {
	if in == nil || !in.enabled.Load() {
		return nil
	}
	_, err := in.eval(p, -1, path, 0)
	return err
}

// FireWrite evaluates fs.write faults for an n-byte write to path. It
// returns how many bytes the caller should actually write (n when no
// fault fired, n/2 for a torn write, 0 otherwise) and the injected
// error.
func (in *Injector) FireWrite(p Point, path string, n int) (int, error) {
	if in == nil || !in.enabled.Load() {
		return n, nil
	}
	return in.eval(p, -1, path, n)
}

// eval advances trigger counters for every matching fault and applies
// the first that fires.
func (in *Injector) eval(p Point, shard int, path string, n int) (int, error) {
	var hit *Fault
	in.mu.Lock()
	for _, a := range in.faults {
		f := &a.f
		if f.Point != p {
			continue
		}
		if f.Shard != nil && shard >= 0 && *f.Shard != shard {
			continue
		}
		if f.Match != "" && !strings.Contains(path, f.Match) {
			continue
		}
		a.ops++
		if f.Count > 0 && a.fires >= int64(f.Count) {
			continue
		}
		past := a.ops - int64(f.After)
		if past <= 0 {
			continue
		}
		switch {
		case f.Nth > 0:
			if past%int64(f.Nth) != 0 {
				continue
			}
		case f.Rate > 0:
			if in.rng.Float64() >= f.Rate {
				continue
			}
		}
		a.fires++
		if hit == nil {
			hit = f
		}
	}
	in.mu.Unlock()
	if hit == nil {
		return n, nil
	}
	if hit.DelayMs > 0 {
		time.Sleep(time.Duration(hit.DelayMs) * time.Millisecond)
	}
	if hit.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", p, hit.Panic))
	}
	if hit.Err == "" && hit.Panic == "" && hit.DelayMs > 0 {
		return n, nil // delay-only fault
	}
	allow := 0
	if hit.Torn {
		allow = n / 2
	}
	return allow, fmt.Errorf("faultinject: %s: %w", p, mapErr(hit.Err))
}

// mapErr turns an error name into a comparable error value. Known
// errno names map to the real syscall errors so errors.Is(err,
// syscall.ENOSPC) sees exactly what a full disk would produce.
func mapErr(name string) error {
	switch strings.ToUpper(name) {
	case "", "EIO":
		return syscall.EIO
	case "ENOSPC":
		return syscall.ENOSPC
	case "EACCES":
		return syscall.EACCES
	case "EMFILE":
		return syscall.EMFILE
	default:
		return errors.New(name)
	}
}
