package faultinject

import (
	"errors"
	"strings"
	"syscall"
	"testing"
)

func TestNilAndDisabledInjectorAreNoops(t *testing.T) {
	var nilIn *Injector
	if err := nilIn.Fire(RankServe, 0); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if nilIn.Enabled() {
		t.Fatal("nil injector claims enabled")
	}
	if err := nilIn.Arm(Fault{Point: RankServe}); err == nil {
		t.Fatal("nil injector accepted Arm")
	}

	in := New(1)
	if in.Enabled() {
		t.Fatal("fresh injector claims enabled")
	}
	if err := in.Fire(RankServe, 0); err != nil {
		t.Fatalf("disabled injector fired: %v", err)
	}
}

func TestArmValidation(t *testing.T) {
	in := New(1)
	if err := in.Arm(Fault{}); err == nil {
		t.Fatal("armed a fault with no point")
	}
	if err := in.Arm(Fault{Point: RankServe, Nth: -1}); err == nil {
		t.Fatal("armed a negative nth")
	}
	if err := in.Arm(Fault{Point: RankServe, Rate: 1.5}); err == nil {
		t.Fatal("armed an out-of-range rate")
	}
}

func TestEveryOpAndErrorMapping(t *testing.T) {
	in := New(1)
	if err := in.Arm(Fault{Point: FSSync, Err: "ENOSPC"}); err != nil {
		t.Fatal(err)
	}
	err := in.FireFS(FSSync, "/tmp/x.wal")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// Other points are unaffected.
	if err := in.FireFS(FSWrite, "/tmp/x.wal"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestNthAfterCountTriggers(t *testing.T) {
	in := New(1)
	// Skip 2 ops, then fire every 3rd matching op, at most twice.
	if err := in.Arm(Fault{Point: RankServe, Nth: 3, After: 2, Count: 2}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for op := 1; op <= 14; op++ {
		if err := in.Fire(RankServe, 0); err != nil {
			fired = append(fired, op)
		}
	}
	// past = op-2; fires at past=3,6 -> ops 5, 8; count=2 stops there.
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 8 {
		t.Fatalf("fired at %v, want [5 8]", fired)
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	run := func() []int {
		in := New(42)
		if err := in.Arm(Fault{Point: BroadcastApply, Rate: 0.5}); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for op := 0; op < 32; op++ {
			if err := in.Fire(BroadcastApply, 1); err != nil {
				fired = append(fired, op)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("rate 0.5 fired %d/32 — trigger not probabilistic", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestShardAndMatchSelectors(t *testing.T) {
	in := New(1)
	shard := 2
	if err := in.Arm(Fault{Point: BroadcastApply, Shard: &shard}); err != nil {
		t.Fatal(err)
	}
	if err := in.Fire(BroadcastApply, 1); err != nil {
		t.Fatalf("wrong shard fired: %v", err)
	}
	if err := in.Fire(BroadcastApply, 2); err == nil {
		t.Fatal("selected shard did not fire")
	}

	if err := in.Arm(Fault{Point: FSWrite, Match: "-001.wal"}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.FireWrite(FSWrite, "/d/sessions-abc-000.wal", 10); err != nil {
		t.Fatalf("unmatched path fired: %v", err)
	}
	if _, err := in.FireWrite(FSWrite, "/d/sessions-abc-001.wal", 10); err == nil {
		t.Fatal("matched path did not fire")
	}
}

func TestTornWriteAllowsHalf(t *testing.T) {
	in := New(1)
	if err := in.Arm(Fault{Point: FSWrite, Torn: true, Err: "EIO"}); err != nil {
		t.Fatal(err)
	}
	allow, err := in.FireWrite(FSWrite, "x.wal", 100)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if allow != 50 {
		t.Fatalf("torn write allowed %d bytes, want 50", allow)
	}
}

func TestPanicFault(t *testing.T) {
	in := New(1)
	if err := in.Arm(Fault{Point: RankServe, Panic: "boom"}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic fault did not panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic payload %v", v)
		}
	}()
	_ = in.Fire(RankServe, 0)
}

func TestDisarmAndClear(t *testing.T) {
	in := New(1)
	if err := in.Arm(Fault{Point: RankServe}); err != nil {
		t.Fatal(err)
	}
	if err := in.Arm(Fault{Point: FSSync}); err != nil {
		t.Fatal(err)
	}
	if n := in.Disarm(RankServe); n != 1 {
		t.Fatalf("disarmed %d, want 1", n)
	}
	if err := in.Fire(RankServe, 0); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if !in.Enabled() {
		t.Fatal("injector disabled with a fault still armed")
	}
	in.Clear()
	if in.Enabled() {
		t.Fatal("injector enabled after Clear")
	}
	if err := in.FireFS(FSSync, "x"); err != nil {
		t.Fatalf("cleared injector fired: %v", err)
	}
}

func TestSnapshotCountsOpsAndFires(t *testing.T) {
	in := New(1)
	if err := in.Arm(Fault{Point: RankServe, Nth: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = in.Fire(RankServe, 0)
	}
	snap := in.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d faults", len(snap))
	}
	if snap[0].Ops != 4 || snap[0].Fires != 2 {
		t.Fatalf("ops=%d fires=%d, want 4/2", snap[0].Ops, snap[0].Fires)
	}
}

func TestFirstHitWinsAndCountersAdvanceForAll(t *testing.T) {
	in := New(1)
	if err := in.Arm(Fault{Point: FSSync, Err: "ENOSPC"}); err != nil {
		t.Fatal(err)
	}
	if err := in.Arm(Fault{Point: FSSync, Err: "EACCES"}); err != nil {
		t.Fatal(err)
	}
	err := in.FireFS(FSSync, "x")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first armed fault should win, got %v", err)
	}
	snap := in.Snapshot()
	if snap[0].Ops != 1 || snap[1].Ops != 1 {
		t.Fatalf("both faults should count the op: %+v", snap)
	}
}
