package faultinject

import (
	"os"

	"repro/internal/serve/journal"
)

// FS wraps base (nil means the real filesystem) so every journal file
// operation consults in first. With no faults armed the wrapper adds one
// atomic load per call — Options.FS can stay armed in production behind
// a flag.
func FS(in *Injector, base journal.FS) journal.FS {
	if base == nil {
		base = journal.OSFS{}
	}
	return &faultFS{in: in, base: base}
}

type faultFS struct {
	in   *Injector
	base journal.FS
}

func (w *faultFS) OpenFile(name string, flag int, perm os.FileMode) (journal.File, error) {
	if err := w.in.FireFS(FSOpen, name); err != nil {
		return nil, err
	}
	f, err := w.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: w.in, f: f, name: name}, nil
}

func (w *faultFS) Rename(oldpath, newpath string) error {
	if err := w.in.FireFS(FSRename, oldpath); err != nil {
		return err
	}
	return w.base.Rename(oldpath, newpath)
}

func (w *faultFS) Remove(name string) error {
	if err := w.in.FireFS(FSRemove, name); err != nil {
		return err
	}
	return w.base.Remove(name)
}

func (w *faultFS) SyncDir(dir string) error {
	// Directory fsync is already best-effort everywhere it is called;
	// injecting here would test nothing the callers can observe.
	return w.base.SyncDir(dir)
}

type faultFile struct {
	in   *Injector
	f    journal.File
	name string
}

func (w *faultFile) Write(p []byte) (int, error) {
	allow, err := w.in.FireWrite(FSWrite, w.name, len(p))
	if err != nil {
		n := 0
		if allow > 0 {
			// Torn short-write: part of the buffer lands on disk before
			// the failure, exactly like a crash mid-write.
			n, _ = w.f.Write(p[:allow])
		}
		return n, err
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	if err := w.in.FireFS(FSSync, w.name); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *faultFile) Read(p []byte) (int, error)                { return w.f.Read(p) }
func (w *faultFile) Close() error                              { return w.f.Close() }
func (w *faultFile) Seek(off int64, whence int) (int64, error) { return w.f.Seek(off, whence) }
func (w *faultFile) Truncate(size int64) error                 { return w.f.Truncate(size) }
func (w *faultFile) Stat() (os.FileInfo, error)                { return w.f.Stat() }
