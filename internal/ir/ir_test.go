package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func newIndex(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex()
	docs := []Document{
		{ID: "d1", Features: map[string]int{"news": 3, "weather": 1}},
		{ID: "d2", Features: map[string]int{"comedy": 4}},
		{ID: "d3", Features: map[string]int{"news": 1, "comedy": 1}},
	}
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestScoreMaximumLikelihood(t *testing.T) {
	ix := newIndex(t)
	m := Model{Index: ix, Lambda: 0}
	s, err := m.Score("d1", []string{"news"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.75) > 1e-12 { // 3/4
		t.Fatalf("P(news|d1) = %g, want 0.75", s)
	}
	// Unsmoothed zero hole.
	s, _ = m.Score("d1", []string{"comedy"})
	if s != 0 {
		t.Fatalf("P(comedy|d1) = %g, want 0", s)
	}
}

func TestJelinekMercerSmoothing(t *testing.T) {
	ix := newIndex(t)
	m := Model{Index: ix, Lambda: 0.5}
	// collection: news 4, weather 1, comedy 5, total 10.
	s, err := m.Score("d1", []string{"comedy"})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 0.5 // (1-λ)·0 + λ·5/10
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("smoothed P = %g, want %g", s, want)
	}
	// Multi-feature query multiplies.
	s, _ = m.Score("d1", []string{"news", "weather"})
	pNews := 0.5*0.75 + 0.5*0.4
	pWeather := 0.5*0.25 + 0.5*0.1
	if math.Abs(s-pNews*pWeather) > 1e-12 {
		t.Fatalf("joint = %g, want %g", s, pNews*pWeather)
	}
}

func TestUnknownDocumentUsesCollectionModel(t *testing.T) {
	ix := newIndex(t)
	m := Model{Index: ix, Lambda: 0.5}
	s, err := m.Score("ghost", []string{"news"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5*0.4) > 1e-12 {
		t.Fatalf("P = %g", s)
	}
}

func TestRankOrdering(t *testing.T) {
	ix := newIndex(t)
	m := Model{Index: ix, Lambda: 0.1}
	ranked, err := m.Rank([]string{"news"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 || ranked[0].ID != "d1" || ranked[2].ID != "d2" {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestAddReplaceMaintainsCollectionStats(t *testing.T) {
	ix := NewIndex()
	ix.Add(Document{ID: "d", Features: map[string]int{"a": 10}})
	ix.Add(Document{ID: "d", Features: map[string]int{"b": 2}})
	if ix.Len() != 1 {
		t.Fatalf("len = %d", ix.Len())
	}
	m := Model{Index: ix, Lambda: 1}
	s, _ := m.Score("d", []string{"a"})
	if s != 0 {
		t.Fatalf("stale collection frequency: %g", s)
	}
	s, _ = m.Score("d", []string{"b"})
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("P = %g", s)
	}
}

func TestValidation(t *testing.T) {
	ix := NewIndex()
	if err := ix.Add(Document{}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := ix.Add(Document{ID: "d", Features: map[string]int{"a": -1}}); err == nil {
		t.Fatal("negative count accepted")
	}
	m := Model{Index: ix, Lambda: 2}
	if _, err := m.Score("d", []string{"a"}); err == nil {
		t.Fatal("bad lambda accepted")
	}
}

func TestEmptyQueryScoresOne(t *testing.T) {
	ix := newIndex(t)
	m := Model{Index: ix, Lambda: 0.5}
	s, err := m.Score("d1", nil)
	if err != nil || s != 1 {
		t.Fatalf("empty query: %g, %v", s, err)
	}
}

func TestQuickScoreIsProbability(t *testing.T) {
	ix := newIndex(t)
	f := func(lambdaRaw uint8, useNews, useComedy bool) bool {
		lambda := float64(lambdaRaw) / 255
		m := Model{Index: ix, Lambda: lambda}
		var q []string
		if useNews {
			q = append(q, "news")
		}
		if useComedy {
			q = append(q, "comedy")
		}
		for _, id := range []string{"d1", "d2", "d3"} {
			s, err := m.Score(id, q)
			if err != nil || s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
