// Package ir implements the traditional, non-context-aware information
// retrieval model the paper builds on (§2): the language-modeling approach
// of Ponte & Croft as generalized by Berger & Lafferty. Documents are bags
// of features; the query-dependent part P(Q=q | D=d) is the product over
// query features of the smoothed feature-generation probabilities. This is
// the "query-dependent" half of equation (3); the core package supplies the
// context-aware query-independent half, and core.SmoothedScore combines
// them (§6).
package ir

import (
	"fmt"
	"sort"
	"sync"
)

// Document is a bag of features with counts (for text these would be term
// frequencies; for the TVTouch scenario they are genre/subject tags).
type Document struct {
	ID       string
	Features map[string]int
}

// Len returns the total feature count of the document.
func (d Document) Len() int {
	n := 0
	for _, c := range d.Features {
		n += c
	}
	return n
}

// Index is a feature-frequency index over a corpus. Safe for concurrent
// reads after documents are added.
type Index struct {
	mu        sync.RWMutex
	docs      map[string]Document
	collFreq  map[string]int // collection frequency per feature
	collTotal int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{docs: make(map[string]Document), collFreq: make(map[string]int)}
}

// Add inserts a document; re-adding an ID replaces the previous version.
func (ix *Index) Add(d Document) error {
	if d.ID == "" {
		return fmt.Errorf("ir: document without ID")
	}
	for f, c := range d.Features {
		if c < 0 {
			return fmt.Errorf("ir: document %s has negative count for %q", d.ID, f)
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.docs[d.ID]; ok {
		for f, c := range old.Features {
			ix.collFreq[f] -= c
			ix.collTotal -= c
		}
	}
	ix.docs[d.ID] = d
	for f, c := range d.Features {
		ix.collFreq[f] += c
		ix.collTotal += c
	}
	return nil
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Model scores documents against queries. Lambda is the Jelinek–Mercer
// mixing weight of the collection model (0 < Lambda < 1 recommended; 0
// degenerates to maximum likelihood with zero-probability holes).
type Model struct {
	Index  *Index
	Lambda float64
}

// Score returns P(q | d) under the smoothed language model: the product
// over query features of (1−λ)·tf/|d| + λ·cf/|C|. A document unknown to the
// index scores using the collection model alone.
func (m Model) Score(docID string, query []string) (float64, error) {
	if m.Lambda < 0 || m.Lambda > 1 {
		return 0, fmt.Errorf("ir: lambda %g outside [0,1]", m.Lambda)
	}
	ix := m.Index
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	doc, hasDoc := ix.docs[docID]
	docLen := 0
	if hasDoc {
		docLen = doc.Len()
	}
	score := 1.0
	for _, f := range query {
		docPart := 0.0
		if hasDoc && docLen > 0 {
			docPart = float64(doc.Features[f]) / float64(docLen)
		}
		collPart := 0.0
		if ix.collTotal > 0 {
			collPart = float64(ix.collFreq[f]) / float64(ix.collTotal)
		}
		score *= (1-m.Lambda)*docPart + m.Lambda*collPart
	}
	return score, nil
}

// Ranked is one ranked document.
type Ranked struct {
	ID    string
	Score float64
}

// Rank scores every indexed document against the query and returns them in
// descending score order (ties broken by ID).
func (m Model) Rank(query []string) ([]Ranked, error) {
	m.Index.mu.RLock()
	ids := make([]string, 0, len(m.Index.docs))
	for id := range m.Index.docs {
		ids = append(ids, id)
	}
	m.Index.mu.RUnlock()
	sort.Strings(ids)
	out := make([]Ranked, 0, len(ids))
	for _, id := range ids {
		s, err := m.Score(id, query)
		if err != nil {
			return nil, err
		}
		out = append(out, Ranked{ID: id, Score: s})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
