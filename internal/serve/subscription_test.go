package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	contextrank "repro"
)

// subTestServer is a server over the shared ten-program TV system.
func subTestServer(t *testing.T) *Server {
	t.Helper()
	return NewServer(newTestSystem(t), Options{})
}

func applyCtx(t *testing.T, srv *Server, user, concept string, prob float64) {
	t.Helper()
	if _, err := srv.SetSession(user, []Measurement{{Concept: concept, Prob: prob}}); err != nil {
		t.Fatal(err)
	}
}

// waitEvent blocks for the next pushed event; the evaluator is
// asynchronous, so tests wait with a generous timeout.
func waitEvent(t *testing.T, ch <-chan SubEvent) SubEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed while waiting for an event")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a subscription event")
	}
	panic("unreachable")
}

// expectQuiet asserts no event arrives within a short window (a state
// change that does not move this subscription's scores must stay silent).
func expectQuiet(t *testing.T, ch <-chan SubEvent) {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("unexpected event %q (seq %d) on a quiet stream", ev.Type, ev.Seq)
		}
		t.Fatal("event channel closed on a quiet stream")
	case <-time.After(300 * time.Millisecond):
	}
}

// subScores flattens snapshot results into an id→score map.
func subScores(results []SubResult) map[string]float64 {
	m := make(map[string]float64, len(results))
	for _, r := range results {
		m[r.ID] = r.Score
	}
	return m
}

// wantScores is the fresh-rank baseline a snapshot (or a delta-patched
// snapshot) must match bit for bit.
func wantScores(t *testing.T, srv *Server, user string) map[string]float64 {
	t.Helper()
	res, _, err := srv.Rank(user, "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]float64, len(res))
	for _, r := range res {
		m[r.ID] = r.Score
	}
	return m
}

func sameScoreMaps(t *testing.T, got, want map[string]float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", what, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("%s: missing %s", what, id)
		}
		if g != w {
			t.Fatalf("%s: %s = %v, want %v (must be bit-identical)", what, id, g, w)
		}
	}
}

// TestSubscriptionLifecycle drives the full push path: subscribe, attach,
// snapshot equals a fresh rank, a context change pushes a delta that
// patches the snapshot into the new fresh rank, an unrelated user's
// context change pushes nothing, unsubscribe closes the stream.
func TestSubscriptionLifecycle(t *testing.T) {
	srv := subTestServer(t)
	applyCtx(t, srv, "peter", "CtxA", 1)

	info, err := srv.Subscribe("", SubscriptionSpec{User: "peter", Target: "TvProgram"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, "sub-") {
		t.Fatalf("minted id %q, want sub- prefix", info.ID)
	}
	if got := srv.Subscriptions(); len(got) != 1 || got[0].ID != info.ID {
		t.Fatalf("Subscriptions() = %+v, want the one registration", got)
	}

	st, err := srv.SubscriptionStream(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Type != "snapshot" || snap.ID != info.ID {
		t.Fatalf("opening event = %+v, want a snapshot for %s", snap, info.ID)
	}
	scores := subScores(snap.Results)
	sameScoreMaps(t, scores, wantScores(t, srv, "peter"), "opening snapshot")

	// One consumer per stream: a second concurrent attach must be refused.
	if _, err := srv.SubscriptionStream(info.ID); !errors.Is(err, ErrSubscriptionBusy) {
		t.Fatalf("second attach: err = %v, want ErrSubscriptionBusy", err)
	}

	// A context flip moves g0-genre programs down and g1 up: the stream
	// must push a delta whose patch reproduces the fresh ranking.
	applyCtx(t, srv, "peter", "CtxB", 1)
	ev := waitEvent(t, st.Events())
	if ev.Type != "delta" {
		t.Fatalf("after context flip: event type %q, want delta", ev.Type)
	}
	if len(ev.Changes) == 0 {
		t.Fatal("delta after a context flip carries no changes")
	}
	if ev.Seq <= snap.Seq {
		t.Fatalf("delta seq %d did not advance past snapshot seq %d", ev.Seq, snap.Seq)
	}
	for _, ch := range ev.Changes {
		if prev, ok := scores[ch.ID]; ok {
			if ch.Prev == nil || *ch.Prev != prev {
				t.Fatalf("change for %s: prev = %v, want %v", ch.ID, ch.Prev, prev)
			}
		} else if ch.Prev != nil {
			t.Fatalf("change for new entrant %s carries prev %v", ch.ID, *ch.Prev)
		}
		scores[ch.ID] = ch.Score
	}
	for _, id := range ev.Removed {
		delete(scores, id)
	}
	sameScoreMaps(t, scores, wantScores(t, srv, "peter"), "delta-patched snapshot")

	// Another user's context apply re-keys the evaluator but must not
	// push an event at peter: his scores did not move.
	applyCtx(t, srv, "maria", "CtxB", 1)
	expectQuiet(t, st.Events())

	// Unsubscribe ends the stream.
	found, err := srv.Unsubscribe(info.ID)
	if err != nil || !found {
		t.Fatalf("Unsubscribe = (%v, %v), want (true, nil)", found, err)
	}
	select {
	case ev, ok := <-st.Events():
		if ok {
			t.Fatalf("event %q after unsubscribe, want closed channel", ev.Type)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event channel not closed after unsubscribe")
	}
	if got := srv.Subscriptions(); len(got) != 0 {
		t.Fatalf("Subscriptions() = %+v after unsubscribe, want none", got)
	}
	// Removing an absent id stays a journaled no-op.
	if found, err := srv.Unsubscribe(info.ID); err != nil || found {
		t.Fatalf("second Unsubscribe = (%v, %v), want (false, nil)", found, err)
	}
}

// TestSubscriptionValidation: the spec shares the rank request's
// validation rules.
func TestSubscriptionValidation(t *testing.T) {
	srv := subTestServer(t)
	bad := []SubscriptionSpec{
		{Target: "TvProgram"}, // no user
		{User: "peter"},       // neither target nor candidates
		{User: "peter", Target: "TvProgram", Candidates: []string{"tv00"}}, // both
		{User: "peter", Target: "TvProgram", TopK: -1},                     // negative top_k
	}
	for i, spec := range bad {
		if _, err := srv.Subscribe("", spec); err == nil {
			t.Fatalf("bad spec %d (%+v) accepted", i, spec)
		}
	}
	if got := srv.Subscriptions(); len(got) != 0 {
		t.Fatalf("rejected specs left %d registrations", len(got))
	}
}

// TestSubscriptionCandidatesTopK: a candidate-list subscription with
// top_k keeps only the k best, and candidates that fall out of the set
// arrive as removals.
func TestSubscriptionCandidatesTopK(t *testing.T) {
	srv := subTestServer(t)
	applyCtx(t, srv, "peter", "CtxA", 1)
	cands := []string{"tv00", "tv01", "tv02", "tv03"}
	info, err := srv.Subscribe("pick", SubscriptionSpec{User: "peter", Candidates: cands, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "pick" {
		t.Fatalf("id = %q, want the caller-chosen one", info.ID)
	}
	st, err := srv.SubscriptionStream("pick")
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if len(snap.Results) != 2 {
		t.Fatalf("top-2 snapshot has %d results: %+v", len(snap.Results), snap.Results)
	}
	batch, _, err := srv.RankBatch("peter", "", []RankItem{{Candidates: cands, TopK: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err != nil {
		t.Fatal(batch[0].Err)
	}
	for i, r := range batch[0].Results {
		if snap.Results[i].ID != r.ID || snap.Results[i].Score != r.Score {
			t.Fatalf("snapshot[%d] = %+v, want %s=%v", i, snap.Results[i], r.ID, r.Score)
		}
	}
}

// TestSubscriptionReplace: re-subscribing an id atomically replaces the
// registration and ends the old stream (journal replay relies on this).
func TestSubscriptionReplace(t *testing.T) {
	srv := subTestServer(t)
	applyCtx(t, srv, "peter", "CtxA", 1)
	if _, err := srv.Subscribe("s1", SubscriptionSpec{User: "peter", Target: "TvProgram"}); err != nil {
		t.Fatal(err)
	}
	st, err := srv.SubscriptionStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Subscribe("s1", SubscriptionSpec{User: "peter", Target: "TvProgram", TopK: 3}); err != nil {
		t.Fatal(err)
	}
	// The old stream must end...
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-st.Events():
			if !ok {
				goto replaced
			}
		case <-deadline:
			t.Fatal("old stream not closed by replacement")
		}
	}
replaced:
	// ...and the id now serves the new spec.
	subs := srv.Subscriptions()
	if len(subs) != 1 || subs[0].TopK != 3 {
		t.Fatalf("after replace: %+v, want one registration with top_k 3", subs)
	}
	st2, err := srv.SubscriptionStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(st2.Snapshot().Results); n != 3 {
		t.Fatalf("replacement snapshot has %d results, want top-3", n)
	}
}

// TestSubscriptionErrorAndRecovery: a standing rank that fails (target
// names vocabulary that does not exist) pushes one error event — not one
// per evaluation — stays registered, and recovers with a snapshot once
// the vocabulary appears.
func TestSubscriptionErrorAndRecovery(t *testing.T) {
	srv := subTestServer(t)
	applyCtx(t, srv, "peter", "CtxA", 1)
	if _, err := srv.Subscribe("doomed", SubscriptionSpec{User: "peter", Target: "Podcast"}); err != nil {
		t.Fatal(err)
	}
	st, err := srv.SubscriptionStream("doomed")
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Type != "error" || snap.Error == "" {
		t.Fatalf("opening event = %+v, want a standing error", snap)
	}
	// Re-keying the evaluator with the same failure must not re-push it.
	applyCtx(t, srv, "peter", "CtxA", 0.9)
	expectQuiet(t, st.Events())
	// Declaring the missing concept heals the subscription: the recovery
	// event is a full snapshot (the consumer has no baseline to patch).
	if _, err := srv.Declare([]string{"Podcast"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, st.Events())
	if ev.Type != "snapshot" {
		t.Fatalf("recovery event type %q, want snapshot", ev.Type)
	}
}

// TestSubscriptionLaggedResync: when the consumer falls further behind
// than the event buffer, deltas are dropped, the lagged flag trips, and
// Resync rebuilds a full snapshot equal to the current ranking.
func TestSubscriptionLaggedResync(t *testing.T) {
	srv := subTestServer(t)
	applyCtx(t, srv, "peter", "CtxA", 1)
	if _, err := srv.Subscribe("slow", SubscriptionSpec{User: "peter", Target: "TvProgram"}); err != nil {
		t.Fatal(err)
	}
	st, err := srv.SubscriptionStream("slow")
	if err != nil {
		t.Fatal(err)
	}
	srv.subs.mu.Lock()
	sub := srv.subs.subs["slow"]
	srv.subs.mu.Unlock()

	// Drive evaluations synchronously (in-package) with the attached
	// consumer not draining the channel: alternating context
	// probabilities move scores every time, so each evaluation wants to
	// push one delta, and the overflow past the buffer must trip the
	// lagged flag instead of blocking the evaluator.
	for i := 0; i < subEventBuffer+8; i++ {
		applyCtx(t, srv, "peter", "CtxA", 0.3+0.4*float64(i%2))
		srv.evalSub(sub)
	}
	if !st.TakeLagged() {
		t.Fatalf("consumer %d events behind, lagged flag not set", subEventBuffer+8)
	}
	if st.TakeLagged() {
		t.Fatal("TakeLagged did not clear the flag")
	}

	// The SSE handler's lag protocol: drop the stale queue, resync from
	// the last evaluated ranking.
	for {
		select {
		case <-st.Events():
			continue
		default:
		}
		break
	}
	resync := st.Resync()
	if resync.Type != "resync" {
		t.Fatalf("Resync type = %q", resync.Type)
	}
	sameScoreMaps(t, subScores(resync.Results), wantScores(t, srv, "peter"), "resync snapshot")

	stats := srv.Stats()
	if stats.Subs == nil || stats.Subs.Lagged == 0 {
		t.Fatalf("stats.Subs = %+v, want a nonzero lagged count", stats.Subs)
	}
}

// TestSubscriptionChurnRace hammers subscribe/attach/consume/unsubscribe
// from several goroutines while a mutator flips contexts. Run with -race
// in CI; correctness claim: no panic, no deadlock, registry drains to
// empty.
func TestSubscriptionChurnRace(t *testing.T) {
	srv := subTestServer(t)
	applyCtx(t, srv, "peter", "CtxA", 1)

	stop := make(chan struct{})
	var mut sync.WaitGroup
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := "CtxA"
			if i%2 == 1 {
				c = "CtxB"
			}
			if _, err := srv.SetSession("peter", []Measurement{{Concept: c, Prob: 1}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const churners, rounds = 4, 20
	var wg sync.WaitGroup
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i)
				if _, err := srv.Subscribe(id, SubscriptionSpec{User: "peter", Target: "TvProgram", TopK: 3}); err != nil {
					t.Error(err)
					return
				}
				st, err := srv.SubscriptionStream(id)
				if err != nil {
					t.Error(err)
					return
				}
				select { // consume at most one live event, then bail
				case <-st.Events():
				case <-time.After(5 * time.Millisecond):
				}
				st.Close()
				if _, err := srv.Unsubscribe(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	mut.Wait()

	if got := srv.Subscriptions(); len(got) != 0 {
		t.Fatalf("%d subscriptions leaked after churn", len(got))
	}
	stats := srv.Stats()
	if stats.Subs == nil || stats.Subs.Evals == 0 {
		t.Fatalf("stats.Subs = %+v after churn, want evaluation counts", stats.Subs)
	}
}
