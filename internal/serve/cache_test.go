package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	contextrank "repro"
)

func res(ids ...string) []contextrank.Result {
	out := make([]contextrank.Result, len(ids))
	for i, id := range ids {
		out[i] = contextrank.Result{ID: id, Score: float64(len(ids) - i)}
	}
	return out
}

func TestRankKeyDistinguishesEveryDimension(t *testing.T) {
	base := rankKey("u", "T", "fp", 1, contextrank.RankOptions{})
	variants := []string{
		rankKey("v", "T", "fp", 1, contextrank.RankOptions{}),
		rankKey("u", "S", "fp", 1, contextrank.RankOptions{}),
		rankKey("u", "T", "fq", 1, contextrank.RankOptions{}),
		rankKey("u", "T", "fp", 2, contextrank.RankOptions{}),
		rankKey("u", "T", "fp", 1, contextrank.RankOptions{Algorithm: contextrank.AlgorithmNaive}),
		rankKey("u", "T", "fp", 1, contextrank.RankOptions{Threshold: 0.1}),
		rankKey("u", "T", "fp", 1, contextrank.RankOptions{Limit: 5}),
		rankKey("u", "T", "fp", 1, contextrank.RankOptions{Explain: true}),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides: %q", i, v)
		}
		seen[v] = true
	}
}

func TestRankKeyResistsSeparatorInjection(t *testing.T) {
	// JSON strings may contain any byte; values must not be able to
	// shift bytes between fields and collide.
	a := rankKey("a\x00b", "c", "", 1, contextrank.RankOptions{})
	b := rankKey("a", "b\x00c", "", 1, contextrank.RankOptions{})
	if a == b {
		t.Fatalf("cross-field collision: %q", a)
	}
	c := rankKey("u", "T\x001", "", 1, contextrank.RankOptions{})
	d := rankKey("u", "T", "\x001", 1, contextrank.RankOptions{})
	if c == d {
		t.Fatalf("target/fingerprint collision: %q", c)
	}
}

func TestRankCacheLRUEviction(t *testing.T) {
	c := newRankCache(2)
	fill := func(key string, ids ...string) {
		if _, _, _, err := c.do(key, func() ([]contextrank.Result, string, int64, error) {
			return res(ids...), key, 1, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	fill("a", "x")
	fill("b", "y")
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	// a is now MRU; adding c must evict b.
	fill("c", "z")
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	st := c.stats()
	if st.Evicted != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRankCacheSingleflightCoalesces(t *testing.T) {
	c := newRankCache(8)
	var computes atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})

	const waiters = 9
	var wg sync.WaitGroup
	results := make([][]contextrank.Result, waiters+1)
	launch := func(i int) {
		defer wg.Done()
		r, epoch, _, err := c.do("k", func() ([]contextrank.Result, string, int64, error) {
			computes.Add(1)
			close(entered)
			<-gate
			return res("only"), "k", 42, nil
		})
		if epoch != 42 {
			t.Errorf("caller %d reported epoch %d, want the leader's 42", i, epoch)
		}
		if err != nil {
			t.Error(err)
		}
		results[i] = r
	}
	wg.Add(1)
	go launch(0)
	<-entered // leader is inside compute; everyone else must coalesce
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go launch(i)
	}
	// Wait until all waiters are registered on the flight before releasing.
	for c.coalesced.Load() != waiters {
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, r := range results {
		if len(r) != 1 || r[0].ID != "only" {
			t.Fatalf("caller %d got %v", i, r)
		}
	}
	st := c.stats()
	if st.Coalesced != waiters || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRankCacheStoresOnlyUnderObservedKey(t *testing.T) {
	// A leader that observes a newer epoch/fingerprint files the result
	// only under the key it actually computed at. The requested key must
	// stay empty: fingerprints round-trip, so an entry under the stale
	// key would later serve a wrong-context result as a hit.
	c := newRankCache(8)
	if _, _, _, err := c.do("old", func() ([]contextrank.Result, string, int64, error) {
		return res("r"), "new", 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.get("old"); ok {
		t.Fatal("requested (stale) key was cached")
	}
	if _, ok := c.get("new"); !ok {
		t.Fatal("observed key not cached")
	}
}

func TestRankCacheErrorsNotCached(t *testing.T) {
	c := newRankCache(8)
	calls := 0
	fail := func() ([]contextrank.Result, string, int64, error) {
		calls++
		return nil, "k", 0, errTest
	}
	if _, _, _, err := c.do("k", fail); err != errTest {
		t.Fatalf("err = %v", err)
	}
	if _, _, _, err := c.do("k", fail); err != errTest {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not cache)", calls)
	}
	if st := c.stats(); st.Size != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test error" }
