// Standing rank subscriptions: a client registers a rank request once
// (user + target or candidate list, plus the shared result-shaping
// options) and is pushed score deltas whenever a context apply, session
// drop, vocabulary write or rule change moves that user's scores —
// instead of polling /v1/rank after every sensor update.
//
// One evaluator goroutine per Server re-ranks the registered
// subscriptions after mutations. It is woken by a buffered poke channel
// (every mutator pokes on its way out; a poke during a pass stays queued,
// so the pass after it observes the newest state) and skips any
// subscription whose state key — (facade epoch, context epoch, the
// user's applied session fingerprint) — has not moved since its last
// evaluation, so a context apply for user A never pays a re-rank for
// user B. Evaluation goes through RankBatch: one facade read-lock hold
// and one compiled plan per pass — and after a context apply that plan
// is *refreshed* incrementally from the previous epoch's plan rather
// than recompiled (see planFor), which is what makes push re-ranking
// affordable at catalog scale.
//
// Events are pushed into a bounded per-subscription channel consumed by
// one SSE listener (GET /v1/subscriptions/{id}/events). When the
// listener is slow and the channel fills, events are dropped and the
// subscription is marked lagged; the stream then emits a fresh resync
// snapshot instead of an incomplete delta sequence, so a consumer that
// applies deltas in order is never silently wrong.
//
// Subscriptions are journaled (OpSubscribe/OpUnsubscribe) under the same
// discipline as sessions: the record is durable before the create/delete
// is acknowledged, it survives checkpoints (snapshots never contain
// subscription state), and boot-time replay re-registers it through the
// routed Subscribe path — standing queries outlive crashes.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/journal"
)

// SubscriptionSpec is the standing rank request a subscription
// re-evaluates after every relevant state change. Exactly one of Target
// (a DL concept expression) or Candidates (explicit ids, the §5
// query-integration shape) must be set.
type SubscriptionSpec struct {
	User       string
	Target     string
	Candidates []string
	Threshold  float64
	Limit      int
	TopK       int
}

// SubscriptionInfo is a subscription's observable state, shaped for the
// /v1/subscriptions endpoints.
type SubscriptionInfo struct {
	ID         string   `json:"id"`
	User       string   `json:"user"`
	Target     string   `json:"target,omitempty"`
	Candidates []string `json:"candidates,omitempty"`
	Threshold  float64  `json:"threshold,omitempty"`
	Limit      int      `json:"limit,omitempty"`
	TopK       int      `json:"top_k,omitempty"`
	// Seq is the last pushed event's sequence number; Events counts
	// events pushed since the subscription was created.
	Seq    uint64 `json:"seq"`
	Events int64  `json:"events"`
	// Attached reports whether an SSE consumer is currently connected.
	Attached bool `json:"attached"`
	// Shard is the shard currently holding the subscription (0 on an
	// unsharded server; filled by the coordinator).
	Shard int `json:"shard"`
}

// SubResult is one (id, score) pair in a snapshot or resync event.
type SubResult struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// SubChange is one score movement in a delta event. Prev is nil when the
// candidate newly entered the result set.
type SubChange struct {
	ID    string   `json:"id"`
	Score float64  `json:"score"`
	Prev  *float64 `json:"prev,omitempty"`
}

// SubEvent is one pushed subscription event. Type is "snapshot" (first
// event on a stream, and after Unsubscribe-free reconnects), "delta"
// (score movements since the previous event), "resync" (a fresh snapshot
// after the consumer lagged and deltas were dropped), "error" (the
// standing rank failed — e.g. its target refers to removed vocabulary;
// the subscription stays registered and recovers with the vocabulary),
// or "unsubscribed" (terminal).
type SubEvent struct {
	Type string `json:"type"`
	ID   string `json:"id"`
	Seq  uint64 `json:"seq"`
	// Epoch is the facade epoch the event's scores were computed at.
	Epoch   int64       `json:"epoch,omitempty"`
	Results []SubResult `json:"results,omitempty"` // snapshot/resync: the full ranking
	Changes []SubChange `json:"changes,omitempty"` // delta: moved or entered
	Removed []string    `json:"removed,omitempty"` // delta: left the result set
	Error   string      `json:"error,omitempty"`
}

// ErrSubscriptionBusy marks a second concurrent stream attach: a
// subscription's delta chain has exactly one consumer (two would each
// see half the deltas). The handler maps it to 409 Conflict.
var ErrSubscriptionBusy = errors.New("serve: subscription stream already attached")

// subEventBuffer bounds each subscription's event channel. A consumer
// further behind than this has missed the delta chain anyway; it gets a
// resync snapshot instead of a blocked evaluator.
const subEventBuffer = 64

// Subscription is one standing rank registration. All mutable state is
// guarded by mu; the evaluator and the SSE stream are the only writers.
type Subscription struct {
	id   string
	spec SubscriptionSpec

	mu       sync.Mutex
	closed   bool
	attached bool
	lagged   bool
	seq      uint64
	pushes   int64
	// scores/last are the most recently pushed ranking: the diff baseline
	// for the next evaluation and the source of snapshot/resync events.
	scores map[string]float64
	last   []SubResult
	// evaluated + the state key of the last evaluation; see evalSub.
	evaluated bool
	lastEpoch int64
	lastCtx   int64
	lastFP    string
	lastErr   string
	events    chan SubEvent
}

func newSubscription(id string, spec SubscriptionSpec) *Subscription {
	return &Subscription{
		id:     id,
		spec:   spec,
		scores: make(map[string]float64),
		events: make(chan SubEvent, subEventBuffer),
	}
}

// info snapshots the subscription under its lock.
func (sub *Subscription) info() SubscriptionInfo {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return SubscriptionInfo{
		ID:         sub.id,
		User:       sub.spec.User,
		Target:     sub.spec.Target,
		Candidates: sub.spec.Candidates,
		Threshold:  sub.spec.Threshold,
		Limit:      sub.spec.Limit,
		TopK:       sub.spec.TopK,
		Seq:        sub.seq,
		Events:     sub.pushes,
		Attached:   sub.attached,
	}
}

// push delivers ev without ever blocking the evaluator: a full channel
// marks the subscription lagged (the stream resyncs) and drops the event.
// Caller holds sub.mu and has checked !sub.closed.
func (sub *Subscription) push(ev SubEvent) bool {
	select {
	case sub.events <- ev:
		sub.pushes++
		return true
	default:
		sub.lagged = true
		return false
	}
}

// snapshotEventLocked builds a snapshot/resync event from the last
// evaluated ranking. Caller holds sub.mu.
func (sub *Subscription) snapshotEventLocked(typ string, epoch int64) SubEvent {
	results := make([]SubResult, len(sub.last))
	copy(results, sub.last)
	return SubEvent{Type: typ, ID: sub.id, Seq: sub.seq, Epoch: epoch, Results: results}
}

// close marks the subscription dead and closes its event channel exactly
// once. The evaluator checks closed under the same lock before pushing,
// so a send on the closed channel cannot race.
func (sub *Subscription) close() {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.events)
}

// SubscriptionStats is the subscription block of Stats.
type SubscriptionStats struct {
	// Active is the number of registered subscriptions.
	Active int64 `json:"active"`
	// Events counts pushed events (snapshots + deltas + errors).
	Events int64 `json:"events"`
	// Evals counts subscription re-rank evaluations; Skipped counts
	// evaluator passes over a subscription whose state key was unchanged
	// (the per-user fast path working as intended).
	Evals   int64 `json:"evals"`
	Skipped int64 `json:"skipped"`
	// Lagged counts events dropped because the consumer was behind; each
	// drop run ends in one resync snapshot.
	Lagged int64 `json:"lagged"`
}

// Merge sums two stat blocks (coordinator aggregation).
func (a SubscriptionStats) Merge(b SubscriptionStats) SubscriptionStats {
	return SubscriptionStats{
		Active:  a.Active + b.Active,
		Events:  a.Events + b.Events,
		Evals:   a.Evals + b.Evals,
		Skipped: a.Skipped + b.Skipped,
		Lagged:  a.Lagged + b.Lagged,
	}
}

// subRegistry is a server's standing-subscription set plus the evaluator
// wake-up machinery.
type subRegistry struct {
	mu   sync.Mutex
	subs map[string]*Subscription

	// count mirrors len(subs) so the poke fast path (every mutation) is
	// one atomic load when no subscriptions exist.
	count atomic.Int64
	// poke wakes the evaluator; buffered so a poke during a pass queues
	// exactly one follow-up pass.
	poke chan struct{}
	once sync.Once

	evals   atomic.Int64
	skipped atomic.Int64
	events  atomic.Int64
	lagged  atomic.Int64
}

func newSubRegistry() *subRegistry {
	return &subRegistry{subs: make(map[string]*Subscription), poke: make(chan struct{}, 1)}
}

// snapshot lists the registered subscriptions (order unspecified).
func (r *subRegistry) snapshot() []*Subscription {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Subscription, 0, len(r.subs))
	for _, sub := range r.subs {
		out = append(out, sub)
	}
	return out
}

func (r *subRegistry) stats() SubscriptionStats {
	return SubscriptionStats{
		Active:  r.count.Load(),
		Events:  r.events.Load(),
		Evals:   r.evals.Load(),
		Skipped: r.skipped.Load(),
		Lagged:  r.lagged.Load(),
	}
}

// newSubID mints a subscription id: random, unique across restarts (ids
// live in the WAL, so a counter would collide after recovery).
func newSubID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: crypto/rand unavailable: %v", err))
	}
	return "sub-" + hex.EncodeToString(b[:])
}

// validateSubscription checks a spec the way the shared decode path
// checks a rank request.
func validateSubscription(spec SubscriptionSpec) error {
	if spec.User == "" {
		return fmt.Errorf("serve: subscription needs a user")
	}
	if spec.Target == "" && len(spec.Candidates) == 0 {
		return fmt.Errorf("serve: subscription needs a target or a candidate list")
	}
	if spec.Target != "" && len(spec.Candidates) > 0 {
		return fmt.Errorf("serve: subscription takes a target or a candidate list, not both")
	}
	if spec.TopK < 0 {
		return fmt.Errorf("serve: top_k must be positive (got %d)", spec.TopK)
	}
	return nil
}

// Subscribe registers (or replaces) a standing rank subscription. An
// empty id mints one. The registration is journaled before it is
// acknowledged — like a session Set, a subscription that returns without
// error survives a crash — and the first evaluation is kicked off
// immediately, so an SSE attach right after the create normally finds
// its snapshot already queued.
func (s *Server) Subscribe(id string, spec SubscriptionSpec) (SubscriptionInfo, error) {
	if err := validateSubscription(spec); err != nil {
		return SubscriptionInfo{}, err
	}
	if err := s.health.checkWritable(); err != nil {
		return SubscriptionInfo{}, err
	}
	if id == "" {
		id = newSubID()
	}
	sub := newSubscription(id, spec)
	s.subs.mu.Lock()
	old := s.subs.subs[id]
	s.subs.subs[id] = sub
	s.subs.count.Store(int64(len(s.subs.subs)))
	s.subs.mu.Unlock()
	if old != nil {
		// Replace semantics (what journal replay of a re-subscribe does):
		// the old stream ends, the new registration takes the id.
		old.close()
	}
	s.ensureEvaluator()

	var rec journal.Record
	if j := s.sessions.Journal(); j != nil {
		rec = journal.Record{
			Op:           journal.OpSubscribe,
			SubID:        id,
			User:         spec.User,
			Subscription: ToJournalSubscription(spec),
			Epoch:        s.facade.Epoch(),
		}
		if err := j.Append(rec); err != nil {
			// Applied in memory, not durable — same contract as a session
			// Set: the caller saw no acknowledgement, the record joins the
			// unjournaled tail, and ProbeDisk re-journals it so WAL and
			// memory re-agree when the disk comes back.
			s.health.noteJournalError(rec, err)
			s.pokeSubs()
			return SubscriptionInfo{}, fmt.Errorf("serve: subscription %q applied but not journaled: %w", id, notJournaled{err})
		}
	}
	s.pokeSubs()
	return sub.info(), nil
}

// Unsubscribe removes a subscription, ending its event stream. Removing
// an unknown id is a no-op in memory but is still journaled — exactly
// like dropping an absent session: a previous unsubscribe may have been
// applied and then failed its journal write, and without the record the
// WAL would hold a live Subscribe whose replay resurrects it.
func (s *Server) Unsubscribe(id string) (bool, error) {
	if err := s.health.checkWritable(); err != nil {
		return false, err
	}
	s.subs.mu.Lock()
	sub, found := s.subs.subs[id]
	if found {
		delete(s.subs.subs, id)
		s.subs.count.Store(int64(len(s.subs.subs)))
	}
	s.subs.mu.Unlock()
	if found {
		sub.close()
	}
	if j := s.sessions.Journal(); j != nil {
		rec := journal.Record{Op: journal.OpUnsubscribe, SubID: id, Epoch: s.facade.Epoch()}
		if found {
			rec.User = sub.spec.User
		}
		if err := j.Append(rec); err != nil {
			s.health.noteJournalError(rec, err)
			return found, fmt.Errorf("serve: unsubscribe of %q applied but not journaled: %w", id, notJournaled{err})
		}
	}
	return found, nil
}

// Subscriptions lists the registered subscriptions.
func (s *Server) Subscriptions() []SubscriptionInfo {
	subs := s.subs.snapshot()
	out := make([]SubscriptionInfo, 0, len(subs))
	for _, sub := range subs {
		out = append(out, sub.info())
	}
	return out
}

// SubStream is one SSE consumer's view of a subscription: the initial
// snapshot plus the live event channel. Close detaches (the subscription
// itself stays registered).
type SubStream struct {
	sub      *Subscription
	reg      *subRegistry
	snapshot SubEvent
}

// ID returns the subscription id.
func (st *SubStream) ID() string { return st.sub.id }

// User returns the subscription's owner.
func (st *SubStream) User() string { return st.sub.spec.User }

// Snapshot is the stream's opening event: the full current ranking (or
// the standing error, when the last evaluation failed).
func (st *SubStream) Snapshot() SubEvent { return st.snapshot }

// Events is the live event channel. It is closed when the subscription
// is unsubscribed (or replaced).
func (st *SubStream) Events() <-chan SubEvent { return st.sub.events }

// TakeLagged reports — and clears — the lagged flag. A true return means
// deltas were dropped since the last received event; the consumer must
// be resynced with a fresh snapshot (see Resync).
func (st *SubStream) TakeLagged() bool {
	st.sub.mu.Lock()
	defer st.sub.mu.Unlock()
	lagged := st.sub.lagged
	st.sub.lagged = false
	if lagged {
		st.reg.lagged.Add(1)
	}
	return lagged
}

// Resync builds a fresh snapshot event from the last evaluated ranking.
func (st *SubStream) Resync() SubEvent {
	st.sub.mu.Lock()
	defer st.sub.mu.Unlock()
	return st.sub.snapshotEventLocked("resync", st.sub.lastEpoch)
}

// Close detaches the consumer.
func (st *SubStream) Close() {
	st.sub.mu.Lock()
	st.sub.attached = false
	st.sub.mu.Unlock()
}

// SubscriptionStream attaches the (single) SSE consumer to a
// subscription, returning its opening snapshot and event channel. A
// second concurrent attach is refused — two consumers of one delta
// stream would each see half the deltas.
func (s *Server) SubscriptionStream(id string) (*SubStream, error) {
	s.subs.mu.Lock()
	sub, ok := s.subs.subs[id]
	s.subs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: no subscription %q", id)
	}
	// Make sure at least one evaluation ran so the opening snapshot is
	// the real ranking, not an empty placeholder.
	s.evalSub(sub)
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return nil, fmt.Errorf("serve: no subscription %q", id)
	}
	if sub.attached {
		return nil, fmt.Errorf("%w: %q", ErrSubscriptionBusy, id)
	}
	sub.attached = true
	// Drain queued events: the opening snapshot supersedes them, and a
	// reconnecting consumer must not replay deltas older than it.
	for {
		select {
		case <-sub.events:
			continue
		default:
		}
		break
	}
	sub.lagged = false
	snap := sub.snapshotEventLocked("snapshot", sub.lastEpoch)
	if sub.lastErr != "" {
		snap = SubEvent{Type: "error", ID: sub.id, Seq: sub.seq, Error: sub.lastErr}
	}
	return &SubStream{sub: sub, reg: s.subs, snapshot: snap}, nil
}

// ensureEvaluator starts the evaluator goroutine once. It parks on the
// poke channel for the server's lifetime (a Server has no Close; one
// parked goroutine costs nothing).
func (s *Server) ensureEvaluator() {
	s.subs.once.Do(func() { go s.subEvalLoop() })
}

// pokeSubs wakes the evaluator after a mutation. Non-blocking and O(1);
// with no subscriptions registered it is one atomic load.
func (s *Server) pokeSubs() {
	if s.subs.count.Load() == 0 {
		return
	}
	select {
	case s.subs.poke <- struct{}{}:
	default:
	}
}

// subEvalLoop is the evaluator: one pass over the registry per wake-up.
func (s *Server) subEvalLoop() {
	for range s.subs.poke {
		for _, sub := range s.subs.snapshot() {
			s.evalSub(sub)
		}
	}
}

// evalSub re-ranks one subscription if its state key moved, and pushes a
// snapshot (first evaluation), delta (scores moved) or error event. The
// key — (facade epoch, context epoch, applied session fingerprint) — is
// read *before* ranking: if a mutation lands mid-rank, the stored key is
// stale against it, so that mutation's own poke re-evaluates and the
// subscriber can never miss a change (at worst it sees an empty diff).
func (s *Server) evalSub(sub *Subscription) {
	epoch := s.facade.Epoch()
	ctxE := s.sessions.ContextEpoch()
	fp := s.sessions.AppliedFingerprint(sub.spec.User)

	sub.mu.Lock()
	if sub.closed || (sub.evaluated && sub.lastEpoch == epoch && sub.lastCtx == ctxE && sub.lastFP == fp) {
		sub.mu.Unlock()
		s.subs.skipped.Add(1)
		return
	}
	sub.mu.Unlock()
	s.subs.evals.Add(1)

	item := RankItem{
		Target:     sub.spec.Target,
		Candidates: sub.spec.Candidates,
		Threshold:  sub.spec.Threshold,
		Limit:      sub.spec.Limit,
		TopK:       sub.spec.TopK,
	}
	res, meta, err := s.RankBatch(sub.spec.User, "", []RankItem{item})
	if err == nil && len(res) == 1 {
		err = res[0].Err
	}

	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	sub.lastEpoch, sub.lastCtx, sub.lastFP = epoch, ctxE, fp
	first := !sub.evaluated
	sub.evaluated = true
	if err != nil {
		if sub.lastErr == err.Error() {
			return // the standing error is already on the stream
		}
		sub.lastErr = err.Error()
		sub.seq++
		if sub.push(SubEvent{Type: "error", ID: sub.id, Seq: sub.seq, Error: sub.lastErr}) {
			s.subs.events.Add(1)
		}
		return
	}
	recovered := sub.lastErr != ""
	sub.lastErr = ""

	results := make([]SubResult, len(res[0].Results))
	scores := make(map[string]float64, len(results))
	for i, r := range res[0].Results {
		results[i] = SubResult{ID: r.ID, Score: r.Score}
		scores[r.ID] = r.Score
	}
	var changes []SubChange
	var removed []string
	for _, r := range results {
		if prev, ok := sub.scores[r.ID]; !ok {
			changes = append(changes, SubChange{ID: r.ID, Score: r.Score})
		} else if prev != r.Score {
			p := prev
			changes = append(changes, SubChange{ID: r.ID, Score: r.Score, Prev: &p})
		}
	}
	for id := range sub.scores {
		if _, ok := scores[id]; !ok {
			removed = append(removed, id)
		}
	}
	sub.scores = scores
	sub.last = results

	switch {
	case first || recovered:
		sub.seq++
		if sub.push(sub.snapshotEventLocked("snapshot", meta.Epoch)) {
			s.subs.events.Add(1)
		}
	case len(changes)+len(removed) > 0:
		sub.seq++
		if sub.push(SubEvent{
			Type: "delta", ID: sub.id, Seq: sub.seq, Epoch: meta.Epoch,
			Changes: changes, Removed: removed,
		}) {
			s.subs.events.Add(1)
		}
	}
}

// ToJournalSubscription converts a spec to the journal's wire shape.
func ToJournalSubscription(spec SubscriptionSpec) *journal.SubSpec {
	js := &journal.SubSpec{
		Target:     spec.Target,
		Candidates: spec.Candidates,
		TopK:       spec.TopK,
		Limit:      spec.Limit,
	}
	if spec.Threshold != 0 {
		t := spec.Threshold
		js.Threshold = &t
	}
	return js
}

// FromJournalSubscription is ToJournalSubscription's inverse, used by
// boot-time replay (the owner travels on Record.User).
func FromJournalSubscription(user string, js journal.SubSpec) SubscriptionSpec {
	spec := SubscriptionSpec{
		User:       user,
		Target:     js.Target,
		Candidates: js.Candidates,
		TopK:       js.TopK,
		Limit:      js.Limit,
	}
	if js.Threshold != nil {
		spec.Threshold = *js.Threshold
	}
	return spec
}

// subKeepAlive is the SSE comment interval that keeps idle streams from
// being reaped by intermediaries; exported for tests via the handler.
const subKeepAlive = 15 * time.Second
