package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	contextrank "repro"
)

// topkServer builds a small ranked catalog: five programs with graded
// genre probabilities so the full ranking has a strict, known order.
func topkServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := NewServer(contextrank.NewSystem(), Options{})
	ts := httptest.NewServer(NewHandler(srv))
	t.Cleanup(ts.Close)

	call(t, ts, "POST", "/v1/declare",
		`{"concepts":["TvProgram"],"roles":["hasGenre"]}`, http.StatusOK, nil)
	body := `{"concepts":[`
	for i := 0; i < 5; i++ {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf(`{"concept":"TvProgram","id":"p%d","prob":1}`, i)
	}
	body += `],"roles":[`
	for i := 0; i < 5; i++ {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf(`{"role":"hasGenre","src":"p%d","dst":"NEWS","prob":0.%d}`, i, 5+i)
	}
	body += `]}`
	call(t, ts, "POST", "/v1/assert", body, http.StatusOK, nil)
	call(t, ts, "POST", "/v1/rules", `{"rules":[
		"RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{NEWS} WITH 0.9"
	]}`, http.StatusOK, nil)
	call(t, ts, "PUT", "/v1/sessions/u/context",
		`{"measurements":[{"concept":"Weekend","prob":1}]}`, http.StatusOK, nil)
	return ts
}

// TestHTTPTopK: top_k over POST, GET and batch must return exactly the
// first k of the full ranking, and an explicit non-positive top_k must be
// a 400, not a silent full ranking.
func TestHTTPTopK(t *testing.T) {
	ts := topkServer(t)

	var full rankResponse
	call(t, ts, "POST", "/v1/rank", `{"user":"u","target":"TvProgram"}`,
		http.StatusOK, &full)
	if len(full.Results) != 5 || full.Results[0].ID != "p4" {
		t.Fatalf("full rank = %+v", full.Results)
	}

	var top rankResponse
	call(t, ts, "POST", "/v1/rank", `{"user":"u","target":"TvProgram","top_k":2}`,
		http.StatusOK, &top)
	if len(top.Results) != 2 {
		t.Fatalf("top_k=2 returned %d results", len(top.Results))
	}
	for i := range top.Results {
		if top.Results[i].ID != full.Results[i].ID || top.Results[i].Score != full.Results[i].Score {
			t.Fatalf("top_k result %d = %+v, want %+v", i, top.Results[i], full.Results[i])
		}
	}

	// top_k through the GET form, oversized k degrades to the full ranking.
	var viaGet rankResponse
	call(t, ts, "GET", "/v1/rank?user=u&target=TvProgram&top_k=1", "",
		http.StatusOK, &viaGet)
	if len(viaGet.Results) != 1 || viaGet.Results[0].ID != full.Results[0].ID {
		t.Fatalf("GET top_k=1 = %+v", viaGet.Results)
	}
	call(t, ts, "GET", "/v1/rank?user=u&target=TvProgram&top_k=99", "",
		http.StatusOK, &viaGet)
	if len(viaGet.Results) != 5 {
		t.Fatalf("GET top_k=99 returned %d results", len(viaGet.Results))
	}

	// Explicit zero or negative top_k is rejected; so is non-numeric.
	call(t, ts, "POST", "/v1/rank", `{"user":"u","target":"TvProgram","top_k":0}`,
		http.StatusBadRequest, nil)
	call(t, ts, "POST", "/v1/rank", `{"user":"u","target":"TvProgram","top_k":-3}`,
		http.StatusBadRequest, nil)
	call(t, ts, "GET", "/v1/rank?user=u&target=TvProgram&top_k=x", "",
		http.StatusBadRequest, nil)

	// Batch: per-item top_k, and a bad item names its index in the error.
	var batch rankBatchResponse
	call(t, ts, "POST", "/v1/rank/batch",
		`{"user":"u","items":[{"target":"TvProgram","top_k":3},{"target":"TvProgram"}]}`,
		http.StatusOK, &batch)
	if len(batch.Items) != 2 || len(batch.Items[0].Results) != 3 || len(batch.Items[1].Results) != 5 {
		t.Fatalf("batch top_k = %+v", batch)
	}
	call(t, ts, "POST", "/v1/rank/batch",
		`{"user":"u","items":[{"target":"TvProgram","top_k":0}]}`,
		http.StatusBadRequest, nil)
}
