package serve

import (
	"testing"
	"time"
)

// TestTokenBucketRefill pins the per-user budget arithmetic: burst spent,
// refused at zero, refilled by the advancing clock at exactly PerUserRate
// tokens per second, capped at burst.
func TestTokenBucketRefill(t *testing.T) {
	a := NewAdmission(AdmissionOptions{PerUserRate: 10, PerUserBurst: 3})
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if ok, _ := a.AllowUser("u"); !ok {
			t.Fatalf("request %d refused inside burst", i)
		}
	}
	ok, retry := a.AllowUser("u")
	if ok {
		t.Fatal("4th request admitted with an empty bucket")
	}
	// Empty bucket at 10 req/s: a whole token is 100ms away.
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 100ms]", retry)
	}

	// 100ms refills exactly one token.
	now = now.Add(100 * time.Millisecond)
	if ok, _ := a.AllowUser("u"); !ok {
		t.Fatal("refused after a full token refilled")
	}
	if ok, _ := a.AllowUser("u"); ok {
		t.Fatal("admitted twice off one refilled token")
	}

	// A long idle stretch caps at burst, not rate*elapsed.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := a.AllowUser("u"); !ok {
			t.Fatalf("request %d refused after refill to burst", i)
		}
	}
	if ok, _ := a.AllowUser("u"); ok {
		t.Fatal("burst cap not applied after idle")
	}
	if st := a.Stats(); st.ShedUser != 3 {
		t.Fatalf("ShedUser = %d, want 3", st.ShedUser)
	}
}

// TestPerUserIsolation: one abusive user exhausting its bucket must not
// consume any other user's budget.
func TestPerUserIsolation(t *testing.T) {
	a := NewAdmission(AdmissionOptions{PerUserRate: 5, PerUserBurst: 2})
	now := time.Unix(2000, 0)
	a.now = func() time.Time { return now }

	for i := 0; i < 50; i++ {
		a.AllowUser("abuser") // mostly refused; keeps hammering
	}
	for i := 0; i < 2; i++ {
		if ok, _ := a.AllowUser("victim"); !ok {
			t.Fatalf("victim refused (request %d) while abuser floods", i)
		}
	}
	if ok, _ := a.AllowUser("abuser"); ok {
		t.Fatal("abuser admitted with an empty bucket")
	}
}

// TestAcquireQueueFull pins the gate: MaxInFlight requests run, MaxQueue
// wait, and the next one is shed immediately with a retry hint.
func TestAcquireQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInFlight: 2, MaxQueue: 1})

	rel1, ok, _ := a.Acquire()
	rel2, ok2, _ := a.Acquire()
	if !ok || !ok2 {
		t.Fatal("gate refused below MaxInFlight")
	}

	// Third request queues (gate full, queue has room).
	queued := make(chan func(), 1)
	go func() {
		rel, ok, _ := a.Acquire()
		if !ok {
			t.Error("queued request was shed")
		}
		queued <- rel
	}()
	waitFor(t, func() bool { return a.Stats().Queued == 1 })

	// Fourth request: queue full — shed, with a positive Retry-After.
	_, ok, retry := a.Acquire()
	if ok {
		t.Fatal("request admitted past a full queue")
	}
	if retry <= 0 {
		t.Fatalf("retryAfter = %v, want > 0", retry)
	}
	if st := a.Stats(); st.ShedQueue != 1 {
		t.Fatalf("ShedQueue = %d, want 1", st.ShedQueue)
	}

	// Releasing an in-flight slot admits the queued request.
	rel1()
	rel3 := <-queued
	rel3()
	rel2()
	waitFor(t, func() bool {
		st := a.Stats()
		return st.InFlight == 0 && st.Queued == 0
	})
	if st := a.Stats(); st.Admitted != 3 {
		t.Fatalf("Admitted = %d, want 3", st.Admitted)
	}
}

// TestAdmissionDisabled: a nil controller admits everything.
func TestAdmissionDisabled(t *testing.T) {
	if NewAdmission(AdmissionOptions{}) != nil {
		t.Fatal("zero options should build a nil (disabled) controller")
	}
	var a *Admission
	rel, ok, _ := a.Acquire()
	if !ok {
		t.Fatal("nil admission refused a request")
	}
	rel()
	if ok, _ := a.AllowUser("anyone"); !ok {
		t.Fatal("nil admission rate-limited a user")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
