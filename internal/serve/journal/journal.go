// Package journal is the durable write-ahead log of the serving layer: an
// append-only, CRC-framed record stream covering every mutation the
// serving layer acknowledges — session applies and drops (OpSet/OpDrop),
// standing rank subscriptions (OpSubscribe/OpUnsubscribe, retired by their
// in-log successor exactly like session records) and the vocabulary/data
// writes (OpDeclare, OpAssert, OpAddRules, OpRemoveRule, OpExec). Every
// acknowledged mutation is fsynced to the
// journal before the acknowledgement, inside the same critical section
// that applied it, so journal order equals apply order and boot-time
// replay reconstructs exactly the acknowledged state by re-applying each
// record through the ordinary apply path — ctx_* events and context
// fingerprints are rebuilt, not restored, and therefore cannot drift from
// what a fresh apply would produce.
//
// Session records and vocabulary records retire differently. A session
// Set is superseded by the user's next Set (or Drop), so the journal can
// drop the old record on its own (see Compaction). A vocabulary record
// has no in-log successor: it is dead only once a *checkpoint* — a full
// snapshot of the durable state — covers it. Checkpoint(seq) tells the
// journal that all vocabulary records with Seq <= seq are now persisted
// elsewhere; they are dropped from the retained set and the file is
// rewritten, so WAL size returns to ~live-session size after every
// checkpoint. Records carrying Preserved (re-journaled records whose
// apply failed during recovery) and records with an unknown Op are exempt
// from checkpoint truncation: the journal is their only copy.
//
// # File format
//
// A journal file is an 8-byte magic header followed by frames:
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]
//
// The payload is the JSON encoding of Record. The CRC covers only the
// payload; the length field is additionally sanity-bounded (maxRecordSize)
// so a corrupt length cannot force a huge allocation. Replay stops at the
// first frame that is short, over-long or CRC-mismatched: everything
// before it is recovered, the tail is reported as torn. A journal opened
// for appending truncates such a torn tail away first, so a crash mid
// write never poisons later appends.
//
// # Group commit
//
// All appends go through one writer goroutine. Submit enqueues the
// marshaled record and returns a wait function; the writer drains every
// queued record, writes them in one buffered pass and calls fsync once,
// then releases all their waiters. Concurrent session applies on one shard
// therefore share a single fsync (the dominant cost), and the rank path —
// which never journals — is untouched.
//
// # Compaction
//
// The journal tracks, per user, the frame of the latest live Set record
// (a Drop removes the user), plus every vocabulary record not yet covered
// by a checkpoint. Once the file holds more dead records (superseded
// Sets, Drops, Sets of since-dropped users, checkpointed vocabulary) than
// retained ones — and at least Options.CompactMinRecords in total — the
// writer rewrites the file from the retained set alone, in original
// sequence order, to a temporary file that is fsynced and renamed over
// the journal. A Checkpoint forces this rewrite immediately. Under
// arbitrary churn with periodic checkpoints the file is therefore bounded
// by the live session population plus one checkpoint interval's
// vocabulary writes, and replay cost stays proportional to that state.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// SyncDir best-effort fsyncs a directory, persisting renames and file
// creations within it (the metadata half of crash durability: without
// it, a power cut can undo a rename whose *file data* was fsynced).
// Errors are ignored — some filesystems/platforms reject directory
// fsync, and the fallback behavior (metadata flushed by the next
// journal-wide sync) degrades gracefully.
func SyncDir(dir string) {
	_ = OSFS{}.SyncDir(dir)
}

// WriteFileSync writes data to path with an fsync before close — the
// durable sibling of os.WriteFile, for manifest files whose content must
// survive the rename that publishes them.
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	return WriteFileSyncFS(OSFS{}, path, data, perm)
}

// magic identifies a journal file (and its framing version). Bump the
// trailing digit on incompatible frame changes.
var magic = []byte("CARWAL1\n")

// maxRecordSize bounds one frame's payload. Session measurement lists are
// small; the bound exists so a corrupt length field makes replay stop at a
// torn tail instead of attempting a multi-gigabyte allocation.
const maxRecordSize = 16 << 20

// frameOverhead is the per-record framing cost: length + CRC.
const frameOverhead = 8

// castagnoli is the CRC-32C table (the iSCSI polynomial, hardware
// accelerated on amd64/arm64 — the usual WAL checksum choice).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is the journaled operation.
type Op uint8

const (
	// OpSet replaces the user's session measurements.
	OpSet Op = 1
	// OpDrop ends the user's session.
	OpDrop Op = 2
	// OpDeclare adds concepts, roles and/or subsumption axioms.
	OpDeclare Op = 3
	// OpAssert adds concept/role assertions (probabilistic facts).
	OpAssert Op = 4
	// OpAddRules adds preference rules (by source text).
	OpAddRules Op = 5
	// OpRemoveRule removes one preference rule by name.
	OpRemoveRule Op = 6
	// OpExec runs a raw SQL DML/DDL statement against the store.
	OpExec Op = 7
	// OpSubscribe registers (or replaces) a standing rank subscription.
	OpSubscribe Op = 8
	// OpUnsubscribe removes a standing rank subscription by id.
	OpUnsubscribe Op = 9
)

// IsVocab reports whether the op mutates durable vocabulary/data state.
// Session and subscription ops are not vocabulary: they are superseded by
// later records for the same key, so the journal retires them on its own.
// Vocabulary records are retired by checkpoints, not by later records. The
// range is bounded explicitly — ops added after OpExec (subscriptions) must
// opt in here, not inherit vocab semantics by position.
func (op Op) IsVocab() bool { return op >= OpDeclare && op <= OpExec }

// IsSubscription reports whether the op maintains the standing-subscription
// set (OpSubscribe/OpUnsubscribe). Like session ops, these are routed per
// user by the shard coordinator and are retired by their in-log successor.
func (op Op) IsSubscription() bool { return op == OpSubscribe || op == OpUnsubscribe }

// Measurement is the journal's own wire shape for one session measurement.
// It mirrors situation.Measurement but carries explicit JSON tags so the
// on-disk format is stable against field renames in the engine.
type Measurement struct {
	Concept    string  `json:"c"`
	Individual string  `json:"i,omitempty"`
	Prob       float64 `json:"p"`
	Exclusive  string  `json:"x,omitempty"`
	Source     string  `json:"s,omitempty"`
}

// SubDecl is one subsumption axiom (Sub ⊑ Super) in a declare record.
type SubDecl struct {
	Sub   string `json:"sub"`
	Super string `json:"super"`
}

// ConceptAssert is one concept membership assertion in an assert record.
type ConceptAssert struct {
	Concept string  `json:"c"`
	ID      string  `json:"id"`
	Prob    float64 `json:"p"`
}

// RoleAssert is one role (binary relation) assertion in an assert record.
type RoleAssert struct {
	Role string  `json:"r"`
	Src  string  `json:"src"`
	Dst  string  `json:"dst"`
	Prob float64 `json:"p"`
}

// SubSpec is the journaled shape of one standing rank subscription: the
// rank request it re-evaluates on every context change. Target is DL
// source text (re-parsed on replay through the ordinary parse path, like
// rule sources).
type SubSpec struct {
	Target     string   `json:"target"`
	Candidates []string `json:"cands,omitempty"`
	TopK       int      `json:"top_k,omitempty"`
	Limit      int      `json:"limit,omitempty"`
	Threshold  *float64 `json:"threshold,omitempty"`
}

// Record is one journaled operation. Seq is assigned by the journal at
// submit time and increases monotonically within a file; compaction
// preserves the original Seq values (and their order), so a replayed
// record's Seq always reflects its original apply order. Which payload
// fields are meaningful depends on Op; unused fields are omitted from the
// wire encoding.
type Record struct {
	Op  Op     `json:"op"`
	Seq uint64 `json:"seq"`
	// BID tags a broadcast vocabulary write with a coordinator-wide id.
	// Every shard journals the same record with the same BID, so recovery
	// — which replays every shard's WAL through the broadcast apply path —
	// can apply each broadcast write exactly once. Zero means untagged
	// (unsharded server, or legacy records).
	BID uint64 `json:"bid,omitempty"`
	// User is the session owner (OpSet/OpDrop only).
	User         string        `json:"user,omitempty"`
	Measurements []Measurement `json:"ms,omitempty"`
	// Fingerprint is the context fingerprint the serving layer computed
	// for this Set — informational: replay recomputes it through the
	// ordinary apply path and can cross-check against this value.
	Fingerprint string `json:"fp,omitempty"`
	// Epoch is the facade epoch at apply time (informational).
	Epoch int64 `json:"epoch,omitempty"`
	// Concepts/Roles/Subs carry an OpDeclare payload.
	Concepts []string  `json:"concepts,omitempty"`
	Roles    []string  `json:"roles,omitempty"`
	Subs     []SubDecl `json:"subs,omitempty"`
	// ConceptAsserts/RoleAsserts carry an OpAssert payload.
	ConceptAsserts []ConceptAssert `json:"cas,omitempty"`
	RoleAsserts    []RoleAssert    `json:"ras,omitempty"`
	// Rules carries OpAddRules rule source texts.
	Rules []string `json:"rules,omitempty"`
	// Rule is the OpRemoveRule rule name.
	Rule string `json:"rule,omitempty"`
	// Stmt is the OpExec SQL statement.
	Stmt string `json:"stmt,omitempty"`
	// SubID identifies a standing subscription (OpSubscribe/OpUnsubscribe).
	// User carries the subscription owner on both ops, so routed replay can
	// shard subscription records exactly like session records.
	SubID string `json:"sid,omitempty"`
	// Subscription is the OpSubscribe payload.
	Subscription *SubSpec `json:"subn,omitempty"`
	// Preserved marks a record re-journaled by recovery after its apply
	// failed (schema drift, reshard edge cases). Preserved records are
	// exempt from checkpoint truncation — the snapshot does not contain
	// their effect, so the journal is their only copy.
	Preserved bool `json:"preserved,omitempty"`
}

// Options tunes a journal.
type Options struct {
	// NoSync disables the per-batch fsync. Appends are then only as
	// durable as the OS page cache — useful for benchmarks and for tests
	// of the framing/compaction machinery, not for production. SetNoSync
	// flips it at runtime; Sync forces an fsync barrier regardless.
	NoSync bool
	// CompactMinRecords is the minimum total record count before
	// compaction triggers (0 means DefaultCompactMinRecords). Compaction
	// then runs whenever dead records outnumber live ones.
	CompactMinRecords int
	// FS is the filesystem the journal opens, writes and renames through
	// (nil means the real filesystem). Tests and the fault-injection
	// layer substitute one that fails on command.
	FS FS
}

// DefaultCompactMinRecords is the compaction floor: below this many total
// records a rewrite would save less than it costs.
const DefaultCompactMinRecords = 512

// BatchSizeBuckets are the group-commit size histogram bounds (records
// per fsync batch, le-inclusive). The distribution is the direct read on
// group-commit effectiveness: all mass at 1 means every append pays its
// own fsync; mass in the higher buckets means concurrent session applies
// are sharing syncs as designed.
var batchSizeBounds = [...]int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// BatchSizeBuckets is the bounds slice callers (the metrics exporter)
// read; it aliases the fixed backing array.
var BatchSizeBuckets = batchSizeBounds[:]

// Stats is a journal's observable state, shaped for /v1/stats.
type Stats struct {
	// Appends counts acknowledged records since open.
	Appends int64 `json:"appends"`
	// Batches counts group commits; Appends/Batches is the achieved
	// group-commit factor.
	Batches int64 `json:"batches"`
	// Fsyncs counts file syncs (one per batch unless NoSync).
	Fsyncs int64 `json:"fsyncs"`
	// Compactions counts live-record rewrites of the file.
	Compactions int64 `json:"compactions"`
	// CompactFailures counts rewrite attempts that errored (e.g. ENOSPC
	// on the temp file). The journal keeps appending and retries after
	// the next batch, but a growing value here with Compactions flat
	// means the file is NOT being bounded — surface it, don't guess.
	CompactFailures int64 `json:"compact_failures"`
	// LiveRecords is the current number of users with a live Set record.
	LiveRecords int `json:"live_records"`
	// SubRecords is the current number of standing subscriptions with a
	// live Subscribe record (retired by Unsubscribe, like Sets by Drops).
	SubRecords int `json:"sub_records"`
	// VocabRecords is the current number of retained vocabulary records
	// (declare/assert/rules/exec not yet covered by a checkpoint, plus
	// checkpoint-exempt preserved/unknown records).
	VocabRecords int `json:"vocab_records"`
	// VocabBytes is the framed size of the retained vocabulary records —
	// the "WAL bytes since last checkpoint" gauge. Background checkpoints
	// drive it back to ~0; unbounded growth means checkpointing is off or
	// failing.
	VocabBytes int64 `json:"vocab_bytes"`
	// CheckpointSeq is the highest sequence number covered by a
	// checkpoint this incarnation (0 before the first checkpoint).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Degraded reports a sticky writer error: every append fails until
	// ResetAfter re-arms the journal (or the process restarts). The
	// serving layer maps it to read-only degraded mode.
	Degraded bool `json:"degraded,omitempty"`
	// Resets counts successful ResetAfter re-arms — degraded→healthy
	// transitions survived without a restart.
	Resets int64 `json:"resets,omitempty"`
	// TotalRecords is the number of records in the file (live + dead).
	TotalRecords int `json:"total_records"`
	// Bytes is the current file size.
	Bytes int64 `json:"bytes"`
	// BatchSizes counts group commits per BatchSizeBuckets bucket (raw,
	// not cumulative; the last slot counts batches above the final
	// bound). sum(BatchSizes) == Batches and the record-weighted total is
	// Appends.
	BatchSizes []int64 `json:"batch_sizes,omitempty"`
}

// Merge folds another journal's stats into a combined view — the shard
// coordinator aggregates per-shard journals with it.
func (s Stats) Merge(o Stats) Stats {
	merged := Stats{
		Appends:         s.Appends + o.Appends,
		Batches:         s.Batches + o.Batches,
		Fsyncs:          s.Fsyncs + o.Fsyncs,
		Compactions:     s.Compactions + o.Compactions,
		CompactFailures: s.CompactFailures + o.CompactFailures,
		LiveRecords:     s.LiveRecords + o.LiveRecords,
		SubRecords:      s.SubRecords + o.SubRecords,
		VocabRecords:    s.VocabRecords + o.VocabRecords,
		VocabBytes:      s.VocabBytes + o.VocabBytes,
		CheckpointSeq:   max(s.CheckpointSeq, o.CheckpointSeq),
		Degraded:        s.Degraded || o.Degraded,
		Resets:          s.Resets + o.Resets,
		TotalRecords:    s.TotalRecords + o.TotalRecords,
		Bytes:           s.Bytes + o.Bytes,
	}
	switch {
	case len(s.BatchSizes) == 0:
		merged.BatchSizes = append([]int64(nil), o.BatchSizes...)
	case len(o.BatchSizes) == 0:
		merged.BatchSizes = append([]int64(nil), s.BatchSizes...)
	default:
		merged.BatchSizes = append([]int64(nil), s.BatchSizes...)
		for i, v := range o.BatchSizes {
			merged.BatchSizes[i] += v
		}
	}
	return merged
}

// liveEntry is the latest Set frame for one user, kept for compaction.
type liveEntry struct {
	seq     uint64
	payload []byte // marshaled Record JSON (not framed)
}

// vocabEntry is one retained vocabulary record, kept until a checkpoint
// covers it. exempt entries (Preserved records, unknown ops) survive
// checkpoints too: the snapshot does not contain their effect.
type vocabEntry struct {
	seq     uint64
	payload []byte
	exempt  bool
}

// pending is one submitted record waiting for its group commit. A
// barrier carries no record: it just forces the batch that contains it
// to fsync (even under NoSync) and completes once everything submitted
// before it is durable. A checkpoint is a barrier that additionally
// retires vocabulary records with seq <= ckptSeq and forces a compaction
// rewrite once the batch is durable.
type pending struct {
	user       string
	subID      string
	op         Op
	seq        uint64
	payload    []byte
	preserved  bool
	barrier    bool
	checkpoint bool
	ckptSeq    uint64
	// reset asks the writer to clear a sticky error after probe (optional)
	// succeeds; processed before the batch's sticky-error check.
	reset bool
	probe func() error
	done  chan error
}

// Journal is an append-only session WAL over one file. All methods are
// safe for concurrent use; appends are totally ordered by Submit call
// order (callers that need apply order = journal order must serialize
// their apply+Submit sections, as serve.Sessions does under its mutex).
type Journal struct {
	path string
	opts Options
	fs   FS

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*pending
	closed bool
	werr   error // sticky writer error; fails all later submits
	seq    uint64

	// Writer-goroutine state (no lock needed beyond the handoff above).
	f      File
	size   int64
	total  int
	live   map[string]liveEntry
	subs   map[string]liveEntry // sub id -> latest Subscribe record
	vocab  []vocabEntry
	vbytes int64  // framed size of vocab entries (kept incrementally)
	ckpt   uint64 // highest checkpointed seq this incarnation

	exited chan struct{}

	// nosync mirrors Options.NoSync, atomically flippable at runtime
	// (SetNoSync): the writer goroutine reads it per batch, recovery
	// replay suspends fsync through it.
	nosync atomic.Bool

	// degraded mirrors werr != nil for lock-free Stats/Degraded reads.
	degraded atomic.Bool
	resets   atomic.Int64

	appends         atomic.Int64
	batches         atomic.Int64
	fsyncs          atomic.Int64
	compactions     atomic.Int64
	compactFailures atomic.Int64
	liveCount       atomic.Int64
	subCount        atomic.Int64
	vocabCount      atomic.Int64
	vocabBytes      atomic.Int64
	ckptSeq         atomic.Uint64
	totalCount      atomic.Int64
	bytes           atomic.Int64

	// batchHist counts group commits by record count, bucketed per
	// BatchSizeBuckets (last slot = overflow).
	batchHist [len(batchSizeBounds) + 1]atomic.Int64
}

// Open opens (creating if absent) the journal at path for appending. An
// existing file is scanned first: its records rebuild the live map and
// sequence counter, and a torn tail — a crash artifact — is truncated
// away. The scan's outcome is returned so callers can log what a previous
// incarnation left behind.
func Open(path string, opts Options) (*Journal, ReplayStats, error) {
	if opts.CompactMinRecords <= 0 {
		opts.CompactMinRecords = DefaultCompactMinRecords
	}
	j := &Journal{
		path: path,
		opts: opts,
		fs:   fsOrOS(opts.FS),
		live: make(map[string]liveEntry),
		subs: make(map[string]liveEntry),
	}
	j.nosync.Store(opts.NoSync)
	j.cond = sync.NewCond(&j.mu)
	j.exited = make(chan struct{})

	var rs ReplayStats
	f, err := j.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rs, fmt.Errorf("journal: open: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, rs, fmt.Errorf("journal: stat: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.Write(magic); err != nil {
			f.Close()
			return nil, rs, fmt.Errorf("journal: writing header: %w", err)
		}
		j.size = int64(len(magic))
	} else {
		// Recover the valid prefix of an existing file.
		valid, stats, err := scan(f, func(rec Record, payload []byte) {
			j.applyLive(rec, payload)
			if rec.Seq > j.seq {
				j.seq = rec.Seq
			}
			j.total++
		})
		if err != nil {
			f.Close()
			return nil, stats, err
		}
		rs = stats
		if valid < info.Size() {
			// Torn tail from a crash mid-append: cut it off so new frames
			// start at a clean boundary.
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, rs, fmt.Errorf("journal: truncating torn tail: %w", err)
			}
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			f.Close()
			return nil, rs, fmt.Errorf("journal: seek: %w", err)
		}
		if valid == 0 {
			// The magic header itself was torn (a crash during the very
			// first write left fewer than 8 bytes). Rewrite it — appending
			// frames at offset 0 without a header would make every later
			// Replay reject the whole file as bad magic, losing records
			// that were acknowledged as durable.
			if _, err := f.Write(magic); err != nil {
				f.Close()
				return nil, rs, fmt.Errorf("journal: rewriting header: %w", err)
			}
			valid = int64(len(magic))
		}
		j.size = valid
	}
	j.f = f
	j.publishCounters()
	go j.writer()
	return j, rs, nil
}

// applyLive folds one record into the retained-record state (writer
// goroutine / open scan only). Session ops maintain the per-user live
// map; everything else is a vocabulary record retained until a
// checkpoint covers it. Unknown ops (a newer version's records) are
// retained as checkpoint-exempt: this incarnation's snapshots cannot
// contain their effect.
func (j *Journal) applyLive(rec Record, payload []byte) {
	switch rec.Op {
	case OpSet:
		j.live[rec.User] = liveEntry{seq: rec.Seq, payload: payload}
	case OpDrop:
		delete(j.live, rec.User)
	case OpSubscribe:
		j.subs[rec.SubID] = liveEntry{seq: rec.Seq, payload: payload}
	case OpUnsubscribe:
		delete(j.subs, rec.SubID)
	case OpDeclare, OpAssert, OpAddRules, OpRemoveRule, OpExec:
		j.vocab = append(j.vocab, vocabEntry{seq: rec.Seq, payload: payload, exempt: rec.Preserved})
		j.vbytes += int64(frameOverhead + len(payload))
	default:
		j.vocab = append(j.vocab, vocabEntry{seq: rec.Seq, payload: payload, exempt: true})
		j.vbytes += int64(frameOverhead + len(payload))
	}
}

func (j *Journal) publishCounters() {
	j.liveCount.Store(int64(len(j.live)))
	j.subCount.Store(int64(len(j.subs)))
	j.totalCount.Store(int64(j.total))
	j.bytes.Store(j.size)
	j.vocabCount.Store(int64(len(j.vocab)))
	j.vocabBytes.Store(j.vbytes)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Stats snapshots the journal counters lock-free.
func (j *Journal) Stats() Stats {
	st := Stats{
		Appends:         j.appends.Load(),
		Batches:         j.batches.Load(),
		Fsyncs:          j.fsyncs.Load(),
		Compactions:     j.compactions.Load(),
		CompactFailures: j.compactFailures.Load(),
		LiveRecords:     int(j.liveCount.Load()),
		SubRecords:      int(j.subCount.Load()),
		VocabRecords:    int(j.vocabCount.Load()),
		VocabBytes:      j.vocabBytes.Load(),
		CheckpointSeq:   j.ckptSeq.Load(),
		Degraded:        j.degraded.Load(),
		Resets:          j.resets.Load(),
		TotalRecords:    int(j.totalCount.Load()),
		Bytes:           j.bytes.Load(),
	}
	st.BatchSizes = make([]int64, len(j.batchHist))
	for i := range j.batchHist {
		st.BatchSizes[i] = j.batchHist[i].Load()
	}
	return st
}

// SetNoSync flips the per-batch fsync at runtime. Recovery replay turns
// syncing off while it re-journals the restored sessions one by one —
// each routed apply would otherwise pay a full fsync — and turns it back
// on (followed by one Sync barrier) before the new journal generation
// becomes authoritative, so the durability guarantee is unchanged.
func (j *Journal) SetNoSync(v bool) { j.nosync.Store(v) }

// Sync is an fsync barrier: it returns once everything submitted before
// the call is durable, forcing a file sync even when NoSync is set.
func (j *Journal) Sync() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("journal: closed")
	}
	if j.werr != nil {
		err := j.werr
		j.mu.Unlock()
		return fmt.Errorf("journal: previous write failed: %w", err)
	}
	p := &pending{barrier: true, done: make(chan error, 1)}
	j.queue = append(j.queue, p)
	j.mu.Unlock()
	j.cond.Signal()
	return <-p.done
}

// Submit enqueues the record for the next group commit and returns a wait
// function that blocks until the record is durable (written and fsynced,
// unless NoSync) and reports the outcome. Records become visible to
// replay in Submit order. The returned function must be called exactly
// once; callers serialize Submit with their in-memory apply to keep
// journal order equal to apply order, then wait outside their locks so
// successive applies share one fsync.
func (j *Journal) Submit(rec Record) func() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return waitErr(errors.New("journal: closed"))
	}
	if j.werr != nil {
		err := j.werr
		j.mu.Unlock()
		return waitErr(fmt.Errorf("journal: previous write failed: %w", err))
	}
	j.seq++
	rec.Seq = j.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		j.mu.Unlock()
		return waitErr(fmt.Errorf("journal: marshal: %w", err))
	}
	if len(payload) > maxRecordSize {
		j.mu.Unlock()
		return waitErr(fmt.Errorf("journal: record for %q is %d bytes (max %d)", rec.User, len(payload), maxRecordSize))
	}
	p := &pending{user: rec.User, subID: rec.SubID, op: rec.Op, seq: rec.Seq, payload: payload, preserved: rec.Preserved, done: make(chan error, 1)}
	j.queue = append(j.queue, p)
	j.mu.Unlock()
	j.cond.Signal()
	return func() error { return <-p.done }
}

// Seq returns the highest sequence number assigned so far. Callers that
// need an exact cut (the checkpointer captures it inside the same
// critical section that quiesces submits) must hold whatever lock
// serializes their Submits.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Checkpoint tells the journal that a snapshot now covers every
// vocabulary record with Seq <= seq: they are dropped from the retained
// set and the file is rewritten (live sessions + still-retained
// vocabulary records only), truncating the WAL to ~live-state size. The
// call is durable — it completes only after everything submitted before
// it is fsynced and the rewrite has been renamed into place. Records
// marked Preserved and records with unknown ops survive checkpoints; a
// rewrite failure is reported (and counted in CompactFailures) but the
// retained-set truncation stands: the snapshot, not the rewrite, is the
// authority for what may be dropped, and the next successful compaction
// reclaims the space.
func (j *Journal) Checkpoint(seq uint64) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("journal: closed")
	}
	if j.werr != nil {
		err := j.werr
		j.mu.Unlock()
		return fmt.Errorf("journal: previous write failed: %w", err)
	}
	p := &pending{barrier: true, checkpoint: true, ckptSeq: seq, done: make(chan error, 1)}
	j.queue = append(j.queue, p)
	j.mu.Unlock()
	j.cond.Signal()
	return <-p.done
}

// Append submits the record and waits for durability — the convenience
// form for callers without a lock to get out from under.
func (j *Journal) Append(rec Record) error {
	return j.Submit(rec)()
}

// Err reports the journal's sticky writer error (nil when healthy). A
// non-nil value means every Submit/Sync/Checkpoint fails until ResetAfter
// re-arms the journal.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.werr != nil {
		return fmt.Errorf("journal: previous write failed: %w", j.werr)
	}
	if j.closed {
		return errors.New("journal: closed")
	}
	return nil
}

// Degraded reports lock-free whether the journal is sticky-failed.
func (j *Journal) Degraded() bool { return j.degraded.Load() }

// Reset is ResetAfter with no probe.
func (j *Journal) Reset() error { return j.ResetAfter(nil) }

// ResetAfter attempts to clear a sticky write error and resume appends —
// the recovery path for a disk that filled up (or errored) and came
// back. If probe is non-nil it runs first on the writer goroutine; a
// probe error aborts the reset (the journal stays degraded). The re-arm
// then reopens the file, truncates it back to the last *acknowledged*
// byte — j.size only advances on durable batches, so everything beyond
// it is a torn or unacknowledged tail whose submitters all saw errors —
// and fsyncs, proving the disk accepts writes again. The in-memory
// retained state (live map, vocabulary records, sequence counter)
// already describes exactly that prefix, so no rescan is needed and no
// acknowledged record is ever dropped. Returns nil if the journal was
// not degraded.
func (j *Journal) ResetAfter(probe func() error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("journal: closed")
	}
	p := &pending{reset: true, probe: probe, done: make(chan error, 1)}
	j.queue = append(j.queue, p)
	j.mu.Unlock()
	j.cond.Signal()
	return <-p.done
}

// setWriteError records (or clears) the sticky writer error, keeping the
// lock-free degraded mirror in step.
func (j *Journal) setWriteError(err error) {
	j.mu.Lock()
	j.werr = err
	j.mu.Unlock()
	j.degraded.Store(err != nil)
}

// handleReset performs a ResetAfter on the writer goroutine.
func (j *Journal) handleReset(probe func() error) error {
	j.mu.Lock()
	werr := j.werr
	j.mu.Unlock()
	if werr == nil {
		return nil
	}
	if probe != nil {
		if err := probe(); err != nil {
			return fmt.Errorf("journal: reset probe: %w", err)
		}
	}
	f, err := j.fs.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reset reopen: %w", err)
	}
	// Cut the file back to the last acknowledged byte (j.size advances
	// only after a durable batch, and compaction publishes the compacted
	// size before its reopen attempt), dropping torn frames from the
	// failed write without dropping anything a caller was told is safe.
	if err := f.Truncate(j.size); err != nil {
		f.Close()
		return fmt.Errorf("journal: reset truncate: %w", err)
	}
	if _, err := f.Seek(j.size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("journal: reset seek: %w", err)
	}
	// The fsync doubles as the write probe: a still-broken disk fails
	// here and the journal stays degraded.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: reset fsync: %w", err)
	}
	j.f.Close() // old fd may point at a torn tail or an unlinked inode
	j.f = f
	j.resets.Add(1)
	j.setWriteError(nil)
	return nil
}

func waitErr(err error) func() error {
	return func() error { return err }
}

// writer is the single append goroutine: it drains the queue, writes all
// drained frames in one buffered pass, fsyncs once, releases the waiters,
// then considers compaction.
func (j *Journal) writer() {
	defer close(j.exited)
	for {
		j.mu.Lock()
		for len(j.queue) == 0 && !j.closed {
			j.cond.Wait()
		}
		batch := j.queue
		j.queue = nil
		closed := j.closed
		j.mu.Unlock()

		if len(batch) > 0 {
			// Reset requests run before the sticky-error check: a
			// successful re-arm cannot rescue records in the same batch
			// (their Submit already failed while the error was sticky),
			// but it must not itself be failed by the error it clears.
			n := 0
			for _, p := range batch {
				if p.reset {
					p.done <- j.handleReset(p.probe)
					continue
				}
				batch[n] = p
				n++
			}
			batch = batch[:n]
		}

		if len(batch) > 0 {
			// A sticky error fails the whole batch up front — records
			// queued before the error was set included. Writing them
			// anyway would append past a torn region (or onto an unlinked
			// pre-compaction inode) and acknowledge records that replay
			// can never reach.
			j.mu.Lock()
			err := j.werr
			j.mu.Unlock()
			if err != nil {
				err = fmt.Errorf("journal: previous write failed: %w", err)
			} else if err = j.writeBatch(batch); err != nil {
				j.setWriteError(err)
			}
			// Checkpoints in the batch take effect only after the batch
			// itself is durable; the retained-set truncation plus a forced
			// rewrite is what shrinks the file. The rewrite outcome is
			// reported to the checkpoint waiters alone — record waiters
			// only care that their frames are durable.
			var ckptErr error
			hasCkpt := false
			if err == nil {
				for _, p := range batch {
					if p.checkpoint {
						hasCkpt = true
						j.applyCheckpoint(p.ckptSeq)
					}
				}
				if hasCkpt {
					if ckptErr = j.compact(); ckptErr != nil {
						j.compactFailures.Add(1)
					} else {
						j.compactions.Add(1)
					}
					j.publishCounters()
				}
			}
			for _, p := range batch {
				if p.checkpoint && err == nil {
					p.done <- ckptErr
				} else {
					p.done <- err
				}
			}
			if err == nil && !hasCkpt {
				j.maybeCompact()
			}
		}
		if closed {
			j.mu.Lock()
			remaining := j.queue
			j.queue = nil
			j.mu.Unlock()
			for _, p := range remaining {
				p.done <- errors.New("journal: closed")
			}
			return
		}
	}
}

// writeBatch appends every frame of the batch and fsyncs once (the group
// commit). On error the file may hold a torn tail; Open truncates it on
// the next boot, and the sticky error fails this incarnation's later
// submits.
func (j *Journal) writeBatch(batch []*pending) error {
	w := bufio.NewWriter(j.f)
	var frame [frameOverhead]byte
	records, barriers := 0, 0
	for _, p := range batch {
		if p.barrier {
			barriers++
			continue
		}
		records++
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p.payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p.payload, castagnoli))
		if _, err := w.Write(frame[:]); err != nil {
			return fmt.Errorf("journal: write: %w", err)
		}
		if _, err := w.Write(p.payload); err != nil {
			return fmt.Errorf("journal: write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	// A barrier forces the sync even under NoSync: earlier NoSync batches
	// sit in the page cache of the same fd, so this one fsync makes them
	// all durable.
	if (records > 0 && !j.nosync.Load()) || barriers > 0 {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.fsyncs.Add(1)
	}
	for _, p := range batch {
		if p.barrier {
			continue
		}
		j.size += int64(frameOverhead + len(p.payload))
		j.total++
		j.applyLive(Record{Op: p.op, Seq: p.seq, User: p.user, SubID: p.subID, Preserved: p.preserved}, p.payload)
	}
	if records > 0 {
		j.appends.Add(int64(records))
		j.batches.Add(1)
		i := sort.Search(len(BatchSizeBuckets), func(i int) bool {
			return BatchSizeBuckets[i] >= int64(records)
		})
		j.batchHist[i].Add(1)
	}
	j.publishCounters()
	return nil
}

// applyCheckpoint retires vocabulary records covered by a checkpoint at
// seq (writer goroutine only). Exempt entries — Preserved records and
// unknown ops, whose effect the snapshot cannot contain — are kept.
func (j *Journal) applyCheckpoint(seq uint64) {
	if seq > j.ckpt {
		j.ckpt = seq
	}
	kept := j.vocab[:0]
	var vb int64
	for _, e := range j.vocab {
		if !e.exempt && e.seq <= j.ckpt {
			continue
		}
		kept = append(kept, e)
		vb += int64(frameOverhead + len(e.payload))
	}
	j.vocab = kept
	j.vbytes = vb
	j.ckptSeq.Store(j.ckpt)
}

// maybeCompact rewrites the journal from the retained records (live
// session map + vocabulary records not yet covered by a checkpoint) when
// dead records dominate (writer goroutine only). The rewrite goes to a
// temporary file that is fully written and fsynced before being renamed
// over the journal, so a crash at any instant leaves either the old
// complete file or the new complete file — never a mix.
func (j *Journal) maybeCompact() {
	retained := len(j.live) + len(j.subs) + len(j.vocab)
	dead := j.total - retained
	if j.total < j.opts.CompactMinRecords || dead <= retained {
		return
	}
	if err := j.compact(); err != nil {
		// Not fatal: the rename never happened (compact removes only its
		// temporary file on error), so the journal keeps appending to the
		// intact old file and retries after the next batch. Counted so a
		// persistently failing rewrite (ENOSPC, permissions) is visible
		// in /v1/stats as compact_failures climbing while the file grows,
		// instead of vanishing silently.
		j.compactFailures.Add(1)
		return
	}
	j.compactions.Add(1)
	j.publishCounters()
}

func (j *Journal) compact() error {
	entries := make([]liveEntry, 0, len(j.live)+len(j.subs)+len(j.vocab))
	for _, e := range j.live {
		entries = append(entries, e)
	}
	for _, e := range j.subs {
		entries = append(entries, e)
	}
	for _, e := range j.vocab {
		entries = append(entries, liveEntry{seq: e.seq, payload: e.payload})
	}
	// Original submit order: replay after compaction applies records in
	// the same relative order as the uncompacted file would have —
	// session and vocabulary records interleave exactly as acknowledged.
	sort.Slice(entries, func(a, b int) bool { return entries[a].seq < entries[b].seq })

	tmpPath := j.path + ".compact"
	tmp, err := j.fs.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	size := int64(len(magic))
	if _, err := w.Write(magic); err != nil {
		tmp.Close()
		j.fs.Remove(tmpPath)
		return err
	}
	var frame [frameOverhead]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(e.payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(e.payload, castagnoli))
		if _, err := w.Write(frame[:]); err != nil {
			tmp.Close()
			j.fs.Remove(tmpPath)
			return err
		}
		if _, err := w.Write(e.payload); err != nil {
			tmp.Close()
			j.fs.Remove(tmpPath)
			return err
		}
		size += int64(frameOverhead + len(e.payload))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		j.fs.Remove(tmpPath)
		return err
	}
	if !j.nosync.Load() {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			j.fs.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		j.fs.Remove(tmpPath)
		return err
	}
	if err := j.fs.Rename(tmpPath, j.path); err != nil {
		j.fs.Remove(tmpPath)
		return err
	}
	if !j.nosync.Load() {
		// Persist the rename itself; without the directory sync a power
		// cut can roll the directory entry back to the pre-compaction
		// file (fine) or, worse, an in-between metadata state.
		SyncDirFS(j.fs, filepath.Dir(j.path))
	}
	// The rename is the commit point: the file at j.path now holds
	// exactly the compacted entries. Publish size/total before the
	// reopen attempt so a reopen failure leaves them describing the
	// renamed file — ResetAfter truncates to j.size and must not extend
	// the (smaller) compacted file with zeros.
	j.size = size
	j.total = len(entries)
	// The old fd now points at an unlinked inode; reopen the renamed file
	// for further appends. Failing here is the one compaction error that
	// cannot be retried — appends through the stale fd would vanish with
	// the unlinked inode — so it poisons the journal (sticky error) instead
	// of being swallowed by maybeCompact.
	f, err := j.fs.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		err = fmt.Errorf("journal: reopen after compaction: %w", err)
		j.setWriteError(err)
		return err
	}
	j.f.Close()
	j.f = f
	return nil
}

// Close drains the queue, syncs and closes the file. Submits after Close
// fail. Durability needs no separate Sync call: every Submit's wait
// function already blocks until its record's group commit is fsynced.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.exited
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	j.cond.Signal()
	<-j.exited
	var err error
	if !j.nosync.Load() {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- replay ----------------------------------------------------------------

// ReplayStats describes what a replay (or open-scan) recovered.
type ReplayStats struct {
	// Records is how many valid records were read.
	Records int
	// Sets / Drops / Declares / Asserts / RuleAdds / RuleRemoves / Execs
	// break Records down by operation (unknown ops count only in Records).
	Sets         int
	Drops        int
	Declares     int
	Asserts      int
	RuleAdds     int
	RuleRemoves  int
	Execs        int
	Subscribes   int
	Unsubscribes int
	// Torn is true when the file ended in an incomplete or corrupt frame;
	// TornBytes is how many trailing bytes were discarded.
	Torn      bool
	TornBytes int64
}

// Vocab is the number of replayed vocabulary records (everything that is
// not a session op).
func (rs ReplayStats) Vocab() int {
	return rs.Declares + rs.Asserts + rs.RuleAdds + rs.RuleRemoves + rs.Execs
}

// Replay reads the journal at path and calls fn for every valid record in
// order. A missing file replays zero records. Replay stops cleanly at a
// torn or corrupt tail (reported in the stats); an fn error aborts the
// replay and is returned. Replay never writes.
func Replay(path string, fn func(Record) error) (ReplayStats, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return ReplayStats{}, nil
	}
	if err != nil {
		return ReplayStats{}, fmt.Errorf("journal: open for replay: %w", err)
	}
	defer f.Close()
	var ferr error
	_, stats, err := scan(f, func(rec Record, _ []byte) {
		if ferr == nil {
			ferr = fn(rec)
		}
	})
	if err != nil {
		return stats, err
	}
	if ferr != nil {
		return stats, ferr
	}
	return stats, nil
}

// scan reads frames from the start of f, calling fn for each valid record
// with its payload bytes, and returns the byte offset of the end of the
// valid prefix. A *truncated* header yields zero records with the whole
// file torn; a present-but-wrong magic is a hard error (the file is not a
// journal — treating it as torn would silently "recover" zero records
// from, or let Open truncate, arbitrary foreign files; boot-level callers
// that prefer availability handle the error per file, see the BadFiles
// counter in shard recovery). Any framing violation after a good
// header ends the scan at the last good frame: corrupt mid-file bytes are
// indistinguishable from a torn tail without a segment index, so
// everything after the first bad frame is conservatively treated as lost
// (and counted in TornBytes).
func scan(f File, fn func(rec Record, payload []byte)) (validEnd int64, stats ReplayStats, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, stats, fmt.Errorf("journal: stat: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, stats, fmt.Errorf("journal: seek: %w", err)
	}
	r := bufio.NewReader(f)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		// Shorter than a header: the whole file is torn.
		stats.Torn = true
		stats.TornBytes = info.Size()
		return 0, stats, nil
	}
	if string(hdr) != string(magic) {
		return 0, stats, fmt.Errorf("journal: bad magic %q (not a journal file?)", hdr)
	}
	offset := int64(len(magic))
	var frame [frameOverhead]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				// Partial frame header.
				stats.Torn = true
			}
			break
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		want := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxRecordSize {
			stats.Torn = true
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			stats.Torn = true
			break
		}
		if crc32.Checksum(payload, castagnoli) != want {
			stats.Torn = true
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			stats.Torn = true
			break
		}
		offset += int64(frameOverhead) + int64(n)
		stats.Records++
		switch rec.Op {
		case OpSet:
			stats.Sets++
		case OpDrop:
			stats.Drops++
		case OpDeclare:
			stats.Declares++
		case OpAssert:
			stats.Asserts++
		case OpAddRules:
			stats.RuleAdds++
		case OpRemoveRule:
			stats.RuleRemoves++
		case OpExec:
			stats.Execs++
		case OpSubscribe:
			stats.Subscribes++
		case OpUnsubscribe:
			stats.Unsubscribes++
		}
		fn(rec, payload)
	}
	stats.TornBytes = info.Size() - offset
	if stats.TornBytes > 0 {
		stats.Torn = true
	}
	return offset, stats, nil
}
