package journal

import (
	"fmt"
	"path/filepath"
	"testing"
)

// benchRecord is a representative session Set: two measurements, one in
// an exclusive group — the shape the serving layer journals under churn.
func benchRecord(i int) Record {
	return Record{
		Op:   OpSet,
		User: fmt.Sprintf("person%04d", i%512),
		Measurements: []Measurement{
			{Concept: "BenchCtx0", Prob: 0.5 + float64(i%50)/100},
			{Concept: "BenchCtx1", Prob: 0.3, Exclusive: "loc"},
		},
		Fingerprint: "a1b2c3d4e5f60718",
		Epoch:       int64(i),
	}
}

// BenchmarkJournalAppend measures the framing + group-commit machinery
// without the fsync (NoSync), so the number is stable across CI disks and
// the regression gate tracks the code, not the hardware. RunParallel
// exercises the queue handoff the way concurrent session applies do.
func BenchmarkJournalAppend(b *testing.B) {
	j, _, err := Open(filepath.Join(b.TempDir(), "bench.wal"), Options{
		NoSync: true,
		// The default trigger would compact mid-run and mix rewrite cost
		// into append timings; push it out of reach.
		CompactMinRecords: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := j.Append(benchRecord(i)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkJournalDeclareAssert measures the framing + group-commit cost
// of the vocabulary record shapes (a declare and an assert per
// iteration) — the full-state WAL's new write classes, gated alongside
// BenchmarkJournalAppend so widening the record type does not quietly
// slow the mutation path.
func BenchmarkJournalDeclareAssert(b *testing.B) {
	j, _, err := Open(filepath.Join(b.TempDir(), "bench.wal"), Options{
		NoSync:            true,
		CompactMinRecords: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			decl := Record{
				Op:       OpDeclare,
				BID:      uint64(i + 1),
				Concepts: []string{fmt.Sprintf("BenchConcept%04d", i%512)},
				Roles:    []string{"benchRole"},
				Subs:     []SubDecl{{Sub: fmt.Sprintf("BenchConcept%04d", i%512), Super: "TvProgram"}},
			}
			assert := Record{
				Op:  OpAssert,
				BID: uint64(i + 2),
				ConceptAsserts: []ConceptAssert{
					{Concept: "TvProgram", ID: fmt.Sprintf("tv%04d", i%512), Prob: 1},
				},
				RoleAsserts: []RoleAssert{
					{Role: "hasGenre", Src: fmt.Sprintf("tv%04d", i%512), Dst: "g0", Prob: 0.9},
				},
			}
			if err := j.Append(decl); err != nil {
				b.Fatal(err)
			}
			if err := j.Append(assert); err != nil {
				b.Fatal(err)
			}
			i += 2
		}
	})
}

// BenchmarkJournalAppendFsync is the durable configuration: every batch
// fsyncs. ns/op here is dominated by the disk, so it is informational
// (not part of the regression gate) — divide by the achieved batch size
// (Appends/Batches in Stats) for the per-record fsync amortization.
func BenchmarkJournalAppendFsync(b *testing.B) {
	j, _, err := Open(filepath.Join(b.TempDir(), "bench.wal"), Options{
		CompactMinRecords: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := j.Append(benchRecord(i)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	st := j.Stats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.Appends)/float64(st.Batches), "records/fsync")
	}
}

// BenchmarkJournalReplay measures decode + CRC validation per record over
// a 4096-record journal — the boot-time recovery cost per journaled
// session operation.
func BenchmarkJournalReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "replay.wal")
	j, _, err := Open(path, Options{NoSync: true, CompactMinRecords: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	const records = 4096
	for i := 0; i < records; i++ {
		if err := j.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		rs, err := Replay(path, func(Record) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != records || rs.Torn {
			b.Fatalf("replayed %d records (torn=%v), want %d", n, rs.Torn, records)
		}
	}
	b.StopTimer()
	// Per-record cost is the comparable unit across journal sizes.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/records, "ns/record")
}
