package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tmpJournal(t *testing.T, opts Options) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sessions.wal")
	j, rs, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records != 0 || rs.Torn {
		t.Fatalf("fresh journal reported recovery %+v", rs)
	}
	t.Cleanup(func() { j.Close() })
	return j, path
}

func setRecord(user string, prob float64) Record {
	return Record{
		Op:   OpSet,
		User: user,
		Measurements: []Measurement{
			{Concept: "CtxA", Prob: prob},
			{Concept: "LocK", Prob: 0.6, Exclusive: "loc"},
		},
		Fingerprint: fmt.Sprintf("fp-%s-%g", user, prob),
		Epoch:       7,
	}
}

// collect replays path into a slice.
func collect(t *testing.T, path string) ([]Record, ReplayStats) {
	t.Helper()
	var out []Record
	rs, err := Replay(path, func(rec Record) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, rs
}

func TestJournalRoundTrip(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	if err := j.Append(setRecord("peter", 0.8)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(setRecord("maria", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpDrop, User: "peter"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, rs := collect(t, path)
	if len(recs) != 3 || rs.Records != 3 || rs.Sets != 2 || rs.Drops != 1 || rs.Torn {
		t.Fatalf("replay = %d records, stats %+v", len(recs), rs)
	}
	if recs[0].User != "peter" || recs[0].Op != OpSet || recs[0].Seq != 1 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[0].Measurements[1].Exclusive != "loc" || recs[0].Measurements[1].Prob != 0.6 {
		t.Fatalf("measurements did not round-trip: %+v", recs[0].Measurements)
	}
	if recs[0].Fingerprint != "fp-peter-0.8" || recs[0].Epoch != 7 {
		t.Fatalf("fingerprint/epoch did not round-trip: %+v", recs[0])
	}
	if recs[2].Op != OpDrop || recs[2].User != "peter" || recs[2].Seq != 3 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestJournalReplayMissingFile(t *testing.T) {
	rs, err := Replay(filepath.Join(t.TempDir(), "nope.wal"), func(Record) error {
		t.Fatal("fn called for a missing file")
		return nil
	})
	if err != nil || rs.Records != 0 || rs.Torn {
		t.Fatalf("missing file: stats %+v, err %v", rs, err)
	}
}

// TestJournalGroupCommit: concurrent submitters must share fsync batches —
// the whole point of the group-commit design.
func TestJournalGroupCommit(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	const writers = 16
	const each = 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append(setRecord(fmt.Sprintf("user%02d", w), float64(i%10)/10)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := j.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*each)
	}
	if st.Batches >= st.Appends {
		t.Fatalf("no batching: %d batches for %d appends", st.Batches, st.Appends)
	}
	if st.Fsyncs != st.Batches {
		t.Fatalf("fsyncs = %d, batches = %d (want one fsync per batch)", st.Fsyncs, st.Batches)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, path)
	// Compaction may have rewritten the file down to live records only.
	if len(recs) < writers {
		t.Fatalf("replayed %d records, want >= %d live users", len(recs), writers)
	}
}

// TestJournalCompaction: churning one user must trigger a live-record
// rewrite and leave a file that replays to just the live state.
func TestJournalCompaction(t *testing.T) {
	j, path := tmpJournal(t, Options{CompactMinRecords: 64})
	for i := 0; i < 500; i++ {
		if err := j.Append(setRecord("churner", float64(i%100)/100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(setRecord("stable", 0.9)); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 500 dead records: %+v", st)
	}
	if st.TotalRecords > 100 {
		t.Fatalf("file still holds %d records after compaction", st.TotalRecords)
	}
	if st.LiveRecords != 2 {
		t.Fatalf("live records = %d, want 2", st.LiveRecords)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, rs := collect(t, path)
	if rs.Torn {
		t.Fatalf("compacted file torn: %+v", rs)
	}
	last := map[string]Record{}
	var seqs []uint64
	for _, r := range recs {
		last[r.User] = r
		seqs = append(seqs, r.Seq)
	}
	if len(last) != 2 {
		t.Fatalf("replay yields %d users, want 2", len(last))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("compaction broke seq order: %v", seqs)
		}
	}

	// A dropped user must vanish entirely after the next compaction.
	j2, _, err := Open(path, Options{CompactMinRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Op: OpDrop, User: "churner"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := j2.Append(setRecord("stable", 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ = collect(t, path)
	for _, r := range recs {
		if r.User == "churner" {
			t.Fatalf("dropped user survived compaction: %+v", r)
		}
	}
}

// TestJournalTornTail: truncating the file inside the last frame must
// recover every earlier record, both via Replay and via Open (which also
// truncates the torn bytes so appending continues cleanly).
func TestJournalTornTail(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	for i := 0; i < 5; i++ {
		if err := j.Append(setRecord(fmt.Sprintf("user%d", i), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation point inside the final frame (and a few into the
	// penultimate one) must yield a clean 4- or fewer-record replay.
	for cut := len(whole) - 1; cut > len(whole)-40; cut-- {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, rs := collect(t, path)
		if !rs.Torn {
			t.Fatalf("cut at %d not reported torn", cut)
		}
		if len(recs) > 4 {
			t.Fatalf("cut at %d replayed %d records", cut, len(recs))
		}
		for _, r := range recs {
			if r.User == "user4" {
				t.Fatalf("cut at %d still replayed the truncated record", cut)
			}
		}
	}

	// Open on a torn file: truncate, then append and verify integrity.
	if err := os.WriteFile(path, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Torn || rs.Records != 4 {
		t.Fatalf("open-recovery stats %+v, want 4 records torn", rs)
	}
	if err := j2.Append(setRecord("after-crash", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rs := collect(t, path)
	if rs.Torn || len(recs) != 5 || recs[4].User != "after-crash" {
		t.Fatalf("post-recovery replay: %d records, stats %+v", len(recs), rs)
	}
	// The recovered journal continued the sequence, not restarted it.
	if recs[4].Seq <= recs[3].Seq {
		t.Fatalf("seq went backwards after recovery: %d then %d", recs[3].Seq, recs[4].Seq)
	}
}

// TestJournalTornHeader: a crash during the very first header write
// leaves fewer than 8 bytes; Open must rewrite the magic so appends made
// afterwards are replayable (frames at offset 0 without a header would
// read back as bad magic, losing acknowledged records).
func TestJournalTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn-header.wal")
	if err := os.WriteFile(path, magic[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	j, rs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Torn || rs.Records != 0 {
		t.Fatalf("torn-header open stats %+v", rs)
	}
	if err := j.Append(setRecord("survivor", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rs := collect(t, path)
	if rs.Torn || len(recs) != 1 || recs[0].User != "survivor" {
		t.Fatalf("replay after torn-header recovery: %d records, stats %+v", len(recs), rs)
	}
}

// TestJournalCorruptCRC: a flipped byte mid-file stops replay at the last
// good record before it, without a panic or an error.
func TestJournalCorruptCRC(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	for i := 0; i < 5; i++ {
		if err := j.Append(setRecord(fmt.Sprintf("user%d", i), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte around the middle of the file.
	corrupt := bytes.Clone(whole)
	corrupt[len(corrupt)/2] ^= 0xFF
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, rs := collect(t, path)
	if !rs.Torn {
		t.Fatal("corruption not reported")
	}
	if len(recs) >= 5 {
		t.Fatalf("replayed %d records through a corrupt frame", len(recs))
	}
	for i, r := range recs {
		if r.User != fmt.Sprintf("user%d", i) {
			t.Fatalf("record %d = %+v, prefix not preserved", i, r)
		}
	}
}

// TestJournalBadMagic: a non-journal file is rejected, not replayed.
func TestJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, func(Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a file with bad magic")
	}
	if _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("open accepted a file with bad magic")
	}
}

// TestJournalSyncBarrier: under NoSync no batch fsyncs, but a Sync
// barrier forces one and makes everything submitted before it durable —
// the mode recovery replay runs in (SetNoSync(true) … replay …
// SetNoSync(false) + Sync).
func TestJournalSyncBarrier(t *testing.T) {
	j, path := tmpJournal(t, Options{NoSync: true})
	for i := 0; i < 10; i++ {
		if err := j.Append(setRecord(fmt.Sprintf("user%d", i), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Stats().Fsyncs; got != 0 {
		t.Fatalf("NoSync journal fsynced %d times", got)
	}
	j.SetNoSync(false)
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Fsyncs == 0 {
		t.Fatal("Sync barrier did not fsync")
	}
	if st.Appends != 10 {
		t.Fatalf("barrier counted as an append: %d appends, want 10", st.Appends)
	}
	// Appends after re-enabling sync fsync per batch again.
	if err := j.Append(setRecord("after", 1)); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().Fsyncs; got < st.Fsyncs+1 {
		t.Fatalf("fsyncs = %d after re-enabled append, want > %d", got, st.Fsyncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rs := collect(t, path)
	if rs.Torn || len(recs) != 11 {
		t.Fatalf("replay after barrier: %d records, stats %+v", len(recs), rs)
	}
}

// TestJournalSubmitAfterClose: late submits fail instead of hanging.
func TestJournalSubmitAfterClose(t *testing.T) {
	j, _ := tmpJournal(t, Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(setRecord("late", 1)); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// subRecord builds an OpSubscribe record for tests.
func subRecord(id, user string) Record {
	th := 0.25
	return Record{
		Op:    OpSubscribe,
		SubID: id,
		User:  user,
		Subscription: &SubSpec{
			Target:     "TvProgram",
			Candidates: []string{"d1", "d2"},
			TopK:       5,
			Threshold:  &th,
		},
	}
}

// TestJournalSubscriptionLifecycle: Subscribe records round-trip with their
// spec, are retired by Unsubscribe (not by checkpoints), survive compaction
// alongside live sessions, and rebuild the retained set on reopen.
func TestJournalSubscriptionLifecycle(t *testing.T) {
	j, path := tmpJournal(t, Options{CompactMinRecords: 8})
	if err := j.Append(setRecord("peter", 0.8)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(subRecord("sub-1", "peter")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(subRecord("sub-2", "maria")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpUnsubscribe, SubID: "sub-2", User: "maria"}); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().SubRecords; got != 1 {
		t.Fatalf("sub_records = %d, want 1", got)
	}
	if OpSubscribe.IsVocab() || OpUnsubscribe.IsVocab() {
		t.Fatal("subscription ops must not be vocabulary records")
	}
	// A checkpoint covering every seq so far must NOT retire the live
	// subscription: only its own Unsubscribe may.
	if err := j.Checkpoint(j.Seq()); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().SubRecords; got != 1 {
		t.Fatalf("sub_records after checkpoint = %d, want 1", got)
	}
	// Churn sessions past the compaction floor; the rewrite must carry the
	// subscription through.
	for i := 0; i < 64; i++ {
		if err := j.Append(setRecord("peter", float64(i%10)/10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, rs := collect(t, path)
	if rs.Subscribes != 1 || rs.Unsubscribes != 0 {
		t.Fatalf("replay stats after compaction: %+v", rs)
	}
	var got *Record
	for i := range recs {
		if recs[i].Op == OpSubscribe {
			got = &recs[i]
		}
	}
	if got == nil || got.SubID != "sub-1" || got.User != "peter" {
		t.Fatalf("subscription record missing or wrong: %+v", got)
	}
	sp := got.Subscription
	if sp == nil || sp.Target != "TvProgram" || len(sp.Candidates) != 2 ||
		sp.TopK != 5 || sp.Threshold == nil || *sp.Threshold != 0.25 {
		t.Fatalf("subscription spec did not round-trip: %+v", sp)
	}

	// Reopen: the scan must rebuild the retained subscription set.
	j2, rs2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rs2.Subscribes != 1 || j2.Stats().SubRecords != 1 {
		t.Fatalf("reopen: stats %+v, sub_records %d", rs2, j2.Stats().SubRecords)
	}
	if err := j2.Append(Record{Op: OpUnsubscribe, SubID: "sub-1", User: "peter"}); err != nil {
		t.Fatal(err)
	}
	if got := j2.Stats().SubRecords; got != 0 {
		t.Fatalf("sub_records after final unsubscribe = %d, want 0", got)
	}
}
