package journal

import (
	"io"
	"os"
)

// File is the slice of *os.File the journal writes through. Everything
// the WAL does to its file — append, fsync, torn-tail truncation, the
// open-time scan — goes through this interface, so a test (or the
// fault-injection layer) can interpose disk failures byte-for-byte:
// ENOSPC mid-batch, a failing fsync on the group-commit barrier, a torn
// short-write.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem seam the journal opens, renames and removes files
// through. The zero-dependency default is OSFS; internal/faultinject
// wraps any FS with deterministic fault injection.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, persisting renames/creations within it.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile opens name via os.OpenFile.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames oldpath to newpath via os.Rename.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes name via os.Remove.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// SyncDir fsyncs the directory.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// fsOrOS returns fsys, defaulting to the real filesystem.
func fsOrOS(fsys FS) FS {
	if fsys == nil {
		return OSFS{}
	}
	return fsys
}

// SyncDirFS best-effort fsyncs a directory through fsys — the seam-aware
// form of SyncDir. Errors are ignored for the same reason: some
// filesystems/platforms reject directory fsync and the next journal-wide
// sync flushes the metadata anyway.
func SyncDirFS(fsys FS, dir string) {
	_ = fsOrOS(fsys).SyncDir(dir)
}

// WriteFileSyncFS writes data to path through fsys with an fsync before
// close — the seam-aware form of WriteFileSync, for manifest switches
// that must be testable under injected disk faults.
func WriteFileSyncFS(fsys FS, path string, data []byte, perm os.FileMode) error {
	f, err := fsOrOS(fsys).OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
