// Disk-fault tests for the journal, driven through the FS seam by the
// fault injector. External test package: faultinject imports journal, so
// these tests cannot live in package journal itself.
package journal_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/serve/journal"
)

// openFaulty opens a journal whose every file operation consults in.
func openFaulty(t *testing.T, in *faultinject.Injector, opts journal.Options) (*journal.Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sessions-test-000.wal")
	opts.FS = faultinject.FS(in, nil)
	j, _, err := journal.Open(path, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, path
}

// setRec builds a session record for user i.
func setRec(i int) journal.Record {
	return journal.Record{Op: journal.OpSet, User: fmt.Sprintf("user%04d", i),
		Measurements: []journal.Measurement{{Concept: "C", Prob: 1}}}
}

// replayUsers returns the set of users with a live session in the WAL.
func replayUsers(t *testing.T, path string) map[string]bool {
	t.Helper()
	users := make(map[string]bool)
	if _, err := journal.Replay(path, func(rec journal.Record) error {
		switch rec.Op {
		case journal.OpSet:
			users[rec.User] = true
		case journal.OpDrop:
			delete(users, rec.User)
		}
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return users
}

func TestENOSPCMidBatchDegradesAndResetRecovers(t *testing.T) {
	in := faultinject.New(1)
	j, path := openFaulty(t, in, journal.Options{})

	// A healthy prefix whose acks must survive everything below.
	for i := 0; i < 8; i++ {
		if err := j.Append(setRec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	// Disk full from here on: writes fail, and so does the fsync the
	// reset re-arm uses to probe the disk.
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSWrite, Err: "ENOSPC"}); err != nil {
		t.Fatal(err)
	}
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSSync, Err: "ENOSPC"}); err != nil {
		t.Fatal(err)
	}
	err := j.Append(setRec(100))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after write error")
	}
	// Sticky: later appends fail without touching the disk.
	if err := j.Append(setRec(101)); err == nil {
		t.Fatal("append succeeded on a sticky-failed journal")
	}
	// Reset while the disk is still broken must fail and stay degraded
	// (the re-arm fsync probes the disk).
	if err := j.Reset(); err == nil {
		t.Fatal("Reset succeeded while writes still fail")
	}
	if !j.Degraded() {
		t.Fatal("journal left degraded mode while the disk is still broken")
	}

	// Disk recovers.
	in.Clear()
	if err := j.Reset(); err != nil {
		t.Fatalf("Reset after recovery: %v", err)
	}
	if j.Degraded() {
		t.Fatal("journal still degraded after successful Reset")
	}
	if j.Stats().Resets != 1 {
		t.Fatalf("resets = %d, want 1", j.Stats().Resets)
	}
	for i := 200; i < 204; i++ {
		if err := j.Append(setRec(i)); err != nil {
			t.Fatalf("append after reset: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	users := replayUsers(t, path)
	for i := 0; i < 8; i++ {
		if !users[fmt.Sprintf("user%04d", i)] {
			t.Fatalf("acked pre-fault record user%04d lost", i)
		}
	}
	for i := 200; i < 204; i++ {
		if !users[fmt.Sprintf("user%04d", i)] {
			t.Fatalf("acked post-reset record user%04d lost", i)
		}
	}
	if users["user0100"] || users["user0101"] {
		t.Fatal("unacknowledged record surfaced on replay")
	}
}

func TestTornWriteTruncatedOnReset(t *testing.T) {
	in := faultinject.New(1)
	j, path := openFaulty(t, in, journal.Options{})

	for i := 0; i < 4; i++ {
		if err := j.Append(setRec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// One torn write: half the frame lands, then EIO.
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSWrite, Err: "EIO", Torn: true, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(setRec(50)); err == nil {
		t.Fatal("torn write acked")
	}
	in.Clear()
	if err := j.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	// The reset truncated the torn tail; post-reset appends land on a
	// clean frame boundary.
	if err := j.Append(setRec(60)); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	users := replayUsers(t, path)
	for i := 0; i < 4; i++ {
		if !users[fmt.Sprintf("user%04d", i)] {
			t.Fatalf("acked record user%04d lost", i)
		}
	}
	if users["user0050"] {
		t.Fatal("torn record surfaced on replay")
	}
	if !users["user0060"] {
		t.Fatal("post-reset record lost")
	}
}

func TestFsyncErrorOnGroupCommitBarrier(t *testing.T) {
	in := faultinject.New(1)
	j, path := openFaulty(t, in, journal.Options{})

	if err := j.Append(setRec(0)); err != nil {
		t.Fatal(err)
	}
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSSync, Err: "EIO"}); err != nil {
		t.Fatal(err)
	}
	// The record's bytes may reach the file, but the fsync barrier fails:
	// the caller must NOT get an ack, and the journal must degrade.
	if err := j.Append(setRec(1)); err == nil {
		t.Fatal("append acked despite fsync failure")
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after fsync failure")
	}
	in.Clear()
	if err := j.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := j.Append(setRec(2)); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	users := replayUsers(t, path)
	if !users["user0000"] || !users["user0002"] {
		t.Fatalf("acked records lost: %v", users)
	}
	// user0001 was never acked; after the reset truncated the unacked
	// tail it must be gone.
	if users["user0001"] {
		t.Fatal("unacked record survived the reset truncation")
	}
}

func TestRenameFailureDuringCompaction(t *testing.T) {
	in := faultinject.New(1)
	j, path := openFaulty(t, in, journal.Options{CompactMinRecords: 4})

	// Rewrite the same user so dead records dominate and compaction is
	// due, but make the commit rename fail.
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSRename, Err: "EIO", Match: ".compact"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		rec := setRec(0)
		rec.Measurements[0].Prob = float64(i+1) / 16
		if err := j.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := j.Stats()
	if st.CompactFailures == 0 {
		t.Fatalf("no compaction attempt failed (compactions=%d)", st.Compactions)
	}
	if st.Compactions != 0 {
		t.Fatalf("compaction claimed success despite rename failure")
	}
	// The failure is non-fatal: the old file is intact, appends keep
	// working, and once the rename works again compaction succeeds.
	if j.Degraded() {
		t.Fatal("compaction rename failure must not degrade the journal")
	}
	in.Clear()
	for i := 0; i < 8; i++ {
		if err := j.Append(setRec(0)); err != nil {
			t.Fatalf("append after clear: %v", err)
		}
	}
	if j.Stats().Compactions == 0 {
		t.Fatal("compaction never succeeded after the fault cleared")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if users := replayUsers(t, path); !users["user0000"] {
		t.Fatal("live record lost across failed+successful compactions")
	}
}

func TestOpenFailureSurfaces(t *testing.T) {
	in := faultinject.New(1)
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSOpen, Err: "EACCES"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.wal")
	_, _, err := journal.Open(path, journal.Options{FS: faultinject.FS(in, nil)})
	if !errors.Is(err, syscall.EACCES) {
		t.Fatalf("want EACCES, got %v", err)
	}
}
