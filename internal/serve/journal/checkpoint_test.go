package journal

import (
	"fmt"
	"os"
	"testing"
)

// TestJournalMixedRecordRoundTrip: every vocabulary op must frame,
// replay and count exactly like the session ops that preceded them.
func TestJournalMixedRecordRoundTrip(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	recs := []Record{
		{Op: OpDeclare, BID: 9, Concepts: []string{"A", "B"}, Roles: []string{"r"}, Subs: []SubDecl{{Sub: "B", Super: "A"}}},
		setRecord("peter", 0.8),
		{Op: OpAssert, ConceptAsserts: []ConceptAssert{{Concept: "A", ID: "x", Prob: 0.7}}, RoleAsserts: []RoleAssert{{Role: "r", Src: "x", Dst: "y", Prob: 1}}},
		{Op: OpAddRules, Rules: []string{"RULE q WHEN A PREFER B WITH 0.9"}},
		{Op: OpRemoveRule, Rule: "q"},
		{Op: OpExec, Stmt: "CREATE TABLE t (a INT)"},
		{Op: OpDrop, User: "peter"},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	out, rs := collect(t, path)
	if rs.Records != 7 || rs.Sets != 1 || rs.Drops != 1 || rs.Declares != 1 ||
		rs.Asserts != 1 || rs.RuleAdds != 1 || rs.RuleRemoves != 1 || rs.Execs != 1 {
		t.Fatalf("replay stats %+v", rs)
	}
	if rs.Vocab() != 5 {
		t.Fatalf("Vocab() = %d, want 5", rs.Vocab())
	}
	d := out[0]
	if d.BID != 9 || len(d.Concepts) != 2 || d.Subs[0] != (SubDecl{Sub: "B", Super: "A"}) {
		t.Fatalf("declare did not round-trip: %+v", d)
	}
	a := out[2]
	if a.ConceptAsserts[0] != (ConceptAssert{Concept: "A", ID: "x", Prob: 0.7}) ||
		a.RoleAsserts[0] != (RoleAssert{Role: "r", Src: "x", Dst: "y", Prob: 1}) {
		t.Fatalf("assert did not round-trip: %+v", a)
	}
	if out[3].Rules[0] != "RULE q WHEN A PREFER B WITH 0.9" || out[4].Rule != "q" ||
		out[5].Stmt != "CREATE TABLE t (a INT)" {
		t.Fatalf("rule/exec payloads did not round-trip: %+v %+v %+v", out[3], out[4], out[5])
	}
	for i, rec := range out {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
}

// TestJournalCheckpointTruncates: a checkpoint must drop every covered
// vocabulary record from the file while keeping live sessions and the
// uncovered suffix, and the truncated journal must replay consistently.
func TestJournalCheckpointTruncates(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	for i := 0; i < 100; i++ {
		if err := j.Append(Record{Op: OpDeclare, Concepts: []string{fmt.Sprintf("C%03d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(setRecord("peter", 0.8)); err != nil { // seq 101
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpExec, Stmt: "CREATE TABLE t (a INT)"}); err != nil { // seq 102
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cover everything up to the session record: the 100 declares die,
	// the session and the later exec survive.
	if err := j.Checkpoint(101); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.CheckpointSeq != 101 {
		t.Fatalf("CheckpointSeq = %d, want 101", st.CheckpointSeq)
	}
	if st.VocabRecords != 1 {
		t.Fatalf("VocabRecords = %d, want 1 (the post-checkpoint exec)", st.VocabRecords)
	}
	if st.Compactions == 0 {
		t.Fatal("checkpoint did not rewrite the file")
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("file did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	out, rs := collect(t, path)
	if rs.Sets != 1 || rs.Declares != 0 || rs.Execs != 1 || rs.Records != 2 {
		t.Fatalf("post-checkpoint replay stats %+v", rs)
	}
	// Sequence numbers survive the rewrite: recovery still orders the
	// suffix against the manifest's covered sequence.
	if out[0].Seq != 101 || out[1].Seq != 102 {
		t.Fatalf("seqs after checkpoint = %d, %d (want 101, 102)", out[0].Seq, out[1].Seq)
	}
}

// TestJournalCheckpointKeepsPreserved: records flagged Preserved (failed
// re-applies whose only copy is the WAL) are checkpoint-exempt — a
// snapshot cannot contain them, so no checkpoint may retire them.
func TestJournalCheckpointKeepsPreserved(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	if err := j.Append(Record{Op: OpDeclare, Concepts: []string{"Gone"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpDeclare, Preserved: true, Concepts: []string{"Kept"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(j.Seq()); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	out, rs := collect(t, path)
	if rs.Declares != 1 || len(out) != 1 || !out[0].Preserved || out[0].Concepts[0] != "Kept" {
		t.Fatalf("after checkpoint: %d records, stats %+v", len(out), rs)
	}
}

// TestJournalCheckpointIsDurabilityBarrier: Checkpoint must not return
// before everything submitted ahead of it is on disk — the caller is
// about to truncate history on the snapshot's authority.
func TestJournalCheckpointIsDurabilityBarrier(t *testing.T) {
	j, path := tmpJournal(t, Options{})
	j.SetNoSync(true)
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Op: OpDeclare, Concepts: []string{fmt.Sprintf("C%d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Checkpoint(5); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rs := collect(t, path)
	if rs.Declares != 5 || rs.Torn {
		t.Fatalf("after barrier checkpoint: stats %+v, want the 5 uncovered declares intact", rs)
	}
}
