package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// validJournalBytes builds a well-formed journal mixing every record
// type — sessions, drops, and the full vocabulary set — to seed the
// fuzzer with realistic frame structure.
func validJournalBytes(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.wal")
	j, _, err := Open(path, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for _, rec := range []Record{
		{Op: OpDeclare, BID: 1, Concepts: []string{"CtxA", "CtxB"}, Roles: []string{"likes"}, Subs: []SubDecl{{Sub: "CtxB", Super: "CtxA"}}},
		{Op: OpSet, User: "peter", Measurements: []Measurement{{Concept: "CtxA", Prob: 0.8}}},
		{Op: OpAssert, BID: 2, ConceptAsserts: []ConceptAssert{{Concept: "CtxA", ID: "x1", Prob: 1}}, RoleAsserts: []RoleAssert{{Role: "likes", Src: "x1", Dst: "x2", Prob: 0.9}}},
		{Op: OpSet, User: "maria", Measurements: []Measurement{{Concept: "CtxB", Prob: 0.5, Exclusive: "loc"}}},
		{Op: OpAddRules, BID: 3, Rules: []string{"RULE r WHEN CtxA PREFER CtxB WITH 0.9"}},
		{Op: OpDrop, User: "peter"},
		{Op: OpExec, BID: 4, Stmt: "CREATE TABLE t (a INT)"},
		{Op: OpRemoveRule, BID: 5, Rule: "r"},
		{Op: OpSet, User: "peter", Measurements: []Measurement{{Concept: "CtxA", Prob: 1}}},
	} {
		if err := j.Append(rec); err != nil {
			tb.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzJournalReplay throws arbitrary bytes at the replay path: whatever
// the file contents — truncated tails, flipped CRCs, hostile length
// fields, garbage JSON — Replay must never panic, never allocate
// unboundedly, and must only surface records that decode cleanly. The
// seed corpus includes a valid journal plus targeted mutations of it, so
// the CI run of this function (seeds execute as ordinary tests) covers
// the torn-write cases the crash smoke cannot reach deterministically.
func FuzzJournalReplay(f *testing.F) {
	valid := validJournalBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // torn tail
	f.Add(valid[:len(magic)])              // header only
	f.Add([]byte{})                        // empty file
	f.Add([]byte("CARWAL1\n\xff\xff\xff")) // hostile length field
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0x42 // corrupt CRC mid-file
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		rs, err := Replay(path, func(rec Record) error {
			if rec.Op != OpSet && rec.Op != OpDrop {
				// Unknown ops decode (the frame was CRC-valid) but must
				// still be surfaced consistently — count them like any
				// record; callers skip ops they do not know.
				_ = rec
			}
			n++
			return nil
		})
		if err != nil {
			return // rejected (e.g. bad magic) — fine, just no panic
		}
		if n != rs.Records {
			t.Fatalf("fn called %d times but stats report %d records", n, rs.Records)
		}

		// Open must agree with Replay on what is recoverable, truncate the
		// torn tail, and leave a journal that appends cleanly.
		j, ors, err := Open(path, Options{})
		if err != nil {
			return
		}
		if ors.Records != rs.Records {
			t.Fatalf("open recovered %d records, replay %d", ors.Records, rs.Records)
		}
		if err := j.Append(Record{Op: OpSet, User: "post-fuzz", Measurements: []Measurement{{Concept: "C", Prob: 1}}}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		after, err := Replay(path, func(Record) error { return nil })
		if err != nil {
			t.Fatalf("replay after recovery+append: %v", err)
		}
		if after.Torn || after.Records != rs.Records+1 {
			t.Fatalf("after recovery+append: %+v, want %d clean records", after, rs.Records+1)
		}
	})
}
