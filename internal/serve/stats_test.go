package serve

import (
	"testing"
	"time"

	contextrank "repro"
)

// waitStats runs Stats concurrently and fails the test if it does not
// return within the deadline — the regression signature for stats
// collection queueing behind a serving-path lock.
func waitStats(t *testing.T, srv *Server, deadline time.Duration, lock string) Stats {
	t.Helper()
	done := make(chan Stats, 1)
	go func() { done <- srv.Stats() }()
	select {
	case st := <-done:
		return st
	case <-time.After(deadline):
		t.Fatalf("Stats blocked behind %s", lock)
		return Stats{}
	}
}

// TestStatsIsLockFree pins the /v1/stats fix: scraping stats while rank
// traffic holds — or waits on — the facade write lock, the session mutex
// or the cache mutex must return immediately. Before the fix, Stats read
// the rule count under the facade read lock and the session count under
// the session mutex, so a single long context apply added its full
// duration to every scrape's tail latency.
func TestStatsIsLockFree(t *testing.T) {
	srv := NewServer(contextrank.NewSystem(), Options{})
	if err := srv.Facade().DeclareConcept("TvProgram", "CtxA"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}

	// 1. Facade write lock held (a slow mutation in progress).
	entered := make(chan struct{})
	release := make(chan struct{})
	go srv.Facade().WithWrite(func(sys *contextrank.System) error { //nolint:errcheck // error is nil by construction
		close(entered)
		<-release
		return nil
	})
	<-entered
	st := waitStats(t, srv, 2*time.Second, "the facade write lock")
	if st.Sessions != 1 {
		t.Fatalf("stats under write lock: sessions = %d, want 1", st.Sessions)
	}
	close(release)

	// 2. Session mutex held (a merged apply being prepared).
	srv.sessions.mu.Lock()
	waitStats(t, srv, 2*time.Second, "the session mutex")
	srv.sessions.mu.Unlock()

	// 3. Cache mutex held (rank traffic updating the LRU).
	srv.cache.mu.Lock()
	waitStats(t, srv, 2*time.Second, "the cache mutex")
	srv.cache.mu.Unlock()
}

// TestStatsCountersSurviveConcurrency spot-checks that the lock-free
// counters still report the truth after the locks are released.
func TestStatsCountersSurviveConcurrency(t *testing.T) {
	srv := NewServer(contextrank.NewSystem(), Options{})
	if err := srv.Facade().DeclareConcept("TvProgram", "CtxA"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Facade().AddRule("RULE R1 WHEN CtxA PREFER TvProgram WITH 0.8"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Rules != 1 || st.Sessions != 1 || st.Requests != 3 {
		t.Fatalf("stats = %+v, want rules=1 sessions=1 requests=3", st)
	}
	if st.Cache.Hits != 2 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 2 hits / 1 miss", st.Cache)
	}
	if st.Latency.Count != 3 || st.Latency.P50Micros <= 0 {
		t.Fatalf("latency stats = %+v, want 3 observations", st.Latency)
	}
	if err := srv.Sessions().Drop("peter"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Sessions; got != 0 {
		t.Fatalf("sessions after drop = %d, want 0", got)
	}
}
