// Package serve is the concurrent serving layer over a contextrank.System:
// the piece that turns the single-process reproduction into the always-on,
// many-user service the paper envisions for ambient systems (§1 — context
// changes continuously, queries arrive continuously).
//
// It is built from three parts:
//
//   - Facade wraps a System in a reader/writer locking discipline. Every
//     individual System component is internally synchronized (see the
//     locking-contract note on contextrank.System), but a multi-step
//     mutation such as SetContext (clear concepts, declare events, assert
//     memberships) is not atomic with respect to a concurrent Rank. The
//     facade makes it atomic: rankers and queries take the read lock,
//     mutators take the write lock and bump a monotonic epoch.
//
//   - Sessions keeps one context per user and merges all user contexts
//     into a single situation snapshot on every update, so many situated
//     users can share one System. Each session carries a fingerprint of
//     its measurements which keys that user's cache entries. Every merged
//     apply retires the previous snapshot's basic events from the event
//     space, so session churn (updates and drops) cannot grow the space
//     past the live vocabulary.
//
//   - Server adds an LRU rank-result cache keyed by (user, target,
//     options, context fingerprint, epoch) with singleflight coalescing of
//     identical concurrent misses, plus hit/latency statistics. A data
//     mutation bumps the epoch and thereby invalidates every cached
//     ranking; a session context update changes only that user's
//     fingerprint, so other users' entries stay live — unless the updated
//     vocabulary appears inside a rule's role-restriction filler, where
//     membership propagates across role edges and the update degrades to
//     a full epoch bump (see Sessions).
//
// Handler exposes the whole thing over HTTP/JSON through the Backend
// interface (cmd/carserved is the daemon around it). The shard subpackage
// scales the layer horizontally: a shard.Coordinator owns N Servers,
// routes per-user traffic by consistent hash and broadcasts vocabulary
// writes, behind the same Backend interface. The journal subpackage makes
// session state crash-durable: with a WAL attached (AttachJournal), every
// acknowledged Set/Drop is fsynced before the acknowledgement and boot
// replays it through the ordinary apply path. See DESIGN.md §3/§3.5/§3.6
// for the architecture discussion.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	contextrank "repro"
	"repro/internal/sql"
)

// Facade serializes access to a contextrank.System: read operations
// (ranking, queries) run concurrently under a shared lock, mutating
// operations (schema, assertions, rules, context, DML) run exclusively and
// advance the epoch.
//
// The epoch is bumped even when a mutator returns an error, because several
// mutators apply partially before failing (e.g. AddRule auto-declares
// context concepts before validating the preference vocabulary). Epoch
// over-invalidation is harmless — it can never serve a stale ranking.
type Facade struct {
	mu    sync.RWMutex
	sys   *contextrank.System
	epoch atomic.Int64
	// externalCtx records that the current situation snapshot was applied
	// through Facade.SetContext rather than the session manager. The next
	// session apply clears that snapshot's concepts (situation.Apply
	// retracts the previous context), changing session-less users'
	// rankings, so it must bump the epoch — their cache keys carry no
	// fingerprint that could otherwise invalidate them. Guarded by mu.
	externalCtx bool
}

// NewFacade wraps the system. The caller must stop touching sys directly;
// all access should flow through the facade (or WithRead/WithWrite).
func NewFacade(sys *contextrank.System) *Facade {
	return &Facade{sys: sys}
}

// Epoch returns the current mutation epoch. It increases monotonically;
// two Rank calls observing the same epoch saw the same data, rules and
// facade-applied context.
func (f *Facade) Epoch() int64 { return f.epoch.Load() }

// WithRead runs fn under the shared lock. fn must not mutate the system.
func (f *Facade) WithRead(fn func(sys *contextrank.System) error) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return fn(f.sys)
}

// WithWrite runs fn under the exclusive lock and bumps the epoch.
func (f *Facade) WithWrite(fn func(sys *contextrank.System) error) error {
	_, err := f.WithWriteEpoch(fn)
	return err
}

// WithWriteEpoch is WithWrite returning the epoch the mutation produced,
// captured inside the critical section — reading Epoch() after the lock
// is released could observe a later concurrent mutation's epoch.
func (f *Facade) WithWriteEpoch(fn func(sys *contextrank.System) error) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := fn(f.sys)
	return f.epoch.Add(1), err
}

// bumpEpoch advances the epoch under the write lock without touching the
// system — used to invalidate rankings that may have been computed (and
// cached) against transiently inconsistent state.
func (f *Facade) bumpEpoch() {
	f.mu.Lock()
	f.epoch.Add(1)
	f.mu.Unlock()
}

// withReadEpoch runs fn under the shared lock, passing the epoch observed
// while the lock is held — the exact epoch fn's reads correspond to, since
// the epoch only changes under the write lock.
func (f *Facade) withReadEpoch(fn func(sys *contextrank.System, epoch int64) error) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return fn(f.sys, f.epoch.Load())
}

// --- Read operations -------------------------------------------------------

// Rank ranks the target concept for the user with default options.
func (f *Facade) Rank(user, target string) ([]contextrank.Result, error) {
	return f.RankWith(user, target, contextrank.RankOptions{})
}

// RankWith ranks with explicit options under the read lock.
func (f *Facade) RankWith(user, target string, opts contextrank.RankOptions) ([]contextrank.Result, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sys.RankWith(user, target, opts)
}

// RankQuery runs the §5 query-integrated ranking under the read lock. The
// SQL must be a SELECT: the engine executes statements before checking
// whether they produced rows, so DML smuggled through a shared-lock path
// would mutate state under concurrent rankers and dodge the epoch bump.
func (f *Facade) RankQuery(user, sqlQuery string, opts contextrank.RankOptions) ([]contextrank.Result, error) {
	if err := ensureSelect(sqlQuery); err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sys.RankQuery(user, sqlQuery, opts)
}

// Query runs a SQL query under the read lock. Like RankQuery it accepts
// only SELECT statements; anything that writes must go through Exec.
func (f *Facade) Query(stmt string) (*contextrank.QueryResult, error) {
	if err := ensureSelect(stmt); err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sys.Query(stmt)
}

// ensureSelect rejects statements that are not SELECTs, classifying with
// the engine's own parser so acceptance tracks its grammar exactly.
func ensureSelect(stmt string) error {
	parsed, err := sql.Parse(stmt)
	if err != nil {
		return err
	}
	if _, ok := parsed.(*sql.SelectStmt); !ok {
		return fmt.Errorf("serve: only SELECT is allowed on the read path (got %T); use Exec for writes", parsed)
	}
	return nil
}

// Rules returns a snapshot of the registered preference rules.
func (f *Facade) Rules() []contextrank.Rule {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sys.Rules().Rules()
}

// RuleCount returns the number of registered rules without copying them.
func (f *Facade) RuleCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sys.Rules().Len()
}

// AnalyzeRules runs the repository analysis under the read lock.
func (f *Facade) AnalyzeRules() []contextrank.Finding {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sys.AnalyzeRules()
}

// --- Write operations (each bumps the epoch) -------------------------------

// DeclareConcept registers atomic concepts.
func (f *Facade) DeclareConcept(names ...string) error {
	return f.WithWrite(func(sys *contextrank.System) error {
		return sys.DeclareConcept(names...)
	})
}

// DeclareRole registers roles.
func (f *Facade) DeclareRole(names ...string) error {
	return f.WithWrite(func(sys *contextrank.System) error {
		return sys.DeclareRole(names...)
	})
}

// SubConcept records a TBox axiom sub ⊑ super.
func (f *Facade) SubConcept(sub, super string) error {
	return f.WithWrite(func(sys *contextrank.System) error {
		return sys.SubConcept(sub, super)
	})
}

// AssertConcept asserts a (possibly uncertain) concept membership.
func (f *Facade) AssertConcept(concept, id string, prob float64) error {
	return f.WithWrite(func(sys *contextrank.System) error {
		return sys.AssertConcept(concept, id, prob)
	})
}

// AssertRole asserts a (possibly uncertain) role tuple.
func (f *Facade) AssertRole(role, src, dst string, prob float64) error {
	return f.WithWrite(func(sys *contextrank.System) error {
		return sys.AssertRole(role, src, dst, prob)
	})
}

// AddRule parses and registers a scored preference rule.
func (f *Facade) AddRule(text string) (contextrank.Rule, error) {
	var rule contextrank.Rule
	err := f.WithWrite(func(sys *contextrank.System) error {
		r, err := sys.AddRule(text)
		rule = r
		return err
	})
	return rule, err
}

// RemoveRule deletes a rule by name.
func (f *Facade) RemoveRule(name string) error {
	return f.WithWrite(func(sys *contextrank.System) error {
		return sys.Rules().Remove(name)
	})
}

// SetContext replaces the system's context snapshot. Prefer Sessions for
// per-user contexts: this facade-level call invalidates every user's cached
// rankings (epoch bump), a session update only the one user's.
func (f *Facade) SetContext(ctx *contextrank.Context) error {
	return f.WithWrite(func(sys *contextrank.System) error {
		f.externalCtx = true
		return sys.SetContext(ctx)
	})
}

// Exec runs a SQL statement that may write, under the exclusive lock.
func (f *Facade) Exec(stmt string) (*contextrank.QueryResult, error) {
	var res *contextrank.QueryResult
	err := f.WithWrite(func(sys *contextrank.System) error {
		r, err := sys.Exec(stmt)
		res = r
		return err
	})
	return res, err
}
