package serve

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/serve/journal"
)

// attachTestJournal arms srv with a WAL in a temp dir and returns its
// path (fsync enabled — these tests exercise the real durability path).
func attachTestJournal(t *testing.T, srv *Server, opts journal.Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sessions.wal")
	j, _, err := journal.Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	srv.AttachJournal(j)
	return path
}

// replayInto re-applies a WAL through a server's ordinary serving paths —
// the unsharded equivalent of shard.Coordinator.Recover's replay.
// Vocabulary records whose re-apply fails are skipped, mirroring the
// recovery path's preserve-and-continue policy (a second replay pass over
// the same WAL hits duplicate-declare style errors by design).
func replayInto(t *testing.T, srv *Server, path string) journal.ReplayStats {
	t.Helper()
	rs, err := journal.Replay(path, func(rec journal.Record) error {
		switch rec.Op {
		case journal.OpSet:
			fp, err := srv.SetSession(rec.User, FromJournalMeasurements(rec.Measurements))
			if err != nil {
				return err
			}
			if rec.Fingerprint != "" && fp != rec.Fingerprint {
				return fmt.Errorf("fingerprint for %s: journaled %s, recomputed %s", rec.User, rec.Fingerprint, fp)
			}
		case journal.OpDrop:
			return srv.DropSession(rec.User)
		case journal.OpDeclare:
			subs := make([]SubConceptDecl, len(rec.Subs))
			for i, sd := range rec.Subs {
				subs[i] = SubConceptDecl{Sub: sd.Sub, Super: sd.Super}
			}
			srv.Declare(rec.Concepts, rec.Roles, subs) //nolint:errcheck // preserve-and-continue
		case journal.OpAssert:
			concepts := make([]ConceptAssertion, len(rec.ConceptAsserts))
			for i, a := range rec.ConceptAsserts {
				concepts[i] = ConceptAssertion{Concept: a.Concept, ID: a.ID, Prob: a.Prob}
			}
			roles := make([]RoleAssertion, len(rec.RoleAsserts))
			for i, a := range rec.RoleAsserts {
				roles[i] = RoleAssertion{Role: a.Role, Src: a.Src, Dst: a.Dst, Prob: a.Prob}
			}
			srv.Assert(concepts, roles) //nolint:errcheck // preserve-and-continue
		case journal.OpAddRules:
			srv.AddRules(rec.Rules) //nolint:errcheck // preserve-and-continue
		case journal.OpRemoveRule:
			srv.RemoveRule(rec.Rule) //nolint:errcheck // preserve-and-continue
		case journal.OpExec:
			srv.Exec(rec.Stmt) //nolint:errcheck // preserve-and-continue
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestJournalReplayIdempotence: a WAL holding stale Set records for a
// since-dropped user must not resurrect the session on replay, and
// replaying the same WAL twice (the crash-during-recovery case — the
// journal manifest still points at the old generation, so the next boot
// replays it again) must change nothing: same sessions, same
// fingerprints, and an event space bounded by the live vocabulary — no
// ctx_* leak per replay pass.
func TestJournalReplayIdempotence(t *testing.T) {
	src := NewServer(newTestSystem(t), Options{})
	path := attachTestJournal(t, src, journal.Options{})
	// Vocabulary mutations interleave with the session churn: the WAL is a
	// mixed stream, and replay must apply each kind through its own path.
	if _, err := src.Declare([]string{"CtxNew"}, []string{"watchedBy"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Assert([]ConceptAssertion{{Concept: "CtxNew", ID: "n0", Prob: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.AddRules([]string{"RULE rNew WHEN CtxNew PREFER TvProgram AND EXISTS hasGenre.{g0} WITH 0.7"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		// ghost churns through many Sets before leaving — all stale.
		if _, err := src.Sessions().Set("ghost", []Measurement{{Concept: "CtxA", Prob: float64(i%10) / 10}}); err != nil {
			t.Fatal(err)
		}
	}
	wantFP := make(map[string]string)
	for _, u := range []string{"peter", "maria"} {
		fp, err := src.Sessions().Set(u, []Measurement{
			{Concept: "CtxA", Prob: 0.8},
			{Concept: "LocK", Prob: 0.6, Exclusive: "loc"},
		})
		if err != nil {
			t.Fatal(err)
		}
		wantFP[u] = fp
	}
	if err := src.Sessions().Drop("ghost"); err != nil {
		t.Fatal(err)
	}

	dst := NewServer(newTestSystem(t), Options{})
	baseline := dst.Stats().Events
	wantRules := dst.Stats().Rules + 1 // the replayed rNew
	check := func(pass int) {
		t.Helper()
		st := dst.Stats()
		if st.Sessions != 2 {
			t.Fatalf("pass %d: %d sessions, want 2", pass, st.Sessions)
		}
		// Vocabulary idempotence: later passes hit duplicate-declare and
		// duplicate-rule errors, which replay skips — the rule count must
		// not drift.
		if st.Rules != wantRules {
			t.Fatalf("pass %d: %d rules, want %d", pass, st.Rules, wantRules)
		}
		if _, ok := dst.Sessions().Measurements("ghost"); ok {
			t.Fatalf("pass %d: dropped user resurrected", pass)
		}
		for u, want := range wantFP {
			if got := dst.Sessions().Fingerprint(u); got != want {
				t.Fatalf("pass %d: fingerprint for %s = %s, want %s", pass, u, got, want)
			}
		}
		// Live vocabulary: each surviving user holds two uncertain
		// measurements (CtxA, LocK), i.e. two basic events — repeated
		// replays must not add a third.
		if st.Events > baseline+2*2 {
			t.Fatalf("pass %d: event space leaked: %d events, baseline %d + 4 live", pass, st.Events, baseline)
		}
	}
	for pass := 1; pass <= 3; pass++ {
		rs := replayInto(t, dst, path)
		if rs.Records != 26 || rs.Torn {
			t.Fatalf("pass %d: replay stats %+v, want 26 clean records", pass, rs)
		}
		if rs.Declares != 1 || rs.Asserts != 1 || rs.RuleAdds != 1 {
			t.Fatalf("pass %d: vocabulary records miscounted: %+v", pass, rs)
		}
		check(pass)
	}
}

// TestJournalDropRetryNotResurrected: a Drop whose in-memory half
// already happened (the first attempt applied but failed its journal
// write, so the client retried) must still journal a Drop record — the
// WAL would otherwise keep a live Set whose replay resurrects the
// acknowledged-dropped session.
func TestJournalDropRetryNotResurrected(t *testing.T) {
	src := NewServer(newTestSystem(t), Options{})
	path := attachTestJournal(t, src, journal.Options{})
	if _, err := src.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 0.8}}); err != nil {
		t.Fatal(err)
	}
	if err := src.Sessions().Drop("peter"); err != nil {
		t.Fatal(err)
	}
	// The retry: peter is already gone in memory, but the drop must
	// reach the WAL again all the same.
	if err := src.Sessions().Drop("peter"); err != nil {
		t.Fatal(err)
	}
	rs, err := journal.Replay(path, func(journal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rs.Drops != 2 {
		t.Fatalf("journal holds %d drop records, want 2 (retried drop must be journaled)", rs.Drops)
	}
	dst := NewServer(newTestSystem(t), Options{})
	replayInto(t, dst, path)
	if _, ok := dst.Sessions().Measurements("peter"); ok {
		t.Fatal("dropped session resurrected after a retried drop")
	}
}

// TestJournalCrashChurnSoak runs journaled session churn (the CI step
// matches on Churn|Soak, so this runs under -race), "crashes" without
// closing the journal, then recovers into a fresh server: the recovered
// state must match the pre-crash sessions bit-for-bit and the event
// space must stay bounded through churn, crash and replay. Compaction is
// forced low so the soak also crosses several rewrite cycles.
func TestJournalCrashChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("journal crash soak skipped in -short mode")
	}
	src := NewServer(newTestSystem(t), Options{})
	path := attachTestJournal(t, src, journal.Options{CompactMinRecords: 64})
	baseline := src.Stats().Events

	const (
		users   = 50
		applies = 3000
	)
	ms := func(u, phase int) []Measurement {
		return []Measurement{
			{Concept: "CtxA", Prob: 0.5 + 0.04*float64((u+phase)%10)},
			{Concept: "LocK", Prob: 0.6, Exclusive: "loc"},
			{Concept: "LocO", Prob: 0.3, Exclusive: "loc"},
		}
	}
	for i := 0; i < applies; i++ {
		u := i % users
		name := fmt.Sprintf("user%03d", u)
		if _, err := src.Sessions().Set(name, ms(u, i/users)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			if err := src.Sessions().Drop(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := src.Stats()
	if st.Journal == nil || st.Journal.Compactions == 0 {
		t.Fatalf("soak did not exercise compaction: %+v", st.Journal)
	}
	if bound := baseline + 3*users; st.Events > bound {
		t.Fatalf("event space grew under journaled churn: %d > bound %d", st.Events, bound)
	}
	preSessions := st.Sessions
	preFP := make(map[string]string)
	for _, u := range src.Sessions().Users() {
		preFP[u] = src.Sessions().Fingerprint(u)
	}

	// Crash (journal not closed; group commit already fsynced every ack)
	// and recover into a fresh server over the same durable data.
	dst := NewServer(newTestSystem(t), Options{})
	rs := replayInto(t, dst, path)
	if rs.Torn {
		t.Fatalf("journal torn without a crash mid-write: %+v", rs)
	}
	if got := dst.Stats().Sessions; got != preSessions {
		t.Fatalf("recovered %d sessions, want %d", got, preSessions)
	}
	for u, want := range preFP {
		if got := dst.Sessions().Fingerprint(u); got != want {
			t.Fatalf("fingerprint for %s = %s, want %s", u, got, want)
		}
	}
	if ev := dst.Stats().Events; ev > baseline+3*users {
		t.Fatalf("event space after replay: %d > bound %d", ev, baseline+3*users)
	}
	// The journal the soak left behind is itself bounded: compaction held
	// the file near the live population, so replay cost is O(live), not
	// O(history).
	if rs.Records > 4*users+64 {
		t.Fatalf("replayed %d records for %d live users — compaction not bounding the file", rs.Records, preSessions)
	}
}
