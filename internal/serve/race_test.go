package serve

import (
	"fmt"
	"sync"
	"testing"

	contextrank "repro"
)

// TestConcurrentRankersAndMutators is the serving layer's core guarantee
// under the race detector: many goroutines ranking through the cache while
// one goroutine mutates facts, rules and session contexts through the
// facade. Afterwards the cache must agree with a fresh uncached ranking
// for every user (invalidation-by-epoch correctness).
func TestConcurrentRankersAndMutators(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	users := []string{"peter", "maria", "joe", "ada"}
	for i, u := range users {
		ctx := "CtxA"
		if i%2 == 1 {
			ctx = "CtxB"
		}
		if _, err := srv.Sessions().Set(u, []Measurement{{Concept: ctx, Prob: 1}}); err != nil {
			t.Fatal(err)
		}
	}

	const (
		rankers        = 8
		ranksPerWorker = 150
		mutations      = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, rankers+1)

	for w := 0; w < rankers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ranksPerWorker; i++ {
				user := users[(w+i)%len(users)]
				opts := contextrank.RankOptions{Limit: 1 + i%7}
				if _, _, err := srv.Rank(user, "TvProgram", opts); err != nil {
					errs <- fmt.Errorf("ranker %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		f := srv.Facade()
		for i := 0; i < mutations; i++ {
			var err error
			switch i % 4 {
			case 0:
				err = f.AssertRole("hasGenre", fmt.Sprintf("tv%02d", i%10), fmt.Sprintf("g%d", i%2), 0.8)
			case 1:
				id := fmt.Sprintf("mut%03d", i)
				err = f.AssertConcept("TvProgram", id, 1)
			case 2:
				_, err = f.AddRule(fmt.Sprintf(
					"RULE mut%03d WHEN MutCtx%d PREFER TvProgram AND EXISTS hasGenre.{g%d} WITH 0.5",
					i, i, i%2))
			case 3:
				user := users[i%len(users)]
				_, err = srv.Sessions().Set(user, []Measurement{
					{Concept: "CtxA", Prob: 0.5 + 0.4*float64(i%2)},
					{Concept: "CtxB", Prob: 0.3},
				})
			}
			if err != nil {
				errs <- fmt.Errorf("mutator step %d: %w", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent check: for every user, the cached path now returns exactly
	// what an uncached ranking computes.
	for _, u := range users {
		cached, _, err := srv.Rank(u, "TvProgram", contextrank.RankOptions{})
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		fresh, err := srv.Facade().RankWith(u, "TvProgram", contextrank.RankOptions{})
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		sameResults(t, cached, fresh)
	}

	st := srv.Stats()
	if st.Requests < rankers*ranksPerWorker {
		t.Fatalf("requests = %d, want >= %d", st.Requests, rankers*ranksPerWorker)
	}
	if st.Epoch < mutations*3/4 {
		t.Fatalf("epoch = %d, want >= %d (mutations mostly bump it)", st.Epoch, mutations*3/4)
	}
}

// TestConcurrentSessionChurn hammers the session manager from many
// goroutines (distinct users) while rankers run — the lock-order interplay
// between Sessions.mu and the facade lock.
func TestConcurrentSessionChurn(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", w)
			for i := 0; i < 80; i++ {
				ctx := "CtxA"
				if (w+i)%2 == 0 {
					ctx = "CtxB"
				}
				if _, err := srv.Sessions().Set(user, []Measurement{{Concept: ctx, Prob: 1}}); err != nil {
					errs <- err
					return
				}
				if _, _, err := srv.Rank(user, "TvProgram", contextrank.RankOptions{Limit: 3}); err != nil {
					errs <- err
					return
				}
				if i%20 == 19 {
					if err := srv.Sessions().Drop(user); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
