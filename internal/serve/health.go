package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/journal"
)

// Health states, as reported in Stats.Health and /healthz. A server is
// degraded when its WAL is sticky-failed: it keeps serving ranks from
// memory but rejects mutations (503 + Retry-After) until a disk probe
// re-arms the journal. Quarantined is a coordinator-level state: the
// shard failed a broadcast apply (or panicked) and its users are
// rerouted to healthy replicas until background repair replays the
// missed records and readmits it.
const (
	StateHealthy     = "healthy"
	StateDegraded    = "degraded"
	StateQuarantined = "quarantined"
)

// ErrDegraded marks a mutation rejected while the backend's journal is
// degraded. The handler maps it to 503 with a Retry-After.
var ErrDegraded = errors.New("serve: journal degraded; mutations temporarily rejected (reads still served)")

// ErrQuarantined marks an operation refused because a shard is
// quarantined and its repair has not completed yet. It originates in the
// shard coordinator (which aliases this sentinel — serve cannot import
// shard); it lives here so the error envelope can map it to the
// "quarantined" code.
var ErrQuarantined = errors.New("shard: quarantined shard pending repair")

// ErrNotJournaled marks the in-flight mutations that hit the disk fault
// itself: applied in memory, never acknowledged as durable. The handler
// maps these to 503 + Retry-After exactly like ErrDegraded — the write
// re-applies idempotently and the disk may come back, so a 4xx "give
// up" status would be the wrong client guidance. Once degraded mode
// engages, the record sits on the unjournaled tail and ProbeDisk
// re-journals it on recovery.
var ErrNotJournaled = errors.New("serve: applied but not journaled")

// notJournaled tags a journal-write failure so both ErrNotJournaled and
// the underlying disk error survive errors.Is, without changing the
// human-readable message.
type notJournaled struct{ jerr error }

func (e notJournaled) Error() string   { return e.jerr.Error() }
func (e notJournaled) Unwrap() []error { return []error{ErrNotJournaled, e.jerr} }

// maxUnjournaledTail bounds the applied-but-unjournaled records kept for
// re-journaling on recovery. Mutations are rejected the moment degraded
// mode engages, so the tail only holds the handful of writes that were
// in flight when the disk failed; the cap is a backstop, with drops
// counted.
const maxUnjournaledTail = 4096

// diskHealth is a server's journal failure domain: the degraded flag,
// why and since when, and the tail of records that were applied in
// memory but never made the WAL. Those records' callers saw "applied
// but not journaled" errors — they hold no durability claim — but the
// in-memory state contains them, so recovery must re-journal them
// (Preserved-style) or a later crash would replay a WAL that disagrees
// with the state the process kept serving.
type diskHealth struct {
	enabled    bool // degrade-on-disk-error policy armed at construction
	degraded   atomic.Bool
	sinceUnix  atomic.Int64
	reason     atomic.Pointer[string]
	recoveries atomic.Int64
	tailLen    atomic.Int64
	dropped    atomic.Int64

	mu   sync.Mutex
	tail []journal.Record
}

// checkWritable gates a mutation: ErrDegraded while the journal is down.
func (h *diskHealth) checkWritable() error {
	if h == nil || !h.degraded.Load() {
		return nil
	}
	return ErrDegraded
}

// degradedNow reports whether degraded mode is engaged.
func (h *diskHealth) degradedNow() bool { return h != nil && h.degraded.Load() }

// noteJournalError records an applied-but-unjournaled mutation and, when
// the policy is armed, engages degraded mode.
func (h *diskHealth) noteJournalError(rec journal.Record, err error) {
	if h == nil || !h.enabled {
		return
	}
	h.mu.Lock()
	if len(h.tail) < maxUnjournaledTail {
		h.tail = append(h.tail, rec)
		h.tailLen.Store(int64(len(h.tail)))
	} else {
		h.dropped.Add(1)
	}
	h.mu.Unlock()
	if h.degraded.CompareAndSwap(false, true) {
		reason := err.Error()
		h.reason.Store(&reason)
		h.sinceUnix.Store(time.Now().Unix())
	}
}

// takeTail removes and returns the unjournaled tail in append order.
func (h *diskHealth) takeTail() []journal.Record {
	h.mu.Lock()
	tail := h.tail
	h.tail = nil
	h.tailLen.Store(0)
	h.mu.Unlock()
	return tail
}

// pushBack restores records takeTail removed after a failed re-journal.
func (h *diskHealth) pushBack(recs []journal.Record) {
	if len(recs) == 0 {
		return
	}
	h.mu.Lock()
	h.tail = append(recs, h.tail...)
	h.tailLen.Store(int64(len(h.tail)))
	h.mu.Unlock()
}

// clear leaves degraded mode.
func (h *diskHealth) clear() {
	if h.degraded.CompareAndSwap(true, false) {
		h.recoveries.Add(1)
		h.reason.Store(nil)
		h.sinceUnix.Store(0)
	}
}

// HealthInfo is the health block of Stats: one server's (or, on the
// aggregate, a whole coordinator's) failure-domain state.
type HealthInfo struct {
	// State is healthy, degraded or quarantined.
	State string `json:"state"`
	// Reason is the error that caused a non-healthy state.
	Reason string `json:"reason,omitempty"`
	// SinceUnix is when the state was entered (unix seconds).
	SinceUnix int64 `json:"since_unix,omitempty"`
	// UnjournaledTail is how many applied-but-unjournaled records await
	// re-journaling on disk recovery; TailDropped counts records the
	// bounded tail had to drop.
	UnjournaledTail int   `json:"unjournaled_tail,omitempty"`
	TailDropped     int64 `json:"tail_dropped,omitempty"`
	// Recoveries counts degraded→healthy transitions (disk came back).
	Recoveries int64 `json:"recoveries,omitempty"`
	// DegradedShards / QuarantinedShards list non-healthy shard indexes
	// (aggregate only).
	DegradedShards    []int `json:"degraded_shards,omitempty"`
	QuarantinedShards []int `json:"quarantined_shards,omitempty"`
	// Quarantines / Repairs count shards quarantined and repaired+
	// readmitted since boot (aggregate only).
	Quarantines int64 `json:"quarantines,omitempty"`
	Repairs     int64 `json:"repairs,omitempty"`
	// Panics is the process-wide recovered-panic count (aggregate only).
	Panics int64 `json:"panics,omitempty"`
}

// healthInfo snapshots one server's health block (lock-free).
func (h *diskHealth) healthInfo() *HealthInfo {
	info := &HealthInfo{State: StateHealthy}
	if h == nil {
		return info
	}
	info.Recoveries = h.recoveries.Load()
	info.TailDropped = h.dropped.Load()
	if h.degraded.Load() {
		info.State = StateDegraded
		if r := h.reason.Load(); r != nil {
			info.Reason = *r
		}
		info.SinceUnix = h.sinceUnix.Load()
		info.UnjournaledTail = int(h.tailLen.Load())
	}
	return info
}

// panicsTotal counts panics recovered anywhere in the serving stack —
// per-request recovery in the HTTP handler, per-shard isolation in the
// broadcast fan-out — instead of killing the daemon. Process-global so
// every layer feeds one carserve_panics_total.
var panicsTotal atomic.Int64

// NotePanic records one recovered panic.
func NotePanic() { panicsTotal.Add(1) }

// PanicsTotal reads the recovered-panic counter.
func PanicsTotal() int64 { return panicsTotal.Load() }

// ProbeDisk attempts to leave degraded mode: it re-arms the journal
// (ResetAfter truncates the unacknowledged tail and fsyncs as a write
// probe) and re-journals the applied-but-unjournaled records with
// Preserved set — checkpoint-exempt, exactly like recovery's preserve
// path — before accepting mutations again. Returns nil when the server
// was not degraded; the error (and continued degraded mode) when the
// disk is still broken.
func (s *Server) ProbeDisk() error {
	if !s.health.degradedNow() {
		return nil
	}
	j := s.sessions.Journal()
	if j == nil {
		s.health.clear()
		return nil
	}
	if err := j.ResetAfter(nil); err != nil {
		return err
	}
	for {
		tail := s.health.takeTail()
		if len(tail) == 0 {
			break
		}
		for k, rec := range tail {
			// Preserved = checkpoint-exempt, exactly like recovery's
			// preserve path. The record keeps its BID: on a later replay
			// the healthy shards' WALs carry the same broadcast record,
			// and the shared BID is what deduplicates them.
			rec.Preserved = true
			if err := j.Append(rec); err != nil {
				s.health.pushBack(tail[k:])
				return err
			}
		}
	}
	s.health.clear()
	return nil
}

// Degraded reports whether the server is in read-only degraded mode.
func (s *Server) Degraded() bool { return s.health.degradedNow() }
