package serve

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	contextrank "repro"
	"repro/internal/event"
	"repro/internal/workload"
)

// batchServer builds a serving stack over the small TV-watcher dataset
// with k rules and a session for person0000.
func batchServer(t testing.TB, k int) (*Server, string) {
	t.Helper()
	sys := contextrank.NewSystem()
	if _, err := workload.LoadBench(sys.Loader(), sys.Rules(), workload.SmallSpec(), k); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys, Options{})
	user := "person0000"
	var ms []Measurement
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			ms = append(ms, Measurement{Concept: workload.BenchContextConcept(i), Prob: 0.9})
		}
	}
	if _, err := srv.Sessions().Set(user, ms); err != nil {
		t.Fatal(err)
	}
	return srv, user
}

// TestRankBatchMatchesSingleRanks: every batch item must return exactly
// what the equivalent single Rank / candidate-list call returns.
func TestRankBatchMatchesSingleRanks(t *testing.T) {
	srv, user := batchServer(t, 4)
	items := []RankItem{
		{Target: "TvProgram", Limit: 5},
		{Target: "TvProgram", Limit: 5, Explain: true},
		{Candidates: []string{"tv000", "tv001", "tv002"}},
	}
	got, meta, err := srv.RankBatch(user, "", items)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("%d item results, want %d", len(got), len(items))
	}
	if meta.Cached {
		t.Fatal("fresh batch reported fully cached")
	}
	for i, item := range got {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
	}

	single, _, err := srv.Rank(user, "TvProgram", contextrank.RankOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != len(got[0].Results) {
		t.Fatalf("batch target item returned %d results, single rank %d", len(got[0].Results), len(single))
	}
	for i := range single {
		if single[i].ID != got[0].Results[i].ID || math.Abs(single[i].Score-got[0].Results[i].Score) > 1e-12 {
			t.Fatalf("batch/single divergence at %d: %+v vs %+v", i, got[0].Results[i], single[i])
		}
	}
	if got[1].Results[0].Explanation == nil {
		t.Fatal("explain batch item carried no explanation")
	}
	var viaFacade []contextrank.Result
	err = srv.Facade().WithRead(func(sys *contextrank.System) error {
		r, rerr := sys.RankCandidates(user, []string{"tv000", "tv001", "tv002"}, contextrank.RankOptions{})
		viaFacade = r
		return rerr
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(viaFacade) != len(got[2].Results) {
		t.Fatalf("candidate item returned %d results, want %d", len(got[2].Results), len(viaFacade))
	}
	for i := range viaFacade {
		if viaFacade[i].ID != got[2].Results[i].ID || math.Abs(viaFacade[i].Score-got[2].Results[i].Score) > 1e-12 {
			t.Fatalf("candidate batch divergence at %d", i)
		}
	}

	// A second identical batch: target items now come from the rank cache,
	// and the whole batch reuses the compiled plan.
	got2, meta2, err := srv.RankBatch(user, "", items)
	if err != nil {
		t.Fatal(err)
	}
	if !got2[0].Cached || !got2[1].Cached {
		t.Fatalf("repeat batch target items not cached: %+v", []bool{got2[0].Cached, got2[1].Cached})
	}
	if meta2.Cached {
		t.Fatal("batch with a candidate-list item cannot be fully cached")
	}
	st := srv.Stats()
	if st.Plans.Hits == 0 {
		t.Fatalf("plan cache recorded no hits across batches: %+v", st.Plans)
	}
	if st.Plans.Size != 1 {
		t.Fatalf("plan cache holds %d plans, want 1 (same user, epoch, rules)", st.Plans.Size)
	}
}

// TestRankBatchPerItemErrors: a bad item fails alone; the rest of the
// batch still ranks.
func TestRankBatchPerItemErrors(t *testing.T) {
	srv, user := batchServer(t, 2)
	got, _, err := srv.RankBatch(user, "", []RankItem{
		{Target: "TvProgram", Limit: 3},
		{Target: "NOT ) VALID ("},
		{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err != nil || len(got[0].Results) == 0 {
		t.Fatalf("good item failed: %v", got[0].Err)
	}
	if got[1].Err == nil {
		t.Fatal("bad target expression did not fail its item")
	}
	if got[2].Err == nil {
		t.Fatal("empty item did not fail")
	}

	// Batch-level failures: no user, no items, unknown algorithm.
	if _, _, err := srv.RankBatch("", "", []RankItem{{Target: "TvProgram"}}); err == nil {
		t.Fatal("empty user accepted")
	}
	if _, _, err := srv.RankBatch(user, "", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := srv.RankBatch(user, "nonsense", []RankItem{{Target: "TvProgram"}}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestRankBatchAlgorithms: naive batches agree with factorized batches
// (same semantics), and the view algorithm fails candidate items only.
func TestRankBatchAlgorithms(t *testing.T) {
	srv, user := batchServer(t, 3)
	items := []RankItem{{Target: "TvProgram"}, {Candidates: []string{"tv000", "tv001"}}}
	fact, _, err := srv.RankBatch(user, contextrank.AlgorithmFactorized, items)
	if err != nil {
		t.Fatal(err)
	}
	naive, _, err := srv.RankBatch(user, contextrank.AlgorithmNaive, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fact {
		if fact[i].Err != nil || naive[i].Err != nil {
			t.Fatalf("item %d errored: %v / %v", i, fact[i].Err, naive[i].Err)
		}
		if len(fact[i].Results) != len(naive[i].Results) {
			t.Fatalf("item %d: %d vs %d results", i, len(fact[i].Results), len(naive[i].Results))
		}
		for j := range fact[i].Results {
			if math.Abs(fact[i].Results[j].Score-naive[i].Results[j].Score) > 1e-9 {
				t.Fatalf("item %d result %d: factorized %g, naive %g",
					i, j, fact[i].Results[j].Score, naive[i].Results[j].Score)
			}
		}
	}
	view, _, err := srv.RankBatch(user, contextrank.AlgorithmView, items)
	if err != nil {
		t.Fatal(err)
	}
	if view[0].Err != nil {
		t.Fatalf("view target item failed: %v", view[0].Err)
	}
	if view[1].Err == nil {
		t.Fatal("view candidate item did not fail")
	}
}

// TestPlanCacheInvalidation: session applies (context epoch), rule changes
// and data writes (facade epoch) must each invalidate cached plans.
func TestPlanCacheInvalidation(t *testing.T) {
	srv, user := batchServer(t, 4)
	// Every probe uses a fresh limit so it always misses the rank-result
	// cache and consults the plan cache (a result-cache hit never needs a
	// plan — person0001's session update below changes neither person0000's
	// fingerprint nor the epoch, which is exactly the point).
	limit := 0
	rank := func() {
		t.Helper()
		limit++
		if _, _, err := srv.Rank(user, "TvProgram", contextrank.RankOptions{Limit: limit}); err != nil {
			t.Fatal(err)
		}
	}
	rank()
	misses := srv.plans.misses.Load()

	// Same state: a distinct request shares the compiled plan.
	rank()
	if got := srv.plans.misses.Load(); got != misses {
		t.Fatalf("second target recompiled the plan (misses %d -> %d)", misses, got)
	}

	// A session update (any user's) bumps the context epoch.
	if _, err := srv.Sessions().Set("person0001", []Measurement{{Concept: workload.BenchContextConcept(0), Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	rank()
	if got := srv.plans.misses.Load(); got != misses+1 {
		t.Fatalf("session apply did not invalidate the plan (misses %d -> %d)", misses, got)
	}
	misses = srv.plans.misses.Load()

	// A rule change bumps the facade epoch (and the rules fingerprint).
	if _, _, err := srv.AddRules([]string{"RULE PLANX WHEN BenchCtx0 PREFER TvProgram WITH 0.6"}); err != nil {
		t.Fatal(err)
	}
	rank()
	if got := srv.plans.misses.Load(); got != misses+1 {
		t.Fatalf("rule change did not invalidate the plan (misses %d -> %d)", misses, got)
	}
	misses = srv.plans.misses.Load()

	// A data write bumps the facade epoch.
	if err := srv.Facade().AssertRole("watched", user, "tv001", 0.9); err != nil {
		t.Fatal(err)
	}
	rank()
	if got := srv.plans.misses.Load(); got != misses+1 {
		t.Fatalf("data write did not invalidate the plan (misses %d -> %d)", misses, got)
	}
}

// TestRankClusterBoundFallback: a rule set whose candidate-independent
// footprint partition exceeds the plan cluster bound must still rank
// through the serve layer (single and batch) via the per-candidate
// fallback instead of erroring.
func TestRankClusterBoundFallback(t *testing.T) {
	sys := contextrank.NewSystem()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sys.DeclareConcept("Doc", "ChainCtx"))
	n := 17 // maxClusterRules + 1
	l, space := sys.Loader(), sys.DB().Space()
	for i := 0; i < n; i++ {
		must(sys.DeclareConcept(fmt.Sprintf("F%02d", i)))
		must(space.Declare(fmt.Sprintf("chain%02d", i), 0.5))
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("d%02d", i)
		must(l.AssertConcept("Doc", id, nil))
		// d_i couples rules i and i+1 through one shared event: every rule
		// chains into one coarse cluster, but any single candidate touches
		// at most two rules.
		ev := event.Basic(fmt.Sprintf("chain%02d", i))
		must(l.AssertConcept(fmt.Sprintf("F%02d", i), id, ev))
		if i+1 < n {
			must(l.AssertConcept(fmt.Sprintf("F%02d", i+1), id, ev))
		}
	}
	for i := 0; i < n; i++ {
		_, err := sys.AddRule(fmt.Sprintf("RULE r%02d WHEN ChainCtx PREFER F%02d WITH 0.6", i, i))
		must(err)
	}
	srv := NewServer(sys, Options{})
	if _, err := srv.Sessions().Set("chainuser", []Measurement{{Concept: "ChainCtx", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	// With the context applied (rules active), the coarse footprint
	// partition chains every rule into one oversized cluster.
	err := srv.Facade().WithRead(func(sys *contextrank.System) error {
		_, cerr := sys.CompileRankPlan("chainuser")
		return cerr
	})
	if err == nil {
		t.Fatal("chained rule set compiled into a plan")
	} else if !errors.Is(err, contextrank.ErrPlanClusterBound) {
		t.Fatalf("compile error = %v, want ErrPlanClusterBound", err)
	}
	res, _, err := srv.Rank("chainuser", "Doc", contextrank.RankOptions{})
	if err != nil {
		t.Fatalf("single rank did not fall back: %v", err)
	}
	if len(res) != n {
		t.Fatalf("%d results, want %d", len(res), n)
	}
	batch, _, err := srv.RankBatch("chainuser", "", []RankItem{
		{Target: "Doc", Limit: 5},
		{Candidates: []string{"d00", "d01"}},
	})
	if err != nil {
		t.Fatalf("batch did not fall back: %v", err)
	}
	for i, item := range batch {
		if item.Err != nil {
			t.Fatalf("batch item %d: %v", i, item.Err)
		}
	}
	// The bound verdict is negatively cached: one entry, and the repeat
	// requests above hit it instead of recompiling.
	if size := srv.plans.size.Load(); size != 1 {
		t.Fatalf("plan cache holds %d entries, want 1 negative verdict", size)
	}
	if hits := srv.plans.hits.Load(); hits == 0 {
		t.Fatal("repeat bound-exceeding requests never hit the negative verdict")
	}
}

// TestHTTPRankBatch drives the batch endpoint over HTTP, including the
// sharded coordinator (the batch must land on the user's shard).
func TestHTTPRankBatch(t *testing.T) {
	srv, user := batchServer(t, 4)
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	body := fmt.Sprintf(`{"user":%q,"items":[
		{"target":"TvProgram","limit":3},
		{"candidates":["tv000","tv001"]},
		{"target":"NOT ) VALID ("}
	]}`, user)
	var resp struct {
		Items []struct {
			Results []struct {
				ID    string  `json:"id"`
				Score float64 `json:"score"`
			} `json:"results"`
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
		} `json:"items"`
		Epoch  int64 `json:"epoch"`
		Micros int64 `json:"micros"`
	}
	call(t, ts, "POST", "/v1/rank/batch", body, http.StatusOK, &resp)
	if len(resp.Items) != 3 {
		t.Fatalf("%d items, want 3", len(resp.Items))
	}
	if len(resp.Items[0].Results) != 3 || len(resp.Items[1].Results) != 2 {
		t.Fatalf("unexpected result counts: %d, %d", len(resp.Items[0].Results), len(resp.Items[1].Results))
	}
	if resp.Items[2].Error == "" {
		t.Fatal("bad item returned no error over HTTP")
	}

	// Batch-level errors surface as HTTP 400.
	call(t, ts, "POST", "/v1/rank/batch", `{"user":"","items":[{"target":"TvProgram"}]}`, http.StatusBadRequest, nil)
	call(t, ts, "POST", "/v1/rank/batch", fmt.Sprintf(`{"user":%q,"items":[]}`, user), http.StatusBadRequest, nil)
}

// TestServeRankBatchChurnSoak compiles and uses plans concurrently with
// session applies and drops: the plan cache must never serve a plan whose
// context events were retired (visible as "not declared" rank errors), and
// batches must agree with single ranks throughout. Run with -race in CI.
func TestServeRankBatchChurnSoak(t *testing.T) {
	const k = 4
	srv, _ := batchServer(t, k)
	iters := 300
	if testing.Short() {
		iters = 60
	}
	users := make([]string, 4)
	for i := range users {
		users[i] = fmt.Sprintf("person%04d", i)
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(users)*2)
	for w, user := range users {
		wg.Add(1)
		go func(w int, user string) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case w%2 == 0: // ranker: alternate batch and single
					if i%2 == 0 {
						items := []RankItem{
							{Target: "TvProgram", Limit: 5},
							{Candidates: []string{"tv000", "tv001", "tv002"}},
						}
						res, _, err := srv.RankBatch(user, "", items)
						if err != nil {
							errc <- fmt.Errorf("%s batch: %w", user, err)
							return
						}
						for _, item := range res {
							if item.Err != nil {
								errc <- fmt.Errorf("%s batch item: %w", user, item.Err)
								return
							}
						}
					} else if _, _, err := srv.Rank(user, "TvProgram", contextrank.RankOptions{Limit: 5}); err != nil {
						errc <- fmt.Errorf("%s rank: %w", user, err)
						return
					}
				default: // churner: update and occasionally drop the session
					ms := []Measurement{{Concept: workload.BenchContextConcept(i % k), Prob: 0.5 + float64(i%5)/10}}
					if _, err := srv.Sessions().Set(user, ms); err != nil {
						errc <- fmt.Errorf("%s set: %w", user, err)
						return
					}
					if i%7 == 0 {
						if err := srv.Sessions().Drop(user); err != nil {
							errc <- fmt.Errorf("%s drop: %w", user, err)
							return
						}
					}
				}
			}
		}(w, user)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
