// Package shard is the sharded serving layer: a Coordinator owns N
// independent serve.Server replicas — each with its own contextrank.System,
// session manager, rank cache and lock — and routes every per-user
// operation (session applies, ranks) to one shard by consistent hash of
// the user ID. A context apply on shard 3 therefore never blocks a rank on
// shard 7: the single writer lock of the unsharded layer becomes N
// independent locks, and aggregate throughput under a mixed apply+rank
// workload scales with the shard count (see carbench -exp serve -shards).
//
// Shared vocabulary — schema declares, data assertions, preference rules,
// SQL DML — is *broadcast*: applied to every shard in parallel, so each
// shard holds a full replica of the non-session state and can rank any
// user routed to it. Consistency caveats of that design are documented on
// Coordinator; DESIGN.md §3.5 has the architecture discussion.
package shard

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	contextrank "repro"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// Coordinator routes serving traffic across N shard replicas. It
// implements serve.Backend, so serve.NewHandlerFor exposes the identical
// HTTP API over it.
//
// # Consistency
//
//   - Per-user state (sessions, cached rankings) lives only on the user's
//     shard; routing is a pure function of (user, N), so a user always
//     observes their own updates.
//   - Broadcast writes are applied to all shards in parallel without a
//     commit protocol. On error the failing shards report it and the
//     others keep the write: shards can diverge until the next successful
//     broadcast of the same fact (all broadcast operations are
//     assert-style and idempotent at the vocabulary level) or a restore
//     from snapshot. The first error is returned to the caller.
//   - Read-only SQL queries are served by one shard chosen round-robin.
//     Replicated data is identical everywhere, but session-context
//     assertions are shard-local: a query over context concepts sees only
//     the chosen shard's sessions. Use per-user endpoints for
//     session-coupled reads.
type Coordinator struct {
	shards []*serve.Server
	start  time.Time
	rr     atomic.Int64 // round-robin cursor for shard-agnostic reads

	// journals are the per-shard WALs opened by Recover (index = shard
	// id; nil when the coordinator runs without durability). Owned here
	// for CloseJournals; the per-shard appends go through each server.
	journals []*journal.Journal
	// journalGen is the generation id of the open journals ("" without
	// durability). Snapshot manifests record it so recovery can pair
	// checkpoint coverage with the right WAL files.
	journalGen string
	// journalDir is the WAL directory Recover ran against; quarantine
	// repair replays a healthy shard's WAL from it.
	journalDir string
	// fs is the filesystem seam the journals were opened with (OSFS
	// outside fault-injection runs); manifest switches route through it
	// so injected rename/write faults reach them too.
	fs journal.FS

	// quar is the quarantine domain (see quarantine.go); quarAfter is
	// the armed consecutive-failure threshold (0 = quarantining off).
	quar      quarState
	quarAfter atomic.Int64
	// chaos is the optional fault injector for the rank and broadcast
	// paths (nil = disabled; one atomic load per operation).
	chaos atomic.Pointer[faultinject.Injector]

	// bcastGate orders broadcasts against checkpoints: every broadcast
	// holds the read side for its whole apply+journal span, and
	// Checkpoint holds the write side across all shards' snapshot cuts.
	// The cuts therefore share one broadcast frontier — a broadcast is
	// either in every shard's snapshot or in none — which is what lets
	// recovery skip checkpoint-covered records by BID without risking a
	// half-covered write.
	bcastGate sync.RWMutex
	// bid numbers broadcast writes; every shard journals the same
	// broadcast with the same BID, so recovery applies each one exactly
	// once even though N WALs carry a copy. Recover seeds it past the
	// highest replayed BID.
	bid atomic.Uint64

	// Broadcast-write latency: total wall time (slowest shard) per write.
	bcastWrites atomic.Int64
	bcastSumNs  atomic.Int64
	bcastMaxNs  atomic.Int64

	// Background-checkpoint counters (see Checkpoint/StartCheckpointer).
	ckptCount     atomic.Int64
	ckptFailures  atomic.Int64
	ckptLastUnix  atomic.Int64
	ckptLastDurUs atomic.Int64
	ckptLastSeq   atomic.Uint64

	// recovery is the boot-time replay outcome, attached to Stats once.
	recovery atomic.Pointer[serve.RecoveryStats]
}

var _ serve.Backend = (*Coordinator)(nil)

// New builds a coordinator over n fresh shards. build constructs shard
// i's System (e.g. preloading a dataset, or restoring a snapshot); it is
// called once per shard, in order.
func New(n int, build func(shard int) (*contextrank.System, error), opts serve.Options) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	c := &Coordinator{shards: make([]*serve.Server, n), start: time.Now()}
	c.quar.init(n)
	for i := 0; i < n; i++ {
		sys, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		c.shards[i] = serve.NewServer(sys, opts)
	}
	return c, nil
}

// N returns the shard count.
func (c *Coordinator) N() int { return len(c.shards) }

// Shard returns shard i's server, for direct (test/diagnostic) access.
func (c *Coordinator) Shard(i int) *serve.Server { return c.shards[i] }

// ShardFor returns the shard index serving the given user.
func (c *Coordinator) ShardFor(user string) int {
	return ShardIndex(user, len(c.shards))
}

// ShardIndex is the routing function: FNV-64a of the user ID fed through
// Lamping–Veach jump consistent hashing. It is a pure function of (user,
// shards) — the same user always lands on the same shard for a fixed
// count — and growing the count from n to n+1 moves only ~1/(n+1) of the
// users, so resharding invalidates the minimum of per-shard state.
func ShardIndex(user string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(user))
	return jumpHash(h.Sum64(), shards)
}

// jumpHash is Lamping & Veach's jump consistent hash ("A Fast, Minimal
// Memory, Consistent Hash Algorithm", 2014): O(ln buckets), no memory,
// minimal key movement between bucket counts.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// --- routed per-user operations --------------------------------------------

// Rank routes the rank to the user's shard — or, while that shard is
// quarantined, to its healthy stand-in — and the returned meta carries
// the shard index that served it.
func (c *Coordinator) Rank(user, target string, opts contextrank.RankOptions) ([]contextrank.Result, serve.RankMeta, error) {
	i := c.routeFor(user)
	if in := c.chaos.Load(); in != nil {
		if err := in.Fire(faultinject.RankServe, i); err != nil {
			return nil, serve.RankMeta{Shard: i}, err
		}
	}
	res, meta, err := c.shards[i].Rank(user, target, opts)
	meta.Shard = i
	return res, meta, err
}

// RankBatch routes the whole batch to the user's shard — one hop, one
// consistent snapshot and one compiled rank plan for every item.
func (c *Coordinator) RankBatch(user string, alg contextrank.Algorithm, items []serve.RankItem) ([]serve.RankItemResult, serve.RankMeta, error) {
	i := c.routeFor(user)
	if in := c.chaos.Load(); in != nil {
		if err := in.Fire(faultinject.RankServe, i); err != nil {
			return nil, serve.RankMeta{Shard: i}, err
		}
	}
	res, meta, err := c.shards[i].RankBatch(user, alg, items)
	meta.Shard = i
	return res, meta, err
}

// SetSession applies the user's session context on the user's shard only:
// the merged apply and its write lock are shard-local. While the home
// shard is quarantined the session lands on its healthy stand-in and the
// user is recorded for migration back at repair time; the recording is
// serialized with the repair's migration sweep, so a session can never
// fall between the two.
func (c *Coordinator) SetSession(user string, ms []serve.Measurement) (string, error) {
	home := ShardIndex(user, len(c.shards))
	if c.quar.mask.Load()&maskBit(home) == 0 {
		return c.shards[home].SetSession(user, ms)
	}
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	mask := c.quar.mask.Load()
	if mask&maskBit(home) == 0 {
		// Repaired between the fast-path check and the lock.
		return c.shards[home].SetSession(user, ms)
	}
	fp, err := c.shards[rerouteIndex(user, mask, len(c.shards))].SetSession(user, ms)
	if err == nil {
		c.quar.rerouted[user] = home
	}
	return fp, err
}

// SessionInfo reads the user's session from whatever shard currently
// serves the user (the stand-in while the home shard is quarantined).
func (c *Coordinator) SessionInfo(user string) ([]serve.Measurement, string, bool) {
	return c.shards[c.routeFor(user)].SessionInfo(user)
}

// DropSession ends the user's session on the user's current shard.
func (c *Coordinator) DropSession(user string) error {
	home := ShardIndex(user, len(c.shards))
	if c.quar.mask.Load()&maskBit(home) == 0 {
		return c.shards[home].DropSession(user)
	}
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	mask := c.quar.mask.Load()
	if mask&maskBit(home) == 0 {
		return c.shards[home].DropSession(user)
	}
	err := c.shards[rerouteIndex(user, mask, len(c.shards))].DropSession(user)
	if err == nil {
		// Keep the migration record: the home shard may hold a stale
		// pre-quarantine session that repair must clear.
		c.quar.rerouted[user] = home
	}
	return err
}

// --- standing subscriptions ------------------------------------------------

// Subscribe registers a standing rank subscription on the owner's shard —
// the subscription's repeated re-rank then shares the user's session,
// rank cache and compiled plans. While the home shard is quarantined the
// subscription lands on the healthy stand-in (same reroute and migration
// record as SetSession; RepairShard moves it home).
func (c *Coordinator) Subscribe(id string, spec serve.SubscriptionSpec) (serve.SubscriptionInfo, error) {
	home := ShardIndex(spec.User, len(c.shards))
	if c.quar.mask.Load()&maskBit(home) == 0 {
		info, err := c.shards[home].Subscribe(id, spec)
		info.Shard = home
		return info, err
	}
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	mask := c.quar.mask.Load()
	if mask&maskBit(home) == 0 {
		info, err := c.shards[home].Subscribe(id, spec)
		info.Shard = home
		return info, err
	}
	alt := rerouteIndex(spec.User, mask, len(c.shards))
	info, err := c.shards[alt].Subscribe(id, spec)
	info.Shard = alt
	if err == nil {
		c.quar.rerouted[spec.User] = home
	}
	return info, err
}

// Unsubscribe removes a subscription wherever it lives. There is no
// id→shard map — ids are client-chosen or minted per subscribe — so the
// lookup scans each shard's registry; an unknown id is (false, nil)
// without journaling anything (the per-shard resurrection guard only
// matters when the shard itself applied a removal, and then the shard's
// own Unsubscribe journals it).
func (c *Coordinator) Unsubscribe(id string) (bool, error) {
	for _, s := range c.shards {
		for _, info := range s.Subscriptions() {
			if info.ID == id {
				return s.Unsubscribe(id)
			}
		}
	}
	return false, nil
}

// Subscriptions lists every shard's subscriptions, tagging each with the
// shard currently holding it.
func (c *Coordinator) Subscriptions() []serve.SubscriptionInfo {
	var out []serve.SubscriptionInfo
	for i, s := range c.shards {
		for _, info := range s.Subscriptions() {
			info.Shard = i
			out = append(out, info)
		}
	}
	return out
}

// SubscriptionStream attaches the event consumer to a subscription on
// whichever shard holds it.
func (c *Coordinator) SubscriptionStream(id string) (*serve.SubStream, error) {
	for _, s := range c.shards {
		for _, info := range s.Subscriptions() {
			if info.ID == id {
				return s.SubscriptionStream(id)
			}
		}
	}
	return nil, fmt.Errorf("serve: no subscription %q", id)
}

// --- broadcast writes ------------------------------------------------------

// broadcast assigns the write a fresh broadcast id and applies fn to
// every shard in parallel, holding the broadcast gate's read side for the
// whole span so a concurrent Checkpoint (which takes the write side)
// observes the write on either every shard or none. It records the
// write's wall time (the slowest shard) and returns the highest resulting
// epoch together with the first error in shard order. Callers that need
// one representative result capture it when i == 0 — wg.Wait orders that
// write before the caller's read, so no extra locking is needed.
func (c *Coordinator) broadcast(fn func(i int, s *serve.Server, bid uint64) (int64, error)) (int64, error) {
	c.bcastGate.RLock()
	defer c.bcastGate.RUnlock()
	// Degraded pre-check, before a BID is assigned or any shard applies:
	// a degraded shard would apply the write in memory but fail to
	// journal it, and the divergence rules below would then quarantine a
	// shard whose only problem is its disk. Rejecting the whole write up
	// front keeps the replicas bit-identical — the caller sees 503 +
	// Retry-After and the disk probe re-arms the journal in background.
	mask := c.quar.mask.Load()
	for i, s := range c.shards {
		if mask&maskBit(i) != 0 {
			continue
		}
		if s.Degraded() {
			return 0, fmt.Errorf("shard %d: %w", i, serve.ErrDegraded)
		}
	}
	return c.broadcastBID(c.bid.Add(1), fn)
}

// broadcastBID is broadcast's body for an already-assigned broadcast id.
// Recovery calls it directly to re-apply a journaled broadcast under its
// original BID (no gate needed: replay runs before traffic).
//
// Quarantined shards are skipped — repair replays what they miss from a
// healthy WAL. Each shard's apply runs behind a recover barrier: a panic
// inside one shard's engine becomes that shard's error (counted in
// carserve_panics_total) instead of killing the daemon, and with a
// quarantine threshold armed, a shard that keeps failing while the rest
// succeed is fenced off and its error absorbed.
func (c *Coordinator) broadcastBID(bid uint64, fn func(i int, s *serve.Server, bid uint64) (int64, error)) (int64, error) {
	started := time.Now()
	mask := c.quar.mask.Load()
	epochs := make([]int64, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		if mask&maskBit(i) != 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					serve.NotePanic()
					errs[i] = fmt.Errorf("panic: %v", r)
				}
			}()
			if in := c.chaos.Load(); in != nil {
				if err := in.Fire(faultinject.BroadcastApply, i); err != nil {
					errs[i] = err
					return
				}
			}
			epochs[i], errs[i] = fn(i, c.shards[i], bid)
		}(i)
	}
	wg.Wait()
	c.observeBroadcast(time.Since(started))

	var epoch int64
	for _, e := range epochs {
		if e > epoch {
			epoch = e
		}
	}
	var firstErr error
	for i, err := range errs {
		if mask&maskBit(i) != 0 {
			continue
		}
		if err == nil {
			c.noteBroadcastResult(i, bid, nil)
			continue
		}
		if c.noteBroadcastResult(i, bid, err) {
			continue // shard quarantined; the write is durable on the rest
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return epoch, firstErr
}

func (c *Coordinator) observeBroadcast(d time.Duration) {
	ns := int64(d)
	c.bcastWrites.Add(1)
	c.bcastSumNs.Add(ns)
	for {
		cur := c.bcastMaxNs.Load()
		if ns <= cur || c.bcastMaxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Declare broadcasts concept/role/subconcept declarations to every shard.
// Each shard journals the write under the shared broadcast id, so every
// shard's WAL is an independently replayable full log.
func (c *Coordinator) Declare(concepts, roles []string, subs []serve.SubConceptDecl) (int64, error) {
	return c.broadcast(func(_ int, s *serve.Server, bid uint64) (int64, error) {
		return s.DeclareTagged(bid, concepts, roles, subs)
	})
}

// Assert broadcasts data assertions to every shard. Uncertain assertions
// declare an independent fresh basic event per shard; the marginal
// probability every shard computes is identical, so rankings agree across
// shards even though the event names differ.
func (c *Coordinator) Assert(concepts []serve.ConceptAssertion, roles []serve.RoleAssertion) (int64, error) {
	return c.broadcast(func(_ int, s *serve.Server, bid uint64) (int64, error) {
		return s.AssertTagged(bid, concepts, roles)
	})
}

// Rules snapshots the registered rules from one replica (rules are
// broadcast, so all shards agree after any successful AddRules).
func (c *Coordinator) Rules() []contextrank.Rule { return c.shards[0].Rules() }

// AddRules broadcasts rule registration to every shard; the added names
// are reported from shard 0 (parsing is deterministic, so every shard
// derives the same names).
func (c *Coordinator) AddRules(texts []string) ([]string, int64, error) {
	var added []string
	epoch, err := c.broadcast(func(i int, s *serve.Server, bid uint64) (int64, error) {
		names, e, err := s.AddRulesTagged(bid, texts)
		if i == 0 {
			added = names
		}
		return e, err
	})
	return added, epoch, err
}

// RemoveRule broadcasts the removal to every shard.
func (c *Coordinator) RemoveRule(name string) (int64, error) {
	return c.broadcast(func(_ int, s *serve.Server, bid uint64) (int64, error) {
		return s.RemoveRuleTagged(bid, name)
	})
}

// Exec broadcasts a mutating SQL statement; the result set is shard 0's
// (replicated data is identical when the broadcast succeeds).
func (c *Coordinator) Exec(stmt string) (*contextrank.QueryResult, int64, error) {
	var res *contextrank.QueryResult
	epoch, err := c.broadcast(func(i int, s *serve.Server, bid uint64) (int64, error) {
		r, e, err := s.ExecTagged(bid, stmt)
		if i == 0 {
			res = r
		}
		return e, err
	})
	return res, epoch, err
}

// --- shard-agnostic reads --------------------------------------------------

// Query serves a read-only SELECT from one shard, chosen round-robin.
// Replicated data is identical on every shard; session-context assertions
// are shard-local (see the Coordinator consistency notes).
func (c *Coordinator) Query(stmt string) (*contextrank.QueryResult, error) {
	i := int(uint64(c.rr.Add(1)-1) % uint64(len(c.shards)))
	return c.shards[i].Query(stmt)
}

// Stats aggregates every shard's counters (the Shards field carries the
// per-shard breakdown, index = shard id) and attaches broadcast-write
// latency. Like Server.Stats it is collection-lock-free.
func (c *Coordinator) Stats() serve.Stats {
	agg := serve.Stats{UptimeSeconds: time.Since(c.start).Seconds()}
	agg.Shards = make([]serve.Stats, len(c.shards))
	mask := c.quar.mask.Load()
	health := &serve.HealthInfo{
		State:       serve.StateHealthy,
		Quarantines: c.quar.quarantines.Load(),
		Repairs:     c.quar.repairs.Load(),
		Panics:      serve.PanicsTotal(),
	}
	for i, s := range c.shards {
		st := s.Stats()
		if mask&maskBit(i) != 0 {
			// Coordinator-level state overrides the shard's own view.
			q := *st.Health
			q.State = serve.StateQuarantined
			c.quar.mu.Lock()
			if info := c.quar.info[i]; info != nil {
				q.Reason = info.reason
				q.SinceUnix = info.since.Unix()
			}
			c.quar.mu.Unlock()
			st.Health = &q
			health.QuarantinedShards = append(health.QuarantinedShards, i)
		} else if st.Health != nil && st.Health.State == serve.StateDegraded {
			health.DegradedShards = append(health.DegradedShards, i)
		}
		if st.Health != nil {
			health.Recoveries += st.Health.Recoveries
			health.UnjournaledTail += st.Health.UnjournaledTail
			health.TailDropped += st.Health.TailDropped
		}
		agg.Shards[i] = st
		agg.Requests += st.Requests
		agg.Sessions += st.Sessions
		agg.Events += st.Events
		if st.Epoch > agg.Epoch {
			agg.Epoch = st.Epoch
		}
		if st.Rules > agg.Rules {
			agg.Rules = st.Rules
		}
		agg.Cache = agg.Cache.Merge(st.Cache)
		agg.Plans = agg.Plans.Merge(st.Plans)
		agg.Latency = agg.Latency.Merge(st.Latency)
		if st.Subs != nil {
			merged := st.Subs.Merge(subsOrZero(agg.Subs))
			agg.Subs = &merged
		}
		if st.Journal != nil {
			merged := st.Journal.Merge(journalOrZero(agg.Journal))
			agg.Journal = &merged
		}
		// The hot-path counters are process-global (one scratch pool, one
		// set of atomics across all shards); summing per-shard copies would
		// multiply them by N. Report them once on the aggregate.
		agg.Shards[i].HotPath = nil
	}
	hp := contextrank.ReadHotPathStats()
	agg.HotPath = &hp
	b := &serve.BroadcastStats{Writes: c.bcastWrites.Load()}
	if b.Writes > 0 {
		b.MeanMicros = float64(c.bcastSumNs.Load()) / 1e3 / float64(b.Writes)
		b.MaxMicros = float64(c.bcastMaxNs.Load()) / 1e3
	}
	agg.Broadcast = b
	if c.journals != nil {
		agg.Checkpoints = &serve.CheckpointStats{
			Count:              c.ckptCount.Load(),
			Failures:           c.ckptFailures.Load(),
			LastUnix:           c.ckptLastUnix.Load(),
			LastDurationMicros: float64(c.ckptLastDurUs.Load()),
			LastSeq:            c.ckptLastSeq.Load(),
		}
	}
	switch {
	case len(health.QuarantinedShards) > 0:
		health.State = serve.StateQuarantined
	case len(health.DegradedShards) > 0:
		health.State = serve.StateDegraded
	}
	agg.Health = health
	agg.Recovery = c.recovery.Load()
	return agg
}
