package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	contextrank "repro"
	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// sessionFor builds a distinct Weekend-membership context per user index,
// so restored fingerprints and rank scores are user-specific.
func sessionFor(i int) []serve.Measurement {
	return []serve.Measurement{{Concept: "Weekend", Prob: 0.5 + float64(i%5)/10}}
}

// rankScores snapshots a user's full ranking for bit-identity comparison.
func rankScores(t *testing.T, c *Coordinator, user string) string {
	t.Helper()
	res, _, err := c.Rank(user, "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, r := range res {
		fmt.Fprintf(&sb, "%s=%v;", r.ID, r.Score)
	}
	return sb.String()
}

// TestRecoverSessionsAfterCrash is the kill -9 scenario at the unit level:
// journaled sessions, no clean shutdown (journals deliberately left
// un-Closed — durability must come from the per-batch fsync), then a new
// coordinator over the same durable data replays the WAL and serves
// bit-identical fingerprints and rank scores. The since-dropped user must
// not be resurrected.
func TestRecoverSessionsAfterCrash(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 4)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}

	const users = 12
	fps := make(map[string]string)
	scores := make(map[string]string)
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user%03d", i)
		fp, err := a.SetSession(u, sessionFor(i))
		if err != nil {
			t.Fatal(err)
		}
		fps[u] = fp
	}
	// One user churns and leaves: the stale Set records must not
	// resurrect the session on recovery.
	if _, err := a.SetSession("ghost", sessionFor(3)); err != nil {
		t.Fatal(err)
	}
	if err := a.DropSession("ghost"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user%03d", i)
		scores[u] = rankScores(t, a, u)
	}
	preCount := a.Stats().Sessions

	// Crash: no CloseJournals, no snapshot. The same durable data is
	// rebuilt from scratch (in carserved this is the snapshot restore or
	// the deterministic preload).
	b := newTestCoordinator(t, 4)
	rs, err := b.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.CloseJournals()
	if rs.Records != users+2 { // users Sets + ghost Set + ghost Drop
		t.Fatalf("replayed %d records, want %d (stats %+v)", rs.Records, users+2, rs)
	}
	if rs.Drops != 1 || rs.Failed != 0 || rs.FingerprintMismatches != 0 {
		t.Fatalf("recovery stats %+v", rs)
	}
	if rs.Users != preCount {
		t.Fatalf("recovered %d users, pre-crash count was %d", rs.Users, preCount)
	}
	if got := b.Stats().Sessions; got != preCount {
		t.Fatalf("post-recovery session count = %d, want %d", got, preCount)
	}
	if _, _, ok := b.SessionInfo("ghost"); ok {
		t.Fatal("dropped user resurrected by replay")
	}
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user%03d", i)
		_, fp, ok := b.SessionInfo(u)
		if !ok {
			t.Fatalf("session for %s did not survive the crash", u)
		}
		if fp != fps[u] {
			t.Fatalf("fingerprint for %s changed across recovery: %s -> %s", u, fps[u], fp)
		}
		if got := rankScores(t, b, u); got != scores[u] {
			t.Fatalf("rank scores for %s changed across recovery:\n pre: %s\npost: %s", u, scores[u], got)
		}
	}

	// The old generation was superseded: only the new manifest's files
	// remain, and a third boot replays from the rewritten generation.
	c := newTestCoordinator(t, 4)
	if _, err := c.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()
	if got := c.Stats().Sessions; got != preCount {
		t.Fatalf("second recovery: session count = %d, want %d", got, preCount)
	}
}

// TestRecoverSessionsReshard replays a 4-shard journal set into 1-, 2-
// and 7-shard coordinators: routing reassigns users, fingerprints and
// scores must not change, and every session must live on its routing
// shard.
func TestRecoverSessionsReshard(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 4)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	const users = 10
	fps := make(map[string]string)
	scores := make(map[string]string)
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user%03d", i)
		fp, err := a.SetSession(u, sessionFor(i))
		if err != nil {
			t.Fatal(err)
		}
		fps[u] = fp
		scores[u] = rankScores(t, a, u)
	}

	for _, n := range []int{1, 2, 7} {
		// Each reshard recovers from the previous incarnation's
		// generation — exactly the rolling-reshard sequence a production
		// fleet would walk through.
		b := newTestCoordinator(t, n)
		rs, err := b.Recover(dir, journal.Options{})
		if err != nil {
			t.Fatalf("reshard to %d: %v", n, err)
		}
		if rs.Users != users {
			t.Fatalf("reshard to %d recovered %d users, want %d (stats %+v)", n, rs.Users, users, rs)
		}
		for i := 0; i < users; i++ {
			u := fmt.Sprintf("user%03d", i)
			_, fp, ok := b.SessionInfo(u)
			if !ok || fp != fps[u] {
				t.Fatalf("reshard to %d: session for %s = (%q, %v), want fingerprint %q", n, u, fp, ok, fps[u])
			}
			if got := rankScores(t, b, u); got != scores[u] {
				t.Fatalf("reshard to %d: scores for %s changed:\n pre: %s\npost: %s", n, u, scores[u], got)
			}
			// Shard-locality: the session manager of the routing shard —
			// and only that one — holds the session.
			home := b.ShardFor(u)
			for s := 0; s < b.N(); s++ {
				_, _, onShard := b.Shard(s).SessionInfo(u)
				if onShard != (s == home) {
					t.Fatalf("reshard to %d: session for %s on shard %d (home %d)", n, u, s, home)
				}
			}
		}
		b.CloseJournals()
	}
}

// TestRecoverSessionsTornTail: a crash mid group commit leaves a torn
// frame; recovery replays the valid prefix and reports the tear.
func TestRecoverSessionsTornTail(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 1)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := a.SetSession(fmt.Sprintf("user%03d", i), sessionFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the single shard's WAL: chop trailing bytes off the last frame.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	torn := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
				t.Fatal(err)
			}
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("tore %d files, want 1", torn)
	}

	b := newTestCoordinator(t, 1)
	rs, err := b.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.CloseJournals()
	if rs.TornFiles != 1 {
		t.Fatalf("torn tail not reported: %+v", rs)
	}
	if rs.Records != 3 || rs.Users != 3 {
		t.Fatalf("recovered %d records / %d users from torn journal, want 3/3", rs.Records, rs.Users)
	}
	if _, _, ok := b.SessionInfo("user003"); ok {
		t.Fatal("the torn record's session came back")
	}
}

// TestRecoverSessionsPreservesFailedRecords: records whose re-apply
// errors (here: the restored system holds foreign data in the session's
// context concept, tripping the foreign-data guard) must be carried into
// the new journal generation, not destroyed by the stale-file cleanup —
// once the conflict is gone, a later boot recovers the sessions.
func TestRecoverSessionsPreservesFailedRecords(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 2)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	fps := make(map[string]string)
	for i := 0; i < 6; i++ {
		u := fmt.Sprintf("user%03d", i)
		fp, err := a.SetSession(u, sessionFor(i))
		if err != nil {
			t.Fatal(err)
		}
		fps[u] = fp
	}

	// Crash, then boot over a system where Weekend holds a data
	// assertion: the session layer refuses to clear foreign rows, so
	// every replayed Set fails — and must be preserved, not dropped.
	poisoned := newTestCoordinator(t, 2)
	if _, err := poisoned.Assert([]serve.ConceptAssertion{{Concept: "Weekend", ID: "somebody", Prob: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	rs, err := poisoned.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	poisoned.CloseJournals()
	if rs.Failed != 6 || rs.Users != 0 {
		t.Fatalf("poisoned recovery stats %+v, want 6 failed / 0 users", rs)
	}

	// Third boot without the conflicting data: the preserved records
	// replay successfully from the poisoned boot's generation.
	c := newTestCoordinator(t, 2)
	rs, err = c.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()
	if rs.Failed != 0 || rs.Users != 6 {
		t.Fatalf("healed recovery stats %+v, want 0 failed / 6 users", rs)
	}
	for u, want := range fps {
		_, fp, ok := c.SessionInfo(u)
		if !ok || fp != want {
			t.Fatalf("session for %s after heal = (%q, %v), want %q", u, fp, ok, want)
		}
	}
}

// TestRecoverSessionsBadFile: a previous-generation file with an
// overwritten header is unsalvageable, but it must not brick the boot —
// the other shards' journals still replay.
func TestRecoverSessionsBadFile(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 2)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	users := []string{"user000", "user001", "user002", "user003"}
	for i, u := range users {
		if _, err := a.SetSession(u, sessionFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one WAL's header with garbage.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	clobbered := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") && !clobbered {
			f, err := os.OpenFile(filepath.Join(dir, e.Name()), os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("XXXXXXXX"), 0); err != nil {
				t.Fatal(err)
			}
			f.Close()
			clobbered = true
		}
	}
	if !clobbered {
		t.Fatal("no WAL file found to clobber")
	}

	b := newTestCoordinator(t, 2)
	rs, err := b.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatalf("one bad file aborted recovery: %v", err)
	}
	defer b.CloseJournals()
	if rs.BadFiles != 1 {
		t.Fatalf("BadFiles = %d, want 1 (stats %+v)", rs.BadFiles, rs)
	}
	// The intact shard's sessions came back; the clobbered shard's are
	// gone (and that is the honest outcome — nothing was salvageable).
	if rs.Users == 0 || rs.Users >= len(users) {
		t.Fatalf("recovered %d users from one intact file of %d total sessions", rs.Users, len(users))
	}
}

// TestCloseJournalsFailsLateSets: after CloseJournals a session update
// must fail loudly — the update stays applied in memory but the caller
// gets no acknowledgement, so there is no silent durability gap.
func TestCloseJournalsFailsLateSets(t *testing.T) {
	dir := t.TempDir()
	c := newTestCoordinator(t, 2)
	if _, err := c.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetSession("early", sessionFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseJournals(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetSession("late", sessionFor(1)); err == nil {
		t.Fatal("session update after CloseJournals succeeded silently")
	}
}
