package shard

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// journalManifestName is the pointer to the current journal generation.
// Like the snapshot manifest it is the only thing that makes a generation
// authoritative, and it is switched by atomic rename — so a crash at any
// instant during boot-time replay leaves it pointing at a complete
// generation (the previous one until the switch, the new one after),
// never at a half-replayed mix.
const journalManifestName = "journal.manifest.json"

// journalManifestVersion guards the directory layout, not the per-file
// frame format (the journal file carries its own magic).
const journalManifestVersion = 1

type journalManifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Gen     string `json:"gen"`
}

// journalFile names shard i's WAL within journal generation gen.
func journalFile(dir, gen string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("sessions-%s-%03d.wal", gen, i))
}

// RecoveryStats describes a boot-time session recovery: how much of the
// previous incarnation's journaled state came back, and how.
type RecoveryStats struct {
	// Files is how many previous-generation journal files were read.
	Files int
	// Records is the total valid records replayed (sets + drops).
	Records int
	// Users is the number of distinct users with a live session after the
	// replay (sets applied minus drops).
	Users int
	// Drops counts replayed drop records.
	Drops int
	// Failed counts records whose re-apply errored (e.g. vocabulary
	// missing from the restored snapshot); replay continues past them,
	// and the raw records are preserved in the new generation so a later
	// boot — perhaps after the missing vocabulary is restored — can retry
	// instead of losing the only copy to the stale-file cleanup.
	Failed int
	// BadFiles counts previous-generation files rejected outright (e.g.
	// an overwritten header). Nothing in such a file is salvageable, but
	// one corrupt file must not brick every subsequent boot: recovery
	// counts it and carries on with the remaining shards' journals.
	BadFiles int
	// FingerprintMismatches counts sets whose recomputed fingerprint
	// differed from the journaled one — always zero unless the
	// fingerprint function changed between incarnations.
	FingerprintMismatches int
	// TornFiles counts files that ended in a torn or corrupt tail (the
	// valid prefix was still replayed).
	TornFiles int
}

// RecoverSessions makes the coordinator's session state crash-durable
// against dir, in three steps:
//
//  1. A fresh journal generation is created — one WAL per shard — and
//     attached to every shard's server, so session traffic is journaled
//     from here on.
//  2. The previous generation (per the journal manifest, if any) is
//     replayed through the coordinator's *routed* SetSession/DropSession:
//     each record lands on whatever shard owns its user at the current
//     shard count, so recovery at a different -shards value reassigns
//     sessions exactly like live traffic would — and, because the routed
//     applies are themselves journaled, the replay simultaneously rewrites
//     the surviving state into the new generation (a free compaction).
//  3. The manifest is switched to the new generation by atomic rename and
//     superseded files are removed best-effort.
//
// A crash before step 3's rename leaves the manifest on the old
// generation: the next boot replays the same complete state again
// (replay is idempotent — a Set replaces, a Drop of an absent user is a
// no-op) and the partial new-generation files are cleaned up as stale.
//
// Call once, after construction (and snapshot restore) but before serving
// traffic. Pair with CloseJournals on shutdown.
func (c *Coordinator) RecoverSessions(dir string, opts journal.Options) (RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, fmt.Errorf("shard: journal dir: %w", err)
	}

	var prev *journalManifest
	raw, err := os.ReadFile(filepath.Join(dir, journalManifestName))
	switch {
	case err == nil:
		var m journalManifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return stats, fmt.Errorf("shard: parsing journal manifest: %w", err)
		}
		if m.Version != journalManifestVersion {
			return stats, fmt.Errorf("shard: journal manifest version %d unsupported (want %d)", m.Version, journalManifestVersion)
		}
		if m.Shards <= 0 {
			return stats, fmt.Errorf("shard: journal manifest reports %d shards", m.Shards)
		}
		prev = &m
	case os.IsNotExist(err):
		// First boot with journaling: nothing to replay.
	default:
		return stats, fmt.Errorf("shard: reading journal manifest: %w", err)
	}

	var genBytes [8]byte
	if _, err := rand.Read(genBytes[:]); err != nil {
		return stats, fmt.Errorf("shard: journal gen id: %w", err)
	}
	gen := hex.EncodeToString(genBytes[:])
	js := make([]*journal.Journal, len(c.shards))
	for i := range c.shards {
		j, _, err := journal.Open(journalFile(dir, gen, i), opts)
		if err != nil {
			for _, open := range js[:i] {
				open.Close()
			}
			return stats, fmt.Errorf("shard: opening journal %d: %w", i, err)
		}
		js[i] = j
		c.shards[i].AttachJournal(j)
	}
	c.journals = js

	if prev != nil {
		// Replay re-journals every surviving record through the attached
		// new-generation WALs. Each routed apply waits for its record's
		// commit, strictly one at a time, so with per-batch fsync on a
		// large session population boot would pay one fsync per record.
		// Suspend syncing for the replay window (no traffic is being
		// acknowledged — RecoverSessions runs before serving) and fsync
		// once per journal before the manifest switch below makes the new
		// generation authoritative.
		if !opts.NoSync {
			for _, j := range js {
				j.SetNoSync(true)
			}
		}
		// preserve keeps a record whose re-apply failed: append it raw to
		// its routing shard's new-generation WAL so the next boot retries
		// it. Without this the manifest switch plus stale-file cleanup
		// would destroy the only copy over a possibly transient apply
		// error (classic case: the boot snapshot predates the vocabulary
		// the session references).
		var preserveErr error
		preserve := func(rec journal.Record) {
			stats.Failed++
			if err := js[ShardIndex(rec.User, len(c.shards))].Append(rec); err != nil && preserveErr == nil {
				preserveErr = err
			}
		}
		for i := 0; i < prev.Shards; i++ {
			path := journalFile(dir, prev.Gen, i)
			rs, err := journal.Replay(path, func(rec journal.Record) error {
				switch rec.Op {
				case journal.OpSet:
					fp, err := c.SetSession(rec.User, serve.FromJournalMeasurements(rec.Measurements))
					if err != nil {
						preserve(rec)
						return nil // keep replaying; one bad record must not lose the rest
					}
					if rec.Fingerprint != "" && fp != rec.Fingerprint {
						stats.FingerprintMismatches++
					}
				case journal.OpDrop:
					if err := c.DropSession(rec.User); err != nil {
						preserve(rec)
						return nil
					}
					stats.Drops++
				default:
					// A record from a newer format revision: preserve it
					// verbatim rather than abort (or silently drop) — a
					// downgrade-then-upgrade cycle keeps the data.
					preserve(rec)
				}
				return nil
			})
			if err != nil {
				stats.BadFiles++
				continue
			}
			if rs.Records > 0 || rs.Torn {
				stats.Files++
			}
			stats.Records += rs.Records
			if rs.Torn {
				stats.TornFiles++
			}
		}
		stats.Users = c.Stats().Sessions
		if preserveErr != nil {
			// A failed-replay record could not be written into the new
			// generation: abort *before* the manifest switch, so the old
			// generation — the only copy — stays authoritative and the
			// next boot retries. Proceeding would let the stale-file
			// cleanup delete the record while stats call it preserved.
			return stats, fmt.Errorf("shard: preserving failed records in new journal generation: %w", preserveErr)
		}
		if !opts.NoSync {
			for _, j := range js {
				j.SetNoSync(false)
				if err := j.Sync(); err != nil {
					return stats, fmt.Errorf("shard: syncing replayed journal: %w", err)
				}
			}
		}
	}

	// Publish the new generation durably: WAL file data is already
	// fsynced (per batch, or by the barrier above), so what remains is
	// metadata — the WAL directory entries, the manifest's *content*
	// (WriteFileSync; a bare os.WriteFile could leave a zero-length
	// manifest after a power cut, bricking every subsequent boot), and
	// the rename itself. Only after all of that is the old generation
	// eligible for deletion.
	journal.SyncDir(dir)
	mf, err := json.Marshal(journalManifest{Version: journalManifestVersion, Shards: len(c.shards), Gen: gen})
	if err != nil {
		return stats, err
	}
	tmp := filepath.Join(dir, journalManifestName+".tmp")
	if err := journal.WriteFileSync(tmp, mf, 0o644); err != nil {
		return stats, fmt.Errorf("shard: journal manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, journalManifestName)); err != nil {
		return stats, fmt.Errorf("shard: journal manifest: %w", err)
	}
	journal.SyncDir(dir)
	removeStaleJournals(dir, gen)
	return stats, nil
}

// removeStaleJournals best-effort deletes WAL files from generations other
// than keep — superseded generations, or leftovers of a boot that crashed
// before its manifest switch.
func removeStaleJournals(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "sessions-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		if !strings.HasPrefix(name, "sessions-"+keep+"-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// CloseJournals detaches nothing — shards keep their references — but
// drains and closes every journal opened by RecoverSessions, returning
// the first error. Call after HTTP shutdown: a Set racing Close gets an
// explicit journal-closed error instead of a silent durability gap.
func (c *Coordinator) CloseJournals() error {
	var first error
	for _, j := range c.journals {
		if j == nil {
			continue
		}
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// journalOrZero unwraps an aggregate journal-stats pointer for merging.
func journalOrZero(s *journal.Stats) journal.Stats {
	if s == nil {
		return journal.Stats{}
	}
	return *s
}
