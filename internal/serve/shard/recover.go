package shard

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// journalManifestName is the pointer to the current journal generation.
// Like the snapshot manifest it is the only thing that makes a generation
// authoritative, and it is switched by atomic rename — so a crash at any
// instant during boot-time replay leaves it pointing at a complete
// generation (the previous one until the switch, the new one after),
// never at a half-replayed mix.
const journalManifestName = "journal.manifest.json"

// journalManifestVersion guards the directory layout, not the per-file
// frame format (the journal file carries its own magic).
const journalManifestVersion = 1

type journalManifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Gen     string `json:"gen"`
}

// journalFile names shard i's WAL within journal generation gen.
func journalFile(dir, gen string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("sessions-%s-%03d.wal", gen, i))
}

// RecoveryStats describes a boot-time recovery: how much of the previous
// incarnation's journaled state came back, and how. Defined in serve so
// the stats/metrics layer can reference it without an import cycle.
type RecoveryStats = serve.RecoveryStats

// Recover makes the coordinator's state crash-durable against dir, in
// three steps:
//
//  1. A fresh journal generation is created — one WAL per shard — and
//     attached to every shard's server, so every acknowledged mutation
//     (session applies AND vocabulary/data writes) is journaled from
//     here on.
//  2. The previous generation (per the journal manifest, if any) is
//     replayed in per-file sequence order. Session records go through the
//     coordinator's *routed* SetSession/DropSession: each lands on
//     whatever shard owns its user at the current shard count, so
//     recovery at a different -shards value reassigns sessions exactly
//     like live traffic would. Vocabulary records go through the
//     *broadcast* apply path under their original broadcast id; because
//     every shard's WAL carries a copy of every broadcast, the id dedups
//     them to exactly one apply, and records the restored snapshot
//     already covers (per the snapshot manifest's checkpoint fields,
//     matched by journal generation) are skipped outright. Because the
//     routed/broadcast applies are themselves journaled, the replay
//     simultaneously rewrites the surviving state into the new
//     generation (a free compaction).
//  3. The manifest is switched to the new generation by atomic rename and
//     superseded files are removed best-effort.
//
// A crash before step 3's rename leaves the manifest on the old
// generation: the next boot replays the same complete state again
// (session replay is idempotent, and checkpoint coverage plus broadcast
// ids make vocabulary replay exactly-once against the same snapshot) and
// the partial new-generation files are cleaned up as stale.
//
// Call once, after construction (and snapshot restore) but before serving
// traffic. Pair with CloseJournals on shutdown.
func (c *Coordinator) Recover(dir string, opts journal.Options) (RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, fmt.Errorf("shard: journal dir: %w", err)
	}

	var prev *journalManifest
	raw, err := os.ReadFile(filepath.Join(dir, journalManifestName))
	switch {
	case err == nil:
		var m journalManifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return stats, fmt.Errorf("shard: parsing journal manifest: %w", err)
		}
		if m.Version != journalManifestVersion {
			return stats, fmt.Errorf("shard: journal manifest version %d unsupported (want %d)", m.Version, journalManifestVersion)
		}
		if m.Shards <= 0 {
			return stats, fmt.Errorf("shard: journal manifest reports %d shards", m.Shards)
		}
		prev = &m
	case os.IsNotExist(err):
		// First boot with journaling: nothing to replay.
	default:
		return stats, fmt.Errorf("shard: reading journal manifest: %w", err)
	}

	var genBytes [8]byte
	if _, err := rand.Read(genBytes[:]); err != nil {
		return stats, fmt.Errorf("shard: journal gen id: %w", err)
	}
	gen := hex.EncodeToString(genBytes[:])
	js := make([]*journal.Journal, len(c.shards))
	for i := range c.shards {
		j, _, err := journal.Open(journalFile(dir, gen, i), opts)
		if err != nil {
			for _, open := range js[:i] {
				open.Close()
			}
			return stats, fmt.Errorf("shard: opening journal %d: %w", i, err)
		}
		js[i] = j
		c.shards[i].AttachJournal(j)
	}
	c.journals = js
	c.journalGen = gen
	c.journalDir = dir
	c.fs = opts.FS
	if c.fs == nil {
		c.fs = journal.OSFS{}
	}

	if prev != nil {
		// Replay re-journals every surviving record through the attached
		// new-generation WALs. Each routed apply waits for its record's
		// commit, strictly one at a time, so with per-batch fsync on a
		// large session population boot would pay one fsync per record.
		// Suspend syncing for the replay window (no traffic is being
		// acknowledged — Recover runs before serving) and fsync
		// once per journal before the manifest switch below makes the new
		// generation authoritative.
		if !opts.NoSync {
			for _, j := range js {
				j.SetNoSync(true)
			}
		}
		// Checkpoint pairing: the snapshot manifest (same dir) names the
		// journal generation its checkpoint fields cover. Only when that
		// matches the generation being replayed may coverage be used to
		// skip records — an older snapshot paired with a since-replaced
		// generation says nothing about these files.
		var ckptSeqs []uint64
		var ckptBID uint64
		paired := false
		if sm, err := readSnapshotManifest(dir); err == nil && sm.JournalGen != "" && sm.JournalGen == prev.Gen {
			paired = true
			ckptSeqs = sm.CheckpointSeqs
			ckptBID = sm.CheckpointBID
		}
		// Prescan for the highest broadcast id in the old generation, and
		// seed the coordinator's counter past it *before* replaying:
		// untagged vocabulary records (written by an unsharded server) are
		// re-broadcast under fresh ids, and a fresh id colliding with a
		// historical one would make a future recovery wrongly dedup two
		// different writes.
		var maxBID uint64
		for i := 0; i < prev.Shards; i++ {
			_, _ = journal.Replay(journalFile(dir, prev.Gen, i), func(rec journal.Record) error {
				if rec.BID > maxBID {
					maxBID = rec.BID
				}
				return nil
			})
		}
		c.bid.Store(maxBID)
		// preserve keeps a record whose re-apply failed: append it raw to
		// its routing shard's new-generation WAL so the next boot retries
		// it. Without this the manifest switch plus stale-file cleanup
		// would destroy the only copy over a possibly transient apply
		// error (classic case: the boot snapshot predates the vocabulary
		// the session references). The Preserved flag exempts the record
		// from checkpoint truncation — its effect is not in any snapshot.
		var preserveErr error
		preserve := func(rec journal.Record) {
			stats.Failed++
			rec.Preserved = true
			if err := js[ShardIndex(rec.User, len(c.shards))].Append(rec); err != nil && preserveErr == nil {
				preserveErr = err
			}
		}
		seenBID := make(map[uint64]bool)
		for i := 0; i < prev.Shards; i++ {
			var covered uint64
			if paired && i < len(ckptSeqs) {
				covered = ckptSeqs[i]
			}
			path := journalFile(dir, prev.Gen, i)
			rs, err := journal.Replay(path, func(rec journal.Record) error {
				switch rec.Op {
				case journal.OpSet:
					fp, err := c.SetSession(rec.User, serve.FromJournalMeasurements(rec.Measurements))
					if err != nil {
						preserve(rec)
						return nil // keep replaying; one bad record must not lose the rest
					}
					if rec.Fingerprint != "" && fp != rec.Fingerprint {
						stats.FingerprintMismatches++
					}
				case journal.OpDrop:
					if err := c.DropSession(rec.User); err != nil {
						preserve(rec)
						return nil
					}
					stats.Drops++
				case journal.OpDeclare, journal.OpAssert, journal.OpAddRules, journal.OpRemoveRule, journal.OpExec:
					// Skip what the restored snapshot already contains —
					// by this shard's sequence cut, or by the broadcast
					// frontier (both generation-gated above). Preserved
					// records never applied, so no snapshot covers them.
					if !rec.Preserved && paired && (rec.Seq <= covered || (rec.BID > 0 && rec.BID <= ckptBID)) {
						stats.SkippedCheckpoint++
						return nil
					}
					// Every shard's WAL carries every broadcast; apply
					// the first copy, dedup the rest by broadcast id.
					if rec.BID > 0 && seenBID[rec.BID] {
						stats.SkippedDuplicate++
						return nil
					}
					if err := c.applyVocabRecord(rec); err != nil {
						preserve(rec)
						return nil
					}
					if rec.BID > 0 {
						seenBID[rec.BID] = true
					}
					switch rec.Op {
					case journal.OpDeclare:
						stats.Declares++
					case journal.OpAssert:
						stats.Asserts++
					case journal.OpAddRules:
						stats.RuleAdds++
					case journal.OpRemoveRule:
						stats.RuleRemoves++
					case journal.OpExec:
						stats.Execs++
					}
				case journal.OpSubscribe:
					// Standing subscriptions re-register through the routed
					// path: the re-subscribe journals into the new generation
					// and the push stream resumes without the client
					// re-subscribing (it reconnects to the same id).
					if rec.Subscription == nil {
						preserve(rec)
						return nil
					}
					spec := serve.FromJournalSubscription(rec.User, *rec.Subscription)
					if _, err := c.Subscribe(rec.SubID, spec); err != nil {
						preserve(rec)
						return nil
					}
					stats.Subscribes++
				case journal.OpUnsubscribe:
					// Replay order within a file matches append order, so this
					// retires any earlier re-subscribe of the id.
					if _, err := c.Unsubscribe(rec.SubID); err != nil {
						preserve(rec)
						return nil
					}
					stats.Unsubscribes++
				default:
					// A record from a newer format revision: preserve it
					// verbatim rather than abort (or silently drop) — a
					// downgrade-then-upgrade cycle keeps the data.
					preserve(rec)
				}
				return nil
			})
			if err != nil {
				stats.BadFiles++
				continue
			}
			if rs.Records > 0 || rs.Torn {
				stats.Files++
			}
			stats.Records += rs.Records
			if rs.Torn {
				stats.TornFiles++
			}
		}
		stats.Users = c.Stats().Sessions
		if preserveErr != nil {
			// A failed-replay record could not be written into the new
			// generation: abort *before* the manifest switch, so the old
			// generation — the only copy — stays authoritative and the
			// next boot retries. Proceeding would let the stale-file
			// cleanup delete the record while stats call it preserved.
			return stats, fmt.Errorf("shard: preserving failed records in new journal generation: %w", preserveErr)
		}
		if !opts.NoSync {
			for _, j := range js {
				j.SetNoSync(false)
				if err := j.Sync(); err != nil {
					return stats, fmt.Errorf("shard: syncing replayed journal: %w", err)
				}
			}
		}
	}

	// Publish the new generation durably: WAL file data is already
	// fsynced (per batch, or by the barrier above), so what remains is
	// metadata — the WAL directory entries, the manifest's *content*
	// (WriteFileSync; a bare os.WriteFile could leave a zero-length
	// manifest after a power cut, bricking every subsequent boot), and
	// the rename itself. Only after all of that is the old generation
	// eligible for deletion.
	journal.SyncDirFS(c.fs, dir)
	mf, err := json.Marshal(journalManifest{Version: journalManifestVersion, Shards: len(c.shards), Gen: gen})
	if err != nil {
		return stats, err
	}
	tmp := filepath.Join(dir, journalManifestName+".tmp")
	if err := journal.WriteFileSyncFS(c.fs, tmp, mf, 0o644); err != nil {
		return stats, fmt.Errorf("shard: journal manifest: %w", err)
	}
	if err := c.fs.Rename(tmp, filepath.Join(dir, journalManifestName)); err != nil {
		return stats, fmt.Errorf("shard: journal manifest: %w", err)
	}
	journal.SyncDirFS(c.fs, dir)
	removeStaleJournals(dir, gen)
	published := stats
	c.recovery.Store(&published)
	return stats, nil
}

// applyVocabRecord re-applies one journaled vocabulary record through the
// broadcast path — every shard applies it and journals it into the new
// generation. A record tagged with a broadcast id keeps it (so the new
// generation's copies dedup exactly like the old one's); an untagged
// record (unsharded-server history) is re-broadcast under a fresh id.
func (c *Coordinator) applyVocabRecord(rec journal.Record) error {
	var err error
	apply := func(fn func(i int, s *serve.Server, bid uint64) (int64, error)) {
		if rec.BID > 0 {
			_, err = c.broadcastBID(rec.BID, fn)
		} else {
			_, err = c.broadcast(fn)
		}
	}
	switch rec.Op {
	case journal.OpDeclare:
		subs := make([]serve.SubConceptDecl, len(rec.Subs))
		for i, sd := range rec.Subs {
			subs[i] = serve.SubConceptDecl{Sub: sd.Sub, Super: sd.Super}
		}
		apply(func(_ int, s *serve.Server, bid uint64) (int64, error) {
			return s.DeclareTagged(bid, rec.Concepts, rec.Roles, subs)
		})
	case journal.OpAssert:
		concepts := make([]serve.ConceptAssertion, len(rec.ConceptAsserts))
		for i, a := range rec.ConceptAsserts {
			concepts[i] = serve.ConceptAssertion{Concept: a.Concept, ID: a.ID, Prob: a.Prob}
		}
		roles := make([]serve.RoleAssertion, len(rec.RoleAsserts))
		for i, a := range rec.RoleAsserts {
			roles[i] = serve.RoleAssertion{Role: a.Role, Src: a.Src, Dst: a.Dst, Prob: a.Prob}
		}
		apply(func(_ int, s *serve.Server, bid uint64) (int64, error) {
			return s.AssertTagged(bid, concepts, roles)
		})
	case journal.OpAddRules:
		apply(func(_ int, s *serve.Server, bid uint64) (int64, error) {
			_, e, aerr := s.AddRulesTagged(bid, rec.Rules)
			return e, aerr
		})
	case journal.OpRemoveRule:
		apply(func(_ int, s *serve.Server, bid uint64) (int64, error) {
			return s.RemoveRuleTagged(bid, rec.Rule)
		})
	case journal.OpExec:
		apply(func(_ int, s *serve.Server, bid uint64) (int64, error) {
			_, e, xerr := s.ExecTagged(bid, rec.Stmt)
			return e, xerr
		})
	default:
		return fmt.Errorf("shard: not a vocabulary record (op %d)", rec.Op)
	}
	return err
}

// removeStaleJournals best-effort deletes WAL files from generations other
// than keep — superseded generations, or leftovers of a boot that crashed
// before its manifest switch.
func removeStaleJournals(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "sessions-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		if !strings.HasPrefix(name, "sessions-"+keep+"-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// CloseJournals detaches nothing — shards keep their references — but
// drains and closes every journal opened by Recover, returning
// the first error. Call after HTTP shutdown: a Set racing Close gets an
// explicit journal-closed error instead of a silent durability gap.
func (c *Coordinator) CloseJournals() error {
	var first error
	for _, j := range c.journals {
		if j == nil {
			continue
		}
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// journalOrZero unwraps an aggregate journal-stats pointer for merging.
func journalOrZero(s *journal.Stats) journal.Stats {
	if s == nil {
		return journal.Stats{}
	}
	return *s
}

// subsOrZero unwraps an aggregate subscription-stats pointer for merging.
func subsOrZero(s *serve.SubscriptionStats) serve.SubscriptionStats {
	if s == nil {
		return serve.SubscriptionStats{}
	}
	return *s
}
