package shard

import (
	"sync"
	"time"
)

// CheckpointerOptions tunes the background checkpointer.
type CheckpointerOptions struct {
	// Interval triggers a checkpoint when this much time has passed since
	// the last one (or since start). Zero disables the time trigger.
	Interval time.Duration
	// Bytes triggers a checkpoint when the WALs hold at least this many
	// bytes of vocabulary records not yet covered by a checkpoint, summed
	// across shards. Zero disables the size trigger.
	Bytes int64
	// Poll is how often the triggers are evaluated. Defaults to 1s (or
	// Interval, if smaller).
	Poll time.Duration
	// OnError, if set, receives checkpoint failures. The checkpointer
	// keeps running either way — the next poll retries.
	OnError func(error)
}

// StartCheckpointer runs background checkpoints into dir until the
// returned stop function is called. A checkpoint fires when either
// trigger in opts says so; both disabled means the loop idles (stop
// still works). Failures count into Stats().Checkpoints.Failures and go
// to opts.OnError; the WAL keeps growing until a later attempt succeeds,
// so no durability is lost, only bound.
//
// Stop waits for an in-flight checkpoint to finish. Call it before the
// shutdown snapshot so the final Checkpoint cannot race a background
// one.
func (c *Coordinator) StartCheckpointer(dir string, opts CheckpointerOptions) (stop func()) {
	poll := opts.Poll
	if poll <= 0 {
		poll = time.Second
	}
	if opts.Interval > 0 && opts.Interval < poll {
		poll = opts.Interval
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := time.Now()
		ticker := time.NewTicker(poll)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			due := opts.Interval > 0 && time.Since(last) >= opts.Interval
			if !due && opts.Bytes > 0 && c.vocabWALBytes() >= opts.Bytes {
				due = true
			}
			if !due {
				continue
			}
			c.checkpointTimed(dir, opts.OnError)
			last = time.Now()
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// vocabWALBytes sums the framed bytes of checkpointable vocabulary
// records currently retained across all shard WALs.
func (c *Coordinator) vocabWALBytes() int64 {
	var total int64
	for _, j := range c.journals {
		if j != nil {
			total += j.Stats().VocabBytes
		}
	}
	return total
}

// checkpointTimed runs one checkpoint and records its outcome in the
// coordinator's checkpoint counters (surfaced via Stats).
func (c *Coordinator) checkpointTimed(dir string, onError func(error)) {
	start := time.Now()
	err := c.Checkpoint(dir)
	if err != nil {
		c.ckptFailures.Add(1)
		if onError != nil {
			onError(err)
		}
		return
	}
	c.ckptCount.Add(1)
	c.ckptLastUnix.Store(time.Now().Unix())
	c.ckptLastDurUs.Store(time.Since(start).Microseconds())
	var maxSeq uint64
	for _, j := range c.journals {
		if j != nil {
			if s := j.Stats().CheckpointSeq; s > maxSeq {
				maxSeq = s
			}
		}
	}
	c.ckptLastSeq.Store(maxSeq)
}
