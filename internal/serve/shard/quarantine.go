package shard

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// ErrQuarantined marks an operation refused because a shard is
// quarantined and its repair has not completed yet. Checkpoint returns
// it rather than cutting a snapshot that would freeze the divergence.
// The sentinel lives in serve (the error-envelope layer maps it to a
// machine-readable code there; serve cannot import shard).
var ErrQuarantined = serve.ErrQuarantined

// maxQuarantineShards bounds the quarantine bitmask. A coordinator with
// more shards still works — shards past the mask just never quarantine
// (broadcast errors surface to the caller as before).
const maxQuarantineShards = 64

// quarState is the coordinator's quarantine domain: which shards are
// fenced off from broadcasts and routing, why, and which users were
// rerouted to replicas while their home shard was out.
//
// The mask is the routing hot-path view (one atomic load; zero means
// every per-user operation takes the exact pre-quarantine path). All
// other state — per-shard info, consecutive-failure streaks, the
// rerouted-user set — changes only under mu, and mask writes happen
// under mu too, so slow-path readers that hold mu see a consistent
// picture.
type quarState struct {
	mask atomic.Uint64

	mu        sync.Mutex
	info      map[int]*quarInfo
	streak    []int          // consecutive broadcast failures per shard
	streakMin []uint64       // lowest failed BID in the current streak
	rerouted  map[string]int // user -> home shard, sessions applied on a replica

	quarantines   atomic.Int64
	repairs       atomic.Int64
	repairSkipped atomic.Int64
}

// quarInfo describes one quarantined shard.
type quarInfo struct {
	sinceBID uint64 // every broadcast with BID > sinceBID was missed
	since    time.Time
	reason   string
}

func (q *quarState) init(n int) {
	q.info = make(map[int]*quarInfo)
	q.streak = make([]int, n)
	q.streakMin = make([]uint64, n)
	q.rerouted = make(map[string]int)
}

func maskBit(i int) uint64 {
	if i < 0 || i >= maxQuarantineShards {
		return 0
	}
	return 1 << uint(i)
}

// rerouteIndex picks the replacement shard for a user whose home shard
// is quarantined: jump-hash over the healthy subset, so every rerouted
// user lands deterministically on the same replica until the mask
// changes. Allocation-free (the quarantined path is rare but sits under
// the rank hot path).
func rerouteIndex(user string, mask uint64, n int) int {
	healthy := n - bits.OnesCount64(mask)
	if healthy <= 0 {
		return ShardIndex(user, n)
	}
	k := ShardIndex(user, healthy)
	for i := 0; i < n; i++ {
		if mask&maskBit(i) != 0 {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return ShardIndex(user, n)
}

// routeFor is ShardFor with quarantine awareness: the user's home shard
// unless it is quarantined, in which case a healthy replica. With an
// empty mask this is exactly ShardIndex plus one atomic load.
func (c *Coordinator) routeFor(user string) int {
	home := ShardIndex(user, len(c.shards))
	mask := c.quar.mask.Load()
	if mask == 0 || mask&maskBit(home) == 0 {
		return home
	}
	return rerouteIndex(user, mask, len(c.shards))
}

// SetQuarantineAfter arms quarantining: a shard whose broadcast applies
// fail (or panic) this many times consecutively is fenced off and
// repaired in the background. Zero (the default) disables quarantining —
// broadcast errors surface to the caller as before.
func (c *Coordinator) SetQuarantineAfter(n int) { c.quarAfter.Store(int64(n)) }

// SetFaultInjector attaches a fault injector to the coordinator's rank
// and broadcast paths (points rank.serve and broadcast.apply). Nil
// detaches. The disabled cost is one atomic pointer load per operation.
func (c *Coordinator) SetFaultInjector(in *faultinject.Injector) { c.chaos.Store(in) }

// FaultInjector returns the attached injector (nil when none).
func (c *Coordinator) FaultInjector() *faultinject.Injector { return c.chaos.Load() }

// Quarantined returns the quarantined shard indexes in order.
func (c *Coordinator) Quarantined() []int {
	mask := c.quar.mask.Load()
	if mask == 0 {
		return nil
	}
	var out []int
	for i := range c.shards {
		if mask&maskBit(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// noteBroadcastResult updates shard i's consecutive-failure streak after
// a broadcast and quarantines it when the armed threshold is crossed.
// Returns true when the error was absorbed by a quarantine (the caller
// suppresses it: the write is durable on the healthy shards and repair
// will replay it onto this one).
//
// ErrDegraded never counts: a degraded journal is a disk problem handled
// by the probe/degraded machinery, not a divergence — and broadcast
// pre-checks reject before applying anywhere, so nothing was missed.
func (c *Coordinator) noteBroadcastResult(i int, bid uint64, err error) (absorbed bool) {
	threshold := int(c.quarAfter.Load())
	if threshold <= 0 {
		return false
	}
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	if err == nil || errors.Is(err, serve.ErrDegraded) {
		c.quar.streak[i] = 0
		return false
	}
	// The streak's lowest failed BID marks the replay horizon: every
	// broadcast in a consecutive-failure streak was applied (and
	// journaled) on the healthy shards, so repair must replay all of
	// them, not just the one that crossed the threshold. Broadcasts run
	// concurrently, so the minimum — not the first observed — is what
	// bounds the missed range.
	if c.quar.streak[i] == 0 || bid < c.quar.streakMin[i] {
		c.quar.streakMin[i] = bid
	}
	c.quar.streak[i]++
	if c.quar.streak[i] < threshold {
		return false
	}
	return c.quarantineLocked(i, c.quar.streakMin[i]-1, err)
}

// quarantineLocked fences shard i (mu held). The last healthy shard is
// never quarantined — routing and repair both need a live replica, so
// its errors keep surfacing to callers instead.
func (c *Coordinator) quarantineLocked(i int, sinceBID uint64, cause error) bool {
	bit := maskBit(i)
	if bit == 0 {
		return false
	}
	mask := c.quar.mask.Load()
	if mask&bit != 0 {
		return true // already quarantined; absorb repeat errors too
	}
	healthy := 0
	for k := range c.shards {
		if mask&maskBit(k) == 0 {
			healthy++
		}
	}
	if healthy <= 1 {
		return false
	}
	c.quar.info[i] = &quarInfo{sinceBID: sinceBID, since: time.Now(), reason: cause.Error()}
	c.quar.streak[i] = 0
	c.quar.mask.Store(mask | bit)
	c.quar.quarantines.Add(1)
	return true
}

// RepairShard replays everything a quarantined shard missed from a
// healthy replica's WAL and readmits it. It runs under the broadcast
// gate's write side: no broadcast is in flight, so the healthy WALs
// already hold every record with BID > the quarantine point, and no new
// one can land mid-repair.
//
// Records are applied through the shard's Tagged mutators under their
// original broadcast ids, so the repaired shard's own WAL stays an
// independently replayable full log. An apply that fails twice is
// skipped and counted (Stats reports RepairSkipped) rather than wedging
// the repair — broadcast writes are assert-style and a later broadcast
// of the same fact converges the replica. A *panic* during the replay is
// different: the engine is still wedged, so the repair aborts (behind a
// recover barrier — it must not kill the probe goroutine) and the shard
// stays quarantined for the next probe round. The attached fault
// injector fires at broadcast.apply here too, so an armed per-shard
// fault keeps the shard fenced until it is cleared, exactly like a real
// still-broken engine.
//
// After the replay, sessions applied on replicas while the shard was out
// are migrated back to it, and the shard rejoins routing and broadcasts.
func (c *Coordinator) RepairShard(i int) error {
	c.bcastGate.Lock()
	defer c.bcastGate.Unlock()

	c.quar.mu.Lock()
	info := c.quar.info[i]
	mask := c.quar.mask.Load()
	c.quar.mu.Unlock()
	if info == nil {
		return nil
	}

	if c.journals != nil {
		src := -1
		for k := range c.shards {
			if k != i && mask&maskBit(k) == 0 {
				src = k
				break
			}
		}
		if src < 0 {
			return errors.New("shard: no healthy replica to repair from")
		}
		target := c.shards[i]
		if err := c.replayOntoShard(i, src, target, info.sinceBID); err != nil {
			return fmt.Errorf("shard: repairing shard %d from shard %d: %w", i, src, err)
		}
	} else if c.bid.Load() != info.sinceBID {
		// Without journals there is no log to replay the missed
		// broadcasts from; the shard can only rejoin if nothing was
		// broadcast while it was out.
		return errors.New("shard: cannot repair without journals: broadcasts were missed")
	}

	c.quar.mu.Lock()
	for user, home := range c.quar.rerouted {
		if home != i {
			continue
		}
		alt := rerouteIndex(user, mask, len(c.shards))
		if ms, _, ok := c.shards[alt].SessionInfo(user); ok {
			if _, err := c.shards[i].SetSession(user, ms); err == nil {
				c.shards[alt].DropSession(user)
			}
		} else {
			// Dropped (or expired) while rerouted: make sure no
			// pre-quarantine session survives on the home shard.
			c.shards[i].DropSession(user)
		}
		delete(c.quar.rerouted, user)
	}
	// Migrate standing subscriptions home the same way: any subscription
	// whose owner routes to the repaired shard but that lives elsewhere
	// was rerouted (or created) while the shard was out. Re-register on
	// the home shard, then retire the replica's copy; both sides journal,
	// so the WALs track the move. The replica-side stream ends — the SSE
	// layer tells the consumer to reconnect, which finds the home copy.
	for k, s := range c.shards {
		if k == i {
			continue
		}
		for _, info := range s.Subscriptions() {
			if ShardIndex(info.User, len(c.shards)) != i {
				continue
			}
			spec := serve.SubscriptionSpec{
				User: info.User, Target: info.Target, Candidates: info.Candidates,
				Threshold: info.Threshold, Limit: info.Limit, TopK: info.TopK,
			}
			if _, err := c.shards[i].Subscribe(info.ID, spec); err == nil {
				s.Unsubscribe(info.ID)
			}
		}
	}
	delete(c.quar.info, i)
	c.quar.streak[i] = 0
	c.quar.mask.Store(c.quar.mask.Load() &^ maskBit(i))
	c.quar.mu.Unlock()
	c.quar.repairs.Add(1)
	return nil
}

// replayOntoShard replays shard src's WAL records with BID > sinceBID
// onto target (shard i), converting a panic into an error so a
// still-wedged engine aborts the repair instead of the process.
func (c *Coordinator) replayOntoShard(i, src int, target *serve.Server, sinceBID uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			serve.NotePanic()
			err = fmt.Errorf("panic during repair: %v", r)
		}
	}()
	_, err = journal.Replay(journalFile(c.journalDir, c.journalGen, src), func(rec journal.Record) error {
		if !rec.Op.IsVocab() || rec.BID <= sinceBID {
			return nil
		}
		if in := c.chaos.Load(); in != nil {
			if ferr := in.Fire(faultinject.BroadcastApply, i); ferr != nil {
				return ferr // shard still faulted: abort, stay quarantined
			}
		}
		aerr := applyVocabToShard(target, rec)
		if aerr != nil {
			aerr = applyVocabToShard(target, rec) // one retry: transient (journal hiccup) vs real
		}
		if aerr != nil {
			c.quar.repairSkipped.Add(1)
		}
		return nil
	})
	return err
}

// applyVocabToShard re-applies one journaled vocabulary record to a
// single shard under its original broadcast id — the single-shard twin
// of applyVocabRecord, used by quarantine repair.
func applyVocabToShard(s *serve.Server, rec journal.Record) error {
	var err error
	switch rec.Op {
	case journal.OpDeclare:
		subs := make([]serve.SubConceptDecl, len(rec.Subs))
		for i, sd := range rec.Subs {
			subs[i] = serve.SubConceptDecl{Sub: sd.Sub, Super: sd.Super}
		}
		_, err = s.DeclareTagged(rec.BID, rec.Concepts, rec.Roles, subs)
	case journal.OpAssert:
		concepts := make([]serve.ConceptAssertion, len(rec.ConceptAsserts))
		for i, a := range rec.ConceptAsserts {
			concepts[i] = serve.ConceptAssertion{Concept: a.Concept, ID: a.ID, Prob: a.Prob}
		}
		roles := make([]serve.RoleAssertion, len(rec.RoleAsserts))
		for i, a := range rec.RoleAsserts {
			roles[i] = serve.RoleAssertion{Role: a.Role, Src: a.Src, Dst: a.Dst, Prob: a.Prob}
		}
		_, err = s.AssertTagged(rec.BID, concepts, roles)
	case journal.OpAddRules:
		_, _, err = s.AddRulesTagged(rec.BID, rec.Rules)
	case journal.OpRemoveRule:
		_, err = s.RemoveRuleTagged(rec.BID, rec.Rule)
	case journal.OpExec:
		_, _, err = s.ExecTagged(rec.BID, rec.Stmt)
	default:
		err = fmt.Errorf("shard: not a vocabulary record (op %d)", rec.Op)
	}
	return err
}

// ProbeHealth runs one round of self-healing: every degraded shard gets
// a disk probe (re-arming its journal and re-journaling the unjournaled
// tail), and every quarantined shard gets a repair attempt. Returns the
// first error (probing/repairing continues past failures — each shard
// heals independently).
func (c *Coordinator) ProbeHealth() error {
	var first error
	for i, s := range c.shards {
		if !s.Degraded() {
			continue
		}
		if err := s.ProbeDisk(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: disk probe: %w", i, err)
		}
	}
	for _, i := range c.Quarantined() {
		if err := c.RepairShard(i); err != nil && first == nil {
			first = fmt.Errorf("shard %d: repair: %w", i, err)
		}
	}
	return first
}

// StartHealthProbe runs ProbeHealth every interval until the returned
// stop function is called. onEvent (optional) receives one line per
// state transition or failed attempt — wire it to the daemon log.
func (c *Coordinator) StartHealthProbe(interval time.Duration, onEvent func(string)) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			degraded, quarantined := c.unhealthy()
			if len(degraded)+len(quarantined) == 0 {
				continue
			}
			err := c.ProbeHealth()
			if onEvent == nil {
				continue
			}
			switch {
			case err != nil:
				onEvent(fmt.Sprintf("health probe: degraded=%v quarantined=%v: %v", degraded, quarantined, err))
			default:
				onEvent(fmt.Sprintf("health probe: recovered degraded=%v quarantined=%v", degraded, quarantined))
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// unhealthy lists the currently degraded and quarantined shard indexes.
func (c *Coordinator) unhealthy() (degraded, quarantined []int) {
	for i, s := range c.shards {
		if s.Degraded() {
			degraded = append(degraded, i)
		}
	}
	return degraded, c.Quarantined()
}
