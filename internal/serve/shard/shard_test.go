package shard

import (
	"fmt"
	"sync"
	"testing"

	contextrank "repro"
	"repro/internal/serve"
)

// freshSystems is the trivial build function: every shard starts empty.
func freshSystems(int) (*contextrank.System, error) {
	return contextrank.NewSystem(), nil
}

// newTestCoordinator builds an n-shard coordinator preloaded (via
// broadcast) with the worked-example vocabulary, data and one rule, so
// any user on any shard can rank TvProgram.
func newTestCoordinator(t *testing.T, n int) *Coordinator {
	t.Helper()
	c, err := New(n, freshSystems, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Declare([]string{"TvProgram", "Weekend"}, []string{"hasGenre"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Assert([]serve.ConceptAssertion{
		{Concept: "TvProgram", ID: "Oprah", Prob: 1},
		{Concept: "TvProgram", ID: "BBCNews", Prob: 1},
	}, []serve.RoleAssertion{
		{Role: "hasGenre", Src: "Oprah", Dst: "HUMAN-INTEREST", Prob: 0.85},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddRules([]string{
		"RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8",
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestShardIndexStableAndBalanced(t *testing.T) {
	const users, shards = 10000, 8
	counts := make([]int, shards)
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("person%05d", i)
		s := ShardIndex(u, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardIndex(%q, %d) = %d out of range", u, shards, s)
		}
		if again := ShardIndex(u, shards); again != s {
			t.Fatalf("ShardIndex(%q, %d) unstable: %d then %d", u, shards, s, again)
		}
		counts[s]++
	}
	// Uniform hashing puts ~1250 users per shard; a 3σ-ish band catches a
	// broken mix without flaking (σ ≈ √(n·p·(1−p)) ≈ 33).
	for s, n := range counts {
		if n < 1000 || n > 1500 {
			t.Fatalf("shard %d holds %d of %d users; distribution %v", s, n, users, counts)
		}
	}
}

func TestShardIndexMatchesCoordinatorRouting(t *testing.T) {
	c := newTestCoordinator(t, 4)
	for i := 0; i < 64; i++ {
		u := fmt.Sprintf("user%d", i)
		want := ShardIndex(u, 4)
		if got := c.ShardFor(u); got != want {
			t.Fatalf("ShardFor(%q) = %d, want %d", u, got, want)
		}
		_, meta, err := c.Rank(u, "TvProgram", contextrank.RankOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if meta.Shard != want {
			t.Fatalf("rank for %q served by shard %d, want %d", u, meta.Shard, want)
		}
	}
}

func TestJumpHashMinimalMovement(t *testing.T) {
	// The defining consistent-hash property: growing n → n+1 shards moves
	// only ~1/(n+1) of the keys (a modulo hash would move ~n/(n+1)).
	const users = 10000
	for _, n := range []int{1, 2, 4, 7} {
		moved := 0
		for i := 0; i < users; i++ {
			u := fmt.Sprintf("person%05d", i)
			if ShardIndex(u, n) != ShardIndex(u, n+1) {
				moved++
			}
		}
		expect := users / (n + 1)
		if moved > expect*3/2 {
			t.Fatalf("%d→%d shards moved %d of %d users (expected ≈%d)", n, n+1, moved, users, expect)
		}
	}
}

// TestBroadcastConsistency checks the replication invariant: vocabulary,
// data and rules declared once through the coordinator are visible on
// every shard, so every shard ranks identically for session-less users.
func TestBroadcastConsistency(t *testing.T) {
	c := newTestCoordinator(t, 4)
	for i := 0; i < c.N(); i++ {
		s := c.Shard(i)
		rules := s.Rules()
		if len(rules) != 1 || rules[0].Name != "R1" {
			t.Fatalf("shard %d rules = %+v, want [R1]", i, rules)
		}
		res, err := s.Query("SELECT id FROM c_TvProgram ORDER BY id")
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("shard %d holds %d TvProgram rows, want 2", i, len(res.Rows))
		}
		// Neutral ranking (no session context) must agree across shards.
		out, err := s.Facade().RankWith("nobody", "TvProgram", contextrank.RankOptions{})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(out) != 2 {
			t.Fatalf("shard %d ranked %d candidates, want 2", i, len(out))
		}
	}
	// RemoveRule must broadcast too.
	if _, err := c.RemoveRule("R1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		if got := len(c.Shard(i).Rules()); got != 0 {
			t.Fatalf("shard %d still holds %d rules after broadcast removal", i, got)
		}
	}
}

// TestSessionsAreShardLocal checks that a session apply lands only on the
// user's shard and that the user's ranking reflects it.
func TestSessionsAreShardLocal(t *testing.T) {
	c := newTestCoordinator(t, 4)
	user := "peter"
	home := c.ShardFor(user)
	if _, err := c.SetSession(user, []serve.Measurement{{Concept: "Weekend", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		_, _, ok := c.Shard(i).SessionInfo(user)
		if want := i == home; ok != want {
			t.Fatalf("shard %d has session=%v, want %v (home shard %d)", i, ok, want, home)
		}
	}
	res, meta, err := c.Rank(user, "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Shard != home {
		t.Fatalf("rank served by shard %d, want home shard %d", meta.Shard, home)
	}
	if res[0].ID != "Oprah" {
		t.Fatalf("weekend winner = %s, want Oprah (session context not applied?)", res[0].ID)
	}
	if err := c.DropSession(user); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.SessionInfo(user); ok {
		t.Fatal("session survived DropSession")
	}
}

func TestStatsAggregation(t *testing.T) {
	c := newTestCoordinator(t, 3)
	users := []string{"a", "b", "c", "d", "e", "f"}
	for _, u := range users {
		if _, err := c.SetSession(u, []serve.Measurement{{Concept: "Weekend", Prob: 1}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Rank(u, "TvProgram", contextrank.RankOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if len(st.Shards) != 3 {
		t.Fatalf("per-shard breakdown has %d entries, want 3", len(st.Shards))
	}
	if st.Sessions != len(users) {
		t.Fatalf("aggregate sessions = %d, want %d", st.Sessions, len(users))
	}
	if st.Requests != int64(len(users)) {
		t.Fatalf("aggregate requests = %d, want %d", st.Requests, len(users))
	}
	var sum int64
	for _, sh := range st.Shards {
		sum += sh.Requests
	}
	if sum != st.Requests {
		t.Fatalf("per-shard requests sum %d != aggregate %d", sum, st.Requests)
	}
	if st.Rules != 1 {
		t.Fatalf("aggregate rules = %d, want 1 (replicated, not summed)", st.Rules)
	}
	if st.Broadcast == nil || st.Broadcast.Writes != 3 {
		t.Fatalf("broadcast stats = %+v, want 3 writes (declare, assert, rules)", st.Broadcast)
	}
	if st.Broadcast.MeanMicros <= 0 || st.Broadcast.MaxMicros < st.Broadcast.MeanMicros {
		t.Fatalf("broadcast latency not recorded: %+v", st.Broadcast)
	}
}

// TestShardSoakConcurrentAppliesAndRanks is the -race soak: concurrent
// session applies and ranks spread across shards, plus periodic broadcast
// writes, must neither race nor deadlock, and every shard must stay
// consistent with the replicated rule set afterwards.
func TestShardSoakConcurrentAppliesAndRanks(t *testing.T) {
	c := newTestCoordinator(t, 4)
	workers, iters := 8, 60
	if testing.Short() {
		workers, iters = 4, 20
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("soak-user-%d", w)
			for i := 0; i < iters; i++ {
				prob := 0.5 + 0.5*float64(i%2) // alternate certain/uncertain
				if _, err := c.SetSession(user, []serve.Measurement{{Concept: "Weekend", Prob: prob}}); err != nil {
					errc <- fmt.Errorf("worker %d set: %w", w, err)
					return
				}
				if _, _, err := c.Rank(user, "TvProgram", contextrank.RankOptions{Limit: 5}); err != nil {
					errc <- fmt.Errorf("worker %d rank: %w", w, err)
					return
				}
			}
		}(w)
	}
	// Broadcast writer: keeps the cross-shard path under contention.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			a := []serve.RoleAssertion{{Role: "hasGenre", Src: "Oprah", Dst: fmt.Sprintf("soakgenre%d", i), Prob: 0.9}}
			if _, err := c.Assert(nil, a); err != nil {
				errc <- fmt.Errorf("broadcast assert: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		if got := len(c.Shard(i).Rules()); got != 1 {
			t.Fatalf("shard %d rules = %d after soak, want 1", i, got)
		}
	}
}
