package shard

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	contextrank "repro"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// userOnShard finds a user name that jump-hashes to shard want.
func userOnShard(t *testing.T, n, want int) string {
	t.Helper()
	for i := 0; i < 10*n*n+100; i++ {
		u := fmt.Sprintf("quser%04d", i)
		if ShardIndex(u, n) == want {
			return u
		}
	}
	t.Fatalf("no user found for shard %d/%d", want, n)
	return ""
}

// TestQuarantineRepairReadmit walks the full failure-domain arc: a shard
// whose broadcast applies keep failing is fenced off after the armed
// threshold, its users reroute to a healthy replica, mutations keep
// landing on the rest, and repair replays the missed WAL range — the
// whole streak, including the failures before the threshold crossed —
// migrates rerouted sessions home and readmits the shard.
func TestQuarantineRepairReadmit(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	c := newTestCoordinator(t, n)
	if _, err := c.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()

	const bad = 1
	c.SetQuarantineAfter(2)
	in := faultinject.New(1)
	c.SetFaultInjector(in)
	shardSel := bad
	if err := in.Arm(faultinject.Fault{Point: faultinject.BroadcastApply, Shard: &shardSel, Err: "EIO"}); err != nil {
		t.Fatal(err)
	}

	// First failure: below the threshold, so the error surfaces — but
	// the healthy shards applied and journaled the write, so repair must
	// replay it later.
	if _, err := c.Assert([]serve.ConceptAssertion{{Concept: "TvProgram", ID: "Quiz", Prob: 1}},
		[]serve.RoleAssertion{{Role: "hasGenre", Src: "Quiz", Dst: "HUMAN-INTEREST", Prob: 0.9}}); err == nil {
		t.Fatal("broadcast below quarantine threshold must surface the shard error")
	}
	// Second consecutive failure crosses the threshold: the shard is
	// quarantined and the error absorbed.
	if _, err := c.Assert([]serve.ConceptAssertion{{Concept: "TvProgram", ID: "Derby", Prob: 1}},
		[]serve.RoleAssertion{{Role: "hasGenre", Src: "Derby", Dst: "HUMAN-INTEREST", Prob: 0.7}}); err != nil {
		t.Fatalf("threshold-crossing broadcast should absorb the error, got %v", err)
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != bad {
		t.Fatalf("quarantined = %v, want [%d]", q, bad)
	}
	st := c.Stats()
	if st.Health == nil || st.Health.State != serve.StateQuarantined {
		t.Fatalf("aggregate state = %+v, want quarantined", st.Health)
	}
	if st.Health.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", st.Health.Quarantines)
	}

	// Checkpoints are refused while a shard is out: a snapshot cut now
	// would let compaction drop WAL records the repair still needs.
	if err := c.Checkpoint(t.TempDir()); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Checkpoint during quarantine = %v, want ErrQuarantined", err)
	}

	// A user homed on the quarantined shard reroutes to a healthy
	// replica for sessions and ranks.
	u := userOnShard(t, n, bad)
	if _, err := c.SetSession(u, sessionFor(1)); err != nil {
		t.Fatal(err)
	}
	alt := c.routeFor(u)
	if alt == bad {
		t.Fatalf("routeFor(%s) = quarantined shard %d", u, bad)
	}
	if _, _, ok := c.shards[alt].SessionInfo(u); !ok {
		t.Fatalf("rerouted session not on replica shard %d", alt)
	}
	if _, meta, err := c.Rank(u, "TvProgram", contextrank.RankOptions{}); err != nil || meta.Shard != alt {
		t.Fatalf("rank while quarantined: shard=%d err=%v, want shard %d", meta.Shard, err, alt)
	}

	// Disk/engine recovers; one probe round repairs and readmits.
	in.Clear()
	if err := c.ProbeHealth(); err != nil {
		t.Fatalf("ProbeHealth: %v", err)
	}
	if q := c.Quarantined(); len(q) != 0 {
		t.Fatalf("still quarantined after repair: %v", q)
	}
	st = c.Stats()
	if st.Health.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1", st.Health.Repairs)
	}
	if st.Health.State != serve.StateHealthy {
		t.Fatalf("state after repair = %s", st.Health.State)
	}

	// The rerouted session migrated home.
	if _, _, ok := c.shards[bad].SessionInfo(u); !ok {
		t.Fatal("session did not migrate back to the repaired shard")
	}
	if _, _, ok := c.shards[alt].SessionInfo(u); ok {
		t.Fatal("stale session left on the replica after migration")
	}
	if got := c.routeFor(u); got != bad {
		t.Fatalf("routeFor after repair = %d, want home %d", got, bad)
	}

	// Bit-identity: the repaired shard serves the same ranking as a
	// healthy one — including Quiz and Derby, asserted while it was
	// failing (Quiz before the threshold crossed, Derby after).
	ref := userOnShard(t, n, 0)
	if _, err := c.SetSession(ref, sessionFor(1)); err != nil {
		t.Fatal(err)
	}
	home, away := rankScores(t, c, u), rankScores(t, c, ref)
	if home != away {
		t.Fatalf("repaired shard diverged:\n home %s\n  ref %s", home, away)
	}
	for _, id := range []string{"Quiz", "Derby"} {
		if !strings.Contains(home, id+"=") {
			t.Fatalf("repair lost %s (streak replay horizon wrong): %s", id, home)
		}
	}

	// Checkpoints work again after readmission.
	if err := c.Checkpoint(dir); err != nil {
		t.Fatalf("Checkpoint after repair: %v", err)
	}
}

// TestBroadcastPanicIsIsolatedAndQuarantines: a panic inside one shard's
// apply must not kill the process — it is recovered at the fan-out
// barrier, counted, and treated as that shard's failure.
func TestBroadcastPanicIsIsolatedAndQuarantines(t *testing.T) {
	const n = 2
	dir := t.TempDir()
	c := newTestCoordinator(t, n)
	if _, err := c.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()

	c.SetQuarantineAfter(1)
	in := faultinject.New(1)
	c.SetFaultInjector(in)
	shardSel := 1
	if err := in.Arm(faultinject.Fault{Point: faultinject.BroadcastApply, Shard: &shardSel, Panic: "engine corrupted"}); err != nil {
		t.Fatal(err)
	}
	before := serve.PanicsTotal()
	if _, err := c.Declare([]string{"PanicProbe"}, nil, nil); err != nil {
		t.Fatalf("panic should quarantine and be absorbed, got %v", err)
	}
	if serve.PanicsTotal() != before+1 {
		t.Fatalf("panics total = %d, want %d", serve.PanicsTotal(), before+1)
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", q)
	}

	// While the engine is still wedged (fault armed), repair must refuse
	// to readmit the shard — and must survive the panic itself.
	if err := c.RepairShard(1); err == nil {
		t.Fatal("repair readmitted a still-panicking shard")
	}
	if q := c.Quarantined(); len(q) != 1 {
		t.Fatalf("shard readmitted despite failed repair: %v", q)
	}

	in.Clear()
	if err := c.RepairShard(1); err != nil {
		t.Fatalf("RepairShard: %v", err)
	}
	// The repaired shard replayed the broadcast it panicked on and serves
	// the same rankings as the healthy one.
	u0, u1 := userOnShard(t, n, 0), userOnShard(t, n, 1)
	for _, u := range []string{u0, u1} {
		if _, err := c.SetSession(u, sessionFor(2)); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := rankScores(t, c, u0), rankScores(t, c, u1); a != b {
		t.Fatalf("repaired shard diverged:\n %s\n %s", a, b)
	}
}

// TestLastHealthyShardNeverQuarantined: fencing the only live replica
// would leave nothing to serve from or repair from, so its errors keep
// surfacing instead.
func TestLastHealthyShardNeverQuarantined(t *testing.T) {
	const n = 2
	c := newTestCoordinator(t, n)
	c.SetQuarantineAfter(1)
	in := faultinject.New(1)
	c.SetFaultInjector(in)

	s1 := 1
	if err := in.Arm(faultinject.Fault{Point: faultinject.BroadcastApply, Shard: &s1, Err: "EIO"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Declare([]string{"X1"}, nil, nil); err != nil {
		t.Fatalf("first quarantine should absorb, got %v", err)
	}
	// Now shard 0 is the last healthy one; its failures must surface and
	// it must stay in rotation.
	in.Clear()
	s0 := 0
	if err := in.Arm(faultinject.Fault{Point: faultinject.BroadcastApply, Shard: &s0, Err: "EIO"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Declare([]string{"X2"}, nil, nil); err == nil {
		t.Fatal("last healthy shard's error was absorbed")
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("quarantined = %v, want [1] only", q)
	}
}

// TestRankFaultSurfacesWithoutQuarantine: rank.serve faults hit only the
// targeted request path — reads never trigger quarantine machinery.
func TestRankFaultSurfacesWithoutQuarantine(t *testing.T) {
	const n = 2
	c := newTestCoordinator(t, n)
	c.SetQuarantineAfter(1)
	in := faultinject.New(1)
	c.SetFaultInjector(in)
	if err := in.Arm(faultinject.Fault{Point: faultinject.RankServe, Err: "EIO", Count: 1}); err != nil {
		t.Fatal(err)
	}
	u := userOnShard(t, n, 0)
	if _, _, err := c.Rank(u, "TvProgram", contextrank.RankOptions{}); err == nil {
		t.Fatal("armed rank fault did not fire")
	}
	if q := c.Quarantined(); len(q) != 0 {
		t.Fatalf("read fault quarantined a shard: %v", q)
	}
	if _, _, err := c.Rank(u, "TvProgram", contextrank.RankOptions{}); err != nil {
		t.Fatalf("rank after fault exhausted: %v", err)
	}
}

// TestCheckpointManifestRenameFailure: a failed manifest switch must
// leave the previous checkpoint generation intact and recoverable.
func TestCheckpointManifestRenameFailure(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New(1)
	c := newTestCoordinator(t, 2)
	if _, err := c.Recover(dir, journal.Options{FS: faultinject.FS(in, nil)}); err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()
	if _, err := c.SetSession("alice", sessionFor(1)); err != nil {
		t.Fatal(err)
	}

	if err := in.Arm(faultinject.Fault{Point: faultinject.FSRename, Err: "EIO", Match: "manifest"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(dir); err == nil {
		t.Fatal("Checkpoint succeeded despite manifest rename failure")
	}
	in.Clear()
	if err := c.Checkpoint(dir); err != nil {
		t.Fatalf("Checkpoint after fault cleared: %v", err)
	}

	// The durable state still restores: same sessions, same scores.
	want := rankScores(t, c, "alice")
	c.CloseJournals()
	b := newTestCoordinator(t, 2)
	if _, err := b.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer b.CloseJournals()
	if got := rankScores(t, b, "alice"); got != want {
		t.Fatalf("restore diverged:\n got %s\nwant %s", got, want)
	}
}
