package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// streamScores opens a subscription's stream and flattens its opening
// snapshot for bit-identity comparison, detaching afterwards.
func streamScores(t *testing.T, c *Coordinator, id string) string {
	t.Helper()
	st, err := c.SubscriptionStream(id)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap := st.Snapshot()
	if snap.Type != "snapshot" {
		t.Fatalf("opening event for %s is %q: %+v", id, snap.Type, snap)
	}
	var sb strings.Builder
	for _, r := range snap.Results {
		fmt.Fprintf(&sb, "%s=%v;", r.ID, r.Score)
	}
	return sb.String()
}

// TestRecoverSubscriptionsAfterCrash is the kill -9 scenario for standing
// subscriptions: journaled registrations (and one unsubscribe) with no
// clean shutdown, then a fresh coordinator over the same durable data
// must re-register the live subscriptions — same ids, same specs, same
// shard routing, bit-identical snapshot scores — and must not resurrect
// the torn-down one. The recovered subscriptions must also still push:
// a post-recovery context change produces a delta event.
func TestRecoverSubscriptionsAfterCrash(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 4)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}

	if _, err := a.SetSession("peter", sessionFor(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetSession("maria", sessionFor(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Subscribe("keep", serve.SubscriptionSpec{
		User: "peter", Target: "TvProgram", TopK: 2,
	}); err != nil {
		t.Fatal(err)
	}
	minted, err := a.Subscribe("", serve.SubscriptionSpec{
		User: "maria", Candidates: []string{"Oprah", "BBCNews"}, Threshold: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One subscription churns and is torn down: its Subscribe record must
	// not resurrect it on replay.
	if _, err := a.Subscribe("ghost", serve.SubscriptionSpec{User: "peter", Target: "TvProgram"}); err != nil {
		t.Fatal(err)
	}
	if found, err := a.Unsubscribe("ghost"); err != nil || !found {
		t.Fatalf("Unsubscribe ghost = (%v, %v)", found, err)
	}
	preKeep := streamScores(t, a, "keep")
	preMinted := streamScores(t, a, minted.ID)

	// Crash: journals deliberately left un-Closed; durability must come
	// from the per-record fsync discipline.
	b := newTestCoordinator(t, 4)
	rs, err := b.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.CloseJournals()
	// The ghost's Subscribe record is still in the WAL (compaction, not
	// replay, retires it), so replay sees 3 subscribes and the 1
	// unsubscribe that tears the ghost back down.
	if rs.Subscribes != 3 || rs.Unsubscribes != 1 || rs.Failed != 0 {
		t.Fatalf("recovery stats %+v, want 3 subscribes / 1 unsubscribe / 0 failed", rs)
	}

	subs := b.Subscriptions()
	if len(subs) != 2 {
		t.Fatalf("recovered %d subscriptions, want 2: %+v", len(subs), subs)
	}
	byID := make(map[string]serve.SubscriptionInfo, len(subs))
	for _, info := range subs {
		byID[info.ID] = info
	}
	if _, ok := byID["ghost"]; ok {
		t.Fatal("torn-down subscription resurrected by replay")
	}
	keep, ok := byID["keep"]
	if !ok {
		t.Fatalf("subscription keep missing after recovery: %+v", subs)
	}
	if keep.User != "peter" || keep.Target != "TvProgram" || keep.TopK != 2 {
		t.Fatalf("keep spec did not round-trip: %+v", keep)
	}
	if keep.Shard != b.ShardFor("peter") {
		t.Fatalf("keep routed to shard %d, want %d", keep.Shard, b.ShardFor("peter"))
	}
	m, ok := byID[minted.ID]
	if !ok {
		t.Fatalf("minted subscription %s missing after recovery", minted.ID)
	}
	if m.User != "maria" || len(m.Candidates) != 2 || m.Threshold != 0.1 {
		t.Fatalf("minted spec did not round-trip: %+v", m)
	}

	if got := streamScores(t, b, "keep"); got != preKeep {
		t.Fatalf("keep snapshot diverged after recovery:\npre:  %s\npost: %s", preKeep, got)
	}
	if got := streamScores(t, b, minted.ID); got != preMinted {
		t.Fatalf("minted snapshot diverged after recovery:\npre:  %s\npost: %s", preMinted, got)
	}

	// The recovered subscription is live, not a fossil: a context change
	// on the new coordinator must push a delta to an attached stream.
	st, err := b.SubscriptionStream("keep")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := b.SetSession("peter", sessionFor(4)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, open := <-st.Events():
		if !open {
			t.Fatal("recovered stream closed unexpectedly")
		}
		if ev.Type != "delta" || len(ev.Changes) == 0 {
			t.Fatalf("post-recovery event = %+v, want a delta with changes", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delta pushed after a post-recovery context change")
	}
}

// TestSubscriptionSurvivesCheckpoint pins the journal discipline the
// subscription subsystem depends on: snapshots never contain subscription
// state, so a checkpoint's WAL truncation must keep live Subscribe
// records (they are checkpoint-exempt) or a crash after a checkpoint
// would silently drop every standing query. Unsubscribed ones are retired
// by their in-log successor, not the checkpoint.
func TestSubscriptionSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 4)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetSession("peter", sessionFor(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Subscribe("stand", serve.SubscriptionSpec{User: "peter", Target: "TvProgram"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Subscribe("gone", serve.SubscriptionSpec{User: "peter", Target: "TvProgram"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Unsubscribe("gone"); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic, then crash.
	if _, err := a.SetSession("peter", sessionFor(2)); err != nil {
		t.Fatal(err)
	}
	pre := streamScores(t, a, "stand")

	build, _, err := RestoreBuilder(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(4, build, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := b.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.CloseJournals()
	if rs.Subscribes != 1 {
		t.Fatalf("recovery stats %+v, want exactly the one live subscription replayed", rs)
	}
	subs := b.Subscriptions()
	if len(subs) != 1 || subs[0].ID != "stand" {
		t.Fatalf("after checkpoint + crash: subscriptions %+v, want [stand]", subs)
	}
	if got := streamScores(t, b, "stand"); got != pre {
		t.Fatalf("stand snapshot diverged across checkpointed recovery:\npre:  %s\npost: %s", pre, got)
	}
}

// TestSubscriptionQuarantineRerouteAndMigration: a subscription created
// while its home shard is quarantined lands on the reroute replica (same
// jump-hash reroute sessions use), keeps serving streams from there, and
// migrates home when repair readmits the shard.
func TestSubscriptionQuarantineRerouteAndMigration(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	c := newTestCoordinator(t, n)
	if _, err := c.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()

	const bad = 1
	c.SetQuarantineAfter(2)
	in := faultinject.New(1)
	c.SetFaultInjector(in)
	shardSel := bad
	if err := in.Arm(faultinject.Fault{Point: faultinject.BroadcastApply, Shard: &shardSel, Err: "EIO"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // cross the quarantine threshold
		_, _ = c.Assert([]serve.ConceptAssertion{
			{Concept: "TvProgram", ID: fmt.Sprintf("Filler%d", i), Prob: 1},
		}, nil)
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != bad {
		t.Fatalf("quarantined = %v, want [%d]", q, bad)
	}

	u := userOnShard(t, n, bad)
	if _, err := c.SetSession(u, sessionFor(1)); err != nil {
		t.Fatal(err)
	}
	info, err := c.Subscribe("standby", serve.SubscriptionSpec{User: u, Target: "TvProgram"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard == bad {
		t.Fatalf("subscription landed on the quarantined shard %d", bad)
	}
	alt := info.Shard
	if len(c.shards[alt].Subscriptions()) != 1 {
		t.Fatalf("subscription not registered on reroute replica %d", alt)
	}
	pre := streamScores(t, c, "standby")

	// Repair readmits the shard; the sweep must carry the subscription
	// home alongside the rerouted session.
	in.Clear()
	if err := c.ProbeHealth(); err != nil {
		t.Fatal(err)
	}
	if q := c.Quarantined(); len(q) != 0 {
		t.Fatalf("still quarantined after repair: %v", q)
	}
	if got := len(c.shards[bad].Subscriptions()); got != 1 {
		t.Fatalf("repaired home shard holds %d subscriptions, want 1", got)
	}
	if got := len(c.shards[alt].Subscriptions()); got != 0 {
		t.Fatalf("stale subscription left on replica %d after migration", alt)
	}
	subs := c.Subscriptions()
	if len(subs) != 1 || subs[0].ID != "standby" || subs[0].Shard != bad {
		t.Fatalf("after migration: %+v, want standby on shard %d", subs, bad)
	}
	if got := streamScores(t, c, "standby"); got != pre {
		t.Fatalf("snapshot diverged across migration:\npre:  %s\npost: %s", pre, got)
	}
}
