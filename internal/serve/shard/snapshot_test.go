package shard

import (
	"os"
	"path/filepath"
	"testing"

	contextrank "repro"
	"repro/internal/serve"
)

// TestSnapshotRoundTrip saves a loaded coordinator and restores it at the
// same and at a different shard count, checking that vocabulary, data and
// rules survive on every shard and that sessions (deliberately) do not.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := newTestCoordinator(t, 2)
	if _, err := c.SetSession("peter", []serve.Measurement{{Concept: "Weekend", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if !HasSnapshots(dir) {
		t.Fatal("HasSnapshots = false after save")
	}
	if n := countShardFiles(t, dir); n != 2 {
		t.Fatalf("found %d shard snapshot files, want 2", n)
	}
	// A second save supersedes the first generation atomically (manifest
	// swap) and garbage-collects its files.
	if err := c.SaveSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if n := countShardFiles(t, dir); n != 2 {
		t.Fatalf("stale generation not cleaned up: %d shard files, want 2", n)
	}

	for _, n := range []int{2, 4, 1} {
		build, saved, err := RestoreBuilder(dir)
		if err != nil {
			t.Fatal(err)
		}
		if saved != 2 {
			t.Fatalf("manifest reports %d saved shards, want 2", saved)
		}
		rc, err := New(n, build, serve.Options{})
		if err != nil {
			t.Fatalf("restore at %d shards: %v", n, err)
		}
		for i := 0; i < rc.N(); i++ {
			s := rc.Shard(i)
			rules := s.Rules()
			if len(rules) != 1 || rules[0].Name != "R1" {
				t.Fatalf("restore@%d shard %d rules = %+v", n, i, rules)
			}
			res, err := s.Query("SELECT id FROM c_TvProgram ORDER BY id")
			if err != nil {
				t.Fatalf("restore@%d shard %d: %v", n, i, err)
			}
			if len(res.Rows) != 2 {
				t.Fatalf("restore@%d shard %d holds %d rows, want 2", n, i, len(res.Rows))
			}
		}
		// Sessions are never persisted: context is sensed fresh (§5).
		if _, _, ok := rc.SessionInfo("peter"); ok {
			t.Fatalf("restore@%d resurrected a session", n)
		}
		// The restored stack must serve session applies and ranks.
		if _, err := rc.SetSession("peter", []serve.Measurement{{Concept: "Weekend", Prob: 1}}); err != nil {
			t.Fatalf("restore@%d: %v", n, err)
		}
		res, _, err := rc.Rank("peter", "TvProgram", contextrank.RankOptions{})
		if err != nil {
			t.Fatalf("restore@%d: %v", n, err)
		}
		if len(res) == 0 || res[0].ID != "Oprah" {
			t.Fatalf("restore@%d ranked %v, want Oprah first", n, res)
		}
	}
}

func countShardFiles(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

func TestRestoreBuilderRejectsBadManifests(t *testing.T) {
	if HasSnapshots(t.TempDir()) {
		t.Fatal("empty dir claims snapshots")
	}
	if _, _, err := RestoreBuilder(t.TempDir()); err == nil {
		t.Fatal("missing manifest accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":99,"shards":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RestoreBuilder(dir); err == nil {
		t.Fatal("future manifest version accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":1,"shards":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RestoreBuilder(dir); err == nil {
		t.Fatal("zero-shard manifest accepted")
	}
}

func TestNewRejectsNonPositiveShardCounts(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := New(n, freshSystems, serve.Options{}); err == nil {
			t.Fatalf("New(%d) accepted", n)
		}
	}
}
