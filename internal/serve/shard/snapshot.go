package shard

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	contextrank "repro"
	"repro/internal/serve/journal"
)

// manifestName is the snapshot-directory manifest recording which save
// generation is current and how many shard files it holds.
const manifestName = "manifest.json"

// manifestVersion guards the directory layout, not the per-shard snapshot
// format (engine.Dump carries its own version).
const manifestVersion = 1

type manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Save    string `json:"save"` // generation id the shard files carry
	// JournalGen pairs this snapshot with the WAL generation whose
	// records it covers. The checkpoint fields below are meaningful only
	// against that generation's files: after a boot creates a fresh
	// generation, an old snapshot's coverage says nothing about the new
	// files, and recovery ignores the fields rather than wrongly skipping
	// records. Empty when the save ran without journals (JSON-additive:
	// older manifests simply lack these fields, manifestVersion stays 1).
	JournalGen string `json:"journal_gen,omitempty"`
	// CheckpointSeqs[i] is shard i's journal sequence at the snapshot
	// cut: every vocabulary record with Seq <= CheckpointSeqs[i] in shard
	// i's WAL (of generation JournalGen) is reflected in the snapshot.
	CheckpointSeqs []uint64 `json:"checkpoint_seqs,omitempty"`
	// CheckpointBID is the broadcast-id frontier of the cut: the
	// broadcast gate is held across all shards' dumps, so every broadcast
	// write with BID <= CheckpointBID is in every shard's file and none
	// above it is in any.
	CheckpointBID uint64 `json:"checkpoint_bid,omitempty"`
}

// snapshotFile names shard i's file within save generation id.
func snapshotFile(dir, id string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%s-%03d.snapshot.json", id, i))
}

// SaveSnapshots dumps every shard's database (serve.Server.SaveSnapshot:
// engine.Dump plus the persisted rule repository, with session context
// suspended) into dir, one file per shard plus a manifest, creating dir
// if needed. Each dump runs under that shard's write lock, so it is a
// consistent cut of that shard; other shards keep serving while one is
// dumping.
//
// The save is atomic as a *set*: every file of a save carries a fresh
// generation id, and the manifest — renamed into place last — is the only
// pointer to a generation. A crash at any instant leaves the manifest
// referencing a complete generation (the previous one until the final
// rename, the new one after), never a mix; overwriting an older save with
// a different shard count can therefore never splice stale replicas into
// a restore. Files of superseded generations are removed best-effort
// after the manifest switch.
//
// Sessions are not part of snapshots: they are journaled continuously by
// the WAL instead (see Recover), which a boot replays on top of the
// restored snapshot. A coordinator without journals simply starts
// sessionless, context being re-sensed (the paper's §5 position).
//
// With journals attached a save IS a checkpoint: the manifest records the
// journal generation and each shard's covered sequence, and every WAL is
// truncated down to its live sessions (plus any checkpoint-exempt
// records) once the manifest switch makes the snapshot authoritative.
// Checkpoint is the same operation under its own name; SIGTERM's final
// save and the background checkpointer share this path.
func (c *Coordinator) SaveSnapshots(dir string) error { return c.Checkpoint(dir) }

// Checkpoint snapshots every shard and truncates the WALs. The broadcast
// gate is held across all shards' dumps so the cuts share one broadcast
// frontier (see Coordinator.bcastGate); per-shard session/rank traffic is
// blocked only while its own shard is dumping. WAL truncation happens
// strictly after the manifest rename — a crash in between leaves extra
// records in the WAL whose replay is skipped via the manifest's coverage
// fields, never a manifest that over-promises coverage.
func (c *Coordinator) Checkpoint(dir string) error {
	// A checkpoint while a shard is quarantined would snapshot diverged
	// replicas and truncate the very WAL records repair needs. Refuse —
	// the caller (background checkpointer, shutdown save) retries or
	// logs, and the WAL keeps everything until the shard is readmitted.
	if c.quar.mask.Load() != 0 {
		return ErrQuarantined
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: snapshot dir: %w", err)
	}
	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return fmt.Errorf("shard: save id: %w", err)
	}
	id := hex.EncodeToString(idBytes[:])
	seqs := make([]uint64, len(c.shards))
	var ckptBID uint64
	err := func() error {
		c.bcastGate.Lock()
		defer c.bcastGate.Unlock()
		// Re-check under the gate: RepairShard holds the gate's write
		// side too, so a quarantine can engage while this call waited.
		if c.quar.mask.Load() != 0 {
			return ErrQuarantined
		}
		// Captured under the gate: no broadcast can be in flight, so this
		// is exactly the frontier every shard's dump reflects.
		ckptBID = c.bid.Load()
		for i, s := range c.shards {
			path := snapshotFile(dir, id, i)
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("shard: snapshot %d: %w", i, err)
			}
			seqs[i], err = s.CheckpointDump(f)
			if err == nil {
				// The manifest switch below makes this file authoritative;
				// its data must hit the disk first or a crash could leave
				// the manifest pointing at a hollow snapshot.
				err = f.Sync()
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("shard: snapshot %d: %w", i, err)
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	m := manifest{Version: manifestVersion, Shards: len(c.shards), Save: id}
	if c.journals != nil {
		m.JournalGen = c.journalGen
		m.CheckpointSeqs = seqs
		m.CheckpointBID = ckptBID
	}
	mf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	fsys := c.fsys()
	journal.SyncDirFS(fsys, dir)
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := journal.WriteFileSyncFS(fsys, tmp, mf, 0o644); err != nil {
		return fmt.Errorf("shard: manifest: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("shard: manifest: %w", err)
	}
	journal.SyncDirFS(fsys, dir)
	removeStaleSaves(dir, id)
	for i, j := range c.journals {
		if j == nil {
			continue
		}
		if err := j.Checkpoint(seqs[i]); err != nil {
			return fmt.Errorf("shard: truncating journal %d after checkpoint: %w", i, err)
		}
	}
	return nil
}

// fsys returns the coordinator's filesystem seam (OSFS when Recover
// never attached one).
func (c *Coordinator) fsys() journal.FS {
	if c.fs != nil {
		return c.fs
	}
	return journal.OSFS{}
}

// removeStaleSaves best-effort deletes shard files from generations other
// than keep — superseded saves, or leftovers of a crashed save.
func removeStaleSaves(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	prefix := "shard-"
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".snapshot.json") {
			continue
		}
		if !strings.HasPrefix(name, prefix+keep+"-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// HasSnapshots reports whether dir holds a snapshot set (a readable
// manifest).
func HasSnapshots(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// readSnapshotManifest loads and validates dir's snapshot manifest.
func readSnapshotManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d unsupported (want %d)", m.Version, manifestVersion)
	}
	if m.Shards <= 0 {
		return nil, fmt.Errorf("shard: manifest reports %d shards", m.Shards)
	}
	return &m, nil
}

// RestoreBuilder returns a New-compatible build function that restores
// shard i from the snapshot set in dir, plus the shard count the set was
// saved with. The target shard count may differ from the saved one:
// because every broadcast write is replicated, any saved shard holds the
// full non-session state, so shard i restores from file i mod saved —
// resharding (1→8, 8→4, …) is just a restore at the new count. Caches
// start cold either way; sessions live in the journal, whose replay
// (Recover) routes each user to its new shard.
func RestoreBuilder(dir string) (build func(shard int) (*contextrank.System, error), saved int, err error) {
	m, err := readSnapshotManifest(dir)
	if err != nil {
		return nil, 0, err
	}
	build = func(i int) (*contextrank.System, error) {
		f, err := os.Open(snapshotFile(dir, m.Save, i%m.Shards))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return contextrank.RestoreSystem(f)
	}
	return build, m.Shards, nil
}
