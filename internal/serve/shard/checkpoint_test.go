package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/journal"
)

// mutateVocab applies one numbered round of vocabulary/DML mutations —
// the same round on two coordinators must leave identical durable state.
func mutateVocab(t *testing.T, c *Coordinator, round int) {
	t.Helper()
	if round == 0 {
		if _, _, err := c.Exec("CREATE TABLE ckpt_t (n INT)"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Assert([]serve.ConceptAssertion{
		{Concept: "TvProgram", ID: fmt.Sprintf("ckpt-tv%02d", round), Prob: 1},
	}, []serve.RoleAssertion{
		{Role: "hasGenre", Src: fmt.Sprintf("ckpt-tv%02d", round), Dst: "HUMAN-INTEREST", Prob: 0.9},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddRules([]string{fmt.Sprintf(
		"RULE ckptR%d WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.%d1", round, round%9)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(fmt.Sprintf("INSERT INTO ckpt_t (n) VALUES (%d)", round)); err != nil {
		t.Fatal(err)
	}
	if round%3 == 2 {
		if _, err := c.RemoveRule(fmt.Sprintf("ckptR%d", round-1)); err != nil {
			t.Fatal(err)
		}
	}
}

// tableRows counts ckpt_t rows — double-applied INSERTs show up here.
func tableRows(t *testing.T, c *Coordinator) int {
	t.Helper()
	res, err := c.Query("SELECT n FROM ckpt_t")
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

// TestCheckpointSuffixRecoveryMatchesPureReplay drives the identical
// mixed mutation stream (vocabulary, DML, rules, sessions) through two
// durability directories — one checkpointed mid-stream, one not — then
// crash-recovers both: snapshot + WAL-suffix must produce exactly the
// state that replaying the full WAL onto a fresh base does.
func TestCheckpointSuffixRecoveryMatchesPureReplay(t *testing.T) {
	dirA := t.TempDir() // checkpointed mid-stream
	dirB := t.TempDir() // pure WAL, no checkpoint
	a := newTestCoordinator(t, 4)
	b := newTestCoordinator(t, 4)
	if _, err := a.Recover(dirA, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recover(dirB, journal.Options{}); err != nil {
		t.Fatal(err)
	}

	const rounds, users = 6, 8
	for round := 0; round < rounds; round++ {
		for _, c := range []*Coordinator{a, b} {
			mutateVocab(t, c, round)
			for i := 0; i < users; i++ {
				u := fmt.Sprintf("user%03d", i)
				if _, err := c.SetSession(u, sessionFor(i+round)); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.DropSession(fmt.Sprintf("user%03d", round%users)); err != nil {
				t.Fatal(err)
			}
		}
		if round == rounds/2 {
			if err := a.Checkpoint(dirA); err != nil {
				t.Fatal(err)
			}
		}
	}
	// a's WAL holds only the post-checkpoint suffix; b's holds everything.

	// Crash both (no CloseJournals). Recover A from its snapshot + suffix,
	// B by pure replay onto the deterministic preload base.
	build, _, err := RestoreBuilder(dirA)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := New(4, build, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ra.Recover(dirA, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer ra.CloseJournals()
	rb := newTestCoordinator(t, 4)
	rsB, err := rb.Recover(dirB, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.CloseJournals()
	if rsB.VocabApplied() == 0 {
		t.Fatalf("pure replay applied no vocabulary records: %+v", rsB)
	}

	sa, sb := ra.Stats(), rb.Stats()
	if sa.Sessions != sb.Sessions || sa.Rules != sb.Rules {
		t.Fatalf("recovered state diverged: checkpoint+suffix %d sessions/%d rules, pure replay %d/%d",
			sa.Sessions, sa.Rules, sb.Sessions, sb.Rules)
	}
	if ga, gb := tableRows(t, ra), tableRows(t, rb); ga != gb || ga != rounds {
		t.Fatalf("SQL rows diverged: checkpoint+suffix %d, pure replay %d, want %d", ga, gb, rounds)
	}
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user%03d", i)
		ma, fa, oka := ra.SessionInfo(u)
		mb, fb, okb := rb.SessionInfo(u)
		if oka != okb {
			t.Fatalf("session presence for %s diverged: %v vs %v", u, oka, okb)
		}
		if !oka {
			continue
		}
		if fa != fb || len(ma) != len(mb) {
			t.Fatalf("session for %s diverged: fp %s vs %s", u, fa, fb)
		}
		if ga, gb := rankScores(t, ra, u), rankScores(t, rb, u); ga != gb {
			t.Fatalf("rank scores for %s diverged:\ncheckpoint+suffix: %s\npure replay:       %s", u, ga, gb)
		}
	}
}

// TestCheckpointCoveredRecordReplayIsNoOp simulates a crash between the
// manifest rename and the WAL truncation: the WAL still holds records the
// snapshot already covers. Replay must skip them — re-applying the INSERT
// would double the row.
func TestCheckpointCoveredRecordReplayIsNoOp(t *testing.T) {
	dir := t.TempDir()
	a := newTestCoordinator(t, 2)
	if _, err := a.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Exec("CREATE TABLE ckpt_t (n INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Exec("INSERT INTO ckpt_t (n) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetSession("peter", sessionFor(1)); err != nil {
		t.Fatal(err)
	}

	// Stash the pre-checkpoint WALs, checkpoint (snapshot + truncate),
	// then write the stale WALs back: exactly the on-disk state a crash
	// after the manifest rename but before truncation leaves behind.
	wals, err := filepath.Glob(filepath.Join(dir, "sessions-*.wal"))
	if err != nil || len(wals) != 2 {
		t.Fatalf("glob: %v (%d files)", err, len(wals))
	}
	saved := make(map[string][]byte)
	for _, p := range wals {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = data
	}
	if err := a.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	for p, data := range saved {
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	build, _, err := RestoreBuilder(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(2, build, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := b.Recover(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.CloseJournals()
	if rs.SkippedCheckpoint == 0 {
		t.Fatalf("no records skipped as checkpoint-covered: %+v", rs)
	}
	if rs.Execs != 0 {
		t.Fatalf("covered exec re-applied: %+v", rs)
	}
	if got := tableRows(t, b); got != 1 {
		t.Fatalf("ckpt_t holds %d rows after replaying covered records, want 1", got)
	}
	// Sessions are not in snapshots: the covered-seq skip must not have
	// eaten peter's Set record.
	if _, _, ok := b.SessionInfo("peter"); !ok {
		t.Fatal("session lost: covered-record skip must only apply to vocabulary records")
	}
}

// TestCheckpointBoundsWALChurnSoak: under sustained vocabulary churn with
// periodic checkpoints, the WAL's vocabulary backlog must return to zero
// after every checkpoint and the files must stay near the live-session
// population — the unbounded-growth failure mode this PR exists to close.
func TestCheckpointBoundsWALChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint churn soak skipped in -short mode")
	}
	dir := t.TempDir()
	c := newTestCoordinator(t, 2)
	if _, err := c.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()
	if _, _, err := c.Exec("CREATE TABLE ckpt_t (n INT)"); err != nil {
		t.Fatal(err)
	}
	var peak int64
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			if _, _, err := c.Exec(fmt.Sprintf("INSERT INTO ckpt_t (n) VALUES (%d)", round*100+i)); err != nil {
				t.Fatal(err)
			}
			u := fmt.Sprintf("user%02d", i%5)
			if _, err := c.SetSession(u, sessionFor(i)); err != nil {
				t.Fatal(err)
			}
		}
		st := c.Stats()
		for _, sh := range st.Shards {
			if sh.Journal != nil && sh.Journal.VocabBytes > peak {
				peak = sh.Journal.VocabBytes
			}
		}
		if err := c.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
		for i, sh := range c.Stats().Shards {
			if sh.Journal == nil {
				t.Fatalf("shard %d lost its journal", i)
			}
			if sh.Journal.VocabBytes != 0 || sh.Journal.VocabRecords != 0 {
				t.Fatalf("round %d: shard %d retains %d vocabulary bytes (%d records) after checkpoint",
					round, i, sh.Journal.VocabBytes, sh.Journal.VocabRecords)
			}
		}
	}
	if peak == 0 {
		t.Fatal("soak never accumulated vocabulary bytes — trigger input is dead")
	}
	// 10 rounds x 20 INSERTs per shard replica would be ~200 records of
	// history; the checkpointed WAL must stay near the 5 live sessions.
	for i, sh := range c.Stats().Shards {
		if sh.Journal.TotalRecords > 40 {
			t.Fatalf("shard %d WAL holds %d records after final checkpoint — unbounded growth", i, sh.Journal.TotalRecords)
		}
	}
	if got := tableRows(t, c); got != 200 {
		t.Fatalf("ckpt_t holds %d rows, want 200", got)
	}
}

// TestBackgroundCheckpointer: the bytes trigger must fire on its own,
// count into Stats().Checkpoints, and truncate the WAL backlog.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	c := newTestCoordinator(t, 2)
	if _, err := c.Recover(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	defer c.CloseJournals()
	stop := c.StartCheckpointer(dir, CheckpointerOptions{
		Bytes:   1, // any vocabulary backlog at all triggers
		Poll:    5 * time.Millisecond,
		OnError: func(err error) { t.Errorf("background checkpoint: %v", err) },
	})
	if _, _, err := c.Exec("CREATE TABLE ckpt_t (n INT)"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Checkpoints != nil && st.Checkpoints.Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never fired: %+v", st.Checkpoints)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	if !HasSnapshots(dir) {
		t.Fatal("background checkpoint left no snapshot manifest")
	}
	st := c.Stats()
	if st.Checkpoints.LastUnix == 0 || st.Checkpoints.Failures != 0 {
		t.Fatalf("checkpoint stats %+v", st.Checkpoints)
	}
	for i, sh := range st.Shards {
		if sh.Journal != nil && sh.Journal.VocabBytes != 0 {
			t.Fatalf("shard %d retains %d vocabulary bytes after background checkpoint", i, sh.Journal.VocabBytes)
		}
	}
}
