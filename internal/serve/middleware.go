package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/metrics"
)

// reqInfo travels with a request through the middleware chain: the ID is
// assigned (or adopted from X-Request-ID) before the handler runs, and
// handlers annotate user/shard as they learn them so the access-log line
// and error bodies are attributable. Handlers run on the request's own
// goroutine, so plain fields need no synchronization.
type reqInfo struct {
	id        string
	user      string
	shard     int    // -1 until a routed operation reports its shard
	encodeErr string // first response encode/write failure, for the access log
}

type reqInfoKeyType struct{}

var reqInfoKey reqInfoKeyType

// requestInfo returns the request's reqInfo, or nil when the request did
// not pass through the observability middleware (bare NewHandlerFor).
func requestInfo(r *http.Request) *reqInfo {
	info, _ := r.Context().Value(reqInfoKey).(*reqInfo)
	return info
}

// annotate records the user (and shard, when >= 0) on the request's
// reqInfo for the access log; a no-op without the middleware.
func annotate(r *http.Request, user string, shard int) {
	if info := requestInfo(r); info != nil {
		info.user = user
		if shard >= 0 {
			info.shard = shard
		}
	}
}

// noteEncodeError records a response encode/write failure on the
// request's reqInfo so the access-log line ties the failure to the
// request ID. First error wins: the fallback-encode path may fail again
// on the same broken connection, and the root cause is the useful one.
func noteEncodeError(r *http.Request, err error) {
	if info := requestInfo(r); info != nil && info.encodeErr == "" {
		info.encodeErr = err.Error()
	}
}

// Request IDs are a per-process random prefix plus an atomic counter:
// unique within and across restarts, cheap to mint, trivially greppable.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			binaryFill(b[:])
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDCounter atomic.Int64
)

// binaryFill seeds the prefix from the clock when crypto/rand fails
// (effectively never; keeps the fallback deterministic-free).
func binaryFill(b []byte) {
	n := time.Now().UnixNano()
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
}

func newRequestID() string {
	return fmt.Sprintf("%s-%06x", reqIDPrefix, reqIDCounter.Add(1))
}

// statusRecorder captures the response status and body size for the
// access log and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap lets http.NewResponseController reach the underlying writer's
// Flusher/deadline methods through this wrapper — the SSE stream flushes
// each event through the observe middleware.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// logSink serializes JSON-lines writes from concurrent requests onto one
// io.Writer.
type logSink struct {
	mu  sync.Mutex
	out io.Writer
}

// accessLine is one structured request-log record.
type accessLine struct {
	TS        string `json:"ts"`
	ID        string `json:"id"`
	Method    string `json:"method"`
	Route     string `json:"route"`
	Path      string `json:"path"`
	Status    int    `json:"status"`
	Shard     int    `json:"shard"`
	User      string `json:"user,omitempty"`
	LatencyUS int64  `json:"latency_us"`
	Bytes     int64  `json:"bytes"`
	Remote    string `json:"remote,omitempty"`
	// EncodeError is the response encode/write failure, if any; a line
	// with this set describes a response the client did not fully receive.
	EncodeError string `json:"encode_error,omitempty"`
}

func (s *logSink) write(line accessLine) {
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	_, _ = s.out.Write(b)
	s.mu.Unlock()
}

// httpMetrics are the HTTP-surface series, labeled by mux route (bounded
// cardinality: the route pattern, never the raw path).
type httpMetrics struct {
	requests *metrics.CounterVec
	latency  *metrics.HistogramVec
}

func newHTTPMetrics(reg *metrics.Registry) *httpMetrics {
	return &httpMetrics{
		requests: reg.CounterVec("carserve_http_requests_total",
			"HTTP requests by mux route and response status.", "route", "code"),
		latency: reg.HistogramVec("carserve_http_request_seconds",
			"End-to-end HTTP request latency by route, including admission queueing.",
			RankLatencyBuckets, "route"),
	}
}

// observe is the outermost middleware: it assigns the request ID
// (honoring an inbound X-Request-ID), echoes it on the response, and —
// after the inner handler ran — emits the access-log line and the HTTP
// metrics. Route labels come from Go 1.23's r.Pattern, which the inner
// ServeMux fills in on the same request; unmatched requests are labeled
// "other" to bound cardinality.
func observe(next http.Handler, accessLog io.Writer, hm *httpMetrics) http.Handler {
	var sink *logSink
	if accessLog != nil {
		sink = &logSink{out: accessLog}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = newRequestID()
		}
		info := &reqInfo{id: id, shard: -1}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey, info))
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}

		next.ServeHTTP(rec, r)

		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "other"
		}
		elapsed := time.Since(started)
		if hm != nil {
			hm.requests.With(route, strconv.Itoa(rec.status)).Inc()
			hm.latency.With(route).Observe(elapsed.Seconds())
		}
		if sink != nil {
			sink.write(accessLine{
				TS:          started.UTC().Format(time.RFC3339Nano),
				ID:          id,
				Method:      r.Method,
				Route:       route,
				Path:        r.URL.Path,
				Status:      rec.status,
				Shard:       info.shard,
				User:        info.user,
				LatencyUS:   elapsed.Microseconds(),
				Bytes:       rec.bytes,
				Remote:      r.RemoteAddr,
				EncodeError: info.encodeErr,
			})
		}
	})
}

// exemptPath reports whether a request bypasses the shedding middleware
// (drain, admission, request timeout): /healthz must answer while
// shedding or draining (that is when operators look) and a blocked
// /metrics would hide the very overload it reports.
func exemptPath(r *http.Request) bool {
	return r.URL.Path == "/healthz" || r.URL.Path == "/metrics"
}

// streamingPath reports whether the request is a long-lived event stream
// (GET /v1/subscriptions/{id}/events). Streams are exempt from the
// request timeout (a standing push connection has no natural deadline)
// and from the admission concurrency gate (each stream would pin a slot
// for its whole lifetime, starving request traffic; the subscription
// create already charged the per-user token bucket). Drain still applies:
// new streams are refused during shutdown.
func streamingPath(r *http.Request) bool {
	return r.Method == http.MethodGet &&
		strings.HasPrefix(r.URL.Path, "/v1/subscriptions/") &&
		strings.HasSuffix(r.URL.Path, "/events")
}

// admissionGate applies the global concurrency gate + bounded queue.
func admissionGate(next http.Handler, adm *Admission) http.Handler {
	if adm == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r) || streamingPath(r) {
			next.ServeHTTP(w, r)
			return
		}
		release, ok, retry := adm.AcquireCtx(r.Context())
		if !ok {
			if r.Context().Err() != nil {
				// The request's deadline ran out while it queued; 503 so
				// the client (and the access log) sees a timeout, not an
				// overload verdict it should back off from forever.
				writeError(w, r, http.StatusServiceUnavailable,
					errors.New("serve: request deadline exceeded while queued"))
				return
			}
			writeShed(w, r, retry, errors.New("serve: overloaded, request queue full"))
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// recoverPanics converts a panic anywhere below it — a handler, the
// backend's rank path, an injected chaos panic — into a 500 with the
// request ID, counted in carserve_panics_total, instead of an aborted
// connection (net/http would recover too, but only after killing the
// response) or a dead daemon.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				NotePanic()
				writeError(w, r, http.StatusInternalServerError,
					fmt.Errorf("serve: internal panic: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// DrainGate flips a server into shutdown drain: new API requests are
// refused with 503 + Connection: close (so keep-alive clients reconnect
// elsewhere) while in-flight ones finish under http.Server.Shutdown.
// The zero value is an open gate; methods tolerate a nil receiver.
type DrainGate struct {
	draining atomic.Bool
}

// Start begins draining. Idempotent.
func (g *DrainGate) Start() {
	if g != nil {
		g.draining.Store(true)
	}
}

// Draining reports whether the gate is closed to new requests.
func (g *DrainGate) Draining() bool { return g != nil && g.draining.Load() }

// drainGate refuses new API requests while g is draining. /healthz and
// /metrics stay reachable so orchestrators and scrapes can watch the
// drain complete.
func drainGate(next http.Handler, g *DrainGate) http.Handler {
	if g == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.Draining() && !exemptPath(r) {
			w.Header().Set("Connection", "close")
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusServiceUnavailable,
				errors.New("serve: draining for shutdown"))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// requestTimeout bounds each API request: the deadline rides the request
// context (the admission queue waits on it; handlers check it after
// admission) and is mirrored onto the connection's read/write deadlines
// via ResponseController. Deliberately not http.TimeoutHandler — that
// clones the request, so the mux-set r.Pattern would never reach the
// outer observe middleware and every route label would become "other".
// A rank already executing on the backend is not preempted (the rank
// path is CPU-bound and lock-scoped); the deadline cuts queue waits and
// stuck connections, which is where unbounded time actually goes.
func requestTimeout(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r) || streamingPath(r) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		rc := http.NewResponseController(w)
		deadline := time.Now().Add(d)
		// Best-effort: ResponseControllers over non-hijackable writers
		// (tests, h2c wrappers) report ErrNotSupported; the context
		// deadline still applies.
		_ = rc.SetReadDeadline(deadline)
		_ = rc.SetWriteDeadline(deadline.Add(time.Second))
		// WithContext shallow-copies the request, and the inner ServeMux
		// sets Pattern on that copy — carry it back so the outer observe
		// middleware labels the route instead of "other".
		r2 := r.WithContext(ctx)
		next.ServeHTTP(w, r2)
		r.Pattern = r2.Pattern
	})
}
