package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionOptions tunes the admission controller. Zero values disable
// the corresponding control: MaxInFlight <= 0 means no concurrency bound,
// PerUserRate <= 0 means no per-user rate limit.
type AdmissionOptions struct {
	// MaxInFlight bounds concurrently executing requests; excess requests
	// wait in the bounded queue.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot. A request
	// arriving with the queue full is shed with 429 instead of piling
	// onto an unbounded backlog (the collapse mode this layer exists to
	// prevent). 0 means no waiting: shed as soon as MaxInFlight is
	// reached.
	MaxQueue int
	// PerUserRate is each user's sustained request budget in requests per
	// second across the per-user endpoints (rank, batch rank, session
	// writes).
	PerUserRate float64
	// PerUserBurst is the token-bucket depth — how far above the
	// sustained rate a user may burst. 0 means max(1, PerUserRate).
	PerUserBurst float64
}

// Admission is the serving layer's overload defense: a bounded
// concurrency gate with a bounded wait queue (global), plus per-user
// token buckets (fairness — one abusive client exhausts its own bucket,
// not the service). Both controls shed with 429 + Retry-After rather
// than queueing without bound, so admitted requests keep their latency
// SLO while excess load is pushed back to clients.
//
// The hot path is cheap: the gate is one buffered-channel operation and
// two atomic adds; the per-user check takes a mutex only around a small
// map lookup and a float update — no I/O, no allocation after the
// bucket exists.
type Admission struct {
	opts AdmissionOptions
	sem  chan struct{} // in-flight slots; nil when MaxInFlight <= 0

	inflight atomic.Int64
	queued   atomic.Int64

	admitted  atomic.Int64
	shedQueue atomic.Int64
	shedUser  atomic.Int64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	now     func() time.Time // test hook; time.Now in production
}

// tokenBucket is one user's rate budget (guarded by Admission.mu).
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedUsers bounds the bucket map: past it, refill-complete (idle)
// buckets are pruned on the next miss, so an attacker cycling user IDs
// cannot grow memory without bound.
const maxTrackedUsers = 100_000

// NewAdmission builds an admission controller. Returns nil when every
// control is disabled, and all methods tolerate a nil receiver, so
// callers can wire it unconditionally.
func NewAdmission(opts AdmissionOptions) *Admission {
	if opts.MaxInFlight <= 0 && opts.PerUserRate <= 0 {
		return nil
	}
	if opts.PerUserRate > 0 && opts.PerUserBurst <= 0 {
		opts.PerUserBurst = opts.PerUserRate
		if opts.PerUserBurst < 1 {
			opts.PerUserBurst = 1
		}
	}
	a := &Admission{
		opts:    opts,
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
	if opts.MaxInFlight > 0 {
		a.sem = make(chan struct{}, opts.MaxInFlight)
	}
	return a
}

// Acquire claims an in-flight slot, waiting in the bounded queue if the
// gate is saturated. ok=false means the queue was full and the request
// must be shed with 429 and the suggested Retry-After. On ok=true the
// returned release must be called exactly once when the request
// finishes.
func (a *Admission) Acquire() (release func(), ok bool, retryAfter time.Duration) {
	return a.AcquireCtx(context.Background())
}

// AcquireCtx is Acquire bounded by a context: a request whose deadline
// expires (or whose client disconnects) while it waits in the queue is
// shed instead of holding its queue slot for work nobody will read.
func (a *Admission) AcquireCtx(ctx context.Context) (release func(), ok bool, retryAfter time.Duration) {
	if a == nil || a.sem == nil {
		return func() {}, true, 0
	}
	release = func() {
		a.inflight.Add(-1)
		<-a.sem
	}
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return release, true, 0
	default:
	}
	// Gate saturated: wait only if the queue has room.
	if a.queued.Add(1) > int64(a.opts.MaxQueue) {
		a.queued.Add(-1)
		a.shedQueue.Add(1)
		return nil, false, time.Second
	}
	select {
	case a.sem <- struct{}{}:
		a.queued.Add(-1)
		a.inflight.Add(1)
		a.admitted.Add(1)
		return release, true, 0
	case <-ctx.Done():
		a.queued.Add(-1)
		a.shedQueue.Add(1)
		return nil, false, time.Second
	}
}

// AllowUser charges one request against the user's token bucket.
// ok=false means the user is over budget and the request must be shed
// with 429; retryAfter is how long until the bucket holds a whole token
// again.
func (a *Admission) AllowUser(user string) (ok bool, retryAfter time.Duration) {
	if a == nil || a.opts.PerUserRate <= 0 {
		return true, 0
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[user]
	if b == nil {
		if len(a.buckets) >= maxTrackedUsers {
			a.pruneLocked(now)
		}
		b = &tokenBucket{tokens: a.opts.PerUserBurst, last: now}
		a.buckets[user] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * a.opts.PerUserRate
		if b.tokens > a.opts.PerUserBurst {
			b.tokens = a.opts.PerUserBurst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	a.shedUser.Add(1)
	wait := time.Duration((1 - b.tokens) / a.opts.PerUserRate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// pruneLocked drops buckets that have refilled to burst — users idle
// long enough that forgetting them is behavior-neutral (a fresh bucket
// starts at burst too). Called with mu held when the map hits the cap.
func (a *Admission) pruneLocked(now time.Time) {
	for user, b := range a.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*a.opts.PerUserRate >= a.opts.PerUserBurst {
			delete(a.buckets, user)
		}
	}
}

// AdmissionStats is the controller's observable state, exported at
// /metrics (and readable in tests).
type AdmissionStats struct {
	InFlight  int64
	Queued    int64
	Admitted  int64
	ShedQueue int64
	ShedUser  int64
}

// Stats snapshots the admission counters lock-free.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		InFlight:  a.inflight.Load(),
		Queued:    a.queued.Load(),
		Admitted:  a.admitted.Load(),
		ShedQueue: a.shedQueue.Load(),
		ShedUser:  a.shedUser.Load(),
	}
}
