package serve

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	contextrank "repro"
)

// DefaultCacheSize is the rank cache capacity when Options leaves it zero.
const DefaultCacheSize = 1024

// rankKey builds the cache key for one ranking request. The epoch makes
// every data mutation an implicit full invalidation (stale entries are
// never hit again and age out of the LRU); the fingerprint does the same
// per user for session context changes. The empty algorithm is normalized
// to the default so both spellings share one entry and coalesce.
// Free-form fields are length-prefixed: a bare separator byte would let
// values containing that byte collide across fields (JSON strings can
// carry any byte, including NUL).
func rankKey(user, target, fingerprint string, epoch int64, opts contextrank.RankOptions) string {
	if opts.Algorithm == "" {
		opts.Algorithm = contextrank.AlgorithmFactorized
	}
	var b strings.Builder
	b.Grow(len(user) + len(target) + len(fingerprint) + 64)
	field := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	field(user)
	field(target)
	field(string(opts.Algorithm))
	field(fingerprint)
	b.WriteString(strconv.FormatFloat(opts.Threshold, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.Limit))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.TopK))
	b.WriteByte('|')
	if opts.Explain {
		b.WriteByte('e')
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(epoch, 10))
	return b.String()
}

// cacheEntry is one cached ranking together with the epoch it was computed
// at. The result slice is shared between all readers of the entry and must
// be treated as immutable.
type cacheEntry struct {
	key   string
	res   []contextrank.Result
	epoch int64
}

// flight is one in-progress computation that concurrent identical misses
// wait on instead of recomputing (singleflight). epoch is the epoch the
// leader actually observed, so waiters report the truth about the result
// they share rather than their own pre-read.
type flight struct {
	wg    sync.WaitGroup
	res   []contextrank.Result
	epoch int64
	err   error
}

// rankCache is an LRU of rank results with singleflight miss coalescing.
//
// The effectiveness counters (and the size mirror) are atomics rather than
// mu-guarded fields so stats() never touches c.mu: the mutex is contended
// by every rank request, and a /v1/stats scrape must not queue behind —
// or stall — rank traffic.
type rankCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> *cacheEntry element
	flights  map[string]*flight

	size      atomic.Int64 // mirrors ll.Len(), maintained under c.mu
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evicted   atomic.Int64
}

func newRankCache(capacity int) *rankCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &rankCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// get returns the cached result for key, marking it most recently used.
func (c *rankCache) get(key string) ([]contextrank.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts a computed result under key — the batch path's store, which
// computes outside the cache (sharing one plan across items) instead of
// through do's singleflight.
func (c *rankCache) put(key string, res []contextrank.Result, epoch int64) {
	c.mu.Lock()
	c.addLocked(key, res, epoch)
	c.mu.Unlock()
}

// addLocked inserts under c.mu.
func (c *rankCache) addLocked(key string, res []contextrank.Result, epoch int64) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.res, ent.epoch = res, epoch
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, epoch: epoch})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evicted.Add(1)
	}
	c.size.Store(int64(c.ll.Len()))
}

// do returns the cached result for key or computes it once, coalescing
// concurrent identical misses onto a single computation.
//
// compute returns the result together with the key it should be stored
// under and the epoch it was computed at — usually key itself, but the
// leader re-derives both from what it actually observed under the read
// lock, so a result computed just after a mutation is filed under the new
// epoch rather than the stale one. The returned epoch always describes
// the result (for hits, the epoch the entry was computed at; for
// coalesced waiters, the leader's). Errors are returned to every
// coalesced caller and never cached.
func (c *rankCache) do(key string, compute func() (res []contextrank.Result, storeKey string, epoch int64, err error)) (res []contextrank.Result, epoch int64, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		// Copy before unlocking: addLocked may rewrite the entry in
		// place under c.mu, racing an unlocked field read.
		ent := el.Value.(*cacheEntry)
		res, epoch := ent.res, ent.epoch
		c.mu.Unlock()
		return res, epoch, true, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.coalesced.Add(1)
		c.mu.Unlock()
		fl.wg.Wait()
		return fl.res, fl.epoch, true, fl.err
	}
	fl := &flight{}
	fl.wg.Add(1)
	c.flights[key] = fl
	c.misses.Add(1)
	c.mu.Unlock()

	res, storeKey, epoch, err := compute()
	fl.res, fl.epoch, fl.err = res, epoch, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		// Only the key matching what was actually observed is cached.
		// Never file the result under the originally requested key when
		// they differ: fingerprints round-trip (context X → Y → X yields
		// the same key again with no epoch bump), so a stale-key entry
		// holding a Y-context result would later be served as a hit for
		// a genuine X-context request. Waiters coalesced onto this
		// flight receive the result directly and never re-consult the
		// cache, so nothing is lost.
		c.addLocked(storeKey, res, epoch)
	}
	c.mu.Unlock()
	fl.wg.Done()
	return res, epoch, false, err
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	Evicted   int64   `json:"evicted"`
	HitRate   float64 `json:"hit_rate"`
	// Refreshed counts misses served by incrementally refreshing a
	// predecessor plan instead of a full recompile (plan cache only).
	Refreshed int64 `json:"refreshed,omitempty"`
}

// stats snapshots the counters without taking c.mu, so a stats scrape
// never queues behind rank traffic holding the cache mutex. The fields
// are read independently and may be mutually inconsistent by a request
// or two; effectiveness ratios do not care.
func (c *rankCache) stats() CacheStats {
	s := CacheStats{
		Size:      int(c.size.Load()),
		Capacity:  c.capacity,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evicted:   c.evicted.Load(),
	}
	if total := s.Hits + s.Misses + s.Coalesced; total > 0 {
		s.HitRate = float64(s.Hits+s.Coalesced) / float64(total)
	}
	return s
}

// Merge sums two caches' counters — the shard coordinator uses it to
// aggregate per-shard caches — and recomputes the combined hit rate.
func (s CacheStats) Merge(o CacheStats) CacheStats {
	out := CacheStats{
		Size:      s.Size + o.Size,
		Capacity:  s.Capacity + o.Capacity,
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Coalesced: s.Coalesced + o.Coalesced,
		Evicted:   s.Evicted + o.Evicted,
		Refreshed: s.Refreshed + o.Refreshed,
	}
	if total := out.Hits + out.Misses + out.Coalesced; total > 0 {
		out.HitRate = float64(out.Hits+out.Coalesced) / float64(total)
	}
	return out
}

func (s CacheStats) String() string {
	return fmt.Sprintf("size=%d/%d hits=%d misses=%d coalesced=%d evicted=%d hit-rate=%.1f%%",
		s.Size, s.Capacity, s.Hits, s.Misses, s.Coalesced, s.Evicted, 100*s.HitRate)
}
