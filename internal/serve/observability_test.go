package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/metrics"

	contextrank "repro"
)

// newObservedServer boots a handler with the full middleware stack:
// metrics registry, JSON access log into buf, and the given admission
// controller.
func newObservedServer(t *testing.T, adm *Admission, buf *bytes.Buffer) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	srv := NewServer(contextrank.NewSystem(), Options{})
	reg := metrics.NewRegistry()
	ts := httptest.NewServer(NewHandlerWith(srv, HandlerOptions{
		Admission: adm,
		AccessLog: buf,
		Metrics:   reg,
	}))
	t.Cleanup(ts.Close)

	call(t, ts, "POST", "/v1/declare", `{"concepts":["Thing","Ctx"]}`, http.StatusOK, nil)
	call(t, ts, "POST", "/v1/assert",
		`{"concepts":[{"concept":"Thing","id":"a","prob":1}]}`, http.StatusOK, nil)
	return ts, reg
}

// TestMetricsEndpoint scrapes /metrics after live traffic and asserts the
// key carserve_* series are present with sane values.
func TestMetricsEndpoint(t *testing.T) {
	var buf bytes.Buffer
	ts, _ := newObservedServer(t, nil, &buf)

	call(t, ts, "PUT", "/v1/sessions/alice/context",
		`{"measurements":[{"concept":"Ctx","prob":1}]}`, http.StatusOK, nil)
	call(t, ts, "GET", "/v1/rank?user=alice&target=Thing", "", http.StatusOK, nil)
	call(t, ts, "GET", "/v1/rank?user=alice&target=Thing", "", http.StatusOK, nil)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("content type = %q, want %q", ct, metrics.ContentType)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()

	for _, want := range []string{
		`carserve_rank_requests_total{shard="0"} 2`,
		`carserve_sessions{shard="0"} 1`,
		`carserve_rank_cache_hits_total{shard="0"} 1`,
		`carserve_rank_latency_seconds_count{shard="0"} 2`,
		`carserve_rank_latency_seconds_bucket{shard="0",le="+Inf"} 2`,
		`carserve_http_requests_total{route="GET /v1/rank",code="200"} 2`,
		`carserve_shed_total{reason="queue_full"} 0`,
		`carserve_shed_total{reason="rate_limit"} 0`,
		"# TYPE carserve_rank_latency_seconds histogram",
		"# TYPE carserve_plan_cache_hit_ratio gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestRequestIDs: an inbound X-Request-ID is honored end to end; without
// one the middleware mints an ID and puts it in error bodies.
func TestRequestIDs(t *testing.T) {
	var buf bytes.Buffer
	ts, _ := newObservedServer(t, nil, &buf)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/rank?user=&target=", nil)
	req.Header.Set("X-Request-ID", "trace-me-123")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-123" {
		t.Errorf("echoed id = %q, want trace-me-123", got)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "trace-me-123" {
		t.Errorf("error body request_id = %q, want trace-me-123", e.RequestID)
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("error content type = %q", resp.Header.Get("Content-Type"))
	}

	// No inbound ID: one is minted, echoed, and logged.
	resp2, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID minted")
	}

	// The access log carries the inbound ID on its line.
	if !strings.Contains(buf.String(), `"id":"trace-me-123"`) {
		t.Errorf("access log missing the request id:\n%s", buf.String())
	}
}

// TestAccessLogLine parses one JSON log line and checks the schema.
func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	ts, _ := newObservedServer(t, nil, &buf)
	call(t, ts, "PUT", "/v1/sessions/bob/context",
		`{"measurements":[{"concept":"Ctx","prob":1}]}`, http.StatusOK, nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var line accessLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &line); err != nil {
		t.Fatalf("unparseable log line %q: %v", lines[len(lines)-1], err)
	}
	if line.Method != "PUT" || line.Route != "PUT /v1/sessions/{user}/context" {
		t.Errorf("method/route = %q %q", line.Method, line.Route)
	}
	if line.Status != http.StatusOK || line.User != "bob" || line.ID == "" {
		t.Errorf("status/user/id = %d %q %q", line.Status, line.User, line.ID)
	}
	if line.Path != "/v1/sessions/bob/context" || line.Bytes <= 0 || line.TS == "" {
		t.Errorf("path/bytes/ts = %q %d %q", line.Path, line.Bytes, line.TS)
	}
}

// TestRateLimit429 drives one user past its token bucket over HTTP and
// checks the 429 contract: Retry-After header, JSON body with request_id,
// shed counted in /metrics — and a second user is still admitted.
func TestRateLimit429(t *testing.T) {
	var buf bytes.Buffer
	adm := NewAdmission(AdmissionOptions{PerUserRate: 0.001, PerUserBurst: 2})
	ts, _ := newObservedServer(t, adm, &buf)

	rank := func(user string) *http.Response {
		resp, err := ts.Client().Get(ts.URL + "/v1/rank?user=" + user + "&target=Thing")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	rank("carol").Body.Close()
	rank("carol").Body.Close()
	resp := rank("carol")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3rd request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID == "" || !strings.Contains(e.Error, "rate limit") {
		t.Errorf("shed body = %+v", e)
	}

	// Another user is unaffected (isolation over HTTP).
	resp2 := rank("dave")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("other user status = %d, want 200", resp2.StatusCode)
	}

	// The shed shows up in the scrape and the access log.
	var scrape bytes.Buffer
	sr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape.ReadFrom(sr.Body)
	sr.Body.Close()
	if !strings.Contains(scrape.String(), `carserve_shed_total{reason="rate_limit"} 1`) {
		t.Error("scrape missing the rate_limit shed count")
	}
	if !strings.Contains(buf.String(), `"status":429`) {
		t.Error("access log missing the 429 line")
	}
}

// TestQueueFull429 saturates a 1-in-flight, 0-queue gate with a slow
// request and checks the concurrent one is shed with 429.
func TestQueueFull429(t *testing.T) {
	adm := NewAdmission(AdmissionOptions{MaxInFlight: 1, MaxQueue: 0})

	release := make(chan struct{})
	entered := make(chan struct{})
	slow := http.NewServeMux()
	slow.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	// Route /slow through the same middleware chain as the API.
	ts := httptest.NewServer(observe(admissionGate(slow, adm), nil, nil))
	defer ts.Close()

	go func() {
		resp, err := ts.Client().Get(ts.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := ts.Client().Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 429 without Retry-After")
	}
	close(release)
	if st := adm.Stats(); st.ShedQueue != 1 {
		t.Errorf("ShedQueue = %d, want 1", st.ShedQueue)
	}
}

// TestHealthzBypassesAdmission: liveness must answer even when the gate
// is saturated.
func TestHealthzBypassesAdmission(t *testing.T) {
	adm := NewAdmission(AdmissionOptions{MaxInFlight: 1, MaxQueue: 0})
	var buf bytes.Buffer
	ts, _ := newObservedServer(t, adm, &buf)

	rel, ok, _ := adm.Acquire() // saturate the gate out-of-band
	if !ok {
		t.Fatal("setup acquire failed")
	}
	defer rel()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation = %d, want 200", resp.StatusCode)
	}
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics under saturation = %d, want 200", mresp.StatusCode)
	}
}

// TestRouteLabelsSurviveRequestTimeout: the request-timeout middleware
// shallow-copies the request (WithContext), and the mux sets Pattern on
// that copy — the timeout wrapper must carry it back so metrics and the
// access log label the route instead of "other".
func TestRouteLabelsSurviveRequestTimeout(t *testing.T) {
	var buf bytes.Buffer
	srv := NewServer(contextrank.NewSystem(), Options{})
	reg := metrics.NewRegistry()
	ts := httptest.NewServer(NewHandlerWith(srv, HandlerOptions{
		AccessLog:      &buf,
		Metrics:        reg,
		RequestTimeout: 5 * time.Second,
	}))
	t.Cleanup(ts.Close)

	call(t, ts, "POST", "/v1/declare", `{"concepts":["Thing","Ctx"]}`, http.StatusOK, nil)
	call(t, ts, "PUT", "/v1/sessions/alice/context",
		`{"measurements":[{"concept":"Ctx","prob":1}]}`, http.StatusOK, nil)
	call(t, ts, "POST", "/v1/rank", `{"user":"alice","target":"Thing"}`, http.StatusOK, nil)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	if !strings.Contains(text, `carserve_http_requests_total{route="POST /v1/rank",code="200"} 1`) {
		t.Errorf("scrape missing the POST /v1/rank route label:\n%s", text)
	}
	if strings.Contains(text, `route="other"`) {
		t.Errorf("matched routes fell back to the \"other\" label:\n%s", text)
	}
	if !strings.Contains(buf.String(), `"route":"POST /v1/rank"`) {
		t.Errorf("access log lost the route pattern: %s", buf.String())
	}
}
