package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve/metrics"
	"repro/internal/sql"
	"repro/internal/storage"

	contextrank "repro"
)

// maxBodyBytes bounds request bodies; context updates and rule batches are
// small, and the limit keeps a misbehaving client from ballooning memory.
const maxBodyBytes = 1 << 20

// Handler is the HTTP/JSON front-end over a serving Backend — a single
// *Server or a sharded shard.Coordinator (net/http only).
//
// Endpoints:
//
//	POST   /v1/declare                  {"concepts":[...],"roles":[...],"subconcepts":[{"sub","super"}]}
//	POST   /v1/assert                   {"concepts":[{"concept","id","prob"}],"roles":[{"role","src","dst","prob"}]}
//	GET    /v1/rules                    registered rules
//	POST   /v1/rules                    {"rules":["RULE ... WHEN ... PREFER ... WITH ..."]}
//	DELETE /v1/rules/{name}             remove one rule
//	PUT    /v1/sessions/{user}/context  {"measurements":[{"concept","prob",...}]}
//	GET    /v1/sessions/{user}          session fingerprint + measurements
//	DELETE /v1/sessions/{user}          end the session
//	POST   /v1/rank                     {"user","target","algorithm","threshold","limit","top_k","explain"}
//	GET    /v1/rank?user=&target=&...   same via query parameters (DEPRECATED: use POST /v1/rank)
//	POST   /v1/rank/batch               {"user","algorithm","items":[{"target"|"candidates",...}]} (one plan compile)
//	POST   /v1/subscriptions            {"user","target"|"candidates","threshold","limit","top_k"[,"id"]} standing rank
//	GET    /v1/subscriptions            list registered subscriptions
//	GET    /v1/subscriptions/{id}       one subscription's state
//	DELETE /v1/subscriptions/{id}       tear the subscription down
//	GET    /v1/subscriptions/{id}/events  SSE stream: snapshot, then score deltas on every context change
//	POST   /v1/query                    {"sql":"SELECT ..."} (read-only)
//	POST   /v1/exec                     {"sql":"INSERT ..."} (write; bumps the epoch)
//	GET    /v1/stats                    server statistics
//	GET    /healthz                     liveness
//
// Every rank entry point — POST /v1/rank, GET /v1/rank, each batch item
// and the subscription create — decodes the same result-shaping option
// block (rankOptionsJSON), so field semantics and validation messages
// cannot drift between them. Every non-2xx response body is the
// canonical error envelope: {"error", "code", "request_id"} with a
// machine-readable code (bad_request, unknown_user, not_found, conflict,
// rate_limited, degraded, quarantined, internal).
type Handler struct {
	srv       Backend
	mux       *http.ServeMux
	admission *Admission            // nil = no per-user rate limiting
	chaos     *faultinject.Injector // nil = no /v1/chaos endpoints
}

// NewHandler builds the HTTP API over a single server.
func NewHandler(srv *Server) *Handler { return NewHandlerFor(srv) }

// NewHandlerFor builds the HTTP API over any serving backend.
func NewHandlerFor(srv Backend) *Handler {
	h := &Handler{srv: srv, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/declare", h.declare)
	h.mux.HandleFunc("POST /v1/assert", h.assert)
	h.mux.HandleFunc("GET /v1/rules", h.listRules)
	h.mux.HandleFunc("POST /v1/rules", h.addRules)
	h.mux.HandleFunc("DELETE /v1/rules/{name}", h.removeRule)
	h.mux.HandleFunc("PUT /v1/sessions/{user}/context", h.setSession)
	h.mux.HandleFunc("GET /v1/sessions/{user}", h.getSession)
	h.mux.HandleFunc("DELETE /v1/sessions/{user}", h.dropSession)
	h.mux.HandleFunc("POST /v1/rank", h.rankPost)
	h.mux.HandleFunc("GET /v1/rank", h.rankGet)
	h.mux.HandleFunc("POST /v1/rank/batch", h.rankBatch)
	h.mux.HandleFunc("POST /v1/subscriptions", h.subscribe)
	h.mux.HandleFunc("GET /v1/subscriptions", h.listSubscriptions)
	h.mux.HandleFunc("GET /v1/subscriptions/{id}", h.getSubscription)
	h.mux.HandleFunc("DELETE /v1/subscriptions/{id}", h.unsubscribe)
	h.mux.HandleFunc("GET /v1/subscriptions/{id}/events", h.subscriptionEvents)
	h.mux.HandleFunc("POST /v1/query", h.query)
	h.mux.HandleFunc("POST /v1/exec", h.exec)
	h.mux.HandleFunc("GET /v1/stats", h.stats)
	h.mux.HandleFunc("GET /healthz", h.healthz)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// HandlerOptions configures the production middleware around the HTTP
// API. The zero value is equivalent to NewHandlerFor plus request IDs.
type HandlerOptions struct {
	// Admission applies overload control: the global concurrency gate +
	// bounded queue around every /v1 endpoint, and per-user token-bucket
	// rate limiting inside the per-user endpoints. nil disables both.
	Admission *Admission
	// AccessLog receives one JSON line per request (see accessLine). nil
	// disables request logging.
	AccessLog io.Writer
	// Metrics, when set, is populated with the carserve_* series (backend
	// stats, admission counters, HTTP surface) and served at GET /metrics.
	Metrics *metrics.Registry
	// Drain, when set, lets the owner flip the server into shutdown
	// drain: new API requests get 503 + Connection: close while
	// in-flight ones finish (see DrainGate).
	Drain *DrainGate
	// RequestTimeout bounds each API request end to end — admission
	// queueing included — via the request context plus connection
	// deadlines. 0 disables.
	RequestTimeout time.Duration
	// Chaos, when set, exposes the fault injector at /v1/chaos
	// (GET = armed faults with counters, POST {"faults":[...]} = arm,
	// DELETE = disarm all). Serving-side injection points (rank,
	// broadcast, journal FS) must be wired to the same injector by the
	// daemon. Never set it in production without authentication in
	// front: armed faults are real outages.
	Chaos *faultinject.Injector
}

// NewHandlerWith builds the HTTP API wrapped in the production
// middleware: request-ID assignment and echo, structured request
// logging, Prometheus metrics at /metrics, panic containment, load
// shedding, drain and per-request deadlines.
func NewHandlerWith(srv Backend, opts HandlerOptions) http.Handler {
	h := NewHandlerFor(srv)
	h.admission = opts.Admission
	h.chaos = opts.Chaos
	var hm *httpMetrics
	if opts.Metrics != nil {
		RegisterBackendMetrics(opts.Metrics, srv)
		RegisterAdmissionMetrics(opts.Metrics, opts.Admission)
		hm = newHTTPMetrics(opts.Metrics)
		h.mux.Handle("GET /metrics", opts.Metrics.Handler())
	}
	if opts.Chaos != nil {
		h.mux.HandleFunc("GET /v1/chaos", h.chaosList)
		h.mux.HandleFunc("POST /v1/chaos", h.chaosArm)
		h.mux.HandleFunc("DELETE /v1/chaos", h.chaosClear)
	}
	// Inside out: admission gates the handler; recoverPanics catches
	// panics from both (admission's release still runs on the way up);
	// the timeout wraps the queue wait too; drain refuses before any of
	// that spends work; observe sees every outcome, drained and shed
	// included, with route labels intact.
	inner := recoverPanics(admissionGate(h, opts.Admission))
	inner = requestTimeout(inner, opts.RequestTimeout)
	inner = drainGate(inner, opts.Drain)
	return observe(inner, opts.AccessLog, hm)
}

// admitUser charges the request against user's token bucket, writing the
// 429 (with Retry-After) itself on rejection. Nil-admission servers admit
// everything.
func (h *Handler) admitUser(w http.ResponseWriter, r *http.Request, user string) bool {
	ok, retry := h.admission.AllowUser(user)
	if !ok {
		annotate(r, user, -1)
		writeShed(w, r, retry, fmt.Errorf("serve: user %q over rate limit", user))
		return false
	}
	return true
}

// --- request/response shapes ----------------------------------------------

// errorResponse is the canonical error envelope: every non-2xx body the
// API writes has exactly this shape.
type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable error class — bad_request,
	// unknown_user, not_found, conflict, rate_limited, degraded,
	// quarantined or internal — stable across message-text changes, so
	// clients branch on it instead of parsing Error.
	Code string `json:"code"`
	// RequestID ties the error to its access-log line and X-Request-ID
	// header; empty when the handler runs without the middleware.
	RequestID string `json:"request_id,omitempty"`
}

type declareRequest struct {
	Concepts    []string `json:"concepts"`
	Roles       []string `json:"roles"`
	Subconcepts []struct {
		Sub   string `json:"sub"`
		Super string `json:"super"`
	} `json:"subconcepts"`
}

type assertRequest struct {
	Concepts []struct {
		Concept string  `json:"concept"`
		ID      string  `json:"id"`
		Prob    float64 `json:"prob"`
	} `json:"concepts"`
	Roles []struct {
		Role string  `json:"role"`
		Src  string  `json:"src"`
		Dst  string  `json:"dst"`
		Prob float64 `json:"prob"`
	} `json:"roles"`
}

type rulesRequest struct {
	Rules []string `json:"rules"`
}

type ruleJSON struct {
	Name       string  `json:"name"`
	Context    string  `json:"context"`
	Preference string  `json:"preference"`
	Sigma      float64 `json:"sigma"`
}

type sessionRequest struct {
	Measurements []measurementJSON `json:"measurements"`
}

type measurementJSON struct {
	Concept    string  `json:"concept"`
	Individual string  `json:"individual,omitempty"`
	Prob       float64 `json:"prob"`
	Exclusive  string  `json:"exclusive,omitempty"`
	Source     string  `json:"source,omitempty"`
}

// rankOptionsJSON is the one result-shaping option block every rank
// entry point decodes — POST /v1/rank, GET /v1/rank, each /v1/rank/batch
// item and the subscription create all embed it, so a field added (or a
// validation rule changed) here applies to all four at once and their
// error messages stay byte-identical.
type rankOptionsJSON struct {
	Algorithm string  `json:"algorithm,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Limit     int     `json:"limit,omitempty"`
	// TopK keeps only the best k results via the plan's bounded heap. A
	// pointer so an explicit zero (meaningless: "best none") can be
	// rejected while an absent field keeps the full-ranking default.
	TopK    *int `json:"top_k,omitempty"`
	Explain bool `json:"explain,omitempty"`
}

// options validates the block and shapes it as RankOptions. field names
// the top_k field in error messages ("top_k", "items[3].top_k") so batch
// items report their position. Absent top_k means "full ranking";
// explicit values must be positive — silently treating 0 as "all" would
// mask a caller that meant to bound the response and didn't.
func (o rankOptionsJSON) options(field string) (contextrank.RankOptions, error) {
	topK := 0
	if o.TopK != nil {
		if *o.TopK <= 0 {
			return contextrank.RankOptions{}, fmt.Errorf("serve: %s must be positive (got %d)", field, *o.TopK)
		}
		topK = *o.TopK
	}
	return contextrank.RankOptions{
		Algorithm: contextrank.Algorithm(o.Algorithm),
		Threshold: o.Threshold,
		Limit:     o.Limit,
		TopK:      topK,
		Explain:   o.Explain,
	}, nil
}

// rankQueryOptions decodes the same option block from GET query
// parameters; numeric parse failures report the offending raw value.
func rankQueryOptions(q url.Values) (rankOptionsJSON, error) {
	o := rankOptionsJSON{
		Algorithm: q.Get("algorithm"),
		Explain:   q.Get("explain") == "true",
	}
	if v := q.Get("threshold"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return o, fmt.Errorf("serve: bad threshold %q", v)
		}
		o.Threshold = t
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, fmt.Errorf("serve: bad limit %q", v)
		}
		o.Limit = n
	}
	if v := q.Get("top_k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, fmt.Errorf("serve: bad top_k %q", v)
		}
		o.TopK = &n
	}
	return o, nil
}

type rankRequest struct {
	User   string `json:"user"`
	Target string `json:"target"`
	rankOptionsJSON
}

type rankResponse struct {
	Results []resultJSON `json:"results"`
	Cached  bool         `json:"cached"`
	Epoch   int64        `json:"epoch"`
	Shard   int          `json:"shard"` // always 0 on an unsharded server
	Micros  int64        `json:"micros"`
}

type resultJSON struct {
	ID          string   `json:"id"`
	Score       float64  `json:"score"`
	Explanation []string `json:"explanation,omitempty"`
}

type rankBatchRequest struct {
	User      string         `json:"user"`
	Algorithm string         `json:"algorithm,omitempty"`
	Items     []rankItemJSON `json:"items"`
}

type rankItemJSON struct {
	Target     string   `json:"target,omitempty"`
	Candidates []string `json:"candidates,omitempty"`
	rankOptionsJSON
}

type rankBatchResponse struct {
	Items  []rankBatchItemJSON `json:"items"`
	Epoch  int64               `json:"epoch"`
	Shard  int                 `json:"shard"`
	Micros int64               `json:"micros"`
}

type rankBatchItemJSON struct {
	Results []resultJSON `json:"results,omitempty"`
	Cached  bool         `json:"cached"`
	Error   string       `json:"error,omitempty"`
}

// subscribeRequest registers a standing rank subscription: the same
// user/target/candidates shape as a batch item plus the shared option
// block. ID is optional — set it to make the create idempotent (or to
// replace an existing subscription); empty mints one.
type subscribeRequest struct {
	ID         string   `json:"id,omitempty"`
	User       string   `json:"user"`
	Target     string   `json:"target,omitempty"`
	Candidates []string `json:"candidates,omitempty"`
	rankOptionsJSON
}

type sqlRequest struct {
	SQL string `json:"sql"`
}

type sqlResponse struct {
	Cols []string `json:"cols"`
	Rows [][]any  `json:"rows"`
}

// --- endpoint implementations ---------------------------------------------

func (h *Handler) declare(w http.ResponseWriter, r *http.Request) {
	var req declareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	subs := make([]SubConceptDecl, len(req.Subconcepts))
	for i, sc := range req.Subconcepts {
		subs[i] = SubConceptDecl{Sub: sc.Sub, Super: sc.Super}
	}
	epoch, err := h.srv.Declare(req.Concepts, req.Roles, subs)
	if err != nil {
		writeMutationError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]int64{"epoch": epoch})
}

func (h *Handler) assert(w http.ResponseWriter, r *http.Request) {
	var req assertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	concepts := make([]ConceptAssertion, len(req.Concepts))
	for i, a := range req.Concepts {
		concepts[i] = ConceptAssertion{Concept: a.Concept, ID: a.ID, Prob: a.Prob}
	}
	roles := make([]RoleAssertion, len(req.Roles))
	for i, a := range req.Roles {
		roles[i] = RoleAssertion{Role: a.Role, Src: a.Src, Dst: a.Dst, Prob: a.Prob}
	}
	epoch, err := h.srv.Assert(concepts, roles)
	if err != nil {
		writeMutationError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]int64{"epoch": epoch})
}

func (h *Handler) listRules(w http.ResponseWriter, r *http.Request) {
	rules := h.srv.Rules()
	out := make([]ruleJSON, 0, len(rules))
	for _, rule := range rules {
		out = append(out, ruleJSON{
			Name:       rule.Name,
			Context:    rule.Context.String(),
			Preference: rule.Preference.String(),
			Sigma:      rule.Sigma,
		})
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"rules": out})
}

func (h *Handler) addRules(w http.ResponseWriter, r *http.Request) {
	var req rulesRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Rules) == 0 {
		writeError(w, r, http.StatusBadRequest, errors.New("serve: no rules in request"))
		return
	}
	added, epoch, err := h.srv.AddRules(req.Rules)
	if err != nil {
		writeMutationError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"added": added, "epoch": epoch})
}

func (h *Handler) removeRule(w http.ResponseWriter, r *http.Request) {
	epoch, err := h.srv.RemoveRule(r.PathValue("name"))
	if err != nil {
		writeMutationError(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]int64{"epoch": epoch})
}

func (h *Handler) setSession(w http.ResponseWriter, r *http.Request) {
	user := r.PathValue("user")
	if !h.admitUser(w, r, user) {
		return
	}
	annotate(r, user, -1)
	var req sessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ms := make([]Measurement, len(req.Measurements))
	for i, m := range req.Measurements {
		ms[i] = Measurement{
			Concept:    m.Concept,
			Individual: m.Individual,
			Prob:       m.Prob,
			Exclusive:  m.Exclusive,
			Source:     m.Source,
		}
	}
	fp, err := h.srv.SetSession(user, ms)
	if err != nil {
		writeMutationError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]string{"fingerprint": fp})
}

func (h *Handler) getSession(w http.ResponseWriter, r *http.Request) {
	user := r.PathValue("user")
	annotate(r, user, -1)
	ms, fp, ok := h.srv.SessionInfo(user)
	if !ok {
		writeErrorCode(w, r, http.StatusNotFound, "unknown_user", fmt.Errorf("serve: no session for %q", user))
		return
	}
	out := make([]measurementJSON, len(ms))
	for i, m := range ms {
		out[i] = measurementJSON{
			Concept:    m.Concept,
			Individual: m.Individual,
			Prob:       m.Prob,
			Exclusive:  m.Exclusive,
			Source:     m.Source,
		}
	}
	writeJSON(w, r, http.StatusOK, map[string]any{
		"user":         user,
		"fingerprint":  fp,
		"measurements": out,
	})
}

func (h *Handler) dropSession(w http.ResponseWriter, r *http.Request) {
	if err := h.srv.DropSession(r.PathValue("user")); err != nil {
		writeMutationError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]string{"status": "dropped"})
}

func (h *Handler) rankPost(w http.ResponseWriter, r *http.Request) {
	var req rankRequest
	if !decodeBody(w, r, &req) {
		return
	}
	h.rank(w, r, req)
}

// rankGetSunset is the Sunset date advertised on the deprecated GET
// surface (RFC 8594); after it the route may be removed in a major
// version.
const rankGetSunset = "Thu, 01 Jan 2027 00:00:00 GMT"

// rankGet is the deprecated query-parameter rank surface. POST /v1/rank
// is the canonical entry point — it takes the same option block as the
// batch and subscription routes, and a JSON body does not leak rank
// targets into proxy access logs the way a query string does. The
// response carries the standard deprecation headers so clients can
// detect the status mechanically.
func (h *Handler) rankGet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Sunset", rankGetSunset)
	q := r.URL.Query()
	opts, err := rankQueryOptions(q)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	h.rank(w, r, rankRequest{User: q.Get("user"), Target: q.Get("target"), rankOptionsJSON: opts})
}

func (h *Handler) rank(w http.ResponseWriter, r *http.Request, req rankRequest) {
	if req.User == "" || req.Target == "" {
		writeError(w, r, http.StatusBadRequest, errors.New("serve: rank needs user and target"))
		return
	}
	opts, err := req.options("top_k")
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if !h.admitUser(w, r, req.User) {
		return
	}
	results, meta, err := h.srv.Rank(req.User, req.Target, opts)
	annotate(r, req.User, meta.Shard)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	out := rankResponse{
		Results: resultsJSON(results),
		Cached:  meta.Cached,
		Epoch:   meta.Epoch,
		Shard:   meta.Shard,
		Micros:  meta.Elapsed.Microseconds(),
	}
	writeJSON(w, r, http.StatusOK, out)
}

// resultsJSON renders ranked results for transport; /v1/rank and
// /v1/rank/batch share it so the two endpoints cannot drift.
func resultsJSON(results []contextrank.Result) []resultJSON {
	out := make([]resultJSON, len(results))
	for i, res := range results {
		rj := resultJSON{ID: res.ID, Score: res.Score}
		if res.Explanation != nil {
			for _, rc := range res.Explanation.Rules {
				rj.Explanation = append(rj.Explanation, rc.String())
			}
		}
		out[i] = rj
	}
	return out
}

func (h *Handler) rankBatch(w http.ResponseWriter, r *http.Request) {
	var req rankBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.User == "" || len(req.Items) == 0 {
		writeError(w, r, http.StatusBadRequest, errors.New("serve: batch rank needs a user and at least one item"))
		return
	}
	if !h.admitUser(w, r, req.User) {
		return
	}
	items := make([]RankItem, len(req.Items))
	for i, it := range req.Items {
		// The shared option block syntactically admits "algorithm", but a
		// batch ranks every item under one algorithm (one plan compile);
		// a per-item value would be silently ignored, so refuse it loudly.
		if it.Algorithm != "" {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf(
				"serve: items[%d].algorithm must be empty; the batch algorithm applies to every item", i))
			return
		}
		opts, err := it.options(fmt.Sprintf("items[%d].top_k", i))
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		items[i] = RankItem{
			Target:     it.Target,
			Candidates: it.Candidates,
			Threshold:  opts.Threshold,
			Limit:      opts.Limit,
			TopK:       opts.TopK,
			Explain:    opts.Explain,
		}
	}
	results, meta, err := h.srv.RankBatch(req.User, contextrank.Algorithm(req.Algorithm), items)
	annotate(r, req.User, meta.Shard)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	out := rankBatchResponse{
		Items:  make([]rankBatchItemJSON, len(results)),
		Epoch:  meta.Epoch,
		Shard:  meta.Shard,
		Micros: meta.Elapsed.Microseconds(),
	}
	for i, item := range results {
		ij := rankBatchItemJSON{Cached: item.Cached}
		if item.Err != nil {
			ij.Error = item.Err.Error()
		} else {
			ij.Results = resultsJSON(item.Results)
		}
		out.Items[i] = ij
	}
	writeJSON(w, r, http.StatusOK, out)
}

// --- standing subscriptions ------------------------------------------------

func (h *Handler) subscribe(w http.ResponseWriter, r *http.Request) {
	var req subscribeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// The shared option block admits algorithm and explain syntactically;
	// subscriptions support neither (the evaluator ranks with the default
	// plan algorithm, and explanations would bloat every pushed delta).
	if req.Algorithm != "" {
		writeError(w, r, http.StatusBadRequest, errors.New(
			"serve: algorithm must be empty; subscriptions rank with the default algorithm"))
		return
	}
	if req.Explain {
		writeError(w, r, http.StatusBadRequest, errors.New(
			"serve: explain is not supported on subscriptions"))
		return
	}
	opts, err := req.options("top_k")
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.User == "" {
		writeError(w, r, http.StatusBadRequest, errors.New("serve: subscription needs a user"))
		return
	}
	if !h.admitUser(w, r, req.User) {
		return
	}
	info, err := h.srv.Subscribe(req.ID, SubscriptionSpec{
		User:       req.User,
		Target:     req.Target,
		Candidates: req.Candidates,
		Threshold:  opts.Threshold,
		Limit:      opts.Limit,
		TopK:       opts.TopK,
	})
	annotate(r, req.User, info.Shard)
	if err != nil {
		writeMutationError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusCreated, info)
}

func (h *Handler) listSubscriptions(w http.ResponseWriter, r *http.Request) {
	subs := h.srv.Subscriptions()
	if subs == nil {
		subs = []SubscriptionInfo{}
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"subscriptions": subs})
}

func (h *Handler) getSubscription(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, info := range h.srv.Subscriptions() {
		if info.ID == id {
			annotate(r, info.User, info.Shard)
			writeJSON(w, r, http.StatusOK, info)
			return
		}
	}
	writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: no subscription %q", id))
}

func (h *Handler) unsubscribe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, err := h.srv.Unsubscribe(id)
	if err != nil {
		writeMutationError(w, r, http.StatusInternalServerError, err)
		return
	}
	if !found {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: no subscription %q", id))
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]string{"status": "unsubscribed"})
}

// subscriptionEvents is the push side: a Server-Sent Events stream that
// opens with a full snapshot of the subscription's current ranking and
// then carries one delta event per relevant state change. The middleware
// exempts this route from the request timeout and the admission
// concurrency gate (a standing stream would otherwise pin a slot or be
// cut at the deadline); the per-user token bucket was already charged by
// the subscription create.
func (h *Handler) subscriptionEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := h.srv.SubscriptionStream(id)
	if err != nil {
		if errors.Is(err, ErrSubscriptionBusy) {
			writeError(w, r, http.StatusConflict, err)
			return
		}
		writeError(w, r, http.StatusNotFound, err)
		return
	}
	defer st.Close()
	annotate(r, st.User(), -1)

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // tell buffering proxies not to hold events
	w.WriteHeader(http.StatusOK)
	send := func(ev SubEvent) bool {
		data, merr := json.Marshal(ev)
		if merr != nil {
			noteEncodeError(r, fmt.Errorf("encode: %w", merr))
			return false
		}
		if _, werr := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); werr != nil {
			return false
		}
		return rc.Flush() == nil
	}
	if !send(st.Snapshot()) {
		return
	}

	keepalive := time.NewTicker(subKeepAlive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-st.Events():
			if !ok {
				// Unsubscribed (or replaced): tell the consumer this is a
				// deliberate end, not a broken connection to retry.
				send(SubEvent{Type: "unsubscribed", ID: id})
				return
			}
			if st.TakeLagged() {
				// Deltas were dropped while the consumer was behind: the
				// chain is broken, so drain what is queued (all superseded)
				// and replace it with one fresh snapshot.
				for drained := false; !drained; {
					select {
					case _, more := <-st.Events():
						if !more {
							send(SubEvent{Type: "unsubscribed", ID: id})
							return
						}
					default:
						drained = true
					}
				}
				if !send(st.Resync()) {
					return
				}
				continue
			}
			if !send(ev) {
				return
			}
		case <-keepalive.C:
			// SSE comment line: keeps idle connections alive through
			// intermediaries without emitting a client-visible event.
			if _, werr := io.WriteString(w, ": keepalive\n\n"); werr != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		}
	}
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	var req sqlRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := h.srv.Query(req.SQL)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusOK, sqlResultJSON(res))
}

func (h *Handler) exec(w http.ResponseWriter, r *http.Request) {
	var req sqlRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, epoch, err := h.srv.Exec(req.SQL)
	if err != nil {
		writeMutationError(w, r, http.StatusBadRequest, err)
		return
	}
	out := sqlResultJSON(res)
	writeJSON(w, r, http.StatusOK, map[string]any{
		"cols": out.Cols, "rows": out.Rows, "epoch": epoch,
	})
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, http.StatusOK, h.srv.Stats())
}

// healthzShard is one shard's row in the /healthz detail.
type healthzShard struct {
	Shard  int    `json:"shard"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
}

// healthz reports liveness plus the failure-domain state. The status is
// always 200 — a degraded or quarantined daemon is alive and serving
// reads; restarting it (what orchestrators do with failing liveness
// probes) would only destroy the in-memory state repair needs. The body
// carries the aggregate state and per-shard detail for operators.
func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	st := h.srv.Stats()
	resp := map[string]any{"status": "ok"}
	if st.Health != nil {
		if st.Health.State != StateHealthy {
			resp["status"] = st.Health.State
		}
		resp["health"] = st.Health
	}
	if len(st.Shards) > 0 {
		rows := make([]healthzShard, len(st.Shards))
		for i, ss := range st.Shards {
			rows[i] = healthzShard{Shard: i, State: StateHealthy}
			if ss.Health != nil {
				rows[i].State = ss.Health.State
				rows[i].Reason = ss.Health.Reason
			}
		}
		resp["shards"] = rows
	}
	writeJSON(w, r, http.StatusOK, resp)
}

// --- chaos endpoints (wired only when HandlerOptions.Chaos is set) ---------

type chaosArmRequest struct {
	Faults []faultinject.Fault `json:"faults"`
}

func (h *Handler) chaosList(w http.ResponseWriter, r *http.Request) {
	faults := h.chaos.Snapshot()
	if faults == nil {
		faults = []faultinject.FaultStatus{}
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"faults": faults})
}

func (h *Handler) chaosArm(w http.ResponseWriter, r *http.Request) {
	var req chaosArmRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Faults) == 0 {
		writeError(w, r, http.StatusBadRequest, errors.New("serve: no faults in request"))
		return
	}
	for _, f := range req.Faults {
		if err := h.chaos.Arm(f); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"armed": len(req.Faults)})
}

func (h *Handler) chaosClear(w http.ResponseWriter, r *http.Request) {
	h.chaos.Clear()
	writeJSON(w, r, http.StatusOK, map[string]string{"status": "cleared"})
}

// --- helpers ---------------------------------------------------------------

// writeMutationError maps a backend mutation failure: ErrDegraded — the
// journal is down and the write was refused before applying anywhere —
// and ErrNotJournaled — the in-flight write that hit the disk fault
// itself, applied in memory but never acknowledged as durable — both
// become 503 + Retry-After (a background disk probe re-arms the WAL and
// re-journals the unjournaled tail, so retrying is the right client
// move; 4xx would tell it to give up). Anything else keeps the
// endpoint's usual status.
func writeMutationError(w http.ResponseWriter, r *http.Request, fallback int, err error) {
	if errors.Is(err, ErrDegraded) || errors.Is(err, ErrNotJournaled) {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, r, fallback, err)
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

// jsonBufPool recycles response-encoding buffers across requests; the
// rank path allocates nothing else for the response body, so pooling here
// keeps the whole serve hot path allocation-light.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufBytes caps buffers returned to the pool so one oversized
// response (a full-catalog rank with explanations) cannot pin its
// allocation for the life of the process.
const maxPooledBufBytes = 1 << 20

// writeJSON encodes payload into a pooled buffer *before* writing the
// header: an encoding failure can still become a clean 500 with the
// request ID instead of a truncated 200, and both encode and write
// failures are recorded on the request's reqInfo so the access-log line
// carries them.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, payload any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBufBytes {
			jsonBufPool.Put(buf)
		}
	}()
	if err := json.NewEncoder(buf).Encode(payload); err != nil {
		noteEncodeError(r, fmt.Errorf("encode: %w", err))
		buf.Reset()
		resp := errorResponse{Error: "serve: response encoding failed", Code: "internal"}
		if info := requestInfo(r); info != nil {
			resp.RequestID = info.id
		}
		_ = json.NewEncoder(buf).Encode(resp)
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The client is gone or the connection broke mid-body; nothing to
		// send them, but the access log should say the response was cut.
		noteEncodeError(r, fmt.Errorf("write: %w", err))
	}
}

// errorCode maps a response status + error to the envelope's machine
// code. Sentinel errors win over the status (a 503 caused by a
// quarantined shard reports "quarantined", not the generic "degraded")
// so clients can branch on the cause, not the transport code.
func errorCode(status int, err error) string {
	switch {
	case err != nil && errors.Is(err, ErrQuarantined):
		return "quarantined"
	case err != nil && (errors.Is(err, ErrDegraded) || errors.Is(err, ErrNotJournaled)):
		return "degraded"
	}
	switch {
	case status == http.StatusBadRequest:
		return "bad_request"
	case status == http.StatusNotFound:
		return "not_found"
	case status == http.StatusConflict:
		return "conflict"
	case status == http.StatusTooManyRequests:
		return "rate_limited"
	case status == http.StatusServiceUnavailable:
		return "degraded"
	case status >= 500:
		return "internal"
	default:
		return "error"
	}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeErrorCode(w, r, status, errorCode(status, err), err)
}

// writeErrorCode is writeError with an explicit envelope code, for the
// few places where the status alone is ambiguous (a 404 on a session
// lookup is "unknown_user"; on a rule or subscription it is "not_found").
func writeErrorCode(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	resp := errorResponse{Error: err.Error(), Code: code}
	if info := requestInfo(r); info != nil {
		resp.RequestID = info.id
	}
	writeJSON(w, r, status, resp)
}

// writeShed writes the 429 shed response with its Retry-After hint
// (whole seconds, rounded up, at least 1 — the header's granularity).
func writeShed(w http.ResponseWriter, r *http.Request, retry time.Duration, err error) {
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, r, http.StatusTooManyRequests, err)
}

func sqlResultJSON(res *sql.Result) sqlResponse {
	if res == nil {
		// Statements like CREATE TABLE or INSERT produce no result set.
		return sqlResponse{Cols: []string{}, Rows: [][]any{}}
	}
	out := sqlResponse{Cols: res.Cols, Rows: make([][]any, len(res.Rows))}
	for i, row := range res.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = jsonValue(v)
		}
		out.Rows[i] = vals
	}
	return out
}

// jsonValue renders a storage value for JSON transport; event expressions
// travel as their textual form.
func jsonValue(v storage.Value) any {
	switch v.T {
	case storage.TypeInt:
		return v.I
	case storage.TypeFloat:
		return v.F
	case storage.TypeText:
		return v.S
	case storage.TypeBool:
		return v.B
	case storage.TypeEvent:
		if v.Ev == nil {
			return nil
		}
		return v.Ev.String()
	default:
		return nil
	}
}
