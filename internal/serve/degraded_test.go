package serve

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/serve/journal"

	contextrank "repro"
)

// newDegradableServer boots a handler over a server with an attached
// WAL whose filesystem is wrapped by the given injector, with the
// degrade-on-disk-error policy armed.
func newDegradableServer(t *testing.T, in *faultinject.Injector) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewServer(contextrank.NewSystem(), Options{DegradeOnDiskError: true})
	j, _, err := journal.Open(filepath.Join(t.TempDir(), "shard0.wal"),
		journal.Options{FS: faultinject.FS(in, nil)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	srv.AttachJournal(j)
	ts := httptest.NewServer(NewHandlerFor(srv))
	t.Cleanup(ts.Close)

	call(t, ts, "POST", "/v1/declare", `{"concepts":["Thing","Ctx"]}`, http.StatusOK, nil)
	call(t, ts, "POST", "/v1/assert",
		`{"concepts":[{"concept":"Thing","id":"a","prob":1}]}`, http.StatusOK, nil)
	return ts, srv
}

// putSession issues a session PUT and returns the raw response.
func putSession(t *testing.T, ts *httptest.Server, user string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("PUT", ts.URL+"/v1/sessions/"+user+"/context",
		bytes.NewBufferString(`{"measurements":[{"concept":"Ctx","prob":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestDiskFaultFirstMutationSheds503: the in-flight write that hits the
// disk fault itself — before the degraded gate is up — must shed 503 +
// Retry-After like every later one, not fall through to the endpoint's
// 400 fallback (regression: a 4xx told clients to give up on a
// transient disk fault). Recovery via ProbeDisk must then re-journal
// the applied-but-unjournaled tail and accept writes again.
func TestDiskFaultFirstMutationSheds503(t *testing.T) {
	in := faultinject.New(1)
	ts, srv := newDegradableServer(t, in)

	if resp := putSession(t, ts, "alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy session PUT: status %d", resp.StatusCode)
	}

	// Dead disk: writes and the reset probe's fsync both fail.
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSWrite, Err: "ENOSPC"}); err != nil {
		t.Fatal(err)
	}
	if err := in.Arm(faultinject.Fault{Point: faultinject.FSSync, Err: "ENOSPC"}); err != nil {
		t.Fatal(err)
	}

	first := putSession(t, ts, "bob")
	if first.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first failing PUT: status %d, want 503", first.StatusCode)
	}
	if first.Header.Get("Retry-After") == "" {
		t.Error("first failing PUT: no Retry-After")
	}
	second := putSession(t, ts, "carol")
	if second.StatusCode != http.StatusServiceUnavailable || second.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded PUT: status %d Retry-After %q, want 503 with hint",
			second.StatusCode, second.Header.Get("Retry-After"))
	}
	if !srv.Degraded() {
		t.Fatal("server not degraded after disk fault")
	}
	// The server-side error chain carries both sentinels.
	if _, err := srv.Sessions().Set("dave", []Measurement{{Concept: "Ctx", Prob: 1}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Set error = %v, want ErrDegraded", err)
	}
	if err := srv.ProbeDisk(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("probe on dead disk = %v, want ENOSPC", err)
	}

	// Reads keep serving from memory while degraded.
	call(t, ts, "GET", "/v1/rank?user=alice&target=Thing", "", http.StatusOK, nil)

	in.Clear()
	if err := srv.ProbeDisk(); err != nil {
		t.Fatalf("probe after clear: %v", err)
	}
	if srv.Degraded() {
		t.Fatal("still degraded after successful probe")
	}
	if resp := putSession(t, ts, "erin"); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered session PUT: status %d", resp.StatusCode)
	}
	// bob's write was applied in memory and re-journaled by the probe:
	// it must survive a replay.
	users := map[string]bool{}
	if _, err := journal.Replay(srv.Journal().Path(), func(rec journal.Record) error {
		if rec.Op == journal.OpSet {
			users[rec.User] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob", "erin"} {
		if !users[u] {
			t.Errorf("user %s missing from replayed WAL", u)
		}
	}
}
