// Package metrics is a zero-dependency Prometheus-text-exposition metric
// registry for the serving layer: counters, gauges and fixed-bucket
// histograms, all backed by atomics so observation on the rank hot path is
// a handful of atomic adds and a scrape never takes a lock that request
// traffic contends (the same lock-free discipline as the serve stats
// collection, see DESIGN.md §3.5).
//
// Two kinds of series exist:
//
//   - Static instruments (Counter, Gauge, Histogram and their label Vec
//     forms) are registered once at startup and updated by request
//     middleware; the registry renders them on every scrape.
//   - Collectors are callbacks invoked per scrape to emit series derived
//     from existing state — the serve layer uses one to turn a single
//     Backend.Stats() snapshot into per-shard QPS/cache/journal series
//     without double bookkeeping.
//
// The exposition format is the Prometheus text format (version 0.0.4):
// "# HELP"/"# TYPE" headers followed by samples, histograms rendered as
// cumulative le-labeled _bucket series plus _sum and _count. Families
// render in registration order and Vec children in sorted label order, so
// output is deterministic (golden-testable).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE validates metric and label names (the Prometheus identifier
// grammar, without the colon forms reserved for recording rules).
var nameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Registry holds registered metric families and scrape collectors.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []CollectorFunc
}

// CollectorFunc emits dynamically derived series on every scrape. The
// families it writes must not collide with statically registered names.
type CollectorFunc func(w *Writer)

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric family with its children keyed by label
// values.
type family struct {
	name   string
	help   string
	typ    string   // "counter", "gauge", "histogram"
	labels []string // label names for Vec families; nil for singletons

	mu       sync.Mutex
	children map[string]sample // label-values key -> child
	order    []string          // insertion keys, sorted at render time
}

// sample is anything that can render its current value(s).
type sample interface {
	write(w *Writer, name string, labels []string, values []string)
}

// register adds a family or panics on invalid/duplicate names —
// registration happens once at startup, where a panic is an immediate,
// attributable configuration error rather than a silently dropped metric.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, children: map[string]sample{}}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Collect registers a per-scrape collector callback.
func (r *Registry) Collect(fn CollectorFunc) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// --- counter ---------------------------------------------------------------

// Counter is a monotonically increasing integer-valued counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be non-negative; counters only go up).
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

func (c *Counter) write(w *Writer, name string, labels, values []string) {
	w.sample(name, labels, values, float64(c.n.Load()))
}

// Counter registers a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	c := &Counter{}
	f.children[""] = c
	f.order = []string{""}
	return c
}

// CounterVec registers a counter family with the given label names.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, "counter", labels)}
}

// With returns the child counter for the given label values, creating it
// on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() sample { return &Counter{} }).(*Counter)
}

// --- gauge -----------------------------------------------------------------

// Gauge is a float-valued gauge (atomic float64 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop over the float bits).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w *Writer, name string, labels, values []string) {
	w.sample(name, labels, values, g.Value())
}

// Gauge registers a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	g := &Gauge{}
	f.children[""] = g
	f.order = []string{""}
	return g
}

// gaugeFunc renders a callback's value at scrape time.
type gaugeFunc func() float64

func (g gaugeFunc) write(w *Writer, name string, labels, values []string) {
	w.sample(name, labels, values, g())
}

// GaugeFunc registers a gauge whose value is computed at each scrape.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.children[""] = gaugeFunc(fn)
	f.order = []string{""}
}

// --- histogram -------------------------------------------------------------

// Histogram counts observations into fixed cumulative buckets. Buckets are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. Observe is wait-free: one binary search plus two atomic adds and a
// CAS loop for the float sum.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // per-bucket (non-cumulative) counts; last = +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not ascending: %v", buckets))
		}
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	return &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v (le is inclusive).
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w *Writer, name string, labels, values []string) {
	// Fresh slices: appending to the caller's label slices in place could
	// alias their backing arrays across bucket lines.
	ls := append(append(make([]string, 0, len(labels)+1), labels...), "le")
	vs := append(make([]string, 0, len(values)+1), values...)
	var cum uint64
	for i, b := range h.upper {
		cum += h.buckets[i].Load()
		w.sample(name+"_bucket", ls, append(vs, formatFloat(b)), float64(cum))
	}
	cum += h.buckets[len(h.upper)].Load()
	w.sample(name+"_bucket", ls, append(vs, "+Inf"), float64(cum))
	w.sample(name+"_sum", labels, values, h.Sum())
	w.sample(name+"_count", labels, values, float64(cum))
}

// Histogram registers a label-less histogram over the given bucket upper
// bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	h := newHistogram(buckets)
	f.children[""] = h
	f.order = []string{""}
	return h
}

// HistogramVec is a labeled histogram family; every child shares the same
// bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: HistogramVec %q needs at least one label", name))
	}
	return &HistogramVec{f: r.register(name, help, "histogram", labels), buckets: buckets}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() sample { return newHistogram(v.buckets) }).(*Histogram)
}

// --- vec children ----------------------------------------------------------

// child returns (creating on first use) the family's child for the label
// values. The fast path is one map read under the family mutex — a scrape
// holds the same mutex only long enough to copy the key list, so request
// traffic never queues behind rendering I/O.
func (f *family) child(values []string, make func() sample) sample {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	c, ok := f.children[key]
	if !ok {
		c = make()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	f.mu.Unlock()
	return c
}

// --- exposition ------------------------------------------------------------

// ContentType is the scrape response content type (Prometheus text format).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders every family and collector in the text exposition
// format.
func (r *Registry) WriteTo(out io.Writer) (int64, error) {
	w := &Writer{out: out}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	collectors := append([]CollectorFunc(nil), r.collectors...)
	r.mu.Unlock()
	for _, f := range families {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]sample, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		// Sorted label order keeps output deterministic regardless of the
		// order children were first touched in.
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		w.Family(f.name, f.typ, f.help)
		for _, i := range idx {
			var values []string
			if len(f.labels) > 0 {
				values = strings.Split(keys[i], "\xff")
			}
			children[i].write(w, f.name, f.labels, values)
		}
	}
	for _, fn := range collectors {
		fn(w)
	}
	return w.n, w.err
}

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = r.WriteTo(w)
	})
}

// Writer renders exposition lines; collectors receive one per scrape.
// Errors are sticky: the first write failure suppresses the rest.
type Writer struct {
	out io.Writer
	n   int64
	err error
}

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	n, err := fmt.Fprintf(w.out, format, args...)
	w.n += int64(n)
	w.err = err
}

// Family writes the # HELP / # TYPE header for a family. Call it once
// before the family's samples.
func (w *Writer) Family(name, typ, help string) {
	w.printf("# HELP %s %s\n", name, escapeHelp(help))
	w.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line; kv is an alternating label key/value
// list.
func (w *Writer) Sample(name string, value float64, kv ...string) {
	if len(kv)%2 != 0 {
		panic("metrics: Sample needs alternating label key/value pairs")
	}
	labels := make([]string, 0, len(kv)/2)
	values := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, kv[i])
		values = append(values, kv[i+1])
	}
	w.sample(name, labels, values, value)
}

// Histogram writes a full histogram family body (cumulative buckets from
// raw per-bucket counts whose last element is the +Inf overflow, then _sum
// and _count) under the given labels. bounds and counts line up as
// len(counts) == len(bounds)+1; a nil counts writes an all-zero histogram.
func (w *Writer) Histogram(name string, bounds []float64, counts []int64, sum float64, kv ...string) {
	if len(kv)%2 != 0 {
		panic("metrics: Histogram needs alternating label key/value pairs")
	}
	var cum int64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		w.Sample(name+"_bucket", float64(cum), append(kv, "le", formatFloat(b))...)
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	w.Sample(name+"_bucket", float64(cum), append(kv, "le", "+Inf")...)
	w.Sample(name+"_sum", sum, kv...)
	w.Sample(name+"_count", float64(cum), kv...)
}

func (w *Writer) sample(name string, labels, values []string, v float64) {
	if len(labels) == 0 {
		w.printf("%s %s\n", name, formatFloat(v))
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	w.printf("%s %s\n", b.String(), formatFloat(v))
}

// formatFloat renders a value the way Prometheus text format expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
