package metrics

import (
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden locks the text exposition format: family headers,
// label rendering and escaping, histogram cumulative buckets, collector
// output, deterministic ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(3)

	v := r.CounterVec("test_sheds_total", "Requests shed.", "reason")
	v.With("queue_full").Add(2)
	v.With("rate_limit").Inc()

	g := r.Gauge("test_queue_depth", "Waiting requests.")
	g.Set(4)
	g.Add(-1.5)

	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12.5 })

	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	r.Collect(func(w *Writer) {
		w.Family("test_shard_requests_total", "counter", "Per-shard requests.")
		w.Sample("test_shard_requests_total", 7, "shard", "0")
		w.Sample("test_shard_requests_total", 9, "shard", "1")
		w.Family("test_batch_records", "histogram", "Batch sizes.")
		w.Histogram("test_batch_records", []float64{1, 2}, []int64{5, 3, 1}, 18, "shard", "0")
	})

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_sheds_total Requests shed.
# TYPE test_sheds_total counter
test_sheds_total{reason="queue_full"} 2
test_sheds_total{reason="rate_limit"} 1
# HELP test_queue_depth Waiting requests.
# TYPE test_queue_depth gauge
test_queue_depth 2.5
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 12.5
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.105
test_latency_seconds_count 4
# HELP test_shard_requests_total Per-shard requests.
# TYPE test_shard_requests_total counter
test_shard_requests_total{shard="0"} 7
test_shard_requests_total{shard="1"} 9
# HELP test_batch_records Batch sizes.
# TYPE test_batch_records histogram
test_batch_records_bucket{shard="0",le="1"} 5
test_batch_records_bucket{shard="0",le="2"} 8
test_batch_records_bucket{shard="0",le="+Inf"} 9
test_batch_records_sum{shard="0"} 18
test_batch_records_count{shard="0"} 9
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionLineFormat asserts every rendered line is either a comment
// or matches the sample-line grammar — the same check the overload smoke
// applies to a live scrape.
func TestExpositionLineFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("fmt_total", "With tricky label values.", "path").
		With(`a"b\c` + "\nd").Inc()
	r.Gauge("fmt_negative", "Negative gauge.").Set(-0.25)
	h := r.Histogram("fmt_hist", "H.", []float64{0.5})
	h.Observe(0.1)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		// name{labels} value — labels optional, value a float or ±Inf.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if !strings.HasPrefix(name, "fmt_") {
			t.Fatalf("unexpected series %q", line)
		}
		if val != "+Inf" && val != "-Inf" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("bad value %q in line %q: %v", val, line, err)
			}
		}
		if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
			t.Fatalf("unterminated label block in %q", line)
		}
	}
	// The escaped label value must round-trip the escapes.
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Errorf("label escaping broken:\n%s", b.String())
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucketing: a value
// equal to an upper bound lands in that bucket, just above it in the next,
// and everything above the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bounds_seconds", "B.", []float64{1, 2, 4})

	h.Observe(1)             // le="1"
	h.Observe(1.0000001)     // le="2"
	h.Observe(2)             // le="2"
	h.Observe(4)             // le="4"
	h.Observe(4.5)           // +Inf
	h.Observe(math.MaxInt32) // +Inf
	h.Observe(0)             // le="1"
	h.Observe(-1)            // le="1" (below the first bound still counts)

	want := []uint64{3, 2, 1, 2} // raw per-bucket: le1, le2, le4, +Inf
	for i, n := range want {
		if got := h.buckets[i].Load(); got != n {
			t.Errorf("bucket %d = %d, want %d", i, got, n)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`bounds_seconds_bucket{le="1"} 3`,
		`bounds_seconds_bucket{le="2"} 5`,
		`bounds_seconds_bucket{le="4"} 6`,
		`bounds_seconds_bucket{le="+Inf"} 8`,
		`bounds_seconds_count 8`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing %q in:\n%s", line, b.String())
		}
	}
}

// TestConcurrentIncrements hammers every instrument type from many
// goroutines while scrapes run concurrently — run under -race in CI; the
// final counts must be exact (atomics lose nothing).
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "C.")
	v := r.CounterVec("conc_labeled_total", "CL.", "k")
	g := r.Gauge("conc_gauge", "G.")
	h := r.Histogram("conc_hist", "H.", []float64{0.5})

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b"}[w%2]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(key).Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.75)
			}
		}(w)
	}
	// Concurrent scrapes must not race observation.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if _, err := r.WriteTo(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if n := v.With("a").Value() + v.With("b").Value(); n != total {
		t.Errorf("vec sum = %d, want %d", n, total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
}

// TestHandler serves the exposition over HTTP with the Prometheus content
// type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "H.").Add(1)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1\n") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}

// TestRegistrationPanics pins the startup-time failure mode for invalid
// and duplicate registrations.
func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "x")
	for name, fn := range map[string]func(){
		"duplicate name":    func() { r.Counter("ok_total", "again") },
		"bad metric name":   func() { r.Counter("bad-name", "x") },
		"bad label name":    func() { r.CounterVec("v_total", "x", "bad-label") },
		"reserved le label": func() { r.HistogramVec("h_seconds", "x", []float64{1}, "le") },
		"empty buckets":     func() { r.Histogram("e_seconds", "x", nil) },
		"descending":        func() { r.Histogram("d_seconds", "x", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
