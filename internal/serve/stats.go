package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent observations the percentile estimator
// keeps. Old observations are overwritten ring-buffer style, so reported
// percentiles describe recent traffic, not all-time history.
const latencyWindow = 4096

// latencyRecorder tracks request latencies in a fixed-size ring.
type latencyRecorder struct {
	mu    sync.Mutex
	ring  [latencyWindow]time.Duration
	next  int
	count int64
	sum   time.Duration
}

func (r *latencyRecorder) observe(d time.Duration) {
	r.mu.Lock()
	r.ring[r.next] = d
	r.next = (r.next + 1) % latencyWindow
	r.count++
	r.sum += d
	r.mu.Unlock()
}

// LatencyStats summarizes the recent latency distribution. Quantiles are
// over the retained window (its actual size is Window); Count and
// MeanMicros are all-time.
type LatencyStats struct {
	Count      int64   `json:"count"`
	Window     int     `json:"window"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P95Micros  float64 `json:"p95_us"`
	P99Micros  float64 `json:"p99_us"`
}

func (r *latencyRecorder) snapshot() LatencyStats {
	r.mu.Lock()
	n := int(r.count)
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]time.Duration, n)
	copy(window, r.ring[:n])
	st := LatencyStats{Count: r.count, Window: n}
	if r.count > 0 {
		st.MeanMicros = float64(r.sum.Microseconds()) / float64(r.count)
	}
	r.mu.Unlock()

	if n == 0 {
		return st
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(n-1))
		return float64(window[idx].Nanoseconds()) / 1e3
	}
	st.P50Micros = quantile(0.50)
	st.P95Micros = quantile(0.95)
	st.P99Micros = quantile(0.99)
	return st
}
