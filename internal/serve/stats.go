package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent observations the percentile estimator
// keeps. Old observations are overwritten ring-buffer style, so reported
// percentiles describe recent traffic, not all-time history.
const latencyWindow = 4096

// RankLatencyBuckets are the fixed histogram bounds (seconds) the latency
// recorder counts into, alongside the percentile ring. They cover the
// rank path's realistic range — a cache hit lands in the first buckets, a
// cold factorized rank in the middle, and anything past 2.5s is tail
// trouble — and being fixed they merge across shards by simple addition,
// which the percentile ring cannot.
var rankLatencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// RankLatencyBuckets is the bounds slice callers (the metrics exporter)
// read; it aliases the fixed backing array.
var RankLatencyBuckets = rankLatencyBounds[:]

// latencyRecorder tracks request latencies in a fixed-size ring. It is
// fully lock-free: observe is two atomic stores on the rank hot path, and
// snapshot reads the ring without excluding writers — a stats scrape can
// never add tail latency to rank traffic. The price is that a snapshot is
// not a consistent point-in-time cut: a slot may be observed mid-update
// (still holding the previous observation, or zero before the first lap
// completes). Percentiles over 4096 samples are insensitive to a handful
// of torn slots.
type latencyRecorder struct {
	ring [latencyWindow]atomic.Int64 // nanoseconds per slot
	next atomic.Int64                // total observations ever; slot = (n-1) % window
	sum  atomic.Int64                // nanoseconds, all-time

	// hist counts all-time observations per RankLatencyBuckets bucket
	// (last slot = +Inf overflow); unlike the ring it never forgets, so
	// /metrics can expose a cumulative Prometheus histogram.
	hist [len(rankLatencyBounds) + 1]atomic.Int64
}

func (r *latencyRecorder) observe(d time.Duration) {
	n := r.next.Add(1)
	r.ring[(n-1)%latencyWindow].Store(int64(d))
	r.sum.Add(int64(d))
	secs := d.Seconds()
	i := sort.SearchFloat64s(RankLatencyBuckets, secs)
	r.hist[i].Add(1)
}

// LatencyStats summarizes the recent latency distribution. Quantiles are
// over the retained window (its actual size is Window); Count and
// MeanMicros are all-time.
type LatencyStats struct {
	Count      int64   `json:"count"`
	Window     int     `json:"window"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P95Micros  float64 `json:"p95_us"`
	P99Micros  float64 `json:"p99_us"`
	// Buckets are all-time per-bucket observation counts aligned with
	// RankLatencyBuckets (len = len(RankLatencyBuckets)+1, the last slot
	// counting everything above the final bound). Raw, not cumulative;
	// /metrics renders the cumulative Prometheus form.
	Buckets []int64 `json:"bucket_counts,omitempty"`
}

func (r *latencyRecorder) snapshot() LatencyStats {
	count := r.next.Load()
	n := int(count)
	if n > latencyWindow {
		n = latencyWindow
	}
	st := LatencyStats{Count: count, Window: n}
	if count > 0 {
		st.MeanMicros = float64(r.sum.Load()) / 1e3 / float64(count)
	}
	st.Buckets = make([]int64, len(r.hist))
	for i := range r.hist {
		st.Buckets[i] = r.hist[i].Load()
	}
	if n == 0 {
		return st
	}
	window := make([]int64, n)
	for i := 0; i < n; i++ {
		window[i] = r.ring[i].Load()
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(n-1))
		return float64(window[idx]) / 1e3
	}
	st.P50Micros = quantile(0.50)
	st.P95Micros = quantile(0.95)
	st.P99Micros = quantile(0.99)
	return st
}

// Merge folds other into a combined view of several recorders' stats —
// the shard coordinator uses it to aggregate per-shard latency: counts
// add, the mean is count-weighted, and each percentile takes the worst
// (largest) shard's value — an upper bound, since exact percentile
// merging would need the raw windows.
func (s LatencyStats) Merge(other LatencyStats) LatencyStats {
	out := LatencyStats{
		Count:  s.Count + other.Count,
		Window: s.Window + other.Window,
	}
	if out.Count > 0 {
		out.MeanMicros = (s.MeanMicros*float64(s.Count) + other.MeanMicros*float64(other.Count)) / float64(out.Count)
	}
	out.P50Micros = maxFloat(s.P50Micros, other.P50Micros)
	out.P95Micros = maxFloat(s.P95Micros, other.P95Micros)
	out.P99Micros = maxFloat(s.P99Micros, other.P99Micros)
	out.Buckets = mergeBuckets(s.Buckets, other.Buckets)
	return out
}

// mergeBuckets adds two raw bucket-count vectors elementwise; fixed
// bounds make the histogram the one latency statistic that merges
// exactly across shards.
func mergeBuckets(a, b []int64) []int64 {
	if len(a) == 0 {
		return append([]int64(nil), b...)
	}
	if len(b) == 0 {
		return append([]int64(nil), a...)
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int64, n)
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
