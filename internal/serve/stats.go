package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent observations the percentile estimator
// keeps. Old observations are overwritten ring-buffer style, so reported
// percentiles describe recent traffic, not all-time history.
const latencyWindow = 4096

// latencyRecorder tracks request latencies in a fixed-size ring. It is
// fully lock-free: observe is two atomic stores on the rank hot path, and
// snapshot reads the ring without excluding writers — a stats scrape can
// never add tail latency to rank traffic. The price is that a snapshot is
// not a consistent point-in-time cut: a slot may be observed mid-update
// (still holding the previous observation, or zero before the first lap
// completes). Percentiles over 4096 samples are insensitive to a handful
// of torn slots.
type latencyRecorder struct {
	ring [latencyWindow]atomic.Int64 // nanoseconds per slot
	next atomic.Int64                // total observations ever; slot = (n-1) % window
	sum  atomic.Int64                // nanoseconds, all-time
}

func (r *latencyRecorder) observe(d time.Duration) {
	n := r.next.Add(1)
	r.ring[(n-1)%latencyWindow].Store(int64(d))
	r.sum.Add(int64(d))
}

// LatencyStats summarizes the recent latency distribution. Quantiles are
// over the retained window (its actual size is Window); Count and
// MeanMicros are all-time.
type LatencyStats struct {
	Count      int64   `json:"count"`
	Window     int     `json:"window"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P95Micros  float64 `json:"p95_us"`
	P99Micros  float64 `json:"p99_us"`
}

func (r *latencyRecorder) snapshot() LatencyStats {
	count := r.next.Load()
	n := int(count)
	if n > latencyWindow {
		n = latencyWindow
	}
	st := LatencyStats{Count: count, Window: n}
	if count > 0 {
		st.MeanMicros = float64(r.sum.Load()) / 1e3 / float64(count)
	}
	if n == 0 {
		return st
	}
	window := make([]int64, n)
	for i := 0; i < n; i++ {
		window[i] = r.ring[i].Load()
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(n-1))
		return float64(window[idx]) / 1e3
	}
	st.P50Micros = quantile(0.50)
	st.P95Micros = quantile(0.95)
	st.P99Micros = quantile(0.99)
	return st
}

// Merge folds other into a combined view of several recorders' stats —
// the shard coordinator uses it to aggregate per-shard latency: counts
// add, the mean is count-weighted, and each percentile takes the worst
// (largest) shard's value — an upper bound, since exact percentile
// merging would need the raw windows.
func (s LatencyStats) Merge(other LatencyStats) LatencyStats {
	out := LatencyStats{
		Count:  s.Count + other.Count,
		Window: s.Window + other.Window,
	}
	if out.Count > 0 {
		out.MeanMicros = (s.MeanMicros*float64(s.Count) + other.MeanMicros*float64(other.Count)) / float64(out.Count)
	}
	out.P50Micros = maxFloat(s.P50Micros, other.P50Micros)
	out.P95Micros = maxFloat(s.P95Micros, other.P95Micros)
	out.P99Micros = maxFloat(s.P99Micros, other.P99Micros)
	return out
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
