package serve

import (
	"math"
	"testing"

	contextrank "repro"
)

func TestServerRankCacheHitAndEpochInvalidation(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}

	r1, m1, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cached {
		t.Fatal("first rank cannot be cached")
	}
	r2, m2, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Cached {
		t.Fatal("second rank should hit the cache")
	}
	sameResults(t, r2, r1)

	// A data mutation bumps the epoch and must invalidate: the next rank
	// recomputes and equals a fresh uncached ranking.
	if err := srv.Facade().AssertRole("hasGenre", "tv01", "g0", 0.9); err != nil {
		t.Fatal(err)
	}
	r3, m3, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Cached {
		t.Fatal("rank after mutation must not be served from cache")
	}
	if m3.Epoch <= m1.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", m1.Epoch, m3.Epoch)
	}
	fresh, err := srv.Facade().RankWith("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, r3, fresh)

	// tv01 gained a probable g0 genre, so its score must have moved.
	score := func(rs []contextrank.Result, id string) float64 {
		for _, r := range rs {
			if r.ID == id {
				return r.Score
			}
		}
		t.Fatalf("no %s in results", id)
		return 0
	}
	if score(r3, "tv01") == score(r1, "tv01") {
		t.Fatal("mutation had no effect on tv01's score — invalidation test is vacuous")
	}
}

func TestSessionUpdateInvalidatesOnlyThatUser(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Sessions().Set("maria", []Measurement{{Concept: "CtxB", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	epochBefore := srv.Facade().Epoch()

	rp, _, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Rank("maria", "TvProgram", contextrank.RankOptions{}); err != nil {
		t.Fatal(err)
	}

	// Maria's context changes. Session updates must not bump the epoch...
	if _, err := srv.Sessions().Set("maria", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Facade().Epoch(); got != epochBefore {
		t.Fatalf("session update bumped epoch %d -> %d", epochBefore, got)
	}

	// ...so peter still hits his cache, and the cached scores stay exact.
	rp2, mp2, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mp2.Cached {
		t.Fatal("peter's entry should have survived maria's update")
	}
	sameResults(t, rp2, rp)
	freshP, err := srv.Facade().RankWith("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, rp2, freshP)

	// Maria's own next rank is a miss and reflects her new context: under
	// CtxA she now prefers g0 programs, like peter.
	rm2, mm2, err := srv.Rank("maria", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mm2.Cached {
		t.Fatal("maria's rank after her context change must recompute")
	}
	sameResults(t, rm2, freshP)
}

func TestSessionFingerprints(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	s := srv.Sessions()
	fp1, err := s.Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := s.Set("peter", []Measurement{{Concept: "CtxA", Prob: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("different measurements must fingerprint differently")
	}
	fp3, err := s.Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fp1 {
		t.Fatal("identical measurements must fingerprint identically")
	}
	if got := s.Fingerprint("peter"); got != fp3 {
		t.Fatalf("Fingerprint = %q, want %q", got, fp3)
	}
	if got := s.Fingerprint("nobody"); got != "" {
		t.Fatalf("Fingerprint for unknown user = %q, want empty", got)
	}
	// Measurement fields are free-form bytes; crafted separator bytes in
	// one field must not collide two different lists (which would pin
	// the fingerprint and disable the user's cache invalidation).
	a := fingerprint("u", []Measurement{
		{Concept: "CtxA", Prob: 1, Exclusive: "g"},
		{Concept: "CtxB", Prob: 1},
	})
	b := fingerprint("u", []Measurement{
		{Concept: "CtxA", Prob: 1, Exclusive: "g\x00CtxB\x01\x021\x03"},
	})
	if a == b {
		t.Fatal("separator injection collided two measurement lists")
	}
	if users := s.Users(); len(users) != 1 || users[0] != "peter" {
		t.Fatalf("Users = %v", users)
	}
	if err := s.Drop("peter"); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Fatal("session survived Drop")
	}
	if err := s.Drop("peter"); err != nil {
		t.Fatal("double Drop should be a no-op, got", err)
	}
}

func TestSessionValidation(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("", nil); err == nil {
		t.Fatal("empty user accepted")
	}
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "", Prob: 1}}); err == nil {
		t.Fatal("empty concept accepted")
	}
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1.5}}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: math.NaN()}}); err == nil {
		t.Fatal("NaN probability accepted")
	}
	if _, err := srv.Sessions().Set("peter", []Measurement{
		{Concept: "CtxA", Prob: math.NaN(), Exclusive: "g"},
		{Concept: "CtxB", Prob: 0.1, Exclusive: "g"},
	}); err == nil {
		t.Fatal("NaN exclusive-group probability accepted")
	}
	// Only the session's own user may be asserted.
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Individual: "maria", Prob: 1}}); err == nil {
		t.Fatal("foreign individual accepted")
	}
	// Exclusive group probabilities must sum to at most 1.
	if _, err := srv.Sessions().Set("peter", []Measurement{
		{Concept: "CtxA", Prob: 0.7, Exclusive: "loc"},
		{Concept: "CtxB", Prob: 0.7, Exclusive: "loc"},
	}); err == nil {
		t.Fatal("exclusive group summing to 1.4 accepted")
	}
	// A failed Set must not leave a phantom session behind.
	if srv.Sessions().Count() != 0 {
		t.Fatal("failed Set left a session")
	}
}

func TestSessionRefusesDataConcepts(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	// TvProgram holds ten data assertions; a session context naming it
	// would clear the catalog on apply.
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "TvProgram", Prob: 1}}); err == nil {
		t.Fatal("data concept accepted as session context")
	}
	// The catalog must be untouched by the rejected update.
	res, err := srv.Facade().Query("SELECT id FROM c_TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rejected session update damaged the catalog: %d rows", len(res.Rows))
	}
	// Pure context concepts — even rule-declared ones — stay usable, and
	// re-use after a prior apply (own rows in the table) stays accepted.
	for i := 0; i < 2; i++ {
		if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
}

func TestFacadeReadPathRejectsDML(t *testing.T) {
	f := NewFacade(newTestSystem(t))
	epoch := f.Epoch()
	if _, err := f.Query("INSERT INTO c_TvProgram VALUES ('rogue', NULL)"); err == nil {
		t.Fatal("Query accepted INSERT")
	}
	if _, err := f.Query("  create table sneaky (id TEXT)"); err == nil {
		t.Fatal("Query accepted CREATE")
	}
	if _, err := f.RankQuery("peter", "DELETE FROM c_TvProgram", contextrank.RankOptions{}); err == nil {
		t.Fatal("RankQuery accepted DELETE")
	}
	// Rejection must happen before execution: no rogue row, no epoch move.
	res, err := f.Query("SELECT id FROM c_TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("DML executed through the read path: %d rows", len(res.Rows))
	}
	if f.Epoch() != epoch {
		t.Fatal("read path moved the epoch")
	}
}

func TestFailedSessionApplyRestoresPreviousContext(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	want, err := srv.Facade().RankWith("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// "Ctx-X" sanitizes to the same table as "Ctx_X", so declaring the
	// latter makes a session on the former fail *inside* Context.Apply,
	// after it may already have cleared other users' context assertions.
	if err := srv.Facade().DeclareConcept("Ctx_X"); err != nil {
		t.Fatal(err)
	}
	epochBefore := srv.Facade().Epoch()
	if _, err := srv.Sessions().Set("maria", []Measurement{{Concept: "Ctx-X", Prob: 1}}); err == nil {
		t.Fatal("colliding concept accepted")
	}
	// Two bumps: one from the failed apply, one after the restore so
	// anything cached inside the torn window is unreachable.
	if got := srv.Facade().Epoch(); got < epochBefore+2 {
		t.Fatalf("epoch %d after failed apply, want >= %d (bump on failure and after restore)", got, epochBefore+2)
	}
	if srv.Sessions().Count() != 1 {
		t.Fatalf("failed Set left %d sessions", srv.Sessions().Count())
	}

	// Peter's context must have been restored: a fresh ranking matches
	// the pre-failure one.
	got, err := srv.Facade().RankWith("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
}

func TestSessionGuardDetectsForeignAssertions(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	// Someone injects data into the accepted context concept.
	if err := srv.Facade().AssertConcept("CtxA", "intruder", 1); err != nil {
		t.Fatal(err)
	}
	// The next apply would clear that row; it must be refused instead.
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 0.9}}); err == nil {
		t.Fatal("apply over foreign assertions accepted")
	}
	res, err := srv.Facade().Query("SELECT id FROM c_CtxA")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("foreign assertion destroyed: %d rows", len(res.Rows))
	}
}

func TestRoleCoupledSessionUpdateBumpsEpoch(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.DeclareRole("watchesWith"); err != nil {
		t.Fatal(err)
	}
	// A rule whose context reaches another individual over a role edge:
	// bob's ranking depends on who bob watchesWith and where THEY are.
	if _, err := sys.AddRule("RULE rc WHEN EXISTS watchesWith.InKitchen PREFER TvProgram AND EXISTS hasGenre.{g0} WITH 0.7"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys, Options{})
	if err := srv.Facade().AssertRole("watchesWith", "bob", "ada", 1); err != nil {
		t.Fatal(err)
	}

	r1, _, err := srv.Rank("bob", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, m2, err := srv.Rank("bob", "TvProgram", contextrank.RankOptions{}); err != nil || !m2.Cached {
		t.Fatalf("expected cached hit (err %v)", err)
	}

	// Ada asserts only her own membership — but InKitchen sits inside the
	// rule's role filler, so bob's ranking changes: the update must
	// invalidate globally.
	before := srv.Facade().Epoch()
	if _, err := srv.Sessions().Set("ada", []Measurement{{Concept: "InKitchen", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if srv.Facade().Epoch() == before {
		t.Fatal("role-coupled session update did not bump the epoch")
	}
	r3, m3, err := srv.Rank("bob", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Cached {
		t.Fatal("bob served a stale ranking after ada's role-coupled update")
	}
	fresh, err := srv.Facade().RankWith("bob", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, r3, fresh)
	if r1[0].Score == r3[0].Score {
		t.Fatal("rule rc did not change bob's score — coupling test is vacuous")
	}

	// Role-free vocabulary keeps the per-user fast path.
	before = srv.Facade().Epoch()
	if _, err := srv.Sessions().Set("maria", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if srv.Facade().Epoch() != before {
		t.Fatal("role-free session update bumped the epoch")
	}
}

func TestSessionGuardProtectsRetractedConcepts(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Facade().AssertConcept("CtxA", "intruder", 1); err != nil {
		t.Fatal(err)
	}
	// Switching to CtxB retracts CtxA (it leaves the snapshot), which
	// would clear the intruder row — must be refused even though CtxA is
	// not in the new measurement list.
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxB", Prob: 1}}); err == nil {
		t.Fatal("retraction over foreign assertions accepted")
	}
	// Dropping the session retracts it just the same.
	if err := srv.Sessions().Drop("peter"); err == nil {
		t.Fatal("drop over foreign assertions accepted")
	}
	res, err := srv.Facade().Query("SELECT id FROM c_CtxA")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("foreign assertion destroyed: %d rows", len(res.Rows))
	}
}

func TestAlgorithmSpellingsShareCacheEntry(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{}); err != nil {
		t.Fatal(err)
	}
	_, meta, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{Algorithm: contextrank.AlgorithmFactorized})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Cached {
		t.Fatal("explicit factorized spelling missed the default-algorithm entry")
	}
}

func TestSessionApplyInvalidatesFacadeContextUsers(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	f := srv.Facade()
	// Peter's context arrives through the facade, not a session: his
	// cache key carries no fingerprint.
	if err := f.SetContext(contextrank.NewContext("peter").Certain("CtxA")); err != nil {
		t.Fatal(err)
	}
	r1, _, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, m2, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{}); err != nil || !m2.Cached {
		t.Fatalf("expected cached hit (err %v)", err)
	}
	// Zoe's session apply retracts the facade snapshot, changing peter's
	// rankings — it must invalidate his fingerprint-less cache entries.
	if _, err := srv.Sessions().Set("zoe", []Measurement{{Concept: "CtxB", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	r3, m3, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Cached {
		t.Fatal("stale facade-context ranking served from cache after session apply")
	}
	fresh, err := f.RankWith("peter", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, r3, fresh)
	if r1[0].Score == r3[0].Score {
		t.Fatal("retracting CtxA left peter's top score unchanged — invalidation test is vacuous")
	}
	// Subsequent session applies (no external context anymore) keep the
	// no-bump fast path.
	before := f.Epoch()
	if _, err := srv.Sessions().Set("zoe", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != before {
		t.Fatal("session apply without a facade context bumped the epoch")
	}
}

func TestSessionGuardCountsDistinctRows(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	// Two measurements of the same (concept, individual) merge into one
	// table row; the guard must count 1, not 2.
	if _, err := srv.Sessions().Set("peter", []Measurement{
		{Concept: "CtxA", Prob: 1},
		{Concept: "CtxA", Prob: 0.9},
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Facade().AssertConcept("CtxA", "intruder", 1); err != nil {
		t.Fatal(err)
	}
	// Table now holds 2 rows (peter + intruder); with the inflated count
	// of 2 the foreign row would slip through and be destroyed.
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err == nil {
		t.Fatal("foreign assertion not detected after duplicate measurements")
	}
}

func TestAppliedFingerprintPublication(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	s := srv.Sessions()
	if got := s.AppliedFingerprint("peter"); got != "" {
		t.Fatalf("fingerprint before any session = %q", got)
	}
	fp, err := s.Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.AppliedFingerprint("peter"); got != fp {
		t.Fatalf("applied fingerprint %q != returned %q", got, fp)
	}
	// A rejected update leaves the applied fingerprint at the old value.
	if _, err := s.Set("peter", []Measurement{{Concept: "TvProgram", Prob: 1}}); err == nil {
		t.Fatal("expected rejection")
	}
	if got := s.AppliedFingerprint("peter"); got != fp {
		t.Fatalf("rejected update changed applied fingerprint to %q", got)
	}
	if err := s.Drop("peter"); err != nil {
		t.Fatal(err)
	}
	if got := s.AppliedFingerprint("peter"); got != "" {
		t.Fatalf("fingerprint survives Drop: %q", got)
	}
}

func TestServerWithCacheDisabled(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{CacheSize: -1})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, meta, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if meta.Cached {
			t.Fatal("cache disabled but result marked cached")
		}
	}
	st := srv.Stats()
	if st.Requests != 2 || st.Cache.Capacity != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerStats(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	if _, err := srv.Sessions().Set("peter", []Measurement{{Concept: "CtxA", Prob: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := srv.Rank("peter", "TvProgram", contextrank.RankOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Requests != 5 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Cache.Hits != 4 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Latency.Count != 5 || st.Latency.P99Micros < st.Latency.P50Micros {
		t.Fatalf("latency stats = %+v", st.Latency)
	}
	if st.Sessions != 1 || st.Rules != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
