package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	contextrank "repro"
)

// call issues one JSON request against the handler and decodes the reply.
func call(t *testing.T, ts *httptest.Server, method, path, body string, status int, into any) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, ts.URL+path, nil)
	} else {
		req, err = http.NewRequest(method, ts.URL+path, bytes.NewBufferString(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, status, e.Error)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, path, err)
		}
	}
}

// TestHTTPFullFlow drives the paper's §4.2 worked example shape end to end
// through the HTTP API: declare vocabulary, assert facts, register rules,
// set a session context, rank (twice, second cached), inspect stats.
func TestHTTPFullFlow(t *testing.T) {
	srv := NewServer(contextrank.NewSystem(), Options{})
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	call(t, ts, "GET", "/healthz", "", http.StatusOK, nil)

	call(t, ts, "POST", "/v1/declare",
		`{"concepts":["TvProgram"],"roles":["hasGenre","hasSubject"]}`,
		http.StatusOK, nil)

	call(t, ts, "POST", "/v1/assert", `{
		"concepts":[
			{"concept":"TvProgram","id":"Oprah","prob":1},
			{"concept":"TvProgram","id":"BBCNews","prob":1},
			{"concept":"TvProgram","id":"MontyPython","prob":1}
		],
		"roles":[
			{"role":"hasGenre","src":"Oprah","dst":"HUMAN-INTEREST","prob":0.85},
			{"role":"hasSubject","src":"BBCNews","dst":"news","prob":1},
			{"role":"hasGenre","src":"MontyPython","dst":"COMEDY","prob":1}
		]}`,
		http.StatusOK, nil)

	var added struct {
		Added []string `json:"added"`
		Epoch int64    `json:"epoch"`
	}
	call(t, ts, "POST", "/v1/rules", `{"rules":[
		"RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8",
		"RULE R2 WHEN Workday PREFER TvProgram AND EXISTS hasSubject.{news} WITH 0.9"
	]}`, http.StatusOK, &added)
	if len(added.Added) != 2 {
		t.Fatalf("added = %v", added.Added)
	}

	var rules struct {
		Rules []ruleJSON `json:"rules"`
	}
	call(t, ts, "GET", "/v1/rules", "", http.StatusOK, &rules)
	if len(rules.Rules) != 2 || rules.Rules[0].Name != "R1" {
		t.Fatalf("rules = %+v", rules.Rules)
	}

	var sess struct {
		Fingerprint string `json:"fingerprint"`
	}
	call(t, ts, "PUT", "/v1/sessions/peter/context",
		`{"measurements":[{"concept":"Weekend","prob":1}]}`,
		http.StatusOK, &sess)
	if sess.Fingerprint == "" {
		t.Fatal("no fingerprint")
	}

	var rank1, rank2 rankResponse
	call(t, ts, "POST", "/v1/rank", `{"user":"peter","target":"TvProgram","explain":true}`,
		http.StatusOK, &rank1)
	if len(rank1.Results) != 3 || rank1.Cached {
		t.Fatalf("rank1 = %+v", rank1)
	}
	if rank1.Results[0].ID != "Oprah" {
		t.Fatalf("weekend winner = %s, want Oprah", rank1.Results[0].ID)
	}
	if len(rank1.Results[0].Explanation) == 0 {
		t.Fatal("explain=true returned no explanation")
	}
	call(t, ts, "GET", "/v1/rank?user=peter&target=TvProgram&explain=true",
		"", http.StatusOK, &rank2)
	if !rank2.Cached {
		t.Fatal("identical GET rank should be served from cache")
	}
	if fmt.Sprint(rank2.Results) != fmt.Sprint(rank1.Results) {
		t.Fatalf("cached results differ: %v vs %v", rank2.Results, rank1.Results)
	}

	// Context flips to Workday: new fingerprint, fresh ranking, new winner.
	call(t, ts, "PUT", "/v1/sessions/peter/context",
		`{"measurements":[{"concept":"Workday","prob":1}]}`,
		http.StatusOK, &sess)
	var rank3 rankResponse
	call(t, ts, "POST", "/v1/rank", `{"user":"peter","target":"TvProgram"}`,
		http.StatusOK, &rank3)
	if rank3.Cached {
		t.Fatal("rank after context change must recompute")
	}
	if rank3.Results[0].ID != "BBCNews" {
		t.Fatalf("workday winner = %s, want BBCNews", rank3.Results[0].ID)
	}

	var session struct {
		User         string            `json:"user"`
		Fingerprint  string            `json:"fingerprint"`
		Measurements []measurementJSON `json:"measurements"`
	}
	call(t, ts, "GET", "/v1/sessions/peter", "", http.StatusOK, &session)
	if session.User != "peter" || len(session.Measurements) != 1 || session.Measurements[0].Concept != "Workday" {
		t.Fatalf("session = %+v", session)
	}

	var qres sqlResponse
	call(t, ts, "POST", "/v1/query", `{"sql":"SELECT id FROM c_TvProgram ORDER BY id"}`,
		http.StatusOK, &qres)
	if len(qres.Rows) != 3 || qres.Rows[0][0] != "BBCNews" {
		t.Fatalf("query = %+v", qres)
	}

	// Exec with a row-less statement (CREATE TABLE) must not panic and
	// must report the epoch bump.
	var eres struct {
		Rows  [][]any `json:"rows"`
		Epoch int64   `json:"epoch"`
	}
	call(t, ts, "POST", "/v1/exec", `{"sql":"CREATE TABLE notes (id TEXT)"}`,
		http.StatusOK, &eres)
	if eres.Epoch == 0 || len(eres.Rows) != 0 {
		t.Fatalf("exec = %+v", eres)
	}

	var stats Stats
	call(t, ts, "GET", "/v1/stats", "", http.StatusOK, &stats)
	if stats.Requests != 3 || stats.Sessions != 1 || stats.Rules != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 2 {
		t.Fatalf("cache stats = %+v", stats.Cache)
	}

	call(t, ts, "DELETE", "/v1/rules/R2", "", http.StatusOK, nil)
	call(t, ts, "GET", "/v1/rules", "", http.StatusOK, &rules)
	if len(rules.Rules) != 1 {
		t.Fatalf("rules after delete = %+v", rules.Rules)
	}

	call(t, ts, "DELETE", "/v1/sessions/peter", "", http.StatusOK, nil)
	call(t, ts, "GET", "/v1/sessions/peter", "", http.StatusNotFound, nil)
}

func TestHTTPErrors(t *testing.T) {
	srv := NewServer(contextrank.NewSystem(), Options{})
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()

	// Malformed body.
	call(t, ts, "POST", "/v1/rank", `{"user":`, http.StatusBadRequest, nil)
	// Unknown field.
	call(t, ts, "POST", "/v1/rank", `{"user":"p","target":"T","bogus":1}`, http.StatusBadRequest, nil)
	// Missing user/target.
	call(t, ts, "POST", "/v1/rank", `{"user":"p"}`, http.StatusBadRequest, nil)
	// Undeclared target concept.
	call(t, ts, "POST", "/v1/rank", `{"user":"p","target":"Nothing"}`, http.StatusBadRequest, nil)
	// Bad rule text.
	call(t, ts, "POST", "/v1/rules", `{"rules":["WHEN PREFER"]}`, http.StatusBadRequest, nil)
	// Removing an unknown rule.
	call(t, ts, "DELETE", "/v1/rules/nope", "", http.StatusNotFound, nil)
	// Bad probability in a session measurement.
	call(t, ts, "PUT", "/v1/sessions/p/context",
		`{"measurements":[{"concept":"C","prob":2}]}`, http.StatusBadRequest, nil)
	// Asserting data into session-context vocabulary (the next apply
	// would clear it — including same-id merges the row-count guard
	// cannot see).
	call(t, ts, "PUT", "/v1/sessions/p/context",
		`{"measurements":[{"concept":"Ctx","prob":0.9}]}`, http.StatusOK, nil)
	call(t, ts, "POST", "/v1/assert",
		`{"concepts":[{"concept":"Ctx","id":"p","prob":0.8}]}`, http.StatusBadRequest, nil)
	// Bad SQL.
	call(t, ts, "POST", "/v1/query", `{"sql":"SELEKT"}`, http.StatusBadRequest, nil)
	// DML through the read-only query endpoint.
	call(t, ts, "POST", "/v1/query", `{"sql":"CREATE TABLE x (id TEXT)"}`, http.StatusBadRequest, nil)
	// GET rank with a bad limit.
	call(t, ts, "GET", "/v1/rank?user=p&target=T&limit=x", "", http.StatusBadRequest, nil)
}
