package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	contextrank "repro"
)

// DefaultPlanCacheSize is the compiled-plan LRU capacity when Options
// leaves it zero. Plans are per-user (not per-target), so a modest
// capacity covers many more distinct rank requests than the same number of
// rank-result entries.
const DefaultPlanCacheSize = 256

// planKey keys one compiled rank plan. The facade epoch invalidates plans
// on every data/rule/external-context mutation, the context epoch on every
// merged session apply (which retires and re-declares context events for
// *all* users, so the updated user's fingerprint alone would not be enough
// — see Sessions.ctxEpoch), and the rules fingerprint pins the exact rule
// set the plan compiled. Fields are length-prefixed like rankKey's.
func planKey(user, rulesFP string, epoch, ctxEpoch int64) string {
	var b strings.Builder
	b.Grow(len(user) + len(rulesFP) + 48)
	field := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	field(user)
	field(rulesFP)
	b.WriteString(strconv.FormatInt(epoch, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(ctxEpoch, 10))
	return b.String()
}

// planBaseKey is planKey without the context epoch: the identity under
// which successive context epochs' plans are predecessors of one another.
// A cache miss at the full key probes this index for the user's latest
// plan at the same (rules, data epoch) and incrementally refreshes it
// instead of recompiling.
func planBaseKey(user, rulesFP string, epoch int64) string {
	var b strings.Builder
	b.Grow(len(user) + len(rulesFP) + 32)
	field := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	field(user)
	field(rulesFP)
	b.WriteString(strconv.FormatInt(epoch, 10))
	return b.String()
}

// planEntry is one cached compiled plan. A nil plan is a negative entry:
// the rule set is known not to compile at this key's state (cluster bound),
// so callers fail fast into the per-candidate fallback.
type planEntry struct {
	key     string
	baseKey string
	plan    *contextrank.RankPlan
}

// planCache is an LRU of compiled rank plans. Invalidation is purely
// key-based (epochs and fingerprints make stale keys unreachable, exactly
// like the rank-result cache) plus LRU aging; compiled plans are immutable
// and safe to share between concurrent rankers. Counters are atomics for
// the same reason as rankCache's: a stats scrape must never queue behind
// rank traffic holding the mutex.
//
// The LRU machinery is deliberately not shared with rankCache: rankCache's
// eviction list must be mutated atomically with its singleflight map under
// one mutex ("cached? else in flight? else lead" is a single critical
// section), so extracting a self-locking LRU would either split that
// invariant across two locks or force the flight map into this cache,
// which has no flights.
type planCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> *planEntry element
	latest   map[string]*list.Element // baseKey -> most recently added entry

	size      atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evicted   atomic.Int64
	refreshed atomic.Int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		latest:   make(map[string]*list.Element),
	}
}

// get returns the cached plan for key, marking it most recently used.
func (c *planCache) get(key string) (*contextrank.RankPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*planEntry).plan, true
}

// getLatest returns the most recently added live plan under the base key
// (user, rules fingerprint, data epoch) regardless of context epoch — the
// predecessor an incremental refresh starts from. Negative entries are
// skipped: the cluster bound is a property of the footprint partition and a
// refresh would just rediscover it.
func (c *planCache) getLatest(baseKey string) (*contextrank.RankPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.latest[baseKey]
	if !ok {
		return nil, false
	}
	plan := el.Value.(*planEntry).plan
	if plan == nil {
		return nil, false
	}
	return plan, true
}

// add inserts the plan under key, evicting from the LRU tail past
// capacity. Concurrent compiles of the same key are not coalesced (the
// compile runs under the facade read lock, where blocking peers on a
// cache-level flight would serialize the read path); the last writer wins
// and the duplicates are identical.
func (c *planCache) add(key, baseKey string, plan *contextrank.RankPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).plan = plan
		c.ll.MoveToFront(el)
		c.latest[baseKey] = el
		return
	}
	el := c.ll.PushFront(&planEntry{key: key, baseKey: baseKey, plan: plan})
	c.items[key] = el
	c.latest[baseKey] = el
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		ent := back.Value.(*planEntry)
		delete(c.items, ent.key)
		if c.latest[ent.baseKey] == back {
			delete(c.latest, ent.baseKey)
		}
		c.evicted.Add(1)
	}
	c.size.Store(int64(c.ll.Len()))
}

// stats snapshots the counters without taking c.mu (reads are atomics and
// may be mutually inconsistent by a request; ratios do not care).
func (c *planCache) stats() CacheStats {
	s := CacheStats{
		Size:      int(c.size.Load()),
		Capacity:  c.capacity,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evicted:   c.evicted.Load(),
		Refreshed: c.refreshed.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
