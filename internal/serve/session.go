package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	contextrank "repro"
	"repro/internal/dl"
	"repro/internal/mapping"
	"repro/internal/serve/journal"
	"repro/internal/situation"
)

// Measurement is one sensed context assertion in a session update — the
// serving-layer mirror of situation.Measurement.
type Measurement = situation.Measurement

// Sessions manages one context per situated user on top of a shared
// Facade. Because a System holds a single situation snapshot (dynamic
// context is acquired anew at each query, §5), every session update merges
// all live sessions into one snapshot and applies it atomically under the
// facade's write lock.
//
// Each merged apply also *retires* the previous snapshot's basic events
// from the event space (situation.Apply tracks per loader what it declared
// last time): a Set replaces the updated user's events, and a Drop retires
// the dropped user's events with the same re-apply — dropping the last
// session retires every session-declared event. The event space therefore
// stays bounded by the live session vocabulary under arbitrary churn
// instead of accumulating one epoch of ctx_* declarations per update.
//
// A successful session update normally does not bump the facade epoch: it
// changes the updated user's context fingerprint instead, so only that
// user's cached rankings are invalidated. One exception and two
// restrictions keep that sound. The exception: when an updated concept
// appears inside a role-restriction filler of a registered rule (e.g.
// WHEN ∃watchesWith.InKitchen), the user's own membership can change
// *other* users' rankings through role edges, so the update degrades to a
// full epoch bump. The restrictions:
//
//   - A session may only assert its own user (Measurement.Individual must
//     be empty or equal to the session user). Asserting other individuals
//     could change other users' rankings without invalidating their
//     cached entries; multi-individual snapshots belong on
//     Facade.SetContext, whose epoch bump invalidates everyone.
//   - A session may not use a concept that already holds data assertions
//     (applying a context clears and re-asserts its concepts, which would
//     destroy the data — e.g. a session context named "TvProgram" would
//     wipe the program catalog). Context vocabulary must be dedicated
//     concepts, as in the paper's Weekend/Morning/InKitchen.
//
// A *failed* apply does bump the epoch: the snapshot application is
// multi-step and may have partially destroyed the previous context, so
// every cached ranking is conservatively invalidated (the same
// over-invalidation policy as Facade mutators).
type Sessions struct {
	f *Facade
	// health is the owning server's journal failure domain: session
	// mutations are rejected while degraded, and a journal error on an
	// applied Set/Drop is reported so degraded mode can engage. Nil-safe
	// (sessions built outside a Server have no health tracking).
	health *diskHealth

	mu    sync.Mutex
	users map[string]*session
	// count mirrors len(users) so Count is lock-free: s.mu is held across
	// the facade write lock during merged applies, and a stats scrape must
	// not queue behind an apply just to read the session count.
	count atomic.Int64
	// appliedRows counts, per session-context concept, how many assertion
	// rows the last successful apply put in its table. The guard in
	// applyMergedLocked compares the table's current row count against
	// this: more rows than we asserted means someone injected data into a
	// context concept (e.g. via /v1/assert), and applying — which clears
	// the concept — would destroy it.
	appliedRows map[string]int

	// ctxEpoch counts merged context applies (attempted, not just
	// successful: a failed apply may already have retired the previous
	// snapshot's basic events). Every apply invalidates all compiled rank
	// plans — their context events are retired and re-declared under fresh
	// names even for users whose own session did not change — without
	// bumping the facade epoch, so the serve plan cache keys plans by this
	// counter alongside the epoch. Bumped only while holding the facade
	// write lock; reading it under the facade read lock is therefore
	// stable for the duration of the lock hold.
	ctxEpoch atomic.Int64

	// applied maps user -> fingerprint of the last successfully applied
	// snapshot. It is written only while holding the facade write lock
	// and read lock-free (notably under the facade read lock inside
	// Server.Rank, where taking s.mu would deadlock against Set).
	applied sync.Map
	// appliedConcepts is the applied session-context vocabulary
	// (concept -> true), maintained under the same discipline as
	// applied. IsSessionConcept reads it lock-free, which lets the
	// assert endpoint check it *inside* the facade write critical
	// section — checking before taking the lock would leave a TOCTOU
	// window in which a session could claim the concept first.
	appliedConcepts sync.Map

	// wal, when attached, makes session state crash-durable: every
	// successful Set/Drop is submitted to the write-ahead log while s.mu
	// is still held (so journal order equals apply order) and waited for
	// *after* the release, so successive applies share one group-commit
	// fsync instead of serializing on the disk. The rank path never
	// touches it. Atomic so the lock-free Stats scrape can read it.
	wal atomic.Pointer[journal.Journal]
}

type session struct {
	measurements []Measurement
	fingerprint  string
}

// newSessions builds an empty session manager over the facade.
func newSessions(f *Facade) *Sessions {
	return &Sessions{
		f:           f,
		users:       make(map[string]*session),
		appliedRows: make(map[string]int),
	}
}

// Set replaces the user's session context with the given measurements and
// applies the merged snapshot. It returns the new context fingerprint.
// An empty measurement list is a valid "no context" session.
func (s *Sessions) Set(user string, measurements []Measurement) (string, error) {
	if user == "" {
		return "", fmt.Errorf("serve: session user must be non-empty")
	}
	if err := s.health.checkWritable(); err != nil {
		return "", err
	}
	exclusiveSums := make(map[string]float64)
	for _, m := range measurements {
		if m.Concept == "" {
			return "", fmt.Errorf("serve: measurement without a concept")
		}
		// Positive form so NaN is rejected too (NaN fails every
		// comparison, so `< 0 || > 1` would let it through into the
		// event space).
		if !(m.Prob >= 0 && m.Prob <= 1) {
			return "", fmt.Errorf("serve: measurement %s has probability %g outside [0,1]", m.Concept, m.Prob)
		}
		if m.Individual != "" && m.Individual != user {
			return "", fmt.Errorf("serve: session for %q may not assert individual %q; use the facade's SetContext for multi-individual snapshots", user, m.Individual)
		}
		if m.Exclusive != "" {
			exclusiveSums[m.Exclusive] += m.Prob
		}
	}
	for group, sum := range exclusiveSums {
		if !(sum <= 1+1e-9) {
			return "", fmt.Errorf("serve: exclusive group %q probabilities sum to %g > 1", group, sum)
		}
	}
	fp, wait, err := s.setValidated(user, measurements)
	if err != nil {
		return "", err
	}
	if wait != nil {
		if jerr := wait(); jerr != nil {
			// The session is applied in memory but not durable; the caller
			// never gets a success acknowledgement, so the recovery
			// guarantee ("every acknowledged update survives a crash")
			// holds. A retry re-applies and re-journals idempotently. With
			// degraded mode armed the record joins the unjournaled tail so
			// ProbeDisk re-journals it when the disk recovers — the WAL
			// must end up agreeing with the in-memory state it missed.
			s.health.noteJournalError(journal.Record{
				Op:           journal.OpSet,
				User:         user,
				Measurements: ToJournalMeasurements(measurements),
				Fingerprint:  fp,
			}, jerr)
			return "", fmt.Errorf("serve: session for %q applied but not journaled: %w", user, notJournaled{jerr})
		}
	}
	return fp, nil
}

// setValidated is Set's locked body. On success it returns the new
// fingerprint plus, when a journal is attached, a durability wait function
// submitted while s.mu was held — the caller invokes it after the lock is
// released so concurrent session applies batch into one fsync.
func (s *Sessions) setValidated(user string, measurements []Measurement) (string, func() error, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.users[user]
	ms := make([]Measurement, len(measurements))
	copy(ms, measurements)
	// The concepts whose assertions this update actually changes: the
	// user's previous and new vocabulary. Other sessions' measurements
	// are re-applied with identical probabilities, so they change
	// nothing observable.
	changed := make(map[string]bool)
	for _, m := range ms {
		changed[m.Concept] = true
	}
	if had {
		for _, m := range prev.measurements {
			changed[m.Concept] = true
		}
	}
	sess := &session{measurements: ms, fingerprint: fingerprint(user, ms)}
	s.users[user] = sess
	// Refresh the lock-free count mirror after the map settles (including
	// the rollback below); runs while s.mu is still held.
	defer func() { s.count.Store(int64(len(s.users))) }()
	// Apply and journal inside one facade write critical section: every
	// mutation — session or vocabulary — submits its record while holding
	// f.mu, so the journal's total order is exactly the apply order across
	// both kinds of writes.
	f := s.f
	f.mu.Lock()
	if err := s.applyMergedFacadeLocked(changed); err != nil {
		// Roll back the bookkeeping, then best-effort re-apply the
		// previous state: a failed apply may have cleared other users'
		// context assertions before erroring, and without the restore
		// every user would rank against the torn context until the next
		// successful session operation. The failed apply bumped the
		// epoch, but a ranking landing between that bump and the restore
		// can still cache a torn-context result under the new epoch —
		// bump once more after the restore so nothing cached inside the
		// window survives. Nothing is journaled: the journal records only
		// state that actually took effect.
		if had {
			s.users[user] = prev
		} else {
			delete(s.users, user)
		}
		_ = s.applyMergedFacadeLocked(changed)
		f.epoch.Add(1)
		f.mu.Unlock()
		return "", nil, err
	}
	var wait func() error
	if j := s.wal.Load(); j != nil {
		wait = j.Submit(journal.Record{
			Op:           journal.OpSet,
			User:         user,
			Measurements: ToJournalMeasurements(ms),
			Fingerprint:  sess.fingerprint,
			Epoch:        f.Epoch(),
		})
	}
	f.mu.Unlock()
	return sess.fingerprint, wait, nil
}

// Drop ends the user's session and re-applies the remaining sessions'
// merged context, which retires the dropped user's basic events from the
// event space along with the rest of the previous snapshot's. Dropping an
// unknown user is a no-op in memory but is still journaled when a WAL is
// attached: the previous drop of that user may have been applied and then
// failed its journal write (the client saw an error and is retrying), and
// without a Drop record the WAL would still hold a live Set whose crash
// replay resurrects the acknowledged-dropped session.
func (s *Sessions) Drop(user string) error {
	if err := s.health.checkWritable(); err != nil {
		return err
	}
	wait, err := s.dropLocked(user)
	if err != nil {
		return err
	}
	if wait != nil {
		if jerr := wait(); jerr != nil {
			s.health.noteJournalError(journal.Record{Op: journal.OpDrop, User: user}, jerr)
			return fmt.Errorf("serve: session drop for %q applied but not journaled: %w", user, notJournaled{jerr})
		}
	}
	return nil
}

// dropLocked is Drop's locked body; see setValidated for the journal
// submit/wait split.
func (s *Sessions) dropLocked(user string) (func() error, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.users[user]
	if !ok {
		// See Drop: the record must land even without an in-memory
		// session, or a retried drop could leave a resurrectable Set in
		// the WAL. Compaction treats drops of absent users as dead, so
		// these cost nothing durable.
		if j := s.wal.Load(); j != nil {
			return j.Submit(journal.Record{Op: journal.OpDrop, User: user, Epoch: s.f.Epoch()}), nil
		}
		return nil, nil
	}
	changed := make(map[string]bool)
	for _, m := range sess.measurements {
		changed[m.Concept] = true
	}
	delete(s.users, user)
	defer func() { s.count.Store(int64(len(s.users))) }() // before the s.mu unlock
	// Same apply+submit-in-one-critical-section discipline as setValidated.
	f := s.f
	f.mu.Lock()
	if err := s.applyMergedFacadeLocked(changed); err != nil {
		// Same restore-and-bump policy as Set: the drop did not take
		// effect, and anything cached during the torn window dies.
		s.users[user] = sess
		_ = s.applyMergedFacadeLocked(changed)
		f.epoch.Add(1)
		f.mu.Unlock()
		return nil, err
	}
	var wait func() error
	if j := s.wal.Load(); j != nil {
		wait = j.Submit(journal.Record{
			Op:    journal.OpDrop,
			User:  user,
			Epoch: f.Epoch(),
		})
	}
	f.mu.Unlock()
	return wait, nil
}

// Fingerprint returns the user's current context fingerprint, or "" when
// the user has no session (ranking then sees whatever context, if any, was
// applied through the facade directly).
func (s *Sessions) Fingerprint(user string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.users[user]; ok {
		return sess.fingerprint
	}
	return ""
}

// AppliedFingerprint returns the fingerprint of the user's last
// successfully applied session context, without taking the session mutex —
// safe to call while holding the facade lock (either side).
func (s *Sessions) AppliedFingerprint(user string) string {
	if v, ok := s.applied.Load(user); ok {
		return v.(string)
	}
	return ""
}

// Measurements returns a copy of the user's session measurements.
func (s *Sessions) Measurements(user string) ([]Measurement, bool) {
	ms, _, ok := s.Snapshot(user)
	return ms, ok
}

// Snapshot returns the user's measurements together with the matching
// fingerprint under a single lock hold, so the pair is consistent even
// while concurrent Sets replace the session.
func (s *Sessions) Snapshot(user string) ([]Measurement, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.users[user]
	if !ok {
		return nil, "", false
	}
	out := make([]Measurement, len(sess.measurements))
	copy(out, sess.measurements)
	return out, sess.fingerprint, true
}

// IsSessionConcept reports whether the concept is part of the currently
// applied session-context vocabulary. The assert endpoint uses it to
// refuse data assertions into session concepts: the next context apply
// clears those concepts, so such an assertion would be silently destroyed
// (and, when it disjunction-merges into an existing session row, would
// dodge the row-count guard entirely). Lock-free, so it is safe — and
// race-free — to call while holding the facade write lock.
func (s *Sessions) IsSessionConcept(concept string) bool {
	_, ok := s.appliedConcepts.Load(concept)
	return ok
}

// Users returns the sorted users with live sessions.
func (s *Sessions) Users() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.users))
	for u := range s.users {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of live sessions. It is lock-free (reading a
// mirror of len(users) maintained under s.mu), so it never queues behind
// an in-flight merged apply — Stats calls it on the scrape path.
func (s *Sessions) Count() int {
	return int(s.count.Load())
}

// ContextEpoch returns the merged-apply counter. Two reads under the same
// facade read lock return the same value; a compiled rank plan is valid
// exactly while (facade epoch, context epoch) both match its compile-time
// values.
func (s *Sessions) ContextEpoch() int64 { return s.ctxEpoch.Load() }

// applyMergedFacadeLocked builds one situation snapshot from every live
// session and applies it. The apply retracts the previous merged snapshot
// and retires its basic events (see situation.Context.Apply), so sessions
// that shrank or dropped since the last apply leave nothing behind in the
// event space. changed names the concepts whose assertions this operation
// adds, alters or retracts (the updated user's old and new vocabulary) —
// used to decide whether the update couples to other users through role
// edges. Callers hold s.mu AND the facade write lock (setValidated and
// dropLocked inline the facade lock so the journal submit lands in the
// same critical section as the apply; SuspendAndDump runs it inside the
// same critical section as the retraction and the dump). The lock order
// is always s.mu before facade.mu, and the rank path never takes s.mu
// while holding the facade lock (it uses AppliedFingerprint).
func (s *Sessions) applyMergedFacadeLocked(changed map[string]bool) error {
	// The apply below retires the previous snapshot's basic events, so any
	// plan compiled before this point is dead even if the apply fails
	// half-way — count the attempt, not the success.
	s.ctxEpoch.Add(1)
	merged := situation.New("_sessions")
	users := make([]string, 0, len(s.users))
	for u := range s.users {
		users = append(users, u)
	}
	sort.Strings(users) // deterministic measurement order
	// Count the distinct (concept, individual) pairs the apply will put
	// in each concept table: AssertConcept merges repeated assertions of
	// one individual into a single row, so counting raw measurements
	// would overstate our rows and let foreign data slip past the guard.
	conceptRows := make(map[string]int)
	type assertion struct{ concept, individual string }
	seen := make(map[assertion]bool)
	for _, u := range users {
		for _, m := range s.users[u].measurements {
			if m.Individual == "" {
				m.Individual = u
			}
			if a := (assertion{m.Concept, m.Individual}); !seen[a] {
				seen[a] = true
				conceptRows[m.Concept]++
			}
			if m.Exclusive != "" {
				// Namespace exclusive groups per user so "location" for
				// peter and "location" for maria stay independent groups.
				m.Exclusive = u + "\x1f" + m.Exclusive
			}
			merged.Measurements = append(merged.Measurements, m)
		}
	}

	f := s.f
	// Refuse concepts holding assertions beyond what our own last apply
	// put there (see the type comment). Checked before any mutation, so
	// rejection leaves the system untouched. Strictly more rows than we
	// asserted means foreign data; fewer is fine (a failed earlier apply
	// may have cleared our rows before erroring). The check covers the
	// union of the new snapshot's concepts and the previous one's:
	// applying clears both sets (situation.Apply retracts the previous
	// context), so a concept merely *leaving* the snapshot would destroy
	// foreign rows just as surely as one staying in it.
	toCheck := make(map[string]bool, len(conceptRows)+len(s.appliedRows))
	for c := range conceptRows {
		toCheck[c] = true
	}
	for c := range s.appliedRows {
		toCheck[c] = true
	}
	for c := range toCheck {
		if !f.sys.Loader().HasConcept(c) {
			continue
		}
		res, err := f.sys.Query("SELECT id FROM " + mapping.ConceptTable(c))
		if err != nil {
			return err
		}
		if n := len(res.Rows); n > s.appliedRows[c] {
			return fmt.Errorf("serve: concept %q holds %d assertions not made by the session layer; refusing to use it as session context (applying would clear them) — use a dedicated context concept", c, n-s.appliedRows[c])
		}
	}
	// Applying the merged snapshot retracts the previous one. When that
	// previous snapshot came from Facade.SetContext, session-less users
	// lose their context here, and no fingerprint of theirs can change —
	// bump the epoch to invalidate their cached rankings.
	if f.externalCtx {
		f.epoch.Add(1)
		f.externalCtx = false
	} else if s.rolesCoupleLocked(changed) {
		// A concept this update changes appears inside a role-restriction
		// filler of a registered rule (e.g. WHEN ∃watchesWith.InKitchen):
		// asserting the user's own membership can then flip the rule for
		// *other* users reachable over the role edge, whose fingerprints
		// do not change. Degrade to a full epoch bump in exactly this
		// configuration; role-free vocabularies keep the per-user
		// fast path.
		f.epoch.Add(1)
	}
	if err := f.sys.SetContext(merged); err != nil {
		// The snapshot may be half-applied; invalidate every cached
		// ranking, mirroring the facade's mutator-error policy.
		f.epoch.Add(1)
		return err
	}
	// Concepts absent from this snapshot were cleared by the apply.
	s.appliedRows = conceptRows
	for c := range conceptRows {
		s.appliedConcepts.Store(c, true)
	}
	s.appliedConcepts.Range(func(k, _ any) bool {
		if _, ok := conceptRows[k.(string)]; !ok {
			s.appliedConcepts.Delete(k)
		}
		return true
	})
	// Publish the applied fingerprints inside the write critical section:
	// a reader holding the facade read lock sees exactly the fingerprints
	// of the snapshot it is ranking under. Updated in place — a
	// Clear+rebuild would give lock-free AppliedFingerprint readers a
	// window of "" for users with live sessions.
	for u, sess := range s.users {
		s.applied.Store(u, sess.fingerprint)
	}
	s.applied.Range(func(k, _ any) bool {
		if _, ok := s.users[k.(string)]; !ok {
			s.applied.Delete(k)
		}
		return true
	})
	return nil
}

// SuspendAndDump runs fn (typically a snapshot dump) on the bare system
// with the merged session context *retracted*, then re-applies the merged
// context — all inside one facade write critical section, so no reader
// ever observes the suspended state. Serving-layer snapshots therefore
// contain only durable state: session context is never part of a
// snapshot, and a restored server's session manager starts with clean
// concept tables instead of refusing its own vocabulary as foreign data.
// Session persistence is the journal's job (AttachJournal): boot-time
// replay re-applies the journaled measurements through Set, the same
// path live traffic takes — or, without a journal, context is simply
// re-sensed after a restart (the paper's §5 position).
//
// The epoch is bumped on the way out regardless of outcome: a failed
// re-apply leaves the context torn, and conservative invalidation is the
// established policy for every partial mutation.
func (s *Sessions) SuspendAndDump(fn func(sys *contextrank.System) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.f
	f.mu.Lock()
	defer f.mu.Unlock()
	defer f.epoch.Add(1)
	if err := f.sys.SetContext(situation.New("_snapshot")); err != nil {
		return fmt.Errorf("serve: suspending session context: %w", err)
	}
	// The retraction cleared every session-asserted row; the guard in the
	// re-apply below must not count them against the new snapshot.
	s.appliedRows = make(map[string]int)
	dumpErr := fn(f.sys)
	if err := s.applyMergedFacadeLocked(nil); err != nil && dumpErr == nil {
		dumpErr = fmt.Errorf("serve: re-applying session context after dump: %w", err)
	}
	return dumpErr
}

// rolesCoupleLocked reports whether any changed concept occurs inside a
// role-restriction filler of a registered rule's context or preference.
// Membership in such a concept propagates across role edges, so the
// per-user fingerprint invalidation is insufficient. Caller holds f.mu.
func (s *Sessions) rolesCoupleLocked(changed map[string]bool) bool {
	if len(changed) == 0 {
		return false
	}
	fillers := make(map[string]bool)
	for _, rule := range s.f.sys.Rules().Rules() {
		roleFillerConcepts(rule.Context, false, fillers)
		roleFillerConcepts(rule.Preference, false, fillers)
	}
	for c := range changed {
		if fillers[c] {
			return true
		}
	}
	return false
}

// roleFillerConcepts collects the atomic concepts occurring anywhere
// inside a role-restriction filler of expr.
func roleFillerConcepts(e *dl.Expr, inFiller bool, out map[string]bool) {
	if e == nil {
		return
	}
	if e.Op() == dl.OpAtom {
		if inFiller {
			out[e.Name()] = true
		}
		return
	}
	inside := inFiller || e.Op() == dl.OpExists
	for _, a := range e.Args() {
		roleFillerConcepts(a, inside, out)
	}
}

// AttachJournal arms the session write-ahead log: from now on every
// successful Set/Drop is durable (fsynced via group commit) before it is
// acknowledged. Attach before serving traffic; attaching replaces any
// previous journal without closing it.
func (s *Sessions) AttachJournal(j *journal.Journal) { s.wal.Store(j) }

// Journal returns the attached session WAL, or nil.
func (s *Sessions) Journal() *journal.Journal { return s.wal.Load() }

// ToJournalMeasurements converts serving-layer measurements to the
// journal's stable wire shape.
func ToJournalMeasurements(ms []Measurement) []journal.Measurement {
	out := make([]journal.Measurement, len(ms))
	for i, m := range ms {
		out[i] = journal.Measurement{
			Concept:    m.Concept,
			Individual: m.Individual,
			Prob:       m.Prob,
			Exclusive:  m.Exclusive,
			Source:     m.Source,
		}
	}
	return out
}

// FromJournalMeasurements is ToJournalMeasurements' inverse, used by
// boot-time replay to feed journaled records back through SetSession.
func FromJournalMeasurements(ms []journal.Measurement) []Measurement {
	out := make([]Measurement, len(ms))
	for i, m := range ms {
		out[i] = Measurement{
			Concept:    m.Concept,
			Individual: m.Individual,
			Prob:       m.Prob,
			Exclusive:  m.Exclusive,
			Source:     m.Source,
		}
	}
	return out
}

// fingerprint hashes a session's measurements (FNV-64a). The user is mixed
// in so identical measurement lists for different users do not collide
// into confusingly equal fingerprints in logs. Fields are length-prefixed
// for the same reason rankKey's are: measurement strings are free-form
// bytes, and bare separators would let crafted values collide two
// semantically different measurement lists into one fingerprint —
// silently disabling that user's cache invalidation.
func fingerprint(user string, ms []Measurement) string {
	h := fnv.New64a()
	field := func(s string) {
		h.Write([]byte(strconv.Itoa(len(s))))
		h.Write([]byte{':'})
		h.Write([]byte(s))
	}
	field(user)
	for _, m := range ms {
		field(m.Concept)
		field(m.Individual)
		field(strconv.FormatFloat(m.Prob, 'g', -1, 64))
		field(m.Exclusive)
	}
	return strconv.FormatUint(h.Sum64(), 16)
}
