package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// callCode issues a request expected to fail and returns the decoded
// canonical error envelope.
func callCode(t *testing.T, ts *httptest.Server, method, path, body string, status int) errorResponse {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, ts.URL+path, nil)
	} else {
		req, err = http.NewRequest(method, ts.URL+path, bytes.NewBufferString(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("%s %s: decoding error envelope: %v", method, path, err)
	}
	if resp.StatusCode != status {
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, status, e.Error)
	}
	if e.Error == "" {
		t.Fatalf("%s %s: envelope has no error message", method, path)
	}
	return e
}

// subHTTPServer stands up the full middleware stack over the shared TV
// system with peter's CtxA session applied.
func subHTTPServer(t *testing.T, timeout time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	srv := subTestServer(t)
	applyCtx(t, srv, "peter", "CtxA", 1)
	ts := httptest.NewServer(NewHandlerWith(srv, HandlerOptions{RequestTimeout: timeout}))
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestHTTPSubscriptionCRUD drives the subscription endpoints end to end
// and pins the canonical error envelope's machine codes on every failure
// shape the surface can produce.
func TestHTTPSubscriptionCRUD(t *testing.T) {
	_, ts := subHTTPServer(t, 0)

	var info SubscriptionInfo
	call(t, ts, "POST", "/v1/subscriptions",
		`{"user":"peter","target":"TvProgram","top_k":3}`,
		http.StatusCreated, &info)
	if !strings.HasPrefix(info.ID, "sub-") || info.User != "peter" || info.TopK != 3 {
		t.Fatalf("created = %+v", info)
	}

	var list struct {
		Subscriptions []SubscriptionInfo `json:"subscriptions"`
	}
	call(t, ts, "GET", "/v1/subscriptions", "", http.StatusOK, &list)
	if len(list.Subscriptions) != 1 || list.Subscriptions[0].ID != info.ID {
		t.Fatalf("list = %+v", list.Subscriptions)
	}

	var got SubscriptionInfo
	call(t, ts, "GET", "/v1/subscriptions/"+info.ID, "", http.StatusOK, &got)
	if got.ID != info.ID || got.Target != "TvProgram" {
		t.Fatalf("get = %+v", got)
	}

	var status struct {
		Status string `json:"status"`
	}
	call(t, ts, "DELETE", "/v1/subscriptions/"+info.ID, "", http.StatusOK, &status)
	if status.Status != "unsubscribed" {
		t.Fatalf("delete status = %q", status.Status)
	}

	// Every failure shape answers with the envelope and its machine code.
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"DELETE", "/v1/subscriptions/" + info.ID, "", http.StatusNotFound, "not_found"},
		{"GET", "/v1/subscriptions/" + info.ID, "", http.StatusNotFound, "not_found"},
		{"GET", "/v1/subscriptions/nope/events", "", http.StatusNotFound, "not_found"},
		{"POST", "/v1/subscriptions", `{"user":"peter","target":"TvProgram","top_k":-1}`,
			http.StatusBadRequest, "bad_request"},
		{"POST", "/v1/subscriptions", `{"user":"peter","target":"TvProgram","algorithm":"naive"}`,
			http.StatusBadRequest, "bad_request"},
		{"POST", "/v1/subscriptions", `{"user":"peter","target":"TvProgram","explain":true}`,
			http.StatusBadRequest, "bad_request"},
		{"POST", "/v1/subscriptions", `{"user":"peter","target":"TvProgram","candidates":["tv00"]}`,
			http.StatusBadRequest, "bad_request"},
		{"POST", "/v1/subscriptions", `{"user":"peter"}`,
			http.StatusBadRequest, "bad_request"},
		{"POST", "/v1/subscriptions", `{"user":"peter","target":"TvProgram","bogus":1}`,
			http.StatusBadRequest, "bad_request"},
		{"GET", "/v1/sessions/ghost", "", http.StatusNotFound, "unknown_user"},
	}
	for _, c := range cases {
		e := callCode(t, ts, c.method, c.path, c.body, c.status)
		if e.Code != c.code {
			t.Errorf("%s %s: code %q, want %q (error %q)", c.method, c.path, e.Code, c.code, e.Error)
		}
		if e.RequestID == "" {
			t.Errorf("%s %s: envelope missing request_id", c.method, c.path)
		}
	}
}

// TestHTTPRankGetDeprecated: the query-parameter rank surface still
// works but carries the deprecation headers pointing clients at POST.
func TestHTTPRankGetDeprecated(t *testing.T) {
	_, ts := subHTTPServer(t, 0)

	resp, err := ts.Client().Get(ts.URL + "/v1/rank?user=peter&target=TvProgram&top_k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/rank status %d", resp.StatusCode)
	}
	if dep := resp.Header.Get("Deprecation"); dep != "true" {
		t.Fatalf("Deprecation header = %q, want true", dep)
	}
	if sun := resp.Header.Get("Sunset"); sun != rankGetSunset {
		t.Fatalf("Sunset header = %q, want %q", sun, rankGetSunset)
	}

	// The canonical POST surface must not advertise deprecation.
	post, err := ts.Client().Post(ts.URL+"/v1/rank", "application/json",
		strings.NewReader(`{"user":"peter","target":"TvProgram","top_k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/rank status %d", post.StatusCode)
	}
	if dep := post.Header.Get("Deprecation"); dep != "" {
		t.Fatalf("POST /v1/rank carries Deprecation %q", dep)
	}
}

// sseReader incrementally parses an SSE stream's "event:"/"data:" pairs,
// skipping keepalive comments.
type sseReader struct {
	scan *bufio.Scanner
}

func (s *sseReader) next(t *testing.T) (string, SubEvent) {
	t.Helper()
	var typ string
	for s.scan.Scan() {
		line := s.scan.Text()
		switch {
		case strings.HasPrefix(line, ":"): // keepalive comment
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev SubEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if typ == "" || typ != ev.Type {
				t.Fatalf("SSE event line %q disagrees with data type %q", typ, ev.Type)
			}
			return typ, ev
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("SSE stream ended early: %v", s.scan.Err())
	panic("unreachable")
}

// TestHTTPSubscriptionSSE is the acceptance-criteria flow over a live
// HTTP server with the full middleware stack: subscribe, open the event
// stream, read the snapshot, outlive the request timeout (streams are
// exempt), apply a context change, read the delta, observe the 409 on a
// second attach, unsubscribe, read the terminal event.
func TestHTTPSubscriptionSSE(t *testing.T) {
	srv, ts := subHTTPServer(t, 300*time.Millisecond)

	var info SubscriptionInfo
	call(t, ts, "POST", "/v1/subscriptions",
		`{"user":"peter","target":"TvProgram"}`, http.StatusCreated, &info)

	resp, err := ts.Client().Get(ts.URL + "/v1/subscriptions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := &sseReader{scan: bufio.NewScanner(resp.Body)}

	typ, snap := events.next(t)
	if typ != "snapshot" || len(snap.Results) == 0 {
		t.Fatalf("opening event = %q %+v", typ, snap)
	}
	sameScoreMaps(t, subScores(snap.Results), wantScores(t, srv, "peter"), "SSE snapshot")

	// A second concurrent attach must be refused while this one lives.
	e := callCode(t, ts, "GET", "/v1/subscriptions/"+info.ID+"/events", "", http.StatusConflict)
	if e.Code != "conflict" {
		t.Fatalf("second attach code %q, want conflict", e.Code)
	}

	// Sleep past the request timeout: the stream route is exempt, so the
	// connection must still be alive to carry the delta.
	time.Sleep(400 * time.Millisecond)
	call(t, ts, "PUT", "/v1/sessions/peter/context",
		`{"measurements":[{"concept":"CtxB","prob":1}]}`, http.StatusOK, nil)
	typ, delta := events.next(t)
	if typ != "delta" || len(delta.Changes) == 0 {
		t.Fatalf("after context flip: event %q %+v", typ, delta)
	}
	scores := subScores(snap.Results)
	for _, ch := range delta.Changes {
		scores[ch.ID] = ch.Score
	}
	for _, id := range delta.Removed {
		delete(scores, id)
	}
	sameScoreMaps(t, scores, wantScores(t, srv, "peter"), "SSE delta patch")

	call(t, ts, "DELETE", "/v1/subscriptions/"+info.ID, "", http.StatusOK, nil)
	typ, _ = events.next(t)
	if typ != "unsubscribed" {
		t.Fatalf("terminal event %q, want unsubscribed", typ)
	}

	// After the teardown event the server closes the stream (the SSE
	// frame terminator's blank line is the only thing left to read).
	for events.scan.Scan() {
		if line := events.scan.Text(); line != "" {
			t.Fatalf("stream carried data after unsubscribed: %q", line)
		}
	}
}

// TestHTTPSubscriptionStreamDetach: dropping the SSE connection detaches
// the consumer (the subscription survives) and a reconnect gets a fresh
// snapshot.
func TestHTTPSubscriptionStreamDetach(t *testing.T) {
	_, ts := subHTTPServer(t, 0)

	var info SubscriptionInfo
	call(t, ts, "POST", "/v1/subscriptions",
		`{"user":"peter","candidates":["tv00","tv01","tv02"]}`, http.StatusCreated, &info)

	open := func() *http.Response {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/subscriptions/" + info.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		return resp
	}
	resp := open()
	events := &sseReader{scan: bufio.NewScanner(resp.Body)}
	if typ, _ := events.next(t); typ != "snapshot" {
		t.Fatalf("opening event %q", typ)
	}
	resp.Body.Close() // client vanishes mid-stream

	// The server notices the dead connection and releases the attach
	// slot; a reconnect must eventually succeed with a fresh snapshot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		req, err := http.NewRequest("GET", ts.URL+"/v1/subscriptions/"+info.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp2, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp2.StatusCode == http.StatusOK {
			events2 := &sseReader{scan: bufio.NewScanner(resp2.Body)}
			if typ, _ := events2.next(t); typ != "snapshot" {
				t.Fatalf("reconnect opening event %q", typ)
			}
			resp2.Body.Close()
			return
		}
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusConflict {
			t.Fatalf("reconnect status %d", resp2.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("attach slot never released after client disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
