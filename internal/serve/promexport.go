package serve

import (
	"strconv"

	"repro/internal/serve/journal"
	"repro/internal/serve/metrics"
)

// RegisterBackendMetrics exposes a serving backend's counters as
// carserve_* Prometheus series. Per-shard series are derived from
// Stats.Shards when the backend is sharded; an unsharded Server is
// exported as shard "0", so dashboards are identical either way. The
// whole export is one lock-free Stats() call per scrape — no second
// bookkeeping layer that could drift from /v1/stats, and no scrape-time
// contention with rank traffic (the PR-3 discipline).
func RegisterBackendMetrics(reg *metrics.Registry, b Backend) {
	reg.Collect(func(w *metrics.Writer) {
		st := b.Stats()
		shards := st.Shards
		if len(shards) == 0 {
			shards = []Stats{st}
		}

		w.Family("carserve_uptime_seconds", "gauge", "Seconds since the backend started.")
		w.Sample("carserve_uptime_seconds", st.UptimeSeconds)
		w.Family("carserve_epoch", "gauge", "Current facade epoch (vocabulary/data version).")
		w.Sample("carserve_epoch", float64(st.Epoch))
		w.Family("carserve_rules", "gauge", "Registered preference rules.")
		w.Sample("carserve_rules", float64(st.Rules))

		w.Family("carserve_sessions", "gauge", "Live sessions per shard.")
		for i, s := range shards {
			w.Sample("carserve_sessions", float64(s.Sessions), "shard", strconv.Itoa(i))
		}
		w.Family("carserve_events", "gauge", "Declared basic events per shard (growth = event leak).")
		for i, s := range shards {
			w.Sample("carserve_events", float64(s.Events), "shard", strconv.Itoa(i))
		}
		w.Family("carserve_rank_requests_total", "counter", "Rank requests (single + batch items) per shard.")
		for i, s := range shards {
			w.Sample("carserve_rank_requests_total", float64(s.Requests), "shard", strconv.Itoa(i))
		}

		w.Family("carserve_rank_latency_seconds", "histogram", "Rank call latency per shard.")
		for i, s := range shards {
			if len(s.Latency.Buckets) == 0 {
				continue
			}
			// The recorder tracks an exact all-time sum in microseconds via
			// the mean; reconstruct seconds for the histogram _sum line.
			sum := s.Latency.MeanMicros * float64(s.Latency.Count) / 1e6
			w.Histogram("carserve_rank_latency_seconds", RankLatencyBuckets,
				s.Latency.Buckets, sum, "shard", strconv.Itoa(i))
		}

		exportCache(w, "carserve_rank_cache", "rank-result", shards, func(s Stats) CacheStats { return s.Cache })
		exportCache(w, "carserve_plan_cache", "compiled-rank-plan", shards, func(s Stats) CacheStats { return s.Plans })

		exportJournal(w, shards)

		if st.Checkpoints != nil {
			w.Family("carserve_checkpoints_total", "counter", "Completed background checkpoints.")
			w.Sample("carserve_checkpoints_total", float64(st.Checkpoints.Count))
			w.Family("carserve_checkpoint_failures_total", "counter", "Failed background checkpoint attempts.")
			w.Sample("carserve_checkpoint_failures_total", float64(st.Checkpoints.Failures))
			w.Family("carserve_checkpoint_last_unixtime", "gauge", "Completion time of the last successful checkpoint.")
			w.Sample("carserve_checkpoint_last_unixtime", float64(st.Checkpoints.LastUnix))
			w.Family("carserve_checkpoint_last_duration_seconds", "gauge", "Wall time of the last successful checkpoint.")
			w.Sample("carserve_checkpoint_last_duration_seconds", st.Checkpoints.LastDurationMicros/1e6)
			w.Family("carserve_checkpoint_last_seq", "gauge", "Highest journal sequence the last checkpoint covered.")
			w.Sample("carserve_checkpoint_last_seq", float64(st.Checkpoints.LastSeq))
		}

		if st.Recovery != nil {
			w.Family("carserve_recovery_records_total", "counter", "WAL records read during boot-time recovery.")
			w.Sample("carserve_recovery_records_total", float64(st.Recovery.Records))
			w.Family("carserve_recovery_applied_total", "counter", "Recovery records re-applied, by kind.")
			w.Sample("carserve_recovery_applied_total", float64(st.Recovery.Users), "kind", "session")
			w.Sample("carserve_recovery_applied_total", float64(st.Recovery.VocabApplied()), "kind", "vocab")
			w.Family("carserve_recovery_skipped_total", "counter", "Recovery records skipped, by reason.")
			w.Sample("carserve_recovery_skipped_total", float64(st.Recovery.SkippedCheckpoint), "reason", "checkpoint_covered")
			w.Sample("carserve_recovery_skipped_total", float64(st.Recovery.SkippedDuplicate), "reason", "duplicate_broadcast")
			w.Family("carserve_recovery_failed_total", "counter", "Recovery records whose re-apply failed (preserved in the WAL).")
			w.Sample("carserve_recovery_failed_total", float64(st.Recovery.Failed))
		}

		if st.HotPath != nil {
			// Process-global rank hot-path counters (see core.HotPathStats):
			// not per-shard, because every shard shares one scratch pool and
			// one set of atomics.
			hp := st.HotPath
			w.Family("carserve_rank_scratch_total", "counter", "Rank scratch-arena acquisitions, by provenance (fresh = pool had to allocate).")
			w.Sample("carserve_rank_scratch_total", float64(hp.ScratchGets-hp.ScratchNews), "result", "pooled")
			w.Sample("carserve_rank_scratch_total", float64(hp.ScratchNews), "result", "fresh")
			w.Family("carserve_doc_dist_cache_total", "counter", "Plan document-distribution cache lookups.")
			w.Sample("carserve_doc_dist_cache_total", float64(hp.DocCacheHits), "result", "hit")
			w.Sample("carserve_doc_dist_cache_total", float64(hp.DocCacheMisses), "result", "miss")
		}

		if st.Broadcast != nil {
			w.Family("carserve_broadcast_writes_total", "counter", "Cross-shard vocabulary broadcasts.")
			w.Sample("carserve_broadcast_writes_total", float64(st.Broadcast.Writes))
			w.Family("carserve_broadcast_mean_seconds", "gauge", "Mean broadcast wall time (slowest shard).")
			w.Sample("carserve_broadcast_mean_seconds", st.Broadcast.MeanMicros/1e6)
			w.Family("carserve_broadcast_max_seconds", "gauge", "Worst broadcast wall time since start.")
			w.Sample("carserve_broadcast_max_seconds", st.Broadcast.MaxMicros/1e6)
		}

		if st.Subs != nil {
			w.Family("carserve_subscriptions_active", "gauge", "Registered standing rank subscriptions.")
			w.Sample("carserve_subscriptions_active", float64(st.Subs.Active))
			w.Family("carserve_subscription_events_total", "counter", "Subscription events pushed (snapshots + deltas + errors).")
			w.Sample("carserve_subscription_events_total", float64(st.Subs.Events))
			w.Family("carserve_subscription_evals_total", "counter", "Subscription re-rank evaluations, by outcome (skipped = state key unchanged).")
			w.Sample("carserve_subscription_evals_total", float64(st.Subs.Evals), "result", "evaluated")
			w.Sample("carserve_subscription_evals_total", float64(st.Subs.Skipped), "result", "skipped")
			w.Family("carserve_subscription_lag_events_total", "counter", "Events dropped because a stream consumer was behind (each run ends in a resync).")
			w.Sample("carserve_subscription_lag_events_total", float64(st.Subs.Lagged))
		}

		exportHealth(w, st, shards)
	})
}

// exportHealth emits the failure-domain series: per-shard state gauges,
// the recovered-panic counter, and quarantine/repair totals.
func exportHealth(w *metrics.Writer, st Stats, shards []Stats) {
	w.Family("carserve_panics_total", "counter", "Panics recovered by the serving stack (per-request and per-shard isolation) instead of killing the daemon.")
	w.Sample("carserve_panics_total", float64(PanicsTotal()))

	w.Family("carserve_shard_health", "gauge", "Shard health by state (1 = the shard is in that state).")
	for i, s := range shards {
		state := StateHealthy
		if s.Health != nil && s.Health.State != "" {
			state = s.Health.State
		}
		for _, candidate := range []string{StateHealthy, StateDegraded, StateQuarantined} {
			v := 0.0
			if state == candidate {
				v = 1.0
			}
			w.Sample("carserve_shard_health", v, "shard", strconv.Itoa(i), "state", candidate)
		}
	}

	if st.Health != nil {
		w.Family("carserve_degraded_recoveries_total", "counter", "Degraded-to-healthy transitions (the disk came back and the WAL re-armed).")
		w.Sample("carserve_degraded_recoveries_total", float64(st.Health.Recoveries))
		w.Family("carserve_unjournaled_tail_records", "gauge", "Applied-but-unjournaled records awaiting re-journal on disk recovery.")
		w.Sample("carserve_unjournaled_tail_records", float64(st.Health.UnjournaledTail))
		w.Family("carserve_quarantines_total", "counter", "Shards quarantined after repeated broadcast failures.")
		w.Sample("carserve_quarantines_total", float64(st.Health.Quarantines))
		w.Family("carserve_repairs_total", "counter", "Quarantined shards repaired from the WAL and readmitted.")
		w.Sample("carserve_repairs_total", float64(st.Health.Repairs))
	}
}

// exportCache emits one cache's hit/miss/coalesce/evict counters and
// occupancy + hit-ratio gauges per shard under the given series prefix.
func exportCache(w *metrics.Writer, prefix, what string, shards []Stats, get func(Stats) CacheStats) {
	w.Family(prefix+"_hits_total", "counter", "Hits in the "+what+" cache.")
	for i, s := range shards {
		w.Sample(prefix+"_hits_total", float64(get(s).Hits), "shard", strconv.Itoa(i))
	}
	w.Family(prefix+"_misses_total", "counter", "Misses in the "+what+" cache.")
	for i, s := range shards {
		w.Sample(prefix+"_misses_total", float64(get(s).Misses), "shard", strconv.Itoa(i))
	}
	w.Family(prefix+"_evicted_total", "counter", "Evictions from the "+what+" cache.")
	for i, s := range shards {
		w.Sample(prefix+"_evicted_total", float64(get(s).Evicted), "shard", strconv.Itoa(i))
	}
	w.Family(prefix+"_size", "gauge", "Entries in the "+what+" cache.")
	for i, s := range shards {
		w.Sample(prefix+"_size", float64(get(s).Size), "shard", strconv.Itoa(i))
	}
	w.Family(prefix+"_hit_ratio", "gauge", "Hit fraction of the "+what+" cache since start.")
	for i, s := range shards {
		w.Sample(prefix+"_hit_ratio", get(s).HitRate, "shard", strconv.Itoa(i))
	}
}

// exportJournal emits the session-WAL counters and the group-commit
// batch-size histogram for every shard that runs with a journal.
func exportJournal(w *metrics.Writer, shards []Stats) {
	any := false
	for _, s := range shards {
		if s.Journal != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	counter := func(name, help string, get func(journal.Stats) float64) {
		w.Family(name, "counter", help)
		for i, s := range shards {
			if s.Journal != nil {
				w.Sample(name, get(*s.Journal), "shard", strconv.Itoa(i))
			}
		}
	}
	counter("carserve_journal_appends_total", "Acknowledged session-WAL records.",
		func(j journal.Stats) float64 { return float64(j.Appends) })
	counter("carserve_journal_fsyncs_total", "Session-WAL file syncs.",
		func(j journal.Stats) float64 { return float64(j.Fsyncs) })
	counter("carserve_journal_compactions_total", "Session-WAL live-record rewrites.",
		func(j journal.Stats) float64 { return float64(j.Compactions) })
	counter("carserve_journal_compact_failures_total", "Failed session-WAL compaction attempts.",
		func(j journal.Stats) float64 { return float64(j.CompactFailures) })

	w.Family("carserve_journal_bytes", "gauge", "Session-WAL file size.")
	for i, s := range shards {
		if s.Journal != nil {
			w.Sample("carserve_journal_bytes", float64(s.Journal.Bytes), "shard", strconv.Itoa(i))
		}
	}
	w.Family("carserve_journal_live_records", "gauge", "Users with a live WAL record.")
	for i, s := range shards {
		if s.Journal != nil {
			w.Sample("carserve_journal_live_records", float64(s.Journal.LiveRecords), "shard", strconv.Itoa(i))
		}
	}
	w.Family("carserve_journal_vocab_records", "gauge", "Vocabulary records awaiting a checkpoint.")
	for i, s := range shards {
		if s.Journal != nil {
			w.Sample("carserve_journal_vocab_records", float64(s.Journal.VocabRecords), "shard", strconv.Itoa(i))
		}
	}
	w.Family("carserve_journal_vocab_bytes", "gauge", "WAL bytes of vocabulary records since the last checkpoint (the size trigger's input).")
	for i, s := range shards {
		if s.Journal != nil {
			w.Sample("carserve_journal_vocab_bytes", float64(s.Journal.VocabBytes), "shard", strconv.Itoa(i))
		}
	}
	w.Family("carserve_journal_checkpoint_seq", "gauge", "Highest journal sequence covered by a checkpoint.")
	for i, s := range shards {
		if s.Journal != nil {
			w.Sample("carserve_journal_checkpoint_seq", float64(s.Journal.CheckpointSeq), "shard", strconv.Itoa(i))
		}
	}
	w.Family("carserve_journal_degraded", "gauge", "1 while the shard's WAL is sticky-failed and mutations are rejected.")
	for i, s := range shards {
		if s.Journal != nil {
			v := 0.0
			if s.Journal.Degraded {
				v = 1.0
			}
			w.Sample("carserve_journal_degraded", v, "shard", strconv.Itoa(i))
		}
	}
	counter("carserve_journal_resets_total", "Successful WAL re-arms after a sticky write error (ResetAfter).",
		func(j journal.Stats) float64 { return float64(j.Resets) })

	bounds := make([]float64, len(journal.BatchSizeBuckets))
	for i, b := range journal.BatchSizeBuckets {
		bounds[i] = float64(b)
	}
	w.Family("carserve_journal_batch_records", "histogram",
		"Records per group commit: mass above 1 means concurrent applies share fsyncs.")
	for i, s := range shards {
		if s.Journal == nil || len(s.Journal.BatchSizes) == 0 {
			continue
		}
		// _sum is total records = Appends; _count is Batches.
		w.Histogram("carserve_journal_batch_records", bounds,
			s.Journal.BatchSizes, float64(s.Journal.Appends), "shard", strconv.Itoa(i))
	}
}

// RegisterAdmissionMetrics exposes the admission controller's state.
// Safe to call with adm == nil: the series are emitted as zeros so
// dashboards and alerts need not special-case unlimited deployments.
func RegisterAdmissionMetrics(reg *metrics.Registry, adm *Admission) {
	reg.Collect(func(w *metrics.Writer) {
		st := adm.Stats()
		w.Family("carserve_inflight_requests", "gauge", "Requests currently executing past the admission gate.")
		w.Sample("carserve_inflight_requests", float64(st.InFlight))
		w.Family("carserve_queued_requests", "gauge", "Requests waiting for an in-flight slot.")
		w.Sample("carserve_queued_requests", float64(st.Queued))
		w.Family("carserve_admitted_total", "counter", "Requests admitted past the gate.")
		w.Sample("carserve_admitted_total", float64(st.Admitted))
		w.Family("carserve_shed_total", "counter", "Requests shed with 429, by reason.")
		w.Sample("carserve_shed_total", float64(st.ShedQueue), "reason", "queue_full")
		w.Sample("carserve_shed_total", float64(st.ShedUser), "reason", "rate_limit")
	})
}
