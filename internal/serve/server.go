package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	contextrank "repro"
)

// Options tunes a Server.
type Options struct {
	// CacheSize is the rank-result LRU capacity (entries). 0 means
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
}

// Backend is the serving surface the HTTP handler (and the load
// generators) speak to. Two implementations exist: *Server — one System
// behind one facade — and shard.Coordinator, which routes per-user
// operations to one of N Servers by consistent hash and broadcasts
// vocabulary writes to all of them. The handler is written against this
// interface so both serve the identical HTTP API.
type Backend interface {
	// Rank ranks target for user through the backend's cache(s).
	Rank(user, target string, opts contextrank.RankOptions) ([]contextrank.Result, RankMeta, error)
	// Declare registers concepts, roles and subconcept axioms (a
	// vocabulary write: sharded backends broadcast it to every shard).
	Declare(concepts, roles []string, subs []SubConceptDecl) (int64, error)
	// Assert adds (possibly uncertain) concept/role assertions (also a
	// broadcast write under sharding).
	Assert(concepts []ConceptAssertion, roles []RoleAssertion) (int64, error)
	// Rules snapshots the registered preference rules.
	Rules() []contextrank.Rule
	// AddRules parses and registers scored preference rules, returning
	// the added rule names.
	AddRules(texts []string) ([]string, int64, error)
	// RemoveRule deletes a rule by name.
	RemoveRule(name string) (int64, error)
	// SetSession replaces the user's session context.
	SetSession(user string, ms []Measurement) (string, error)
	// SessionInfo returns the user's measurements and fingerprint.
	SessionInfo(user string) ([]Measurement, string, bool)
	// DropSession ends the user's session.
	DropSession(user string) error
	// Query runs a read-only SELECT.
	Query(stmt string) (*contextrank.QueryResult, error)
	// Exec runs a mutating SQL statement.
	Exec(stmt string) (*contextrank.QueryResult, int64, error)
	// Stats snapshots the backend's observable state.
	Stats() Stats
}

// SubConceptDecl is one TBox axiom sub ⊑ super in a Declare call.
type SubConceptDecl struct {
	Sub   string
	Super string
}

// ConceptAssertion is one concept-membership assertion in an Assert call.
type ConceptAssertion struct {
	Concept string
	ID      string
	Prob    float64
}

// RoleAssertion is one role-tuple assertion in an Assert call.
type RoleAssertion struct {
	Role string
	Src  string
	Dst  string
	Prob float64
}

// Server is the complete serving layer: facade + sessions + rank cache +
// statistics. It is safe for concurrent use by any number of goroutines.
type Server struct {
	facade   *Facade
	sessions *Sessions
	cache    *rankCache // nil when caching is disabled
	latency  *latencyRecorder
	start    time.Time
	requests atomic.Int64
}

var _ Backend = (*Server)(nil)

// NewServer wraps the system for serving. The caller must route all
// subsequent access through the returned server (or its Facade).
func NewServer(sys *contextrank.System, opts Options) *Server {
	srv := &Server{
		facade:  NewFacade(sys),
		latency: &latencyRecorder{},
		start:   time.Now(),
	}
	srv.sessions = newSessions(srv.facade)
	if opts.CacheSize >= 0 {
		srv.cache = newRankCache(opts.CacheSize)
	}
	return srv
}

// Facade returns the locking facade for direct (uncached) operations.
func (s *Server) Facade() *Facade { return s.facade }

// Sessions returns the per-user session manager.
func (s *Server) Sessions() *Sessions { return s.sessions }

// RankMeta describes how a Rank call was served.
type RankMeta struct {
	Cached  bool          // served from cache or coalesced onto another call
	Epoch   int64         // facade epoch the result corresponds to
	Shard   int           // shard that served the call (0 for an unsharded Server)
	Elapsed time.Duration // wall time of this call
}

// Rank ranks target for user through the cache: a hit under an unchanged
// (epoch, session fingerprint) is O(1), identical concurrent misses are
// coalesced onto one computation, and the rest take the facade read path.
func (s *Server) Rank(user, target string, opts contextrank.RankOptions) ([]contextrank.Result, RankMeta, error) {
	started := time.Now()
	s.requests.Add(1)

	// AppliedFingerprint is lock-free, so it is safe both here and inside
	// the facade read lock below (Sessions.Set holds its own mutex across
	// the facade write lock, so Sessions.Fingerprint — which takes that
	// mutex — would deadlock there). If a session update lands between
	// this read and the ranking, the compute closure re-reads fingerprint
	// and epoch under the read lock and files the result under the pair
	// it was actually computed at.
	fp := s.sessions.AppliedFingerprint(user)
	epoch := s.facade.Epoch()

	var (
		res    []contextrank.Result
		cached bool
		err    error
	)
	if s.cache == nil {
		err = s.facade.withReadEpoch(func(sys *contextrank.System, e int64) error {
			epoch = e
			r, rerr := sys.RankWith(user, target, opts)
			res = r
			return rerr
		})
	} else {
		key := rankKey(user, target, fp, epoch, opts)
		res, epoch, cached, err = s.cache.do(key, func() ([]contextrank.Result, string, int64, error) {
			var out []contextrank.Result
			storeKey, observed := key, epoch
			cerr := s.facade.withReadEpoch(func(sys *contextrank.System, e int64) error {
				observed = e
				storeKey = rankKey(user, target, s.sessions.AppliedFingerprint(user), e, opts)
				r, rerr := sys.RankWith(user, target, opts)
				out = r
				return rerr
			})
			return out, storeKey, observed, cerr
		})
	}

	elapsed := time.Since(started)
	if err == nil {
		s.latency.observe(elapsed)
	}
	return res, RankMeta{Cached: cached, Epoch: epoch, Elapsed: elapsed}, err
}

// --- Backend write/read operations -----------------------------------------

// Declare registers concepts, roles and subconcept axioms in one epoch.
func (s *Server) Declare(concepts, roles []string, subs []SubConceptDecl) (int64, error) {
	return s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		if len(concepts) > 0 {
			if err := sys.DeclareConcept(concepts...); err != nil {
				return err
			}
		}
		if len(roles) > 0 {
			if err := sys.DeclareRole(roles...); err != nil {
				return err
			}
		}
		for _, sc := range subs {
			if err := sys.SubConcept(sc.Sub, sc.Super); err != nil {
				return err
			}
		}
		return nil
	})
}

// Assert adds concept and role assertions in one epoch. Concepts that are
// currently session-context vocabulary are refused: the next context apply
// would clear the assertion (the check runs inside the write critical
// section, where session applies also hold the lock, so there is no TOCTOU
// window).
func (s *Server) Assert(concepts []ConceptAssertion, roles []RoleAssertion) (int64, error) {
	return s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		for _, a := range concepts {
			if s.sessions.IsSessionConcept(a.Concept) {
				return fmt.Errorf(
					"serve: concept %q is session-context vocabulary; the next context apply would clear the assertion — manage it via /v1/sessions instead", a.Concept)
			}
			if err := sys.AssertConcept(a.Concept, a.ID, a.Prob); err != nil {
				return err
			}
		}
		for _, a := range roles {
			if err := sys.AssertRole(a.Role, a.Src, a.Dst, a.Prob); err != nil {
				return err
			}
		}
		return nil
	})
}

// Rules snapshots the registered preference rules.
func (s *Server) Rules() []contextrank.Rule { return s.facade.Rules() }

// AddRules parses and registers rules, returning the added names. On error
// the names added before the failure stay registered (matching the facade's
// partial-mutation policy; the epoch bump invalidates cached rankings).
func (s *Server) AddRules(texts []string) ([]string, int64, error) {
	var added []string
	epoch, err := s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		for _, text := range texts {
			rule, err := sys.AddRule(text)
			if err != nil {
				return err
			}
			added = append(added, rule.Name)
		}
		return nil
	})
	return added, epoch, err
}

// RemoveRule deletes a rule by name.
func (s *Server) RemoveRule(name string) (int64, error) {
	return s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		return sys.Rules().Remove(name)
	})
}

// SetSession replaces the user's session context.
func (s *Server) SetSession(user string, ms []Measurement) (string, error) {
	return s.sessions.Set(user, ms)
}

// SessionInfo returns the user's measurements and fingerprint.
func (s *Server) SessionInfo(user string) ([]Measurement, string, bool) {
	return s.sessions.Snapshot(user)
}

// DropSession ends the user's session.
func (s *Server) DropSession(user string) error { return s.sessions.Drop(user) }

// Query runs a read-only SELECT through the facade.
func (s *Server) Query(stmt string) (*contextrank.QueryResult, error) {
	return s.facade.Query(stmt)
}

// Exec runs a mutating SQL statement, returning the new epoch.
func (s *Server) Exec(stmt string) (*contextrank.QueryResult, int64, error) {
	var res *contextrank.QueryResult
	epoch, err := s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		r, rerr := sys.Exec(stmt)
		res = r
		return rerr
	})
	return res, epoch, err
}

// SaveSnapshot dumps the wrapped system as JSON to w with the merged
// session context suspended (see Sessions.SuspendAndDump): the snapshot
// carries data, vocabulary, views and rules but never session context, so
// a server restored from it accepts session applies immediately. The dump
// runs under the write lock — a consistent cut — and bumps the epoch.
func (s *Server) SaveSnapshot(w io.Writer) error {
	return s.sessions.SuspendAndDump(func(sys *contextrank.System) error {
		return sys.SaveSnapshot(w)
	})
}

// --- statistics ------------------------------------------------------------

// Stats is the server's observable state, shaped for the /v1/stats
// endpoint and the load generator.
type Stats struct {
	Epoch         int64   `json:"epoch"`
	Sessions      int     `json:"sessions"`
	Rules         int     `json:"rules"`
	Requests      int64   `json:"rank_requests"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Events is the number of basic events currently declared in the
	// system's event space. Under session churn it stays bounded by the
	// live context vocabulary (each context apply retires the previous
	// snapshot's events) — a growing value here means an event leak.
	Events  int          `json:"events"`
	Cache   CacheStats   `json:"cache"`
	Latency LatencyStats `json:"latency"`
	// Broadcast describes cross-shard vocabulary writes; only a sharded
	// backend fills it.
	Broadcast *BroadcastStats `json:"broadcast,omitempty"`
	// Shards is the per-shard breakdown (index = shard id); only a
	// sharded backend fills it, and the outer struct is then the
	// aggregate: requests/sessions/events sum, epoch/rules take the
	// maximum (vocabulary is replicated), and latency percentiles take
	// the worst shard.
	Shards []Stats `json:"shards,omitempty"`
}

// BroadcastStats describes the cross-shard write path of a sharded
// backend: every vocabulary mutation (declare, assert, rules, exec) is
// applied to all shards, and its latency is the wall time of the slowest
// shard's apply.
type BroadcastStats struct {
	Writes     int64   `json:"writes"`
	MeanMicros float64 `json:"mean_us"`
	MaxMicros  float64 `json:"max_us"`
}

// Stats snapshots the server counters. The collection path is lock-free:
// it reads atomics (epoch, request/session counters, cache counters, the
// latency ring) and internally synchronized component state (rule
// repository, event space) without ever taking the facade lock, the
// session mutex or the cache mutex — scraping /v1/stats during a long
// write (e.g. a merged context apply) returns immediately instead of
// queueing behind rank traffic. The snapshot is correspondingly not an
// atomic cut across counters, which monitoring does not need.
func (s *Server) Stats() Stats {
	st := Stats{
		Epoch:    s.facade.Epoch(),
		Sessions: s.sessions.Count(),
		// The repository serializes itself and its lock is never held
		// across rank work, so this cannot queue behind the facade.
		Rules:         s.facade.sys.Rules().Len(),
		Requests:      s.requests.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		// The space serializes its own reads, so no facade lock is needed.
		Events:  s.facade.sys.DB().Space().Len(),
		Latency: s.latency.snapshot(),
	}
	if s.cache != nil {
		st.Cache = s.cache.stats()
	}
	return st
}
