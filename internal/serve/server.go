package serve

import (
	"sync/atomic"
	"time"

	contextrank "repro"
)

// Options tunes a Server.
type Options struct {
	// CacheSize is the rank-result LRU capacity (entries). 0 means
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
}

// Server is the complete serving layer: facade + sessions + rank cache +
// statistics. It is safe for concurrent use by any number of goroutines.
type Server struct {
	facade   *Facade
	sessions *Sessions
	cache    *rankCache // nil when caching is disabled
	latency  *latencyRecorder
	start    time.Time
	requests atomic.Int64
}

// NewServer wraps the system for serving. The caller must route all
// subsequent access through the returned server (or its Facade).
func NewServer(sys *contextrank.System, opts Options) *Server {
	srv := &Server{
		facade:  NewFacade(sys),
		latency: &latencyRecorder{},
		start:   time.Now(),
	}
	srv.sessions = newSessions(srv.facade)
	if opts.CacheSize >= 0 {
		srv.cache = newRankCache(opts.CacheSize)
	}
	return srv
}

// Facade returns the locking facade for direct (uncached) operations.
func (s *Server) Facade() *Facade { return s.facade }

// Sessions returns the per-user session manager.
func (s *Server) Sessions() *Sessions { return s.sessions }

// RankMeta describes how a Rank call was served.
type RankMeta struct {
	Cached  bool          // served from cache or coalesced onto another call
	Epoch   int64         // facade epoch the result corresponds to
	Elapsed time.Duration // wall time of this call
}

// Rank ranks target for user through the cache: a hit under an unchanged
// (epoch, session fingerprint) is O(1), identical concurrent misses are
// coalesced onto one computation, and the rest take the facade read path.
func (s *Server) Rank(user, target string, opts contextrank.RankOptions) ([]contextrank.Result, RankMeta, error) {
	started := time.Now()
	s.requests.Add(1)

	// AppliedFingerprint is lock-free, so it is safe both here and inside
	// the facade read lock below (Sessions.Set holds its own mutex across
	// the facade write lock, so Sessions.Fingerprint — which takes that
	// mutex — would deadlock there). If a session update lands between
	// this read and the ranking, the compute closure re-reads fingerprint
	// and epoch under the read lock and files the result under the pair
	// it was actually computed at.
	fp := s.sessions.AppliedFingerprint(user)
	epoch := s.facade.Epoch()

	var (
		res    []contextrank.Result
		cached bool
		err    error
	)
	if s.cache == nil {
		err = s.facade.withReadEpoch(func(sys *contextrank.System, e int64) error {
			epoch = e
			r, rerr := sys.RankWith(user, target, opts)
			res = r
			return rerr
		})
	} else {
		key := rankKey(user, target, fp, epoch, opts)
		res, epoch, cached, err = s.cache.do(key, func() ([]contextrank.Result, string, int64, error) {
			var out []contextrank.Result
			storeKey, observed := key, epoch
			cerr := s.facade.withReadEpoch(func(sys *contextrank.System, e int64) error {
				observed = e
				storeKey = rankKey(user, target, s.sessions.AppliedFingerprint(user), e, opts)
				r, rerr := sys.RankWith(user, target, opts)
				out = r
				return rerr
			})
			return out, storeKey, observed, cerr
		})
	}

	elapsed := time.Since(started)
	if err == nil {
		s.latency.observe(elapsed)
	}
	return res, RankMeta{Cached: cached, Epoch: epoch, Elapsed: elapsed}, err
}

// Stats is the server's observable state, shaped for the /v1/stats
// endpoint and the load generator.
type Stats struct {
	Epoch         int64        `json:"epoch"`
	Sessions      int          `json:"sessions"`
	Rules         int          `json:"rules"`
	Requests      int64        `json:"rank_requests"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	// Events is the number of basic events currently declared in the
	// system's event space. Under session churn it stays bounded by the
	// live context vocabulary (each context apply retires the previous
	// snapshot's events) — a growing value here means an event leak.
	Events  int          `json:"events"`
	Cache   CacheStats   `json:"cache"`
	Latency LatencyStats `json:"latency"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Epoch:         s.facade.Epoch(),
		Sessions:      s.sessions.Count(),
		Rules:         s.facade.RuleCount(),
		Requests:      s.requests.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		// The space serializes its own reads, so no facade lock is needed.
		Events:  s.facade.sys.DB().Space().Len(),
		Latency: s.latency.snapshot(),
	}
	if s.cache != nil {
		st.Cache = s.cache.stats()
	}
	return st
}
