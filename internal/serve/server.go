package serve

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	contextrank "repro"
	"repro/internal/serve/journal"
)

// Options tunes a Server.
type Options struct {
	// CacheSize is the rank-result LRU capacity (entries). 0 means
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
	// PlanCacheSize is the compiled-rank-plan LRU capacity (entries). 0
	// means DefaultPlanCacheSize; negative disables plan caching (every
	// uncached rank then recompiles its plan).
	PlanCacheSize int
	// DegradeOnDiskError arms read-only degraded mode: when an attached
	// journal sticky-fails, mutations are rejected with ErrDegraded
	// (ranks keep serving from memory) instead of each returning its own
	// "applied but not journaled" error, and ProbeDisk can re-arm the
	// WAL when the disk recovers. Off, a journal error stays a per-call
	// error and only a restart clears the sticky state.
	DegradeOnDiskError bool
}

// Backend is the serving surface the HTTP handler (and the load
// generators) speak to. Two implementations exist: *Server — one System
// behind one facade — and shard.Coordinator, which routes per-user
// operations to one of N Servers by consistent hash and broadcasts
// vocabulary writes to all of them. The handler is written against this
// interface so both serve the identical HTTP API.
type Backend interface {
	// Rank ranks target for user through the backend's cache(s).
	Rank(user, target string, opts contextrank.RankOptions) ([]contextrank.Result, RankMeta, error)
	// Declare registers concepts, roles and subconcept axioms (a
	// vocabulary write: sharded backends broadcast it to every shard).
	Declare(concepts, roles []string, subs []SubConceptDecl) (int64, error)
	// Assert adds (possibly uncertain) concept/role assertions (also a
	// broadcast write under sharding).
	Assert(concepts []ConceptAssertion, roles []RoleAssertion) (int64, error)
	// Rules snapshots the registered preference rules.
	Rules() []contextrank.Rule
	// AddRules parses and registers scored preference rules, returning
	// the added rule names.
	AddRules(texts []string) ([]string, int64, error)
	// RemoveRule deletes a rule by name.
	RemoveRule(name string) (int64, error)
	// RankBatch ranks several targets/candidate lists for one user in a
	// single call: one consistent snapshot, one compiled rank plan (for
	// the factorized algorithm) shared by every item, and — under
	// sharding — one hop to the user's owning shard.
	RankBatch(user string, algorithm contextrank.Algorithm, items []RankItem) ([]RankItemResult, RankMeta, error)
	// SetSession replaces the user's session context.
	SetSession(user string, ms []Measurement) (string, error)
	// SessionInfo returns the user's measurements and fingerprint.
	SessionInfo(user string) ([]Measurement, string, bool)
	// DropSession ends the user's session.
	DropSession(user string) error
	// Query runs a read-only SELECT.
	Query(stmt string) (*contextrank.QueryResult, error)
	// Exec runs a mutating SQL statement.
	Exec(stmt string) (*contextrank.QueryResult, int64, error)
	// Subscribe registers (or, on an existing id, replaces) a standing
	// rank subscription: the backend re-evaluates the request after every
	// relevant mutation and pushes score deltas to the subscription's
	// event stream. An empty id mints one. Journaled like a session write.
	Subscribe(id string, spec SubscriptionSpec) (SubscriptionInfo, error)
	// Unsubscribe removes a subscription and ends its stream, reporting
	// whether it existed.
	Unsubscribe(id string) (bool, error)
	// Subscriptions lists the registered subscriptions.
	Subscriptions() []SubscriptionInfo
	// SubscriptionStream attaches the (single) event consumer to a
	// subscription, returning its opening snapshot and live channel.
	SubscriptionStream(id string) (*SubStream, error)
	// Stats snapshots the backend's observable state.
	Stats() Stats
}

// SubConceptDecl is one TBox axiom sub ⊑ super in a Declare call.
type SubConceptDecl struct {
	Sub   string
	Super string
}

// ConceptAssertion is one concept-membership assertion in an Assert call.
type ConceptAssertion struct {
	Concept string
	ID      string
	Prob    float64
}

// RoleAssertion is one role-tuple assertion in an Assert call.
type RoleAssertion struct {
	Role string
	Src  string
	Dst  string
	Prob float64
}

// Server is the complete serving layer: facade + sessions + rank cache +
// statistics. It is safe for concurrent use by any number of goroutines.
type Server struct {
	facade   *Facade
	sessions *Sessions
	cache    *rankCache // nil when caching is disabled
	plans    *planCache // nil when plan caching is disabled
	latency  *latencyRecorder
	health   *diskHealth
	subs     *subRegistry
	start    time.Time
	requests atomic.Int64
}

var _ Backend = (*Server)(nil)

// NewServer wraps the system for serving. The caller must route all
// subsequent access through the returned server (or its Facade).
func NewServer(sys *contextrank.System, opts Options) *Server {
	srv := &Server{
		facade:  NewFacade(sys),
		latency: &latencyRecorder{},
		health:  &diskHealth{enabled: opts.DegradeOnDiskError},
		subs:    newSubRegistry(),
		start:   time.Now(),
	}
	srv.sessions = newSessions(srv.facade)
	srv.sessions.health = srv.health
	if opts.CacheSize >= 0 {
		srv.cache = newRankCache(opts.CacheSize)
	}
	if opts.PlanCacheSize >= 0 {
		srv.plans = newPlanCache(opts.PlanCacheSize)
	}
	return srv
}

// Facade returns the locking facade for direct (uncached) operations.
func (s *Server) Facade() *Facade { return s.facade }

// Sessions returns the per-user session manager.
func (s *Server) Sessions() *Sessions { return s.sessions }

// AttachJournal arms the write-ahead log (see Sessions.AttachJournal):
// every acknowledged mutation — session updates AND vocabulary/data
// writes (Declare/Assert/AddRules/RemoveRule/Exec) — is then fsynced to
// the journal inside the critical section that applied it, before the
// acknowledgement. The server does not own the journal's lifecycle; the
// caller (shard.Coordinator.Recover, or a test) closes it.
func (s *Server) AttachJournal(j *journal.Journal) { s.sessions.AttachJournal(j) }

// Journal returns the attached WAL, or nil.
func (s *Server) Journal() *journal.Journal { return s.sessions.Journal() }

// RankMeta describes how a Rank call was served.
type RankMeta struct {
	Cached  bool          // served from cache or coalesced onto another call
	Epoch   int64         // facade epoch the result corresponds to
	Shard   int           // shard that served the call (0 for an unsharded Server)
	Elapsed time.Duration // wall time of this call
}

// Rank ranks target for user through the cache: a hit under an unchanged
// (epoch, session fingerprint) is O(1), identical concurrent misses are
// coalesced onto one computation, and the rest take the facade read path.
func (s *Server) Rank(user, target string, opts contextrank.RankOptions) ([]contextrank.Result, RankMeta, error) {
	started := time.Now()
	s.requests.Add(1)

	// AppliedFingerprint is lock-free, so it is safe both here and inside
	// the facade read lock below (Sessions.Set holds its own mutex across
	// the facade write lock, so Sessions.Fingerprint — which takes that
	// mutex — would deadlock there). If a session update lands between
	// this read and the ranking, the compute closure re-reads fingerprint
	// and epoch under the read lock and files the result under the pair
	// it was actually computed at.
	fp := s.sessions.AppliedFingerprint(user)
	epoch := s.facade.Epoch()

	var (
		res    []contextrank.Result
		cached bool
		err    error
	)
	if s.cache == nil {
		err = s.facade.withReadEpoch(func(sys *contextrank.System, e int64) error {
			epoch = e
			r, rerr := s.rankTarget(sys, user, target, opts, e)
			res = r
			return rerr
		})
	} else {
		key := rankKey(user, target, fp, epoch, opts)
		res, epoch, cached, err = s.cache.do(key, func() ([]contextrank.Result, string, int64, error) {
			var out []contextrank.Result
			storeKey, observed := key, epoch
			cerr := s.facade.withReadEpoch(func(sys *contextrank.System, e int64) error {
				observed = e
				storeKey = rankKey(user, target, s.sessions.AppliedFingerprint(user), e, opts)
				r, rerr := s.rankTarget(sys, user, target, opts, e)
				out = r
				return rerr
			})
			return out, storeKey, observed, cerr
		})
	}

	elapsed := time.Since(started)
	if err == nil {
		s.latency.observe(elapsed)
	}
	return res, RankMeta{Cached: cached, Epoch: epoch, Elapsed: elapsed}, err
}

// planAlgorithm reports whether the algorithm is served by compiled rank
// plans (the factorized default); the others rank through the generic path.
func planAlgorithm(alg contextrank.Algorithm) bool {
	return alg == "" || alg == contextrank.AlgorithmFactorized
}

// rankTarget computes one uncached target ranking. Must run under the
// facade read lock with e the epoch observed under that lock: the plan
// fetched (or compiled) here is keyed by (user, rules fingerprint, e,
// context epoch), all of which are stable while the lock is held, so a
// cached plan can never be stale for the snapshot being read.
func (s *Server) rankTarget(sys *contextrank.System, user, target string, opts contextrank.RankOptions, e int64) ([]contextrank.Result, error) {
	if !planAlgorithm(opts.Algorithm) {
		return sys.RankWith(user, target, opts)
	}
	plan, err := s.planFor(sys, user, e)
	if err != nil {
		if errors.Is(err, contextrank.ErrPlanClusterBound) {
			// The footprint partition is too coarse for this rule set; go
			// straight to the per-candidate path (a cached negative verdict
			// means recompiling would just rediscover the bound).
			return sys.RankNoPlan(user, target, opts)
		}
		return nil, err
	}
	return sys.RankWithPlan(plan, target, opts)
}

// planFor returns the user's compiled rank plan for the current (epoch,
// context epoch, rule set), compiling and caching it on a miss. Must run
// under the facade read lock (see rankTarget). A rule set whose footprint
// partition exceeds the cluster bound is cached as a nil entry — a
// negative verdict — so repeated requests at the same state fail fast into
// the per-candidate fallback instead of recompiling.
//
// A miss caused purely by a context-epoch advance — the user's plan at the
// same (rules, data epoch) exists for an older context — is served by
// incrementally refreshing that predecessor instead of recompiling: the
// refresh re-resolves only the context side and carries over the
// preference membership maps, footprints and unaffected document-side
// distributions (see contextrank.RefreshRankPlan). Refresh failures fall
// back to a full compile; correctness never depends on the fast path.
func (s *Server) planFor(sys *contextrank.System, user string, e int64) (*contextrank.RankPlan, error) {
	if s.plans == nil {
		return sys.CompileRankPlan(user)
	}
	baseKey := planBaseKey(user, sys.RulesFingerprint(), e)
	key := planKey(user, sys.RulesFingerprint(), e, s.sessions.ContextEpoch())
	if plan, ok := s.plans.get(key); ok {
		if plan == nil {
			return nil, contextrank.ErrPlanClusterBound
		}
		return plan, nil
	}
	if prev, ok := s.plans.getLatest(baseKey); ok {
		if plan, err := sys.RefreshRankPlan(prev); err == nil {
			s.plans.refreshed.Add(1)
			s.plans.add(key, baseKey, plan)
			return plan, nil
		}
	}
	plan, err := sys.CompileRankPlan(user)
	if err != nil {
		if errors.Is(err, contextrank.ErrPlanClusterBound) {
			s.plans.add(key, baseKey, nil)
		}
		return nil, err
	}
	s.plans.add(key, baseKey, plan)
	return plan, nil
}

// RankItem is one ranking task inside a RankBatch call: either a target
// concept expression or an explicit candidate list, plus the per-item
// result shaping.
type RankItem struct {
	Target     string   // DL concept expression; empty when Candidates is set
	Candidates []string // explicit candidate ids (the §5 query-integration shape)
	Threshold  float64
	Limit      int
	TopK       int // keep only the best k (0 = all); see RankOptions.TopK
	Explain    bool
}

// options shapes the item as RankOptions under the batch's algorithm.
func (it RankItem) options(alg contextrank.Algorithm) contextrank.RankOptions {
	return contextrank.RankOptions{
		Algorithm: alg,
		Threshold: it.Threshold,
		Limit:     it.Limit,
		TopK:      it.TopK,
		Explain:   it.Explain,
	}
}

// RankItemResult is one batch item's outcome. Err is per-item: a bad
// target expression fails that item, not the batch.
type RankItemResult struct {
	Results []contextrank.Result
	Cached  bool
	Err     error
}

// RankBatch ranks every item for one user in a single call. Target items
// are served from the rank-result cache when possible; all misses share
// one facade read-lock hold (one consistent snapshot) and — for the
// factorized algorithm — one compiled rank plan, so a batch of B targets
// or candidate lists pays the per-(user, rules, context) compilation once
// instead of B times. Candidate-list items bypass the result cache (their
// keys would have unbounded cardinality) and always rank through the
// plan. Identical concurrent batch misses are not singleflight-coalesced;
// the shared plan already removes the expensive duplicated work.
func (s *Server) RankBatch(user string, alg contextrank.Algorithm, items []RankItem) ([]RankItemResult, RankMeta, error) {
	started := time.Now()
	s.requests.Add(int64(len(items)))
	if user == "" {
		return nil, RankMeta{}, fmt.Errorf("serve: batch rank needs a user")
	}
	if len(items) == 0 {
		return nil, RankMeta{}, fmt.Errorf("serve: batch rank needs at least one item")
	}
	if !contextrank.KnownAlgorithm(alg) {
		return nil, RankMeta{}, fmt.Errorf("serve: unknown algorithm %q", alg)
	}

	fp := s.sessions.AppliedFingerprint(user)
	epoch := s.facade.Epoch()
	out := make([]RankItemResult, len(items))

	// Pass 1: serve target items straight from the rank-result cache.
	pending := make([]int, 0, len(items))
	for i, it := range items {
		if it.Candidates == nil && it.Target != "" && s.cache != nil {
			key := rankKey(user, it.Target, fp, epoch, it.options(alg))
			if res, ok := s.cache.get(key); ok {
				s.cache.hits.Add(1)
				out[i] = RankItemResult{Results: res, Cached: true}
				continue
			}
			s.cache.misses.Add(1)
		}
		pending = append(pending, i)
	}

	meta := RankMeta{Cached: len(pending) == 0, Epoch: epoch}
	if len(pending) > 0 {
		err := s.facade.withReadEpoch(func(sys *contextrank.System, e int64) error {
			meta.Epoch = e
			afp := s.sessions.AppliedFingerprint(user)
			var plan *contextrank.RankPlan
			boundExceeded := false
			if planAlgorithm(alg) {
				p, perr := s.planFor(sys, user, e)
				switch {
				case perr == nil:
					plan = p
				case errors.Is(perr, contextrank.ErrPlanClusterBound):
					// Rule set too coarse for a compiled plan; every item
					// below ranks through the per-candidate path directly
					// (recompiling per item would rediscover the bound).
					boundExceeded = true
				default:
					return perr
				}
			}
			for _, i := range pending {
				it := items[i]
				opts := it.options(alg)
				var res []contextrank.Result
				var rerr error
				switch {
				case it.Candidates != nil:
					switch {
					case plan != nil:
						res, rerr = sys.RankCandidatesWithPlan(plan, it.Candidates, opts)
					case boundExceeded:
						res, rerr = sys.RankCandidatesNoPlan(user, it.Candidates, opts)
					default:
						res, rerr = sys.RankCandidates(user, it.Candidates, opts)
					}
				case it.Target != "":
					switch {
					case plan != nil:
						res, rerr = sys.RankWithPlan(plan, it.Target, opts)
					case boundExceeded:
						res, rerr = sys.RankNoPlan(user, it.Target, opts)
					default:
						res, rerr = sys.RankWith(user, it.Target, opts)
					}
					if rerr == nil && s.cache != nil {
						// File under what was actually observed under the
						// lock, mirroring the single-rank compute path.
						s.cache.put(rankKey(user, it.Target, afp, e, opts), res, e)
					}
				default:
					rerr = fmt.Errorf("serve: batch item needs a target or a candidate list")
				}
				out[i] = RankItemResult{Results: res, Err: rerr}
			}
			return nil
		})
		if err != nil {
			// Batch-level failure: the shared plan could not be compiled
			// (e.g. a rule references vocabulary mid-migration) — no item
			// could have ranked.
			return nil, meta, err
		}
	}

	elapsed := time.Since(started)
	s.latency.observe(elapsed)
	meta.Elapsed = elapsed
	return out, meta, nil
}

// --- Backend write/read operations -----------------------------------------

// finishJournal completes a mutator's journal handoff after the facade
// lock is released: the wait function (from a Submit made inside the
// write critical section) blocks until the record's group commit is
// fsynced, so concurrent mutators share one sync. An apply error wins —
// the client saw no acknowledgement, so durability of the partial prefix
// is best-effort. A journal error on a successful apply is surfaced as
// "applied but not journaled" — the state changed in memory but the
// caller must not treat it as durable — and, with degraded mode armed,
// engages it: rec is kept on the unjournaled tail so ProbeDisk can
// re-journal it when the disk recovers.
func (s *Server) finishJournal(opErr error, wait func() error, rec journal.Record, what string) error {
	if wait == nil {
		return opErr
	}
	jerr := wait()
	if opErr != nil {
		return opErr
	}
	if jerr != nil {
		s.health.noteJournalError(rec, jerr)
		return fmt.Errorf("serve: %s applied but not journaled: %w", what, notJournaled{jerr})
	}
	return nil
}

// Declare registers concepts, roles and subconcept axioms in one epoch.
func (s *Server) Declare(concepts, roles []string, subs []SubConceptDecl) (int64, error) {
	if err := s.health.checkWritable(); err != nil {
		return 0, err
	}
	return s.DeclareTagged(0, concepts, roles, subs)
}

// DeclareTagged is Declare carrying a broadcast id (the shard coordinator
// tags each broadcast write so every shard journals the same record with
// the same BID; see journal.Record.BID). Items are applied one at a time
// and the journal record holds exactly the applied prefix: on a mid-list
// error the items already applied stay applied (the established
// partial-mutation policy) and stay durable, while the failed item is
// neither applied nor journaled — replay never re-fails.
func (s *Server) DeclareTagged(bid uint64, concepts, roles []string, subs []SubConceptDecl) (int64, error) {
	var wait func() error
	rec := journal.Record{Op: journal.OpDeclare, BID: bid}
	epoch, err := s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		var opErr error
		for _, c := range concepts {
			if opErr = sys.DeclareConcept(c); opErr != nil {
				break
			}
			rec.Concepts = append(rec.Concepts, c)
		}
		if opErr == nil {
			for _, r := range roles {
				if opErr = sys.DeclareRole(r); opErr != nil {
					break
				}
				rec.Roles = append(rec.Roles, r)
			}
		}
		if opErr == nil {
			for _, sc := range subs {
				if opErr = sys.SubConcept(sc.Sub, sc.Super); opErr != nil {
					break
				}
				rec.Subs = append(rec.Subs, journal.SubDecl{Sub: sc.Sub, Super: sc.Super})
			}
		}
		if len(rec.Concepts)+len(rec.Roles)+len(rec.Subs) > 0 {
			if j := s.sessions.Journal(); j != nil {
				rec.Epoch = s.facade.Epoch()
				wait = j.Submit(rec)
			}
		}
		return opErr
	})
	s.pokeSubs() // a partial apply still moved the epoch
	return epoch, s.finishJournal(err, wait, rec, "declare")
}

// Assert adds concept and role assertions in one epoch. Concepts that are
// currently session-context vocabulary are refused: the next context apply
// would clear the assertion (the check runs inside the write critical
// section, where session applies also hold the lock, so there is no TOCTOU
// window).
func (s *Server) Assert(concepts []ConceptAssertion, roles []RoleAssertion) (int64, error) {
	if err := s.health.checkWritable(); err != nil {
		return 0, err
	}
	return s.AssertTagged(0, concepts, roles)
}

// AssertTagged is Assert carrying a broadcast id; see DeclareTagged for
// the BID and applied-prefix journaling contract.
func (s *Server) AssertTagged(bid uint64, concepts []ConceptAssertion, roles []RoleAssertion) (int64, error) {
	var wait func() error
	rec := journal.Record{Op: journal.OpAssert, BID: bid}
	epoch, err := s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		var opErr error
		for _, a := range concepts {
			if s.sessions.IsSessionConcept(a.Concept) {
				opErr = fmt.Errorf(
					"serve: concept %q is session-context vocabulary; the next context apply would clear the assertion — manage it via /v1/sessions instead", a.Concept)
				break
			}
			if opErr = sys.AssertConcept(a.Concept, a.ID, a.Prob); opErr != nil {
				break
			}
			rec.ConceptAsserts = append(rec.ConceptAsserts, journal.ConceptAssert{Concept: a.Concept, ID: a.ID, Prob: a.Prob})
		}
		if opErr == nil {
			for _, a := range roles {
				if opErr = sys.AssertRole(a.Role, a.Src, a.Dst, a.Prob); opErr != nil {
					break
				}
				rec.RoleAsserts = append(rec.RoleAsserts, journal.RoleAssert{Role: a.Role, Src: a.Src, Dst: a.Dst, Prob: a.Prob})
			}
		}
		if len(rec.ConceptAsserts)+len(rec.RoleAsserts) > 0 {
			if j := s.sessions.Journal(); j != nil {
				rec.Epoch = s.facade.Epoch()
				wait = j.Submit(rec)
			}
		}
		return opErr
	})
	s.pokeSubs()
	return epoch, s.finishJournal(err, wait, rec, "assert")
}

// Rules snapshots the registered preference rules.
func (s *Server) Rules() []contextrank.Rule { return s.facade.Rules() }

// AddRules parses and registers rules, returning the added names. On error
// the names added before the failure stay registered (matching the facade's
// partial-mutation policy; the epoch bump invalidates cached rankings) —
// and, with a journal attached, stay durable: the record holds exactly the
// applied prefix of rule texts.
func (s *Server) AddRules(texts []string) ([]string, int64, error) {
	if err := s.health.checkWritable(); err != nil {
		return nil, 0, err
	}
	return s.AddRulesTagged(0, texts)
}

// AddRulesTagged is AddRules carrying a broadcast id; see DeclareTagged.
func (s *Server) AddRulesTagged(bid uint64, texts []string) ([]string, int64, error) {
	var added []string
	var wait func() error
	rec := journal.Record{Op: journal.OpAddRules, BID: bid}
	epoch, err := s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		var opErr error
		for _, text := range texts {
			rule, aerr := sys.AddRule(text)
			if aerr != nil {
				opErr = aerr
				break
			}
			added = append(added, rule.Name)
			rec.Rules = append(rec.Rules, text)
		}
		if len(rec.Rules) > 0 {
			if j := s.sessions.Journal(); j != nil {
				rec.Epoch = s.facade.Epoch()
				wait = j.Submit(rec)
			}
		}
		return opErr
	})
	s.pokeSubs()
	return added, epoch, s.finishJournal(err, wait, rec, "add rules")
}

// RemoveRule deletes a rule by name. The removal is journaled on success
// only — a failed remove mutated nothing.
func (s *Server) RemoveRule(name string) (int64, error) {
	if err := s.health.checkWritable(); err != nil {
		return 0, err
	}
	return s.RemoveRuleTagged(0, name)
}

// RemoveRuleTagged is RemoveRule carrying a broadcast id; see DeclareTagged.
func (s *Server) RemoveRuleTagged(bid uint64, name string) (int64, error) {
	var wait func() error
	rec := journal.Record{Op: journal.OpRemoveRule, BID: bid, Rule: name}
	epoch, err := s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		if rerr := sys.Rules().Remove(name); rerr != nil {
			return rerr
		}
		if j := s.sessions.Journal(); j != nil {
			rec.Epoch = s.facade.Epoch()
			wait = j.Submit(rec)
		}
		return nil
	})
	s.pokeSubs()
	return epoch, s.finishJournal(err, wait, rec, "rule removal")
}

// SetSession replaces the user's session context. The context apply is
// what moves subscription scores most often, so it pokes the standing-
// subscription evaluator on its way out (even on error: a journal
// failure leaves the context applied in memory — see Sessions.Set).
func (s *Server) SetSession(user string, ms []Measurement) (string, error) {
	fp, err := s.sessions.Set(user, ms)
	s.pokeSubs()
	return fp, err
}

// SessionInfo returns the user's measurements and fingerprint.
func (s *Server) SessionInfo(user string) ([]Measurement, string, bool) {
	return s.sessions.Snapshot(user)
}

// DropSession ends the user's session.
func (s *Server) DropSession(user string) error {
	err := s.sessions.Drop(user)
	s.pokeSubs()
	return err
}

// Query runs a read-only SELECT through the facade.
func (s *Server) Query(stmt string) (*contextrank.QueryResult, error) {
	return s.facade.Query(stmt)
}

// Exec runs a mutating SQL statement, returning the new epoch. The
// statement is journaled on success only: a failed statement's partial
// effects (if any) are not re-created by replay — they are also the one
// divergence a checkpoint can capture that the WAL does not, which is
// acceptable because the client was told the statement failed.
func (s *Server) Exec(stmt string) (*contextrank.QueryResult, int64, error) {
	if err := s.health.checkWritable(); err != nil {
		return nil, 0, err
	}
	return s.ExecTagged(0, stmt)
}

// ExecTagged is Exec carrying a broadcast id; see DeclareTagged.
func (s *Server) ExecTagged(bid uint64, stmt string) (*contextrank.QueryResult, int64, error) {
	var res *contextrank.QueryResult
	var wait func() error
	rec := journal.Record{Op: journal.OpExec, BID: bid, Stmt: stmt}
	epoch, err := s.facade.WithWriteEpoch(func(sys *contextrank.System) error {
		r, rerr := sys.Exec(stmt)
		res = r
		if rerr != nil {
			return rerr
		}
		if j := s.sessions.Journal(); j != nil {
			rec.Epoch = s.facade.Epoch()
			wait = j.Submit(rec)
		}
		return nil
	})
	s.pokeSubs()
	return res, epoch, s.finishJournal(err, wait, rec, "exec")
}

// SaveSnapshot dumps the wrapped system as JSON to w with the merged
// session context suspended (see Sessions.SuspendAndDump): the snapshot
// carries data, vocabulary, views and rules but never session context, so
// a server restored from it accepts session applies immediately. The dump
// runs under the write lock — a consistent cut — and bumps the epoch.
func (s *Server) SaveSnapshot(w io.Writer) error {
	_, err := s.CheckpointDump(w)
	return err
}

// CheckpointDump is SaveSnapshot returning the journal sequence number
// the snapshot covers: every record with Seq <= the returned value is
// reflected in the dump, every later record is not. The capture is exact
// because SuspendAndDump holds both the session mutex and the facade
// write lock across fn, and every journal Submit happens under the facade
// write lock — no record can land between the cut and the dump. A server
// without a journal returns seq 0.
func (s *Server) CheckpointDump(w io.Writer) (uint64, error) {
	var seq uint64
	err := s.sessions.SuspendAndDump(func(sys *contextrank.System) error {
		if j := s.sessions.Journal(); j != nil {
			seq = j.Seq()
		}
		return sys.SaveSnapshot(w)
	})
	return seq, err
}

// --- statistics ------------------------------------------------------------

// Stats is the server's observable state, shaped for the /v1/stats
// endpoint and the load generator.
type Stats struct {
	Epoch         int64   `json:"epoch"`
	Sessions      int     `json:"sessions"`
	Rules         int     `json:"rules"`
	Requests      int64   `json:"rank_requests"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Events is the number of basic events currently declared in the
	// system's event space. Under session churn it stays bounded by the
	// live context vocabulary (each context apply retires the previous
	// snapshot's events) — a growing value here means an event leak.
	Events int        `json:"events"`
	Cache  CacheStats `json:"cache"`
	// Plans is the compiled-rank-plan cache: one entry per (user, rule
	// set, epoch, context epoch), shared by every target and batch item
	// that user ranks at that state.
	Plans   CacheStats   `json:"plan_cache"`
	Latency LatencyStats `json:"latency"`
	// Health is the failure-domain state: healthy, degraded (journal
	// down, mutations rejected) or quarantined (coordinator rerouting
	// around the shard), plus the counters behind it.
	Health *HealthInfo `json:"health,omitempty"`
	// Journal is the write-ahead log (appends, group-commit batches,
	// fsyncs, compactions, live/vocab/total records, bytes since the last
	// checkpoint); nil when the server runs without durability.
	Journal *journal.Stats `json:"journal,omitempty"`
	// Checkpoints describes background checkpoint activity; only a
	// backend with a checkpointer running fills it (aggregate only, not
	// per shard).
	Checkpoints *CheckpointStats `json:"checkpoints,omitempty"`
	// Recovery describes what boot-time WAL replay restored; filled once
	// at boot by shard.Coordinator.Recover (aggregate only).
	Recovery *RecoveryStats `json:"recovery,omitempty"`
	// Broadcast describes cross-shard vocabulary writes; only a sharded
	// backend fills it.
	Broadcast *BroadcastStats `json:"broadcast,omitempty"`
	// Subs is the standing-subscription subsystem: registered
	// subscriptions, pushed events, evaluator work and skip counts.
	Subs *SubscriptionStats `json:"subscriptions,omitempty"`
	// HotPath is the rank hot path's scratch-pool and document-
	// distribution-cache effectiveness. The counters are process-global
	// (see contextrank.HotPathStats), so a sharded backend reports them
	// once on the aggregate and leaves per-shard entries nil.
	HotPath *contextrank.HotPathStats `json:"hot_path,omitempty"`
	// Shards is the per-shard breakdown (index = shard id); only a
	// sharded backend fills it, and the outer struct is then the
	// aggregate: requests/sessions/events sum, epoch/rules take the
	// maximum (vocabulary is replicated), and latency percentiles take
	// the worst shard.
	Shards []Stats `json:"shards,omitempty"`
}

// BroadcastStats describes the cross-shard write path of a sharded
// backend: every vocabulary mutation (declare, assert, rules, exec) is
// applied to all shards, and its latency is the wall time of the slowest
// shard's apply.
type BroadcastStats struct {
	Writes     int64   `json:"writes"`
	MeanMicros float64 `json:"mean_us"`
	MaxMicros  float64 `json:"max_us"`
}

// CheckpointStats describes background checkpoint activity: full-state
// snapshots that truncate the WAL (see shard.Coordinator.Checkpoint).
type CheckpointStats struct {
	// Count / Failures count completed and failed checkpoint attempts.
	Count    int64 `json:"count"`
	Failures int64 `json:"failures"`
	// LastUnix is when the last successful checkpoint finished (unix
	// seconds; 0 before the first).
	LastUnix int64 `json:"last_unix,omitempty"`
	// LastDurationMicros is the wall time of the last successful
	// checkpoint (suspend + dump + rename + WAL truncation).
	LastDurationMicros float64 `json:"last_duration_us,omitempty"`
	// LastSeq is the highest per-shard journal sequence the last
	// checkpoint covered (max across shards).
	LastSeq uint64 `json:"last_seq,omitempty"`
}

// RecoveryStats describes what a boot-time WAL replay restored. The
// per-op counts are applied records; Skipped* are records correctly not
// applied (already covered by the restored checkpoint, or a broadcast
// duplicate of a record another shard's WAL already replayed).
type RecoveryStats struct {
	// Files is how many journal files were replayed.
	Files int `json:"files"`
	// Records is the total records read across those files.
	Records int `json:"records"`
	// Users is the number of live sessions restored; Drops counts
	// journaled session drops replayed.
	Users int `json:"users"`
	Drops int `json:"drops"`
	// Declares/Asserts/RuleAdds/RuleRemoves/Execs count vocabulary
	// records applied through the broadcast path.
	Declares    int `json:"declares"`
	Asserts     int `json:"asserts"`
	RuleAdds    int `json:"rule_adds"`
	RuleRemoves int `json:"rule_removes"`
	Execs       int `json:"execs"`
	// SkippedCheckpoint counts vocabulary records whose effect the
	// restored snapshot already contained (Seq <= the manifest's
	// checkpoint_seq for that shard, same journal generation).
	SkippedCheckpoint int `json:"skipped_checkpoint"`
	// SkippedDuplicate counts broadcast records deduplicated by BID —
	// every shard's WAL holds a copy; exactly one is applied.
	SkippedDuplicate int `json:"skipped_duplicate"`
	// Subscribes/Unsubscribes count standing-subscription records
	// replayed: journaled subscriptions re-register at boot, so a client's
	// push stream resumes after a crash without re-subscribing.
	Subscribes   int `json:"subscribes"`
	Unsubscribes int `json:"unsubscribes"`
	// Failed counts records whose re-apply errored; they are preserved in
	// the new journal generation (marked checkpoint-exempt) instead of
	// being dropped.
	Failed int `json:"failed"`
	// BadFiles counts journal files skipped wholesale (bad magic /
	// unreadable); TornFiles counts files that ended in a torn tail.
	BadFiles  int `json:"bad_files"`
	TornFiles int `json:"torn_files"`
	// FingerprintMismatches counts replayed sessions whose recomputed
	// fingerprint differed from the journaled one (should be zero).
	FingerprintMismatches int `json:"fingerprint_mismatches"`
}

// VocabApplied is the number of vocabulary records applied during replay.
func (rs RecoveryStats) VocabApplied() int {
	return rs.Declares + rs.Asserts + rs.RuleAdds + rs.RuleRemoves + rs.Execs
}

// Stats snapshots the server counters. The collection path is lock-free:
// it reads atomics (epoch, request/session counters, cache counters, the
// latency ring) and internally synchronized component state (rule
// repository, event space) without ever taking the facade lock, the
// session mutex or the cache mutex — scraping /v1/stats during a long
// write (e.g. a merged context apply) returns immediately instead of
// queueing behind rank traffic. The snapshot is correspondingly not an
// atomic cut across counters, which monitoring does not need.
func (s *Server) Stats() Stats {
	st := Stats{
		Epoch:    s.facade.Epoch(),
		Sessions: s.sessions.Count(),
		// The repository serializes itself and its lock is never held
		// across rank work, so this cannot queue behind the facade.
		Rules:         s.facade.sys.Rules().Len(),
		Requests:      s.requests.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		// The space serializes its own reads, so no facade lock is needed.
		Events:  s.facade.sys.DB().Space().Len(),
		Latency: s.latency.snapshot(),
	}
	if s.cache != nil {
		st.Cache = s.cache.stats()
	}
	if s.plans != nil {
		st.Plans = s.plans.stats()
	}
	st.Health = s.health.healthInfo()
	if j := s.sessions.Journal(); j != nil {
		// Journal counters are atomics; reading them keeps the scrape
		// lock-free.
		js := j.Stats()
		st.Journal = &js
	}
	hp := contextrank.ReadHotPathStats()
	st.HotPath = &hp
	ss := s.subs.stats()
	st.Subs = &ss
	return st
}
