package serve

import (
	"fmt"
	"math"
	"testing"

	contextrank "repro"
)

// newTestSystem builds a small TV system: ten programs over two genres and
// two context-dependent rules (CtxA prefers genre g0, CtxB genre g1).
func newTestSystem(t testing.TB) *contextrank.System {
	t.Helper()
	sys := contextrank.NewSystem()
	if err := sys.DeclareConcept("TvProgram"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeclareRole("hasGenre"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("tv%02d", i)
		if err := sys.AssertConcept("TvProgram", id, 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.AssertRole("hasGenre", id, fmt.Sprintf("g%d", i%2), 0.9); err != nil {
			t.Fatal(err)
		}
	}
	for i, sigma := range []float64{0.8, 0.6} {
		rule := fmt.Sprintf("RULE r%d WHEN Ctx%c PREFER TvProgram AND EXISTS hasGenre.{g%d} WITH %g",
			i, 'A'+rune(i), i, sigma)
		if _, err := sys.AddRule(rule); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func sameResults(t *testing.T, got, want []contextrank.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("result %d: got id %s, want %s", i, got[i].ID, want[i].ID)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("result %d (%s): got score %v, want %v", i, got[i].ID, got[i].Score, want[i].Score)
		}
	}
}

func TestFacadeEpochDiscipline(t *testing.T) {
	f := NewFacade(newTestSystem(t))
	e0 := f.Epoch()

	// Read operations leave the epoch alone.
	if _, err := f.Rank("peter", "TvProgram"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Query("SELECT id FROM c_TvProgram"); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Rules()); got != 2 {
		t.Fatalf("rules = %d, want 2", got)
	}
	if f.Epoch() != e0 {
		t.Fatalf("reads bumped epoch: %d -> %d", e0, f.Epoch())
	}

	// Every mutator bumps it exactly once.
	steps := []func() error{
		func() error { return f.DeclareConcept("Documentary") },
		func() error { return f.DeclareRole("hasSubject") },
		func() error { return f.AssertConcept("Documentary", "d1", 0.7) },
		func() error { return f.AssertRole("hasSubject", "d1", "nature", 1) },
		func() error { _, err := f.AddRule("RULE r2 WHEN CtxC PREFER Documentary WITH 0.5"); return err },
		func() error { return f.SetContext(contextrank.NewContext("peter").Certain("CtxA")) },
		func() error { _, err := f.Exec("CREATE TABLE scratch (id TEXT)"); return err },
		func() error { return f.RemoveRule("r2") },
		func() error { return f.SubConcept("Documentary", "TvProgram") },
	}
	for i, step := range steps {
		before := f.Epoch()
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if f.Epoch() != before+1 {
			t.Fatalf("step %d: epoch %d -> %d, want +1", i, before, f.Epoch())
		}
	}

	// WithWriteEpoch reports the epoch its own mutation produced.
	ew0 := f.Epoch()
	ew, werr := f.WithWriteEpoch(func(*contextrank.System) error { return nil })
	if werr != nil || ew != ew0+1 || f.Epoch() != ew {
		t.Fatalf("WithWriteEpoch = (%d, %v), epoch now %d, want %d", ew, werr, f.Epoch(), ew0+1)
	}

	// A failing mutator still bumps (partial effects must invalidate).
	before := f.Epoch()
	if _, err := f.AddRule("RULE bad WHEN CtxD PREFER Undeclared WITH 0.5"); err == nil {
		t.Fatal("expected AddRule error")
	}
	if f.Epoch() != before+1 {
		t.Fatalf("failed mutator did not bump epoch")
	}
}

func TestFacadeRankMatchesSystem(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.SetContext(contextrank.NewContext("peter").Certain("CtxA")); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Rank("peter", "TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFacade(sys)
	got, err := f.Rank("peter", "TvProgram")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	// Genre-g0 programs must outrank g1 under CtxA.
	if got[0].ID[len(got[0].ID)-1]%2 != 0 {
		t.Fatalf("top result %s is not a g0 program", got[0].ID)
	}
}
