package serve

import (
	"fmt"
	"testing"

	contextrank "repro"
)

// TestDropRetiresSessionEvents: ending a session must remove its basic
// events from the event space, and ending the last session must return the
// space to its pre-session size.
func TestDropRetiresSessionEvents(t *testing.T) {
	srv := NewServer(newTestSystem(t), Options{})
	baseline := srv.Stats().Events // the dataset's assertion events
	if _, err := srv.Sessions().Set("peter", []Measurement{
		{Concept: "CtxA", Prob: 0.8},
		{Concept: "LocK", Prob: 0.6, Exclusive: "loc"},
		{Concept: "LocO", Prob: 0.3, Exclusive: "loc"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Sessions().Set("maria", []Measurement{{Concept: "CtxB", Prob: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Events; got != baseline+4 {
		t.Fatalf("Events = %d with two sessions, want %d", got, baseline+4)
	}
	if err := srv.Sessions().Drop("peter"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Events; got != baseline+1 {
		t.Fatalf("Events = %d after dropping peter, want %d", got, baseline+1)
	}
	if err := srv.Sessions().Drop("maria"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Events; got != baseline {
		t.Fatalf("Events = %d after dropping all sessions, want %d", got, baseline)
	}
}

// TestServeSessionChurnSoak is the ISSUE 2 acceptance soak: 10k session
// applies across 100 churning users must hold the event space at the live
// session vocabulary (no per-apply growth), and a user whose context never
// changes must rank bit-for-bit identically before and after the churn.
// Run with -race in CI; skipped under -short.
func TestServeSessionChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short mode")
	}
	srv := NewServer(newTestSystem(t), Options{})
	baseline := srv.Stats().Events

	// The sentinel user holds a fixed uncertain context for the whole run.
	if _, err := srv.Sessions().Set("user000", []Measurement{{Concept: "CtxA", Prob: 0.8}}); err != nil {
		t.Fatal(err)
	}
	before, err := srv.Facade().RankWith("user000", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		users   = 100
		applies = 10000
	)
	setUser := func(u, phase int) {
		t.Helper()
		name := fmt.Sprintf("user%03d", u)
		ms := []Measurement{
			{Concept: "CtxA", Prob: 0.5 + 0.04*float64((u+phase)%10)},
			{Concept: "LocK", Prob: 0.6, Exclusive: "loc"},
			{Concept: "LocO", Prob: 0.3, Exclusive: "loc"},
		}
		if _, err := srv.Sessions().Set(name, ms); err != nil {
			t.Fatalf("set %s (phase %d): %v", name, phase, err)
		}
	}
	// Live vocabulary at full occupancy: user000's single event plus three
	// per churning user. Each apply briefly holds only the new epoch (the
	// previous one is retired before fresh events are declared), so the
	// space must never exceed this.
	bound := baseline + 1 + 3*(users-1)
	maxEvents := 0
	for i := 0; i < applies; i++ {
		u := 1 + i%(users-1)
		setUser(u, i/(users-1))
		if i%250 == 249 {
			// Session end + re-join: exercises Drop's retirement path.
			if err := srv.Sessions().Drop(fmt.Sprintf("user%03d", u)); err != nil {
				t.Fatal(err)
			}
			setUser(u, i)
		}
		if ev := srv.Stats().Events; ev > maxEvents {
			maxEvents = ev
		}
	}
	if maxEvents > bound {
		t.Fatalf("event space grew under churn: max Events = %d across %d applies, live-vocabulary bound %d",
			maxEvents, applies, bound)
	}

	// The sentinel's ranking is untouched by 10k retire/redeclare cycles —
	// identical scores, not merely approximately equal.
	after, err := srv.Facade().RankWith("user000", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("result count changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i].ID != before[i].ID || after[i].Score != before[i].Score {
			t.Fatalf("result %d changed across churn: %s/%v -> %s/%v",
				i, before[i].ID, before[i].Score, after[i].ID, after[i].Score)
		}
	}
	// And the cached path agrees with the fresh computation.
	cached, _, err := srv.Rank("user000", "TvProgram", contextrank.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, cached, after)
}
