package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/sql"
	"repro/internal/storage"
)

// snapshot is the JSON shape of a dumped database: the event space (basic
// declarations with exclusive-group structure), every base table with typed
// rows, and every view as reconstructable SQL text.
type snapshot struct {
	Version int          `json:"version"`
	Events  []event.Decl `json:"events,omitempty"`
	Tables  []tableDump  `json:"tables,omitempty"`
	Views   []viewDump   `json:"views,omitempty"`
	Indexes []indexDump  `json:"indexes,omitempty"`
}

type tableDump struct {
	Name    string       `json:"name"`
	Columns []columnDump `json:"columns"`
	Rows    [][]cellDump `json:"rows"`
}

type columnDump struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type cellDump struct {
	T string `json:"t"`           // type tag: N, I, F, S, B, E
	V string `json:"v,omitempty"` // textual value; events use event.Parse syntax
}

type viewDump struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

type indexDump struct {
	Table  string `json:"table"`
	Column string `json:"column"`
}

const snapshotVersion = 1

// Dump serializes the whole database (event space, tables, views, indexes)
// as JSON to w. The format round-trips through Restore.
//
// Dead context declarations are not persisted: a `ctx_*` basic event (the
// situation layer's naming convention for per-apply context events) that
// no stored event expression and no view definition (EV_BASIC literals)
// references is a leftover of a cleared context, so dumping it would only
// carry leaked declarations into the restored space forever. The filter is
// deliberately scoped to that prefix — a user-declared event is persisted
// even before anything references it, so the Space round-trips for the
// ad-hoc Declare/EV_BASIC surface. An exclusive group is kept whole if any
// member is referenced or non-context — the group declaration is one unit.
// If a view computes an event name dynamically (EV_BASIC over a
// non-literal), the filter is disabled and every declaration is persisted.
func (db *DB) Dump(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion}
	referenced := make(map[string]bool)
	for _, name := range db.catalog.Names() {
		tab, err := db.catalog.Get(name)
		if err != nil {
			return err
		}
		schema := tab.Schema()
		td := tableDump{Name: name}
		for _, c := range schema.Columns {
			td.Columns = append(td.Columns, columnDump{Name: c.Name, Type: c.Type.String()})
			if tab.HasIndex(c.Name) {
				snap.Indexes = append(snap.Indexes, indexDump{Table: name, Column: c.Name})
			}
		}
		err = tab.Scan(func(r storage.Row) error {
			row := make([]cellDump, len(r))
			for i, v := range r {
				c, err := dumpCell(v)
				if err != nil {
					return fmt.Errorf("engine: table %s: %w", name, err)
				}
				row[i] = c
				if v.T == storage.TypeEvent {
					for _, b := range v.Ev.Basics() {
						referenced[b] = true
					}
				}
			}
			td.Rows = append(td.Rows, row)
			return nil
		})
		if err != nil {
			return err
		}
		snap.Tables = append(snap.Tables, td)
	}
	filter := true
	for _, name := range db.exec.ViewNames() {
		sel, ok := db.exec.ViewDefinition(name)
		if !ok {
			continue
		}
		names, complete := sql.ReferencedBasicEvents(sel)
		for _, n := range names {
			referenced[n] = true
		}
		if !complete {
			filter = false // a view references events we cannot enumerate
		}
		snap.Views = append(snap.Views, viewDump{Name: name, SQL: sql.Format(sel)})
	}
	sort.Slice(snap.Views, func(i, j int) bool { return snap.Views[i].Name < snap.Views[j].Name })
	if filter {
		snap.Events = liveDecls(db.space.Decls(), referenced)
	} else {
		snap.Events = db.space.Decls()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// liveDecls drops dead context declarations: ctx_*-named events that are
// referenced by no stored event expression. Non-context declarations
// always persist, and an exclusive group is kept whole if any member
// survives on its own.
func liveDecls(decls []event.Decl, referenced map[string]bool) []event.Decl {
	live := func(d event.Decl) bool {
		return referenced[d.Name] || !strings.HasPrefix(d.Name, "ctx_")
	}
	liveGroups := make(map[int]bool)
	for _, d := range decls {
		if d.Group >= 0 && live(d) {
			liveGroups[d.Group] = true
		}
	}
	var out []event.Decl
	for _, d := range decls {
		if live(d) || (d.Group >= 0 && liveGroups[d.Group]) {
			out = append(out, d)
		}
	}
	return out
}

func dumpCell(v storage.Value) (cellDump, error) {
	switch v.T {
	case storage.TypeNull:
		return cellDump{T: "N"}, nil
	case storage.TypeInt:
		return cellDump{T: "I", V: v.String()}, nil
	case storage.TypeFloat:
		return cellDump{T: "F", V: v.String()}, nil
	case storage.TypeText:
		return cellDump{T: "S", V: v.S}, nil
	case storage.TypeBool:
		return cellDump{T: "B", V: v.String()}, nil
	case storage.TypeEvent:
		return cellDump{T: "E", V: v.Ev.String()}, nil
	}
	return cellDump{}, fmt.Errorf("undumpable value type %s", v.T)
}

func loadCell(c cellDump) (storage.Value, error) {
	switch c.T {
	case "N":
		return storage.Null(), nil
	case "I":
		var i int64
		if _, err := fmt.Sscanf(c.V, "%d", &i); err != nil {
			return storage.Value{}, fmt.Errorf("engine: bad INT %q", c.V)
		}
		return storage.Int(i), nil
	case "F":
		var f float64
		if _, err := fmt.Sscanf(c.V, "%g", &f); err != nil {
			return storage.Value{}, fmt.Errorf("engine: bad FLOAT %q", c.V)
		}
		return storage.Float(f), nil
	case "S":
		return storage.Text(c.V), nil
	case "B":
		return storage.Bool(c.V == "TRUE"), nil
	case "E":
		ev, err := event.Parse(c.V)
		if err != nil {
			return storage.Value{}, fmt.Errorf("engine: bad EVENT %q: %w", c.V, err)
		}
		return storage.Event(ev), nil
	}
	return storage.Value{}, fmt.Errorf("engine: unknown cell tag %q", c.T)
}

// Restore loads a snapshot produced by Dump into a fresh database. It
// fails if the receiving database already has tables or views (restores
// never merge).
func (db *DB) Restore(r io.Reader) error {
	if len(db.catalog.Names()) > 0 || len(db.exec.ViewNames()) > 0 {
		return fmt.Errorf("engine: restore requires an empty database")
	}
	var snap snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("engine: reading snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("engine: snapshot version %d unsupported (want %d)", snap.Version, snapshotVersion)
	}
	// Events: replay exclusive groups first, then singles.
	byGroup := make(map[int][]event.Decl)
	var groupOrder []int
	for _, d := range snap.Events {
		if d.Group == -1 {
			if err := db.space.Declare(d.Name, d.Prob); err != nil {
				return err
			}
			continue
		}
		if _, ok := byGroup[d.Group]; !ok {
			groupOrder = append(groupOrder, d.Group)
		}
		byGroup[d.Group] = append(byGroup[d.Group], d)
	}
	sort.Ints(groupOrder)
	for _, g := range groupOrder {
		names := make([]string, len(byGroup[g]))
		probs := make([]float64, len(byGroup[g]))
		for i, d := range byGroup[g] {
			names[i], probs[i] = d.Name, d.Prob
		}
		if err := db.space.DeclareExclusive(names, probs); err != nil {
			return err
		}
	}
	// Tables.
	for _, td := range snap.Tables {
		cols := make([]storage.Column, len(td.Columns))
		for i, c := range td.Columns {
			typ, err := storage.TypeFromName(c.Type)
			if err != nil {
				return fmt.Errorf("engine: table %s: %w", td.Name, err)
			}
			cols[i] = storage.Column{Name: c.Name, Type: typ}
		}
		schema, err := storage.NewSchema(cols...)
		if err != nil {
			return err
		}
		tab, err := db.catalog.Create(td.Name, schema)
		if err != nil {
			return err
		}
		for _, rd := range td.Rows {
			row := make(storage.Row, len(rd))
			for i, c := range rd {
				v, err := loadCell(c)
				if err != nil {
					return err
				}
				row[i] = v
			}
			if err := tab.Insert(row); err != nil {
				return err
			}
		}
	}
	// Indexes.
	for _, ix := range snap.Indexes {
		tab, err := db.catalog.Get(ix.Table)
		if err != nil {
			return err
		}
		if err := tab.CreateIndex(ix.Column); err != nil {
			return err
		}
	}
	// Views (formatted SQL replays through the normal DDL path).
	for _, vd := range snap.Views {
		if _, err := db.Exec(fmt.Sprintf("CREATE VIEW %s AS %s", vd.Name, vd.SQL)); err != nil {
			return fmt.Errorf("engine: restoring view %s: %w", vd.Name, err)
		}
	}
	return nil
}
