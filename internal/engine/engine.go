// Package engine wires the storage catalog, the SQL executor and the event
// space into a single embedded database handle — the stand-in for the
// paper's event-expression-extended PostgreSQL instance (§5).
package engine

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/sql"
	"repro/internal/storage"
)

// DB is an embedded probabilistic relational database. Safe for concurrent
// use.
type DB struct {
	catalog *storage.Catalog
	space   *event.Space
	exec    *sql.Executor
}

// New creates an empty database with a fresh event space.
func New() *DB {
	catalog := storage.NewCatalog()
	space := event.NewSpace()
	return &DB{
		catalog: catalog,
		space:   space,
		exec:    sql.NewExecutor(catalog, &sql.Runtime{Space: space}),
	}
}

// Space returns the database's event space (for declaring basic events).
func (db *DB) Space() *event.Space { return db.space }

// Catalog returns the underlying table catalog.
func (db *DB) Catalog() *storage.Catalog { return db.catalog }

// Exec parses and executes one SQL statement.
func (db *DB) Exec(stmt string) (*sql.Result, error) { return db.exec.Exec(stmt) }

// MustExec executes a statement and panics on error; for schema setup whose
// statements are statically known.
func (db *DB) MustExec(stmt string) *sql.Result {
	res, err := db.exec.Exec(stmt)
	if err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	return res
}

// Query executes a statement and requires a result set.
func (db *DB) Query(stmt string) (*sql.Result, error) {
	res, err := db.exec.Exec(stmt)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("engine: statement %q produced no rows", stmt)
	}
	return res, nil
}

// QueryScalar executes a query expected to return exactly one value.
func (db *DB) QueryScalar(stmt string) (storage.Value, error) {
	res, err := db.Query(stmt)
	if err != nil {
		return storage.Value{}, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return storage.Value{}, fmt.Errorf("engine: %q returned %dx%d, want 1x1", stmt, len(res.Rows), len(res.Cols))
	}
	return res.Rows[0][0], nil
}

// HasView reports whether a view with this name exists.
func (db *DB) HasView(name string) bool { return db.exec.HasView(name) }

// HasTable reports whether a base table with this name exists.
func (db *DB) HasTable(name string) bool { return db.catalog.Exists(name) }

// ViewNames returns the sorted names of all registered views.
func (db *DB) ViewNames() []string { return db.exec.ViewNames() }

// TableNames returns the sorted names of all base tables.
func (db *DB) TableNames() []string { return db.catalog.Names() }

// InsertRow inserts a row of Go values into the named base table without
// going through the SQL parser; event expressions can be passed directly.
// Accepted Go types: int, int64, float64, string, bool, *event.Expr, nil and
// storage.Value.
func (db *DB) InsertRow(table string, vals ...interface{}) error {
	tab, err := db.catalog.Get(table)
	if err != nil {
		return err
	}
	row := make(storage.Row, len(vals))
	for i, v := range vals {
		sv, err := toValue(v)
		if err != nil {
			return fmt.Errorf("engine: %s column %d: %w", table, i, err)
		}
		row[i] = sv
	}
	return tab.Insert(row)
}

func toValue(v interface{}) (storage.Value, error) {
	switch v := v.(type) {
	case nil:
		return storage.Null(), nil
	case storage.Value:
		return v, nil
	case int:
		return storage.Int(int64(v)), nil
	case int64:
		return storage.Int(v), nil
	case float64:
		return storage.Float(v), nil
	case string:
		return storage.Text(v), nil
	case bool:
		return storage.Bool(v), nil
	case *event.Expr:
		return storage.Event(v), nil
	}
	return storage.Value{}, fmt.Errorf("unsupported Go value %T", v)
}
