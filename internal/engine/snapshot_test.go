package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/event"
)

func buildSnapshotSource(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.Space().Declare("e1", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := db.Space().DeclareExclusive([]string{"k", "o"}, []float64{0.5, 0.3}); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE progs (id TEXT, year INT, rating FLOAT, live BOOL, ev EVENT)")
	db.MustExec("CREATE INDEX ON progs (id)")
	if err := db.InsertRow("progs", "a", 2007, 7.5, true, event.And(event.Basic("e1"), event.Basic("k"))); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRow("progs", "b", nil, nil, false, nil); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE VIEW recent AS SELECT id, PROB(ev) AS p FROM progs WHERE year >= 2007")
	return db
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	src := buildSnapshotSource(t)
	var buf bytes.Buffer
	if err := src.Dump(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New()
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Table data and types survive.
	res, err := dst.Query("SELECT id, year, rating, live FROM progs ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].I != 2007 || res.Rows[0][2].F != 7.5 || !res.Rows[0][3].B {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !res.Rows[1][1].IsNull() {
		t.Fatalf("NULL lost: %v", res.Rows[1])
	}
	// Events and the exclusive-group structure survive: P(e1 ∧ k) = 0.35.
	v, err := dst.QueryScalar("SELECT PROB(ev) FROM progs WHERE id = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.F-0.35) > 1e-9 {
		t.Fatalf("P = %v", v)
	}
	// Exclusivity: k ∧ o impossible in the restored space.
	p, err := dst.Space().Prob(event.And(event.Basic("k"), event.Basic("o")))
	if err != nil || p != 0 {
		t.Fatalf("P(k∧o) = %g, %v", p, err)
	}
	// Views replay.
	res, err = dst.Query("SELECT id, p FROM recent")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || math.Abs(res.Rows[0][1].F-0.35) > 1e-9 {
		t.Fatalf("view rows = %v", res.Rows)
	}
	// Indexes replay.
	tab, _ := dst.Catalog().Get("progs")
	if !tab.HasIndex("id") {
		t.Fatal("index lost")
	}
}

func TestRestoreRequiresEmptyDB(t *testing.T) {
	src := buildSnapshotSource(t)
	var buf bytes.Buffer
	if err := src.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if err := src.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into non-empty database accepted")
	}
}

func TestRestoreRejectsBadInput(t *testing.T) {
	db := New()
	if err := db.Restore(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	db = New()
	if err := db.Restore(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestDumpSkipsDeadDeclarations: ctx_*-named declarations no stored event
// expression references (leaked or cleared context events) are not
// persisted; a partially referenced exclusive group survives whole, and
// non-context declarations survive even when unreferenced (the ad-hoc
// Declare surface must round-trip).
func TestDumpSkipsDeadDeclarations(t *testing.T) {
	db := New()
	if err := db.Space().Declare("live", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := db.Space().Declare("adhoc", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := db.Space().Declare("ctx_9_0_Dead", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := db.Space().DeclareExclusive([]string{"ctx_9_1_K", "ctx_9_2_O"}, []float64{0.5, 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := db.Space().DeclareExclusive([]string{"ctx_9_3_G", "ctx_9_4_H"}, []float64{0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id TEXT, ev EVENT)")
	if err := db.InsertRow("t", "a", event.And(event.Basic("live"), event.Basic("ctx_9_1_K"))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Referenced events, the referenced group (whole), and the unreferenced
	// non-context declaration survive.
	for _, want := range []string{"live", "adhoc", "ctx_9_1_K", "ctx_9_2_O"} {
		if !dst.Space().Declared(want) {
			t.Fatalf("%s lost in round trip", want)
		}
	}
	// Dead context declarations — unreferenced independent event and fully
	// unreferenced group — are gone.
	for _, dead := range []string{"ctx_9_0_Dead", "ctx_9_3_G", "ctx_9_4_H"} {
		if dst.Space().Declared(dead) {
			t.Fatalf("dead declaration %s persisted", dead)
		}
	}
	if p, err := dst.Space().Prob(event.And(event.Basic("ctx_9_1_K"), event.Basic("ctx_9_2_O"))); err != nil || p != 0 {
		t.Fatalf("restored group exclusivity: P = %g, %v", p, err)
	}
}

// TestDumpKeepsViewReferencedDeclarations: an event mentioned only inside a
// view definition (EV_BASIC literal) has no stored row cell, but dropping
// it would break the restored view — it must survive the dump filter.
func TestDumpKeepsViewReferencedDeclarations(t *testing.T) {
	db := New()
	if err := db.Space().Declare("ctx_3_0_Rain", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := db.Space().Declare("ctx_3_1_Orphan", 0.5); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id TEXT, ev EVENT)")
	if err := db.InsertRow("t", "a", event.True()); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE VIEW wet AS SELECT id, PROB(EV_AND(ev, EV_BASIC('ctx_3_0_Rain'))) AS p FROM t")
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !dst.Space().Declared("ctx_3_0_Rain") {
		t.Fatal("view-referenced declaration dropped")
	}
	if dst.Space().Declared("ctx_3_1_Orphan") {
		t.Fatal("dead declaration persisted")
	}
	v, err := dst.QueryScalar("SELECT p FROM wet")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.F-0.3) > 1e-9 {
		t.Fatalf("restored view P = %v, want 0.3", v)
	}
}

// TestDumpKeepsSubqueryReferencedDeclarations: EV_BASIC references hidden
// inside a view's FROM subquery must keep their declarations alive too.
func TestDumpKeepsSubqueryReferencedDeclarations(t *testing.T) {
	db := New()
	if err := db.Space().Declare("ctx_4_0_Rain", 0.3); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id TEXT, ev EVENT)")
	if err := db.InsertRow("t", "a", event.True()); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE VIEW wet AS SELECT s.p AS p FROM (SELECT PROB(EV_AND(ev, EV_BASIC('ctx_4_0_Rain'))) AS p FROM t) s")
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	v, err := dst.QueryScalar("SELECT p FROM wet")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.F-0.3) > 1e-9 {
		t.Fatalf("restored subquery view P = %v, want 0.3", v)
	}
}

func TestDumpIsDeterministic(t *testing.T) {
	a, b := buildSnapshotSource(t), buildSnapshotSource(t)
	var ba, bb bytes.Buffer
	if err := a.Dump(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Dump(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("dumps of identical databases differ")
	}
}
