package engine

import (
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/storage"
)

func TestExecAndQueryScalar(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (x INT)")
	db.MustExec("INSERT INTO t VALUES (1), (2), (3)")
	v, err := db.QueryScalar("SELECT SUM(x) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 6 {
		t.Fatalf("sum = %v", v)
	}
	if _, err := db.QueryScalar("SELECT x FROM t"); err == nil {
		t.Fatal("multi-row scalar accepted")
	}
	if _, err := db.Query("CREATE TABLE u (y INT)"); err == nil {
		t.Fatal("DDL accepted as query")
	}
}

func TestInsertRowTypesAndEvents(t *testing.T) {
	db := New()
	db.Space().Declare("e", 0.25)
	db.MustExec("CREATE TABLE c (id TEXT, n INT, f FLOAT, b BOOL, ev EVENT)")
	if err := db.InsertRow("c", "x", 1, 2.5, true, event.Basic("e")); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRow("c", "y", nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRow("c", "z", storage.Int(9), 0.0, false, event.True()); err != nil {
		t.Fatal(err)
	}
	v, err := db.QueryScalar("SELECT PROB(ev) FROM c WHERE id = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.F-0.25) > 1e-9 {
		t.Fatalf("prob = %v", v)
	}
	if err := db.InsertRow("c", struct{}{}, 1, 1.0, true, nil); err == nil {
		t.Fatal("unsupported type accepted")
	}
	if err := db.InsertRow("missing", 1); err == nil {
		t.Fatal("insert into missing table accepted")
	}
}

func TestViewAndTableIntrospection(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (x INT)")
	db.MustExec("CREATE VIEW v AS SELECT x FROM t")
	if !db.HasTable("t") || db.HasTable("v") {
		t.Fatal("HasTable wrong")
	}
	if !db.HasView("v") || db.HasView("t") {
		t.Fatal("HasView wrong")
	}
	if names := db.ViewNames(); len(names) != 1 || names[0] != "v" {
		t.Fatalf("ViewNames = %v", names)
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("TableNames = %v", names)
	}
}
