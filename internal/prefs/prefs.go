// Package prefs implements the paper's scored preference rules (§4.1):
// tuples (Context, Preference, σ) where Context and Preference are
// Description Logic concept expressions and σ has the history semantics of
// §3.2. It provides the rule type, a textual rule syntax, a repository with
// validation and default rules, and persistence into the engine's rule
// repository table (§5: "all preference rules together are stored as rows
// in a repository table").
package prefs

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dl"
	"repro/internal/engine"
)

// Rule is one scored preference rule. Sigma is "the probability that
// whenever we take a random context in the past [matching Context], if the
// user was able to choose a document [matching Preference], the chance that
// … he would actually choose [such a document]" (§4.1).
type Rule struct {
	Name       string
	Context    *dl.Expr
	Preference *dl.Expr
	Sigma      float64
}

// Validate checks structural invariants of the rule.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("prefs: rule without a name")
	}
	if r.Context == nil || r.Preference == nil {
		return fmt.Errorf("prefs: rule %s missing context or preference", r.Name)
	}
	if r.Sigma < 0 || r.Sigma > 1 {
		return fmt.Errorf("prefs: rule %s has σ = %g outside [0,1]", r.Name, r.Sigma)
	}
	if r.Preference.Op() == dl.OpBottom {
		return fmt.Errorf("prefs: rule %s prefers the empty concept", r.Name)
	}
	return nil
}

// IsDefault reports whether the rule applies in any context (§4.1:
// "'default' preference rules, which are valid in any context").
func (r Rule) IsDefault() bool { return r.Context.Op() == dl.OpTop }

// String renders the rule in the parsable WHEN/PREFER/WITH syntax.
func (r Rule) String() string {
	return fmt.Sprintf("WHEN %s PREFER %s WITH %g", r.Context, r.Preference, r.Sigma)
}

// ParseRule parses the textual rule syntax
//
//	[RULE <name>] WHEN <context-expr> PREFER <preference-expr> WITH <σ>
//
// where both expressions use the dl package syntax. Example (the paper's
// R1): "WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}
// WITH 0.8".
func ParseRule(input string) (Rule, error) {
	rest := strings.TrimSpace(input)
	var name string
	if m, ok := cutKeyword(rest, "RULE"); ok {
		fields := strings.Fields(m)
		if len(fields) == 0 {
			return Rule{}, fmt.Errorf("prefs: RULE requires a name in %q", input)
		}
		name = fields[0]
		rest = strings.TrimSpace(m[strings.Index(m, name)+len(name):])
	}
	body, ok := cutKeyword(rest, "WHEN")
	if !ok {
		return Rule{}, fmt.Errorf("prefs: missing WHEN in %q", input)
	}
	ctxText, prefPart, ok := splitKeyword(body, "PREFER")
	if !ok {
		return Rule{}, fmt.Errorf("prefs: missing PREFER in %q", input)
	}
	prefText, sigmaText, ok := splitKeyword(prefPart, "WITH")
	if !ok {
		return Rule{}, fmt.Errorf("prefs: missing WITH in %q", input)
	}
	ctx, err := dl.Parse(ctxText)
	if err != nil {
		return Rule{}, fmt.Errorf("prefs: context: %w", err)
	}
	pref, err := dl.Parse(prefText)
	if err != nil {
		return Rule{}, fmt.Errorf("prefs: preference: %w", err)
	}
	var sigma float64
	if _, err := fmt.Sscanf(strings.TrimSpace(sigmaText), "%g", &sigma); err != nil {
		return Rule{}, fmt.Errorf("prefs: bad σ %q", strings.TrimSpace(sigmaText))
	}
	if name == "" {
		name = fmt.Sprintf("rule-%x", hashString(input))
	}
	r := Rule{Name: name, Context: ctx, Preference: pref, Sigma: sigma}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// MustParseRule is ParseRule but panics on error.
func MustParseRule(input string) Rule {
	r, err := ParseRule(input)
	if err != nil {
		panic(err)
	}
	return r
}

// cutKeyword strips a leading keyword (case-insensitive, word-aligned) and
// returns the remainder.
func cutKeyword(s, kw string) (string, bool) {
	trimmed := strings.TrimSpace(s)
	if len(trimmed) < len(kw) || !strings.EqualFold(trimmed[:len(kw)], kw) {
		return s, false
	}
	rest := trimmed[len(kw):]
	if rest != "" && !isSpace(rest[0]) {
		return s, false
	}
	return strings.TrimSpace(rest), true
}

// splitKeyword splits s at the first word-aligned occurrence of kw outside
// any nesting-sensitive construct (the rule grammar has none, so a simple
// word scan suffices).
func splitKeyword(s, kw string) (before, after string, ok bool) {
	upper := strings.ToUpper(s)
	kwU := strings.ToUpper(kw)
	for i := 0; i+len(kwU) <= len(upper); i++ {
		if upper[i:i+len(kwU)] != kwU {
			continue
		}
		if i > 0 && !isSpace(s[i-1]) {
			continue
		}
		end := i + len(kwU)
		if end < len(s) && !isSpace(s[end]) {
			continue
		}
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[end:]), true
	}
	return "", "", false
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Repository holds a user's scored preference rules. Safe for concurrent
// use.
type Repository struct {
	mu    sync.RWMutex
	rules []Rule
	byKey map[string]int
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byKey: make(map[string]int)}
}

// Add validates and appends a rule; rule names must be unique.
func (r *Repository) Add(rule Rule) error {
	if err := rule.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byKey[rule.Name]; ok {
		return fmt.Errorf("prefs: rule %q already exists", rule.Name)
	}
	r.byKey[rule.Name] = len(r.rules)
	r.rules = append(r.rules, rule)
	return nil
}

// AddText parses and adds a rule in the textual syntax.
func (r *Repository) AddText(input string) (Rule, error) {
	rule, err := ParseRule(input)
	if err != nil {
		return Rule{}, err
	}
	return rule, r.Add(rule)
}

// Remove deletes a rule by name.
func (r *Repository) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.byKey[name]
	if !ok {
		return fmt.Errorf("prefs: no rule %q", name)
	}
	r.rules = append(r.rules[:idx], r.rules[idx+1:]...)
	delete(r.byKey, name)
	for i := idx; i < len(r.rules); i++ {
		r.byKey[r.rules[i].Name] = i
	}
	return nil
}

// Get returns a rule by name.
func (r *Repository) Get(name string) (Rule, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx, ok := r.byKey[name]
	if !ok {
		return Rule{}, false
	}
	return r.rules[idx], true
}

// Rules returns the rules in insertion order.
func (r *Repository) Rules() []Rule {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Rule, len(r.rules))
	copy(out, r.rules)
	return out
}

// Len returns the number of rules.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rules)
}

// Fingerprint hashes the repository's rules (names, expressions, σ, order)
// into a short hex digest. Two repositories with the same fingerprint rank
// identically, so callers can key compiled rank plans by it. Fields are
// length-prefixed so free-form rule text cannot collide across boundaries.
func (r *Repository) Fingerprint() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h := fnv.New64a()
	field := func(s string) {
		h.Write([]byte(strconv.Itoa(len(s))))
		h.Write([]byte{':'})
		h.Write([]byte(s))
	}
	for _, rule := range r.rules {
		field(rule.Name)
		field(rule.String())
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// Defaults returns only the default (context-free) rules.
func (r *Repository) Defaults() []Rule {
	var out []Rule
	for _, rule := range r.Rules() {
		if rule.IsDefault() {
			out = append(out, rule)
		}
	}
	return out
}

// repoTable is the SQL repository table name (§5).
const repoTable = "pref_rules"

// Persist stores the repository into the database's pref_rules table,
// replacing previous contents: one row per rule with the textual context
// and preference expressions and the score, exactly the paper's layout
// ("the name of the preference view, the name of the context view, and the
// score of the rule") with expressions instead of opaque view names so the
// rules survive round trips.
func (r *Repository) Persist(db *engine.DB) error {
	if !db.HasTable(repoTable) {
		if _, err := db.Exec(fmt.Sprintf(
			"CREATE TABLE %s (name TEXT, ctx TEXT, pref TEXT, sigma FLOAT)", repoTable)); err != nil {
			return err
		}
	} else if _, err := db.Exec("DELETE FROM " + repoTable); err != nil {
		return err
	}
	for _, rule := range r.Rules() {
		if err := db.InsertRow(repoTable, rule.Name, rule.Context.String(), rule.Preference.String(), rule.Sigma); err != nil {
			return err
		}
	}
	return nil
}

// LoadRepository reads the pref_rules table back into a repository.
func LoadRepository(db *engine.DB) (*Repository, error) {
	repo := NewRepository()
	if !db.HasTable(repoTable) {
		return repo, nil
	}
	res, err := db.Query("SELECT name, ctx, pref, sigma FROM " + repoTable)
	if err != nil {
		return nil, err
	}
	for _, row := range res.Rows {
		ctx, err := dl.Parse(row[1].S)
		if err != nil {
			return nil, fmt.Errorf("prefs: stored rule %s: %w", row[0].S, err)
		}
		pref, err := dl.Parse(row[2].S)
		if err != nil {
			return nil, fmt.Errorf("prefs: stored rule %s: %w", row[0].S, err)
		}
		if err := repo.Add(Rule{Name: row[0].S, Context: ctx, Preference: pref, Sigma: row[3].F}); err != nil {
			return nil, err
		}
	}
	return repo, nil
}
