package prefs

import (
	"strings"
	"testing"

	"repro/internal/dl"
)

func analyzeRepo(t *testing.T, tbox *dl.TBox, rules ...string) []Finding {
	t.Helper()
	repo := NewRepository()
	for _, r := range rules {
		if _, err := repo.AddText(r); err != nil {
			t.Fatal(err)
		}
	}
	return repo.Analyze(tbox)
}

func kinds(fs []Finding) map[FindingKind]int {
	out := make(map[FindingKind]int)
	for _, f := range fs {
		out[f.Kind]++
	}
	return out
}

func TestAnalyzeDuplicate(t *testing.T) {
	fs := analyzeRepo(t, nil,
		"RULE A WHEN Weekend PREFER Movie WITH 0.8",
		"RULE B WHEN Weekend PREFER Movie WITH 0.8",
	)
	if kinds(fs)[FindingDuplicate] != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].String(), "A / B") {
		t.Fatalf("string = %q", fs[0].String())
	}
}

func TestAnalyzeConflict(t *testing.T) {
	fs := analyzeRepo(t, nil,
		"RULE A WHEN Weekend PREFER Movie WITH 0.8",
		"RULE B WHEN Weekend PREFER Movie WITH 0.3",
	)
	if kinds(fs)[FindingConflict] != 1 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestAnalyzeSubsumedContext(t *testing.T) {
	// SundayMorning ⊑ Weekend via the TBox: the Sunday rule's context is
	// inside the weekend rule's.
	tbox := dl.NewTBox()
	tbox.AddSub("SundayMorning", dl.Atom("Weekend"))
	fs := analyzeRepo(t, tbox,
		"RULE Wide WHEN Weekend PREFER Movie WITH 0.6",
		"RULE Narrow WHEN SundayMorning PREFER Movie WITH 0.9",
	)
	k := kinds(fs)
	if k[FindingSubsumedContext] != 1 || k[FindingConflict] != 0 {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].RuleA != "Narrow" || fs[0].RuleB != "Wide" {
		t.Fatalf("direction wrong: %v", fs[0])
	}
}

func TestAnalyzeSubsumedContextViaAnd(t *testing.T) {
	// Weekend ⊓ Morning ⊑ Weekend structurally, no TBox needed.
	fs := analyzeRepo(t, nil,
		"RULE Wide WHEN Weekend PREFER Movie WITH 0.6",
		"RULE Narrow WHEN Weekend AND Morning PREFER Movie WITH 0.9",
	)
	if kinds(fs)[FindingSubsumedContext] != 1 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestAnalyzeUnsatisfiablePreference(t *testing.T) {
	tbox := dl.NewTBox()
	tbox.AddDisjoint("Traffic", "Weather")
	fs := analyzeRepo(t, tbox,
		"RULE Bad WHEN Morning PREFER Traffic AND Weather WITH 0.5",
	)
	if kinds(fs)[FindingUnsatisfiablePreference] != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].String(), "Bad") {
		t.Fatalf("string = %q", fs[0])
	}
}

func TestAnalyzeCleanRepoNoFindings(t *testing.T) {
	fs := analyzeRepo(t, nil,
		"RULE A WHEN Weekend PREFER Movie WITH 0.8",
		"RULE B WHEN Breakfast PREFER News WITH 0.9",
		"RULE C WHEN Weekend PREFER News WITH 0.5", // same ctx, different pref: fine
	)
	if len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestAnalyzeNilTBox(t *testing.T) {
	repo := NewRepository()
	repo.AddText("RULE A WHEN Weekend PREFER Movie WITH 0.8")
	if fs := repo.Analyze(nil); len(fs) != 0 {
		t.Fatalf("findings = %v", fs)
	}
}
