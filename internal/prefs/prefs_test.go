package prefs

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dl"
	"repro/internal/engine"
)

// The paper's two example rules (§4.1, §4.2).
const (
	ruleR1 = "RULE R1 WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"
	ruleR2 = "RULE R2 WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.{News} WITH 0.9"
)

func TestParsePaperRules(t *testing.T) {
	r1, err := ParseRule(ruleR1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Name != "R1" || math.Abs(r1.Sigma-0.8) > 1e-12 {
		t.Fatalf("r1 = %+v", r1)
	}
	if !dl.Equal(r1.Context, dl.Atom("Weekend")) {
		t.Fatalf("context = %s", r1.Context)
	}
	wantPref := dl.And(dl.Atom("TvProgram"), dl.Exists("hasGenre", dl.Nominal("HUMAN-INTEREST")))
	if !dl.Equal(r1.Preference, wantPref) {
		t.Fatalf("preference = %s", r1.Preference)
	}
}

func TestParseRuleWithoutName(t *testing.T) {
	r, err := ParseRule("WHEN Weekend PREFER Movie WITH 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name == "" {
		t.Fatal("anonymous rule got no generated name")
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	r1 := MustParseRule(ruleR1)
	back, err := ParseRule(r1.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", r1.String(), err)
	}
	if !dl.Equal(back.Context, r1.Context) || !dl.Equal(back.Preference, r1.Preference) || back.Sigma != r1.Sigma {
		t.Fatalf("round trip mismatch: %s vs %s", back, r1)
	}
}

func TestParseRuleKeywordsInsideExpressions(t *testing.T) {
	// Concept names containing the letters of keywords must not confuse the
	// splitter; keywords only match on word boundaries.
	r, err := ParseRule("WHEN Weekender PREFER Preferred WITH 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Equal(r.Context, dl.Atom("Weekender")) || !dl.Equal(r.Preference, dl.Atom("Preferred")) {
		t.Fatalf("rule = %+v", r)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"",
		"PREFER A WITH 0.5",
		"WHEN A WITH 0.5",
		"WHEN A PREFER B",
		"WHEN A PREFER B WITH two",
		"WHEN A PREFER B WITH 1.5",
		"WHEN A PREFER B WITH -0.1",
		"WHEN (A PREFER B WITH 0.5",
		"RULE WHEN A PREFER B WITH 0.5 ",
		"WHEN A PREFER BOTTOM WITH 0.5",
	}
	for _, in := range bad {
		if _, err := ParseRule(in); err == nil {
			t.Errorf("ParseRule(%q) succeeded", in)
		}
	}
}

func TestDefaultRule(t *testing.T) {
	r := MustParseRule("WHEN TOP PREFER Movie WITH 0.3")
	if !r.IsDefault() {
		t.Fatal("TOP-context rule not default")
	}
	if MustParseRule(ruleR1).IsDefault() {
		t.Fatal("R1 reported default")
	}
}

func TestRepositoryBasics(t *testing.T) {
	repo := NewRepository()
	r1 := MustParseRule(ruleR1)
	r2 := MustParseRule(ruleR2)
	if err := repo.Add(r1); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(r2); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(r1); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if repo.Len() != 2 {
		t.Fatalf("len = %d", repo.Len())
	}
	got, ok := repo.Get("R2")
	if !ok || got.Sigma != 0.9 {
		t.Fatalf("Get R2 = %+v, %v", got, ok)
	}
	rules := repo.Rules()
	if rules[0].Name != "R1" || rules[1].Name != "R2" {
		t.Fatalf("order = %v", rules)
	}
	if err := repo.Remove("R1"); err != nil {
		t.Fatal(err)
	}
	if err := repo.Remove("R1"); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, ok := repo.Get("R1"); ok {
		t.Fatal("removed rule still present")
	}
	// Index map stays consistent after removal.
	got, ok = repo.Get("R2")
	if !ok || got.Name != "R2" {
		t.Fatalf("post-remove Get = %+v, %v", got, ok)
	}
}

func TestRepositoryDefaults(t *testing.T) {
	repo := NewRepository()
	repo.Add(MustParseRule(ruleR1))
	repo.Add(MustParseRule("RULE D WHEN TOP PREFER TvProgram WITH 0.2"))
	defs := repo.Defaults()
	if len(defs) != 1 || defs[0].Name != "D" {
		t.Fatalf("defaults = %v", defs)
	}
}

func TestAddTextValidation(t *testing.T) {
	repo := NewRepository()
	if _, err := repo.AddText("nonsense"); err == nil {
		t.Fatal("nonsense accepted")
	}
	r, err := repo.AddText(ruleR1)
	if err != nil || r.Name != "R1" {
		t.Fatalf("AddText = %+v, %v", r, err)
	}
}

func TestPersistAndLoad(t *testing.T) {
	db := engine.New()
	repo := NewRepository()
	repo.Add(MustParseRule(ruleR1))
	repo.Add(MustParseRule(ruleR2))
	if err := repo.Persist(db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepository(db)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d rules", back.Len())
	}
	r1, _ := back.Get("R1")
	if !dl.Equal(r1.Context, dl.Atom("Weekend")) || math.Abs(r1.Sigma-0.8) > 1e-12 {
		t.Fatalf("loaded R1 = %+v", r1)
	}
	// Persist is replace-not-append.
	if err := repo.Persist(db); err != nil {
		t.Fatal(err)
	}
	back, _ = LoadRepository(db)
	if back.Len() != 2 {
		t.Fatalf("after re-persist: %d rules", back.Len())
	}
}

func TestLoadRepositoryEmptyDB(t *testing.T) {
	repo, err := LoadRepository(engine.New())
	if err != nil || repo.Len() != 0 {
		t.Fatalf("repo = %v, err = %v", repo, err)
	}
}

func TestRuleValidate(t *testing.T) {
	valid := Rule{Name: "r", Context: dl.Top(), Preference: dl.Atom("A"), Sigma: 0.5}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Rule{
		{Context: dl.Top(), Preference: dl.Atom("A"), Sigma: 0.5},
		{Name: "r", Preference: dl.Atom("A"), Sigma: 0.5},
		{Name: "r", Context: dl.Top(), Sigma: 0.5},
		{Name: "r", Context: dl.Top(), Preference: dl.Atom("A"), Sigma: 1.1},
		{Name: "r", Context: dl.Top(), Preference: dl.Bottom(), Sigma: 0.5},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, r)
		}
	}
}

func TestRuleStringMentionsAllParts(t *testing.T) {
	s := MustParseRule(ruleR2).String()
	for _, part := range []string{"WHEN", "PREFER", "WITH", "Breakfast", "News", "0.9"} {
		if !strings.Contains(s, part) {
			t.Fatalf("String() = %q missing %q", s, part)
		}
	}
}
