package prefs

import (
	"fmt"
	"math"

	"repro/internal/dl"
)

// FindingKind classifies a rule-set analysis finding.
type FindingKind string

// Analysis finding kinds.
const (
	// FindingDuplicate: two rules with equivalent context and preference
	// and (numerically) equal σ — one is dead weight.
	FindingDuplicate FindingKind = "duplicate"
	// FindingConflict: equivalent context and preference but different σ —
	// the semantics (a conditional probability of one population) cannot
	// hold for both.
	FindingConflict FindingKind = "conflict"
	// FindingSubsumedContext: rule A's context is strictly subsumed by
	// rule B's context while the preferences are equivalent — whenever A
	// applies B does too, so A only refines σ in a sub-context; worth
	// flagging because the σ semantics of the two rules overlap.
	FindingSubsumedContext FindingKind = "subsumed-context"
	// FindingUnsatisfiablePreference: the rule prefers a concept the TBox
	// declares disjointness-empty (e.g. Traffic ⊓ Weather when declared
	// disjoint) — it can never promote any tuple above 1−σ.
	FindingUnsatisfiablePreference FindingKind = "unsatisfiable-preference"
)

// Finding is one analysis result, referencing rules by name.
type Finding struct {
	Kind  FindingKind
	RuleA string
	RuleB string // empty for single-rule findings
	Note  string
}

// String renders the finding.
func (f Finding) String() string {
	if f.RuleB == "" {
		return fmt.Sprintf("%s: %s — %s", f.Kind, f.RuleA, f.Note)
	}
	return fmt.Sprintf("%s: %s / %s — %s", f.Kind, f.RuleA, f.RuleB, f.Note)
}

// Analyze inspects the repository's rules against a terminology and
// reports duplicates, σ conflicts, context subsumption overlaps and
// disjointness-unsatisfiable preferences. The checks are sound with
// respect to the TBox's structural reasoner: absence of findings does not
// prove absence of overlap, matching the reasoner's documented
// incompleteness.
func (r *Repository) Analyze(tbox *dl.TBox) []Finding {
	if tbox == nil {
		tbox = dl.NewTBox()
	}
	rules := r.Rules()
	var out []Finding
	for i, a := range rules {
		if f, bad := unsatisfiablePreference(tbox, a); bad {
			out = append(out, f)
		}
		for _, b := range rules[i+1:] {
			ctxAB := tbox.Subsumes(b.Context, a.Context)
			ctxBA := tbox.Subsumes(a.Context, b.Context)
			prefEq := tbox.Subsumes(a.Preference, b.Preference) && tbox.Subsumes(b.Preference, a.Preference)
			if !prefEq {
				continue
			}
			switch {
			case ctxAB && ctxBA:
				if math.Abs(a.Sigma-b.Sigma) < 1e-12 {
					out = append(out, Finding{
						Kind: FindingDuplicate, RuleA: a.Name, RuleB: b.Name,
						Note: "equivalent context and preference with equal σ",
					})
				} else {
					out = append(out, Finding{
						Kind: FindingConflict, RuleA: a.Name, RuleB: b.Name,
						Note: fmt.Sprintf("equivalent context and preference but σ %g vs %g", a.Sigma, b.Sigma),
					})
				}
			case ctxAB:
				out = append(out, Finding{
					Kind: FindingSubsumedContext, RuleA: a.Name, RuleB: b.Name,
					Note: fmt.Sprintf("whenever %s applies, %s applies too (same preference)", a.Name, b.Name),
				})
			case ctxBA:
				out = append(out, Finding{
					Kind: FindingSubsumedContext, RuleA: b.Name, RuleB: a.Name,
					Note: fmt.Sprintf("whenever %s applies, %s applies too (same preference)", b.Name, a.Name),
				})
			}
		}
	}
	return out
}

// unsatisfiablePreference detects conjunctions of atoms the TBox declares
// pairwise disjoint.
func unsatisfiablePreference(tbox *dl.TBox, r Rule) (Finding, bool) {
	conj := r.Preference.Conjuncts()
	var atoms []string
	for _, c := range conj {
		if c.Op() == dl.OpAtom {
			atoms = append(atoms, c.Name())
		}
	}
	for i := 0; i < len(atoms); i++ {
		for j := i + 1; j < len(atoms); j++ {
			if tbox.Disjoint(atoms[i], atoms[j]) {
				return Finding{
					Kind:  FindingUnsatisfiablePreference,
					RuleA: r.Name,
					Note:  fmt.Sprintf("prefers %s ⊓ %s, declared disjoint", atoms[i], atoms[j]),
				}, true
			}
		}
	}
	return Finding{}, false
}
