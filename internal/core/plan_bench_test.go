// Benchmarks for compiled rank plans: the compile cost paid once per
// (user, rule set, context epoch), and the per-candidate scoring cost of
// the plan path versus the retained pre-plan factorized implementation.
// CI gates these through internal/ci/benchcheck (BENCH_rank.json) next to
// the serving benchmarks.
package core

import (
	"fmt"
	"testing"

	"repro/internal/dl"
	"repro/internal/prefs"
	"repro/internal/situation"
	"repro/internal/workload"
)

// planBenchSetup builds a TV-watcher catalog of the given size with k
// uncertain-context rules (no pruning, fresh context events — the rankers'
// worst case).
func planBenchSetup(b *testing.B, programs, k int) (*workload.Dataset, []prefs.Rule) {
	b.Helper()
	spec := workload.Spec{
		Seed:                 1,
		Persons:              50,
		Programs:             programs,
		Genres:               12,
		Subjects:             6,
		Activities:           4,
		Rooms:                5,
		WatchEvents:          programs,
		UncertainFeatureProb: 0.5,
	}
	d, err := workload.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.ApplyBenchContext(k, false); err != nil {
		b.Fatal(err)
	}
	rules, err := d.Rules(k)
	if err != nil {
		b.Fatal(err)
	}
	return d, rules
}

// BenchmarkFactorizedPlanCompile measures one plan compilation — rule
// resolution, preference-view membership fetch, pruning, footprint
// clustering, context tables — over a 1000-document catalog with 8 rules.
func BenchmarkFactorizedPlanCompile(b *testing.B) {
	d, rules := planBenchSetup(b, 1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := CompilePlan(d.Loader, d.User, rules)
		if err != nil {
			b.Fatal(err)
		}
		if plan.ActiveRules() != len(rules) {
			b.Fatalf("pruned %d rules unexpectedly", len(rules)-plan.ActiveRules())
		}
	}
}

// BenchmarkPlanScoreLargeCatalog measures a full uncached rank of the
// whole catalog with 8 rules: the compiled-plan path at 100/1k/10k
// candidates, and the pre-plan per-candidate path (which re-runs
// clustering and the context distributions for every document) as the
// baseline at 100/1k. The ns/op ratio at matching sizes is the recorded
// RANK-PLAN speedup in EXPERIMENTS.md.
func BenchmarkPlanScoreLargeCatalog(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("plan/candidates=%d", n), func(b *testing.B) {
			d, rules := planBenchSetup(b, n, 8)
			// Compile once, rank many times: the serving layer's steady
			// state, where the plan cache hands every uncached rank the
			// compiled plan (BenchmarkFactorizedPlanCompile prices the
			// compile itself).
			plan, err := CompilePlan(d.Loader, d.User, rules)
			if err != nil {
				b.Fatal(err)
			}
			req := PlanRequest{Target: dl.Atom("TvProgram")}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := plan.Rank(req)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != n {
					b.Fatalf("%d results, want %d", len(res), n)
				}
			}
		})
	}
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("warm/candidates=%d", n), func(b *testing.B) {
			// The steady-state hot path: reused scratch, warm document-
			// distribution cache, results aliased into the scratch arena.
			// CI caps this at 0 allocs/op (benchcheck -max-allocs); any
			// new allocation on the cached-plan score path fails the gate.
			d, rules := planBenchSetup(b, n, 8)
			plan, err := CompilePlan(d.Loader, d.User, rules)
			if err != nil {
				b.Fatal(err)
			}
			sc := NewPlanScratch()
			req := PlanRequest{Target: dl.Atom("TvProgram")}
			if _, err := plan.RankInto(sc, req); err != nil {
				b.Fatal(err) // warm the doc-distribution + candidate caches
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := plan.RankInto(sc, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != n {
					b.Fatalf("%d results, want %d", len(res), n)
				}
			}
		})
	}
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("legacy/candidates=%d", n), func(b *testing.B) {
			d, rules := planBenchSetup(b, n, 8)
			ranker := NewFactorizedRanker(d.Loader)
			req := Request{User: d.User, Target: dl.Atom("TvProgram"), Rules: rules}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ranker.legacyRank(req)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != n {
					b.Fatalf("%d results, want %d", len(res), n)
				}
			}
		})
	}
}

// BenchmarkPlanIncrementalApply prices the subscription push path: after a
// context apply shifts one concept's probability (a single-cluster change
// against the 8-rule plan), re-rank the full 1000-document catalog either by
// recompiling the plan from scratch or by incrementally refreshing the
// previous epoch's plan. The context apply itself runs outside the timer so
// the ratio isolates plan maintenance + rank. CI renames the two
// sub-benchmarks to a common name and gates refresh at ≥5× faster than full
// recompile via benchcheck with a negative threshold (BENCH_subscribe.json).
func BenchmarkPlanIncrementalApply(b *testing.B) {
	const n, k = 1000, 8
	// applyShifted re-applies the standard bench context with concept 0's
	// probability nudged by iteration, so every epoch is a genuine change.
	applyShifted := func(d *workload.Dataset, i int) {
		b.Helper()
		ctx := situation.New(d.User)
		ctx.Add(workload.BenchContextConcept(0), 0.5+0.4*float64(i%7)/7)
		for j := 1; j < k; j++ {
			ctx.Add(workload.BenchContextConcept(j), 0.9)
		}
		if err := ctx.Apply(d.Loader); err != nil {
			b.Fatal(err)
		}
	}
	req := PlanRequest{Target: dl.Atom("TvProgram")}
	b.Run(fmt.Sprintf("mode=full/candidates=%d", n), func(b *testing.B) {
		d, rules := planBenchSetup(b, n, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			applyShifted(d, i)
			b.StartTimer()
			plan, err := CompilePlan(d.Loader, d.User, rules)
			if err != nil {
				b.Fatal(err)
			}
			res, err := plan.Rank(req)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != n {
				b.Fatalf("%d results, want %d", len(res), n)
			}
		}
	})
	b.Run(fmt.Sprintf("mode=refresh/candidates=%d", n), func(b *testing.B) {
		d, rules := planBenchSetup(b, n, k)
		plan, err := CompilePlan(d.Loader, d.User, rules)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Rank(req); err != nil {
			b.Fatal(err) // warm the doc-distribution cache for adoption
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			applyShifted(d, i)
			b.StartTimer()
			plan, err = plan.Refresh()
			if err != nil {
				b.Fatal(err)
			}
			res, err := plan.Rank(req)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != n {
				b.Fatalf("%d results, want %d", len(res), n)
			}
		}
	})
}

// BenchmarkPlanRankTopK prices top-k selection against the full sort over
// a 10k-candidate catalog with a warm plan: the scoring work is identical,
// so the whole delta is sort-and-copy vs the bounded heap. CI renames the
// two sub-benchmarks to a common name and runs benchcheck with a negative
// threshold, turning "top10 is at least 2× faster than full" into a gate.
func BenchmarkPlanRankTopK(b *testing.B) {
	const n = 10000
	d, rules := planBenchSetup(b, n, 8)
	plan, err := CompilePlan(d.Loader, d.User, rules)
	if err != nil {
		b.Fatal(err)
	}
	sc := NewPlanScratch()
	if _, err := plan.RankInto(sc, PlanRequest{Target: dl.Atom("TvProgram")}); err != nil {
		b.Fatal(err) // warm the doc-distribution + candidate caches
	}
	for _, bench := range []struct {
		name string
		topk int
		want int
	}{
		{"candidates=10000/full", 0, n},
		{"candidates=10000/top10", 10, 10},
	} {
		b.Run(bench.name, func(b *testing.B) {
			req := PlanRequest{Target: dl.Atom("TvProgram"), TopK: bench.topk}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := plan.RankInto(sc, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != bench.want {
					b.Fatalf("%d results, want %d", len(res), bench.want)
				}
			}
		})
	}
}
